//! Integration: the §5.2 fidelity targets hold on a fresh synthetic
//! window (fast vs reference simulator).

use mirage::prelude::*;
use mirage::sim::fidelity::{compare, run_both};

fn two_weeks(profile: &ClusterProfile, seed: u64) -> Vec<JobRecord> {
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = Some(1);
    let raw = TraceGenerator::new(cfg).generate();
    let (jobs, _) = clean_trace(&raw, profile.nodes);
    jobs.into_iter().filter(|j| j.submit < 2 * WEEK).collect()
}

#[test]
fn fidelity_targets_hold_on_v100_window() {
    let profile = ClusterProfile::v100().scaled(0.5);
    let jobs = two_weeks(&profile, 5);
    assert!(jobs.len() > 200, "window too small to be meaningful");
    let (report, t_fast, t_ref) = run_both(&jobs, profile.nodes);
    assert_eq!(report.jobs_compared, jobs.len());
    // Paper targets: < 2.5 % makespan, <= 15 % JCT geo-mean. We allow a
    // little slack because the window is short and synthetic.
    assert!(
        report.makespan_rel_diff < 0.05,
        "makespan diff {:.3}",
        report.makespan_rel_diff
    );
    assert!(
        report.jct_geomean_diff < 0.25,
        "JCT geo-mean diff {:.3}",
        report.jct_geomean_diff
    );
    // The fast simulator must actually be faster.
    assert!(t_fast < t_ref, "fast {t_fast:?} vs reference {t_ref:?}");
}

#[test]
fn both_simulators_complete_every_job() {
    let profile = ClusterProfile::a100().scaled(0.4);
    let jobs = two_weeks(&profile, 6);
    let (report, _, _) = run_both(&jobs, profile.nodes);
    assert_eq!(
        report.jobs_compared,
        jobs.len(),
        "all jobs matched across sims"
    );
}

#[test]
fn identical_outputs_compare_clean() {
    let profile = ClusterProfile::rtx().scaled(0.3);
    let jobs = two_weeks(&profile, 7);
    let mut sim = Simulator::new(SimConfig::new(profile.nodes));
    sim.load_trace(&jobs);
    sim.run_to_completion();
    let done = sim.completed();
    let r = compare(&done, &done);
    assert_eq!(r.jobs_compared, done.len());
    assert!(r.makespan_rel_diff.abs() < 1e-12);
    assert!(r.jct_geomean_diff.abs() < 1e-9);
}
