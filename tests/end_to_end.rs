//! Cross-crate integration: the full pipeline from synthetic trace to
//! evaluated provisioning report, at a small but honest scale.

use mirage::core::episode::EpisodeConfig;
use mirage::core::eval::{evaluate, EvalConfig, LoadLevel};
use mirage::core::train::{
    collect_offline, sample_training_starts, train_method, MethodKind, TrainConfig,
};
use mirage::core::ProvisionPolicy;
use mirage::prelude::*;

fn pool_for(nodes: u32) -> BackendPool<SimBuilder> {
    SimConfig::builder()
        .nodes(nodes)
        .backend(BackendKind::Pooled { workers: 4 })
        .build_pool()
}

fn small_setup() -> (ClusterProfile, Vec<JobRecord>, (i64, i64), (i64, i64)) {
    let profile = ClusterProfile::v100().scaled(0.35);
    let mut scfg = SynthConfig::new(profile.clone(), 99);
    scfg.months = Some(4);
    let raw = TraceGenerator::new(scfg).generate();
    let (jobs, _) = clean_trace(&raw, profile.nodes);
    let split = split_by_time(&jobs, 0.8);
    let train_range = (jobs.first().unwrap().submit, split.split_time);
    let val_range = (split.split_time, jobs.last().unwrap().submit);
    (profile, jobs, train_range, val_range)
}

fn small_train_config() -> TrainConfig {
    TrainConfig {
        episode: EpisodeConfig {
            pair_timelimit: 24 * HOUR,
            pair_runtime: 24 * HOUR,
            ..EpisodeConfig::default()
        },
        offline_episodes: 8,
        online_episodes: 6,
        ..TrainConfig::default()
    }
}

#[test]
fn trace_to_eval_pipeline_produces_consistent_report() {
    let (profile, jobs, train_range, val_range) = small_setup();
    let tcfg = small_train_config();
    let starts = sample_training_starts(
        &jobs,
        profile.nodes,
        train_range.0,
        train_range.1,
        &tcfg.episode,
        tcfg.offline_episodes,
        1,
    );
    assert_eq!(starts.len(), tcfg.offline_episodes);
    let pool = pool_for(profile.nodes);
    let data = collect_offline(&pool, &jobs, &tcfg, &starts);
    assert!(!data.reward_samples.is_empty());
    assert!(!data.wait_samples.is_empty());
    assert!(!data.best_run_decisions.is_empty());

    let mut backend = SimConfig::builder().nodes(profile.nodes).build();
    let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![
        train_method(
            MethodKind::Reactive,
            &pool,
            &jobs,
            &tcfg,
            &data,
            train_range,
        ),
        train_method(
            MethodKind::AvgHeuristic,
            &pool,
            &jobs,
            &tcfg,
            &data,
            train_range,
        ),
        train_method(MethodKind::Xgboost, &pool, &jobs, &tcfg, &data, train_range),
    ];
    let report = evaluate(
        &mut methods,
        &mut backend,
        &jobs,
        val_range,
        &EvalConfig {
            episode: tcfg.episode,
            n_episodes: 10,
            seed: 2,
        },
    );

    // Structural consistency.
    assert_eq!(report.episodes.len(), 10);
    let total: usize = LoadLevel::all()
        .iter()
        .map(|&l| report.episodes_at(l))
        .sum();
    assert_eq!(total, 10);
    for ep in &report.episodes {
        assert_eq!(ep.methods.len(), 3);
        // Reactive never overlaps and its interruption equals the
        // classification statistic.
        let reactive = &ep.methods[0];
        assert_eq!(reactive.method, "reactive");
        assert_eq!(reactive.outcome.overlap, 0);
        assert_eq!(reactive.outcome.interruption, ep.reactive_wait);
        // Outcomes are one-sided for every method.
        for m in &ep.methods {
            assert!(m.outcome.interruption == 0 || m.outcome.overlap == 0);
        }
    }
}

#[test]
fn learned_method_beats_reactive_on_congested_episodes() {
    let (profile, jobs, train_range, val_range) = small_setup();
    let tcfg = small_train_config();
    let starts = sample_training_starts(
        &jobs,
        profile.nodes,
        train_range.0,
        train_range.1,
        &tcfg.episode,
        tcfg.offline_episodes,
        3,
    );
    let pool = pool_for(profile.nodes);
    let data = collect_offline(&pool, &jobs, &tcfg, &starts);
    let mut backend = SimConfig::builder().nodes(profile.nodes).build();
    let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![
        train_method(
            MethodKind::Reactive,
            &pool,
            &jobs,
            &tcfg,
            &data,
            train_range,
        ),
        train_method(
            MethodKind::RandomForest,
            &pool,
            &jobs,
            &tcfg,
            &data,
            train_range,
        ),
    ];
    let report = evaluate(
        &mut methods,
        &mut backend,
        &jobs,
        val_range,
        &EvalConfig {
            episode: tcfg.episode,
            n_episodes: 12,
            seed: 4,
        },
    );
    // Aggregate over all non-light episodes: the forest must cut the mean
    // interruption (it can never be worse per-episode thanks to the
    // reactive fallback, so strictness only needs one win).
    let mut reactive_sum = 0.0;
    let mut forest_sum = 0.0;
    let mut n = 0;
    for load in [LoadLevel::Heavy, LoadLevel::Medium] {
        let r = report.summarize("reactive", load);
        let f = report.summarize("random-forest", load);
        reactive_sum += r.avg_interruption_h * r.episodes as f64;
        forest_sum += f.avg_interruption_h * f.episodes as f64;
        n += r.episodes;
    }
    if n > 0 && reactive_sum > 0.5 {
        assert!(
            forest_sum < reactive_sum,
            "forest {forest_sum:.2}h should beat reactive {reactive_sum:.2}h over {n} episodes"
        );
    }
}

#[test]
fn facade_reexports_compose() {
    // The README quickstart must keep compiling: prelude + builder-selected
    // backend (and the concrete Simulator type stays available).
    let profile = ClusterProfile::a100().scaled(0.25);
    let mut cfg = SynthConfig::new(profile.clone(), 42);
    cfg.months = Some(1);
    let jobs = TraceGenerator::new(cfg).generate();
    let mut backend = SimConfig::builder().nodes(profile.nodes).build();
    backend.load_trace(&jobs);
    backend.run_to_completion();
    assert_eq!(
        backend.completed().len() + backend.metrics().rejected_jobs,
        jobs.len()
    );
    let _concrete: Simulator = Simulator::new(SimConfig::new(profile.nodes));
    let _reference: ReferenceSimulator = ReferenceSimulator::new(ReferenceConfig::new(4));
    let _report: Option<FidelityReport> = None;
}
