//! Reproducibility: everything in the pipeline is a pure function of its
//! seed — trace generation, simulation, episode outcomes, and training
//! data collection.

use mirage::core::episode::{run_episode, Action, EpisodeConfig};
use mirage::core::train::{collect_offline, sample_training_starts, TrainConfig};
use mirage::prelude::*;

fn jobs(seed: u64) -> (ClusterProfile, Vec<JobRecord>) {
    let profile = ClusterProfile::rtx().scaled(0.3);
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = Some(2);
    let raw = TraceGenerator::new(cfg).generate();
    let (clean, _) = clean_trace(&raw, profile.nodes);
    (profile, clean)
}

#[test]
fn trace_generation_is_seed_deterministic() {
    assert_eq!(jobs(1).1, jobs(1).1);
    assert_ne!(jobs(1).1, jobs(2).1);
}

#[test]
fn simulation_replay_is_deterministic() {
    let (profile, trace) = jobs(3);
    let run = |t: &[JobRecord]| {
        let mut backend = SimConfig::builder().nodes(profile.nodes).build();
        backend.load_trace(t);
        backend.run_to_completion();
        backend.completed()
    };
    assert_eq!(run(&trace), run(&trace));
}

#[test]
fn episode_outcomes_are_deterministic() {
    let (profile, trace) = jobs(4);
    let ecfg = EpisodeConfig {
        pair_timelimit: 12 * HOUR,
        pair_runtime: 12 * HOUR,
        warmup: 2 * DAY,
        ..EpisodeConfig::default()
    };
    let t0 = 20 * DAY;
    let run = || {
        let mut backend = SimConfig::builder().nodes(profile.nodes).build();
        run_episode(&mut backend, &trace, &ecfg, t0, |ctx| {
            if ctx.pred_started && ctx.pred_remaining <= 3 * HOUR {
                Action::Submit
            } else {
                Action::Wait
            }
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.succ_start, b.succ_start);
    assert_eq!(a.decisions.len(), b.decisions.len());
}

#[test]
fn offline_collection_is_deterministic() {
    let (profile, trace) = jobs(5);
    let mut tcfg = TrainConfig::default();
    tcfg.episode.pair_timelimit = 12 * HOUR;
    tcfg.episode.pair_runtime = 12 * HOUR;
    tcfg.episode.warmup = 2 * DAY;
    tcfg.offline_episodes = 4;
    let range = (trace.first().unwrap().submit, trace.last().unwrap().submit);
    let starts =
        sample_training_starts(&trace, profile.nodes, range.0, range.1, &tcfg.episode, 4, 9);
    let pool = SimConfig::builder()
        .nodes(profile.nodes)
        .backend(BackendKind::Pooled { workers: 4 })
        .build_pool();
    let a = collect_offline(&pool, &trace, &tcfg, &starts);
    let b = collect_offline(&pool, &trace, &tcfg, &starts);
    assert_eq!(a.reward_samples.len(), b.reward_samples.len());
    assert_eq!(a.wait_samples, b.wait_samples);
    for (x, y) in a.reward_samples.iter().zip(&b.reward_samples) {
        assert_eq!(x.state, y.state);
        assert_eq!(x.action, y.action);
        assert_eq!(x.reward, y.reward);
    }
}

#[test]
fn pooled_collection_matches_sequential_collection() {
    // The acceptance bar for `BackendPool`: >= 4 seeded backends in
    // parallel produce byte-identical pools to a single-worker run.
    let (profile, trace) = jobs(6);
    let mut tcfg = TrainConfig::default();
    tcfg.episode.pair_timelimit = 12 * HOUR;
    tcfg.episode.pair_runtime = 12 * HOUR;
    tcfg.episode.warmup = 2 * DAY;
    tcfg.offline_episodes = 4;
    let range = (trace.first().unwrap().submit, trace.last().unwrap().submit);
    let starts = sample_training_starts(
        &trace,
        profile.nodes,
        range.0,
        range.1,
        &tcfg.episode,
        4,
        11,
    );
    let builder = SimConfig::builder().nodes(profile.nodes);
    let sequential = collect_offline(
        &builder
            .clone()
            .backend(BackendKind::Pooled { workers: 1 })
            .build_pool(),
        &trace,
        &tcfg,
        &starts,
    );
    let pooled = collect_offline(
        &builder
            .backend(BackendKind::Pooled { workers: 4 })
            .build_pool(),
        &trace,
        &tcfg,
        &starts,
    );
    assert_eq!(sequential.wait_samples, pooled.wait_samples);
    assert_eq!(sequential.reward_samples.len(), pooled.reward_samples.len());
    for (x, y) in sequential.reward_samples.iter().zip(&pooled.reward_samples) {
        assert_eq!(x.state, y.state);
        assert_eq!(x.action, y.action);
        assert_eq!(x.reward, y.reward);
    }
    assert_eq!(
        sequential.best_run_decisions.len(),
        pooled.best_run_decisions.len()
    );
    for (x, y) in sequential
        .best_run_decisions
        .iter()
        .zip(&pooled.best_run_decisions)
    {
        assert_eq!(x, y);
    }
}
