//! # Mirage
//!
//! A Rust reproduction of *"Mirage: Towards Low-interruption Services on
//! Batch GPU Clusters with Reinforcement Learning"* (SC 2023).
//!
//! Mirage is a proactive resource provisioner for batch GPU clusters: given
//! a chain of wall-clock-limited sub-jobs (the way long-running deep
//! learning training and inference services must run under Slurm), it
//! decides *when* to submit each successor sub-job so that it starts just
//! as its predecessor ends — minimising service **interruption** without
//! wasting node-hours on **overlap**.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! * [`trace`] — job model, synthetic cluster workloads, cleaning, stats
//! * [`sim`] — Slurm simulation behind the `ClusterBackend` trait: the
//!   fast event-driven simulator, the tick-driven reference simulator,
//!   and a threaded backend pool, all selected by value via
//!   `SimConfig::builder()`
//! * [`nn`] — from-scratch transformer / mixture-of-experts substrate
//! * [`ensemble`] — random forest and gradient boosting baselines
//! * [`rl`] — DQN and policy-gradient agents with experience replay
//! * [`core`] — state encoding, reward shaping, policies, train/eval —
//!   every entry point generic over `B: ClusterBackend`
//!
//! ## Quickstart
//!
//! ```
//! use mirage::prelude::*;
//!
//! // A small synthetic cluster and trace.
//! let profile = ClusterProfile::a100().scaled(0.25);
//! let mut cfg = SynthConfig::new(profile.clone(), 42);
//! cfg.months = Some(1);
//! let jobs = TraceGenerator::new(cfg).generate();
//!
//! // Replay it through a backend picked by value — the event-driven
//! // simulator by default, `BackendKind::Tick` for the slurmctld-cadence
//! // reference; provisioning code upstream is generic over either.
//! let mut backend = SimConfig::builder().nodes(profile.nodes).build();
//! backend.load_trace(&jobs);
//! backend.run_to_completion();
//! assert_eq!(
//!     backend.completed().len() + backend.metrics().rejected_jobs,
//!     jobs.len()
//! );
//!
//! // One provisioning episode over the same backend: submit the successor
//! // two hours before the predecessor's limit expires.
//! let ecfg = EpisodeConfig::default();
//! let result = run_episode(&mut backend, &jobs, &ecfg, 14 * DAY, |ctx| {
//!     if ctx.pred_started && ctx.pred_remaining <= 2 * HOUR {
//!         Action::Submit
//!     } else {
//!         Action::Wait
//!     }
//! });
//! assert!(result.outcome.interruption == 0 || result.outcome.overlap == 0);
//! ```

pub use mirage_core as core;
pub use mirage_ensemble as ensemble;
pub use mirage_nn as nn;
pub use mirage_rl as rl;
pub use mirage_sim as sim;
pub use mirage_trace as trace;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use mirage_core::prelude::*;
    pub use mirage_ensemble::{GradientBoosting, RandomForest};
    pub use mirage_nn::prelude::*;
    pub use mirage_rl::prelude::*;
    pub use mirage_sim::{
        AnyBackend, BackendFactory, BackendKind, BackendPool, ClusterBackend, FidelityReport,
        ReferenceConfig, ReferenceSimulator, SimBuilder, SimConfig, Simulator,
    };
    pub use mirage_trace::{
        clean_trace, split_by_time, ClusterProfile, JobRecord, SynthConfig, TraceGenerator, DAY,
        HOUR, MINUTE, MONTH, WEEK,
    };
}
