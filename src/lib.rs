//! # Mirage
//!
//! A Rust reproduction of *"Mirage: Towards Low-interruption Services on
//! Batch GPU Clusters with Reinforcement Learning"* (SC 2023).
//!
//! Mirage is a proactive resource provisioner for batch GPU clusters: given
//! a chain of wall-clock-limited sub-jobs (the way long-running deep
//! learning training and inference services must run under Slurm), it
//! decides *when* to submit each successor sub-job so that it starts just
//! as its predecessor ends — minimising service **interruption** without
//! wasting node-hours on **overlap**.
//!
//! This crate is a facade that re-exports the workspace:
//!
//! * [`trace`] — job model, synthetic cluster workloads, cleaning, stats
//! * [`sim`] — discrete-event Slurm simulator (priority + EASY backfill)
//! * [`nn`] — from-scratch transformer / mixture-of-experts substrate
//! * [`ensemble`] — random forest and gradient boosting baselines
//! * [`rl`] — DQN and policy-gradient agents with experience replay
//! * [`core`] — state encoding, reward shaping, policies, train/eval
//!
//! ## Quickstart
//!
//! ```
//! use mirage::prelude::*;
//!
//! // A small synthetic cluster and trace.
//! let profile = ClusterProfile::a100().scaled(0.25);
//! let mut cfg = SynthConfig::new(profile.clone(), 42);
//! cfg.months = Some(1);
//! let jobs = TraceGenerator::new(cfg).generate();
//!
//! // Replay it through the Slurm simulator.
//! let mut sim = Simulator::new(SimConfig::new(profile.nodes));
//! sim.load_trace(&jobs);
//! sim.run_to_completion();
//! assert_eq!(sim.completed().len(), jobs.len());
//! ```

pub use mirage_core as core;
pub use mirage_ensemble as ensemble;
pub use mirage_nn as nn;
pub use mirage_rl as rl;
pub use mirage_sim as sim;
pub use mirage_trace as trace;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use mirage_core::prelude::*;
    pub use mirage_ensemble::{GradientBoosting, RandomForest};
    pub use mirage_nn::prelude::*;
    pub use mirage_rl::prelude::*;
    pub use mirage_sim::{SimConfig, Simulator};
    pub use mirage_trace::{
        clean_trace, split_by_time, ClusterProfile, JobRecord, SynthConfig, TraceGenerator, DAY,
        HOUR, MINUTE, MONTH, WEEK,
    };
}
