//! Property-based tests for the tree learners.

use mirage_ensemble::{
    Dataset, ForestConfig, GbdtConfig, GradientBoosting, RandomForest, RegressionTree, TreeConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (prop::collection::vec(-10.0f32..10.0, 3), -100.0f32..100.0),
        8..60,
    )
    .prop_map(|pairs| {
        let (rows, ys): (Vec<Vec<f32>>, Vec<f32>) = pairs.into_iter().unzip();
        Dataset::from_rows(&rows, &ys)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CART leaves are sample means, so predictions stay inside the target
    /// range for any data.
    #[test]
    fn tree_predictions_bounded_by_targets(data in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(0);
        let tree = RegressionTree::fit(&data, &TreeConfig::default(), &mut rng);
        let lo = data.targets().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = data.targets().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for i in 0..data.len() {
            let p = tree.predict(data.row(i));
            prop_assert!(p >= lo - 1e-4 && p <= hi + 1e-4, "{p} outside [{lo},{hi}]");
        }
    }

    /// Forest predictions are convex combinations of tree predictions, so
    /// they are bounded by the target range too.
    #[test]
    fn forest_predictions_bounded(data in dataset_strategy()) {
        let forest = RandomForest::fit(&data, &ForestConfig { n_trees: 7, ..Default::default() });
        let lo = data.targets().iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = data.targets().iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for i in 0..data.len() {
            let p = forest.predict(data.row(i));
            prop_assert!(p >= lo - 1e-3 && p <= hi + 1e-3);
        }
    }

    /// Boosting with zero rounds predicts the target mean exactly.
    #[test]
    fn gbdt_base_case(data in dataset_strategy()) {
        let model = GradientBoosting::fit(&data, &GbdtConfig { n_rounds: 0, ..Default::default() });
        let mean = data.target_mean();
        prop_assert!((model.predict(data.row(0)) - mean).abs() < 1e-5);
    }

    /// Boosting training error is monotone non-increasing in rounds.
    #[test]
    fn gbdt_training_error_non_increasing(data in dataset_strategy()) {
        let cfg = GbdtConfig { n_rounds: 12, subsample: 1.0, ..Default::default() };
        let model = GradientBoosting::fit(&data, &cfg);
        let mse_at = |rounds: usize| -> f64 {
            (0..data.len())
                .map(|i| {
                    let d = model.predict_truncated(data.row(i), rounds) - data.target(i);
                    (d as f64) * (d as f64)
                })
                .sum::<f64>() / data.len() as f64
        };
        let mut prev = mse_at(0);
        for r in [3, 6, 12] {
            let cur = mse_at(r);
            prop_assert!(cur <= prev + 1e-4, "mse rose from {prev} to {cur} at {r} rounds");
            prev = cur;
        }
    }

    /// Fitting is deterministic for a fixed seed.
    #[test]
    fn fits_are_deterministic(data in dataset_strategy(), seed in 0u64..1000) {
        let fc = ForestConfig { n_trees: 4, seed, ..Default::default() };
        prop_assert_eq!(RandomForest::fit(&data, &fc), RandomForest::fit(&data, &fc));
        let gc = GbdtConfig { n_rounds: 4, seed, ..Default::default() };
        prop_assert_eq!(GradientBoosting::fit(&data, &gc), GradientBoosting::fit(&data, &gc));
    }
}
