//! Random forest regressor (\[7\] in the paper; baseline method in §6).
//!
//! Bagged CART trees with feature subsampling, trained in parallel with
//! rayon, predictions averaged.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::tree::{RegressionTree, TreeConfig};

/// Forest hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
    /// Bootstrap sample fraction (1.0 = classic bagging with replacement).
    pub sample_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 50,
            tree: TreeConfig::default(),
            sample_fraction: 1.0,
            seed: 0,
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fits `cfg.n_trees` trees on bootstrap resamples of `data`.
    ///
    /// Feature subsampling defaults to `sqrt(n_features)` when the tree
    /// config does not set one (the usual RF heuristic).
    pub fn fit(data: &Dataset, cfg: &ForestConfig) -> Self {
        assert!(!data.is_empty(), "cannot fit a forest on zero samples");
        let mut tree_cfg = cfg.tree;
        if tree_cfg.feature_subsample.is_none() {
            let k = (data.n_features() as f64).sqrt().ceil() as usize;
            tree_cfg.feature_subsample = Some(k.max(1));
        }
        let n = data.len();
        let draw = ((n as f64) * cfg.sample_fraction).ceil() as usize;
        let trees: Vec<RegressionTree> = (0..cfg.n_trees)
            .into_par_iter()
            .map(|t| {
                // Independent, deterministic stream per tree.
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let idx: Vec<usize> = (0..draw.max(1)).map(|_| rng.gen_range(0..n)).collect();
                RegressionTree::fit_indices(data, &idx, &tree_cfg, &mut rng)
            })
            .collect();
        Self { trees }
    }

    /// Mean prediction over all trees.
    pub fn predict(&self, row: &[f32]) -> f32 {
        self.trees.iter().map(|t| t.predict(row)).sum::<f32>() / self.trees.len() as f32
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rand_distr::{Distribution, Normal};

    /// Noisy piecewise function the forest must denoise.
    fn noisy_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = Normal::new(0.0f32, 0.3).unwrap();
        let rows: Vec<Vec<f32>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let ys: Vec<f32> = rows
            .iter()
            .map(|r| {
                let base = if r[0] > 0.5 { 2.0 } else { 0.0 } + r[1];
                base + noise.sample(&mut rng)
            })
            .collect();
        Dataset::from_rows(&rows, &ys)
    }

    fn mse_on(forest: &RandomForest, data: &Dataset) -> f32 {
        (0..data.len())
            .map(|i| {
                let d = forest.predict(data.row(i)) - data.target(i);
                d * d
            })
            .sum::<f32>()
            / data.len() as f32
    }

    #[test]
    fn beats_the_mean_baseline_out_of_sample() {
        let train = noisy_data(600, 1);
        let test = noisy_data(200, 2);
        let forest = RandomForest::fit(&train, &ForestConfig::default());
        let mse = mse_on(&forest, &test);
        let mean = train.target_mean();
        let base: f32 = (0..test.len())
            .map(|i| (test.target(i) - mean).powi(2))
            .sum::<f32>()
            / test.len() as f32;
        assert!(mse < base * 0.5, "forest mse {mse} vs baseline {base}");
    }

    #[test]
    fn averaging_reduces_variance_vs_single_tree() {
        let train = noisy_data(400, 3);
        let test = noisy_data(200, 4);
        let single = RandomForest::fit(
            &train,
            &ForestConfig {
                n_trees: 1,
                seed: 7,
                ..ForestConfig::default()
            },
        );
        let many = RandomForest::fit(
            &train,
            &ForestConfig {
                n_trees: 60,
                seed: 7,
                ..ForestConfig::default()
            },
        );
        assert!(mse_on(&many, &test) < mse_on(&single, &test));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = noisy_data(100, 5);
        let cfg = ForestConfig {
            n_trees: 8,
            seed: 42,
            ..ForestConfig::default()
        };
        let f1 = RandomForest::fit(&data, &cfg);
        let f2 = RandomForest::fit(&data, &cfg);
        assert_eq!(f1, f2, "parallel fit must still be deterministic");
    }

    #[test]
    fn tree_count_matches_config() {
        let data = noisy_data(50, 6);
        let f = RandomForest::fit(
            &data,
            &ForestConfig {
                n_trees: 5,
                ..Default::default()
            },
        );
        assert_eq!(f.n_trees(), 5);
    }
}
