//! Ensemble-learning baselines for the Mirage reproduction.
//!
//! §6 of the paper compares the RL provisioners against two classical
//! ensemble methods: Random Forest (\[7\]) and XGBoost (\[9\]). Both are
//! implemented here from scratch:
//!
//! * [`tree::RegressionTree`] — CART with variance-reduction splits,
//! * [`forest::RandomForest`] — bagging + feature subsampling, trained in
//!   parallel with rayon,
//! * [`gbdt::GradientBoosting`] — second-order boosting with XGBoost's
//!   regularized leaf weights and structure gain.

pub mod dataset;
pub mod forest;
pub mod gbdt;
pub mod tree;

pub use dataset::Dataset;
pub use forest::{ForestConfig, RandomForest};
pub use gbdt::{GbdtConfig, GradientBoosting};
pub use tree::{RegressionTree, TreeConfig};
