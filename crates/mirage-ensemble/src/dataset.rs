//! Flat row-major dataset for tree learners.

/// A dense feature matrix with one target per row.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<f32>,
    n_features: usize,
    targets: Vec<f32>,
}

impl Dataset {
    /// Builds a dataset from rows; all rows must share the same width.
    pub fn from_rows(rows: &[Vec<f32>], targets: &[f32]) -> Self {
        assert_eq!(rows.len(), targets.len(), "row/target count mismatch");
        let n_features = rows.first().map_or(0, |r| r.len());
        let mut features = Vec::with_capacity(rows.len() * n_features);
        for row in rows {
            assert_eq!(row.len(), n_features, "ragged feature rows");
            features.extend_from_slice(row);
        }
        Self {
            features,
            n_features,
            targets: targets.to_vec(),
        }
    }

    /// Number of samples.
    #[inline]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the dataset has no samples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Feature width.
    #[inline]
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Feature row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.n_features..(i + 1) * self.n_features]
    }

    /// Feature `f` of sample `i`.
    #[inline]
    pub fn feature(&self, i: usize, f: usize) -> f32 {
        self.features[i * self.n_features + f]
    }

    /// Target of sample `i`.
    #[inline]
    pub fn target(&self, i: usize) -> f32 {
        self.targets[i]
    }

    /// All targets.
    #[inline]
    pub fn targets(&self) -> &[f32] {
        &self.targets
    }

    /// Mean target (the 0-rule baseline).
    pub fn target_mean(&self) -> f32 {
        if self.targets.is_empty() {
            0.0
        } else {
            self.targets.iter().sum::<f32>() / self.targets.len() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let d = Dataset::from_rows(
            &[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
            &[10.0, 20.0, 30.0],
        );
        assert_eq!(d.len(), 3);
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.row(1), &[3.0, 4.0]);
        assert_eq!(d.feature(2, 1), 6.0);
        assert_eq!(d.target(0), 10.0);
        assert!((d.target_mean() - 20.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = Dataset::from_rows(&[vec![1.0], vec![1.0, 2.0]], &[0.0, 0.0]);
    }

    #[test]
    fn empty_dataset() {
        let d = Dataset::from_rows(&[], &[]);
        assert!(d.is_empty());
        assert_eq!(d.target_mean(), 0.0);
    }
}
