//! Gradient-boosted decision trees, XGBoost-style (\[9\] in the paper).
//!
//! Second-order boosting for squared loss: each round fits a tree to the
//! gradient/hessian statistics of the current ensemble, with XGBoost's
//! regularized leaf weights `w* = −G/(H+λ)` and structure gain
//! `½[G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)] − γ`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Boosting rounds (trees).
    pub n_rounds: usize,
    /// Shrinkage (learning rate η).
    pub learning_rate: f32,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum hessian mass per leaf (with squared loss ≙ sample count).
    pub min_child_weight: f32,
    /// L2 regularization on leaf weights (λ).
    pub lambda: f32,
    /// Minimum gain to keep a split (γ).
    pub gamma: f32,
    /// Row subsample fraction per round.
    pub subsample: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 80,
            learning_rate: 0.15,
            max_depth: 5,
            min_child_weight: 2.0,
            lambda: 1.0,
            gamma: 0.0,
            subsample: 0.9,
            seed: 0,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum BNode {
    Leaf {
        weight: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: u32,
        right: u32,
    },
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BoostTree {
    nodes: Vec<BNode>,
}

impl BoostTree {
    fn predict(&self, row: &[f32]) -> f32 {
        let mut i = 0u32;
        loop {
            match &self.nodes[i as usize] {
                BNode::Leaf { weight } => return *weight,
                BNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// A fitted gradient-boosting model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoosting {
    base: f32,
    learning_rate: f32,
    trees: Vec<BoostTree>,
}

impl GradientBoosting {
    /// Fits `cfg.n_rounds` boosted trees on `data` with squared loss.
    pub fn fit(data: &Dataset, cfg: &GbdtConfig) -> Self {
        assert!(!data.is_empty(), "cannot boost on zero samples");
        let n = data.len();
        let base = data.target_mean();
        let mut pred = vec![base; n];
        let mut trees = Vec::with_capacity(cfg.n_rounds);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for _ in 0..cfg.n_rounds {
            // Squared loss: g_i = pred − y, h_i = 1.
            let grad: Vec<f32> = (0..n).map(|i| pred[i] - data.target(i)).collect();
            let hess = vec![1.0f32; n];
            let idx: Vec<usize> = if cfg.subsample < 1.0 {
                (0..n)
                    .filter(|_| rng.gen::<f64>() < cfg.subsample)
                    .collect()
            } else {
                (0..n).collect()
            };
            if idx.is_empty() {
                continue;
            }
            let mut nodes = Vec::new();
            let mut scratch = idx;
            grow(data, &grad, &hess, &mut scratch, 0, cfg, &mut nodes);
            let tree = BoostTree { nodes };
            for (i, p) in pred.iter_mut().enumerate() {
                *p += cfg.learning_rate * tree.predict(data.row(i));
            }
            trees.push(tree);
        }
        Self {
            base,
            learning_rate: cfg.learning_rate,
            trees,
        }
    }

    /// Predicts one feature row.
    pub fn predict(&self, row: &[f32]) -> f32 {
        self.base + self.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f32>()
    }

    /// Number of boosted trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Training MSE trajectory helper: prediction using only the first
    /// `rounds` trees (for monotone-improvement tests and ablations).
    pub fn predict_truncated(&self, row: &[f32], rounds: usize) -> f32 {
        self.base
            + self.learning_rate
                * self
                    .trees
                    .iter()
                    .take(rounds)
                    .map(|t| t.predict(row))
                    .sum::<f32>()
    }
}

/// Grows one boosted tree over `idx`; returns the node id.
fn grow(
    data: &Dataset,
    grad: &[f32],
    hess: &[f32],
    idx: &mut [usize],
    depth: usize,
    cfg: &GbdtConfig,
    nodes: &mut Vec<BNode>,
) -> u32 {
    let g: f32 = idx.iter().map(|&i| grad[i]).sum();
    let h: f32 = idx.iter().map(|&i| hess[i]).sum();
    let leaf_weight = -g / (h + cfg.lambda);
    if depth >= cfg.max_depth || idx.len() < 2 {
        nodes.push(BNode::Leaf {
            weight: leaf_weight,
        });
        return (nodes.len() - 1) as u32;
    }
    let parent_score = g * g / (h + cfg.lambda);
    let mut best: Option<(f32, usize, f32)> = None; // (gain, feature, thr)
    let mut order: Vec<usize> = Vec::with_capacity(idx.len());
    for f in 0..data.n_features() {
        order.clear();
        order.extend_from_slice(idx);
        order.sort_by(|&a, &b| {
            data.feature(a, f)
                .partial_cmp(&data.feature(b, f))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut gl = 0.0f32;
        let mut hl = 0.0f32;
        for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
            gl += grad[i];
            hl += hess[i];
            let gr = g - gl;
            let hr = h - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let xv = data.feature(i, f);
            let xn = data.feature(order[k + 1], f);
            if xv == xn {
                continue;
            }
            let gain = 0.5
                * (gl * gl / (hl + cfg.lambda) + gr * gr / (hr + cfg.lambda) - parent_score)
                - cfg.gamma;
            if gain > best.map_or(0.0, |(b, _, _)| b) {
                best = Some((gain, f, 0.5 * (xv + xn)));
            }
        }
    }
    let Some((_, feature, threshold)) = best else {
        nodes.push(BNode::Leaf {
            weight: leaf_weight,
        });
        return (nodes.len() - 1) as u32;
    };
    let mid = {
        let mut m = 0;
        for i in 0..idx.len() {
            if data.feature(idx[i], feature) <= threshold {
                idx.swap(i, m);
                m += 1;
            }
        }
        m
    };
    if mid == 0 || mid == idx.len() {
        nodes.push(BNode::Leaf {
            weight: leaf_weight,
        });
        return (nodes.len() - 1) as u32;
    }
    let me = nodes.len() as u32;
    nodes.push(BNode::Leaf {
        weight: leaf_weight,
    });
    let (l_idx, r_idx) = idx.split_at_mut(mid);
    let left = grow(data, grad, hess, l_idx, depth + 1, cfg, nodes);
    let right = grow(data, grad, hess, r_idx, depth + 1, cfg, nodes);
    nodes[me as usize] = BNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    me
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 / n as f32 * 6.0]).collect();
        let ys: Vec<f32> = rows.iter().map(|r| r[0].sin()).collect();
        Dataset::from_rows(&rows, &ys)
    }

    fn mse_on(model: &GradientBoosting, data: &Dataset) -> f32 {
        (0..data.len())
            .map(|i| (model.predict(data.row(i)) - data.target(i)).powi(2))
            .sum::<f32>()
            / data.len() as f32
    }

    #[test]
    fn fits_a_sine_wave() {
        let data = sine_data(300);
        let model = GradientBoosting::fit(&data, &GbdtConfig::default());
        let mse = mse_on(&model, &data);
        assert!(mse < 0.01, "mse = {mse}");
    }

    #[test]
    fn more_rounds_monotonically_improve_training_fit() {
        let data = sine_data(200);
        let cfg = GbdtConfig {
            n_rounds: 40,
            subsample: 1.0,
            ..GbdtConfig::default()
        };
        let model = GradientBoosting::fit(&data, &cfg);
        let mse_at = |rounds: usize| -> f32 {
            (0..data.len())
                .map(|i| (model.predict_truncated(data.row(i), rounds) - data.target(i)).powi(2))
                .sum::<f32>()
                / data.len() as f32
        };
        let e5 = mse_at(5);
        let e20 = mse_at(20);
        let e40 = mse_at(40);
        assert!(e20 < e5, "{e20} !< {e5}");
        assert!(e40 <= e20, "{e40} !<= {e20}");
    }

    #[test]
    fn zero_rounds_predicts_the_mean() {
        let data = sine_data(50);
        let cfg = GbdtConfig {
            n_rounds: 0,
            ..GbdtConfig::default()
        };
        let model = GradientBoosting::fit(&data, &cfg);
        assert_eq!(model.n_trees(), 0);
        assert!((model.predict(&[1.0]) - data.target_mean()).abs() < 1e-6);
    }

    #[test]
    fn heavy_regularization_shrinks_leaves() {
        let data = sine_data(100);
        let loose = GradientBoosting::fit(
            &data,
            &GbdtConfig {
                n_rounds: 5,
                lambda: 0.0001,
                subsample: 1.0,
                ..Default::default()
            },
        );
        let tight = GradientBoosting::fit(
            &data,
            &GbdtConfig {
                n_rounds: 5,
                lambda: 100.0,
                subsample: 1.0,
                ..Default::default()
            },
        );
        // With huge λ the model barely moves from the base prediction.
        let spread = |m: &GradientBoosting| -> f32 {
            (0..data.len())
                .map(|i| (m.predict(data.row(i)) - data.target_mean()).abs())
                .sum::<f32>()
        };
        assert!(spread(&tight) < spread(&loose) * 0.5);
    }

    #[test]
    fn gamma_prunes_splits() {
        let data = sine_data(100);
        let no_gamma = GradientBoosting::fit(
            &data,
            &GbdtConfig {
                n_rounds: 3,
                gamma: 0.0,
                subsample: 1.0,
                ..Default::default()
            },
        );
        let big_gamma = GradientBoosting::fit(
            &data,
            &GbdtConfig {
                n_rounds: 3,
                gamma: 1e6,
                subsample: 1.0,
                ..Default::default()
            },
        );
        let count_nodes =
            |m: &GradientBoosting| -> usize { m.trees.iter().map(|t| t.nodes.len()).sum() };
        assert!(count_nodes(&big_gamma) < count_nodes(&no_gamma));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = sine_data(120);
        let cfg = GbdtConfig {
            seed: 11,
            ..GbdtConfig::default()
        };
        assert_eq!(
            GradientBoosting::fit(&data, &cfg),
            GradientBoosting::fit(&data, &cfg)
        );
    }

    #[test]
    fn generalizes_on_two_feature_interaction() {
        // y = x0 XOR-ish interaction: needs depth ≥ 2.
        let rows: Vec<Vec<f32>> = (0..400)
            .map(|i| vec![(i % 20) as f32 / 20.0, (i / 20) as f32 / 20.0])
            .collect();
        let ys: Vec<f32> = rows
            .iter()
            .map(|r| {
                if (r[0] > 0.5) ^ (r[1] > 0.5) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let data = Dataset::from_rows(&rows, &ys);
        let model = GradientBoosting::fit(&data, &GbdtConfig::default());
        let mse = mse_on(&model, &data);
        assert!(mse < 0.05, "mse = {mse}");
    }
}
