//! CART regression tree with variance-reduction splits.
//!
//! The building block for the Random Forest baseline (\[7\] in the paper).
//! Splits greedily minimize the weighted child variance; leaves predict the
//! sample mean.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Tree growth limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples required to consider splitting a node.
    pub min_samples_split: usize,
    /// Features examined per split; `None` = all (set by the forest for
    /// feature bagging).
    pub feature_subsample: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 8,
            min_samples_leaf: 2,
            min_samples_split: 4,
            feature_subsample: None,
        }
    }
}

/// Arena node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: u32,
        right: u32,
    },
}

/// A fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree on the sample indices `idx` of `data`.
    pub fn fit_indices(
        data: &Dataset,
        idx: &[usize],
        cfg: &TreeConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!idx.is_empty(), "cannot fit a tree on zero samples");
        let mut nodes = Vec::new();
        let mut scratch: Vec<usize> = idx.to_vec();
        build(data, &mut scratch, 0, cfg, rng, &mut nodes);
        Self { nodes }
    }

    /// Fits a tree on the whole dataset.
    pub fn fit(data: &Dataset, cfg: &TreeConfig, rng: &mut impl Rng) -> Self {
        let idx: Vec<usize> = (0..data.len()).collect();
        Self::fit_indices(data, &idx, cfg, rng)
    }

    /// Predicts one feature row.
    pub fn predict(&self, row: &[f32]) -> f32 {
        let mut i = 0u32;
        loop {
            match &self.nodes[i as usize] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Node count (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth actually reached (diagnostic).
    pub fn depth(&self) -> usize {
        fn walk(nodes: &[Node], i: u32) -> usize {
            match &nodes[i as usize] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + walk(nodes, *left).max(walk(nodes, *right)),
            }
        }
        walk(&self.nodes, 0)
    }
}

/// Recursively builds the subtree over `idx`, returning its node id.
fn build(
    data: &Dataset,
    idx: &mut [usize],
    depth: usize,
    cfg: &TreeConfig,
    rng: &mut impl Rng,
    nodes: &mut Vec<Node>,
) -> u32 {
    let mean = mean_of(data, idx);
    if depth >= cfg.max_depth || idx.len() < cfg.min_samples_split {
        nodes.push(Node::Leaf { value: mean });
        return (nodes.len() - 1) as u32;
    }
    let Some((feature, threshold)) = best_split(data, idx, cfg, rng) else {
        nodes.push(Node::Leaf { value: mean });
        return (nodes.len() - 1) as u32;
    };
    // Partition in place.
    let mid = partition(data, idx, feature, threshold);
    if mid == 0 || mid == idx.len() {
        nodes.push(Node::Leaf { value: mean });
        return (nodes.len() - 1) as u32;
    }
    let me = nodes.len() as u32;
    nodes.push(Node::Leaf { value: mean }); // placeholder, patched below
    let (l_idx, r_idx) = idx.split_at_mut(mid);
    let left = build(data, l_idx, depth + 1, cfg, rng, nodes);
    let right = build(data, r_idx, depth + 1, cfg, rng, nodes);
    nodes[me as usize] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    me
}

fn mean_of(data: &Dataset, idx: &[usize]) -> f32 {
    idx.iter().map(|&i| data.target(i)).sum::<f32>() / idx.len() as f32
}

fn partition(data: &Dataset, idx: &mut [usize], feature: usize, threshold: f32) -> usize {
    let mut mid = 0;
    for i in 0..idx.len() {
        if data.feature(idx[i], feature) <= threshold {
            idx.swap(i, mid);
            mid += 1;
        }
    }
    mid
}

/// Finds the variance-minimizing `(feature, threshold)` over `idx`, or
/// `None` if no admissible split improves on the parent.
fn best_split(
    data: &Dataset,
    idx: &[usize],
    cfg: &TreeConfig,
    rng: &mut impl Rng,
) -> Option<(usize, f32)> {
    let n = idx.len() as f32;
    let total_sum: f32 = idx.iter().map(|&i| data.target(i)).sum();
    let total_sq: f32 = idx.iter().map(|&i| data.target(i) * data.target(i)).sum();
    let parent_sse = total_sq - total_sum * total_sum / n;

    let mut features: Vec<usize> = (0..data.n_features()).collect();
    if let Some(k) = cfg.feature_subsample {
        features.shuffle(rng);
        features.truncate(k.max(1).min(features.len()));
    }

    let mut best: Option<(f32, usize, f32)> = None; // (sse, feature, threshold)
    let mut order: Vec<usize> = Vec::with_capacity(idx.len());
    for &f in &features {
        order.clear();
        order.extend_from_slice(idx);
        order.sort_by(|&a, &b| {
            data.feature(a, f)
                .partial_cmp(&data.feature(b, f))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut left_sum = 0.0f32;
        let mut left_sq = 0.0f32;
        for (k, &i) in order.iter().enumerate().take(order.len() - 1) {
            let y = data.target(i);
            left_sum += y;
            left_sq += y * y;
            let nl = (k + 1) as f32;
            let nr = n - nl;
            if (k + 1) < cfg.min_samples_leaf || (order.len() - k - 1) < cfg.min_samples_leaf {
                continue;
            }
            let xv = data.feature(i, f);
            let xn = data.feature(order[k + 1], f);
            if xv == xn {
                continue; // cannot split between equal values
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse =
                (left_sq - left_sum * left_sum / nl) + (right_sq - right_sum * right_sum / nr);
            if best.map_or(sse < parent_sse - 1e-9, |(b, _, _)| sse < b) {
                best = Some((sse, f, 0.5 * (xv + xn)));
            }
        }
    }
    best.map(|(_, f, t)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn step_data(n: usize) -> Dataset {
        // y = 1 if x0 > 0.5 else 0 — one split solves it.
        let rows: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32 / n as f32, 0.0]).collect();
        let ys: Vec<f32> = rows
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        Dataset::from_rows(&rows, &ys)
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let data = step_data(100);
        let mut rng = StdRng::seed_from_u64(0);
        let tree = RegressionTree::fit(&data, &TreeConfig::default(), &mut rng);
        for i in 0..data.len() {
            assert_eq!(tree.predict(data.row(i)), data.target(i));
        }
    }

    #[test]
    fn depth_zero_gives_mean_leaf() {
        let data = step_data(10);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TreeConfig {
            max_depth: 0,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&data, &cfg, &mut rng);
        assert_eq!(tree.node_count(), 1);
        let mean = data.target_mean();
        assert!((tree.predict(data.row(0)) - mean).abs() < 1e-6);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let data = step_data(20);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TreeConfig {
            min_samples_leaf: 10,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&data, &cfg, &mut rng);
        // With min leaf = 10 on 20 samples only the midpoint split works.
        assert!(tree.depth() <= 1);
    }

    #[test]
    fn constant_targets_need_no_split() {
        let rows: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32]).collect();
        let ys = vec![5.0; 10];
        let data = Dataset::from_rows(&rows, &ys);
        let mut rng = StdRng::seed_from_u64(0);
        let tree = RegressionTree::fit(&data, &TreeConfig::default(), &mut rng);
        assert_eq!(tree.node_count(), 1, "no split improves on a constant");
        assert_eq!(tree.predict(&[3.0]), 5.0);
    }

    #[test]
    fn learns_quadratic_within_tolerance() {
        let rows: Vec<Vec<f32>> = (0..200).map(|i| vec![i as f32 / 200.0]).collect();
        let ys: Vec<f32> = rows.iter().map(|r| r[0] * r[0]).collect();
        let data = Dataset::from_rows(&rows, &ys);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = TreeConfig {
            max_depth: 6,
            ..TreeConfig::default()
        };
        let tree = RegressionTree::fit(&data, &cfg, &mut rng);
        let mse: f32 = (0..data.len())
            .map(|i| {
                let d = tree.predict(data.row(i)) - data.target(i);
                d * d
            })
            .sum::<f32>()
            / data.len() as f32;
        assert!(mse < 1e-3, "mse = {mse}");
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let data = step_data(50);
        let cfg = TreeConfig {
            feature_subsample: Some(1),
            ..TreeConfig::default()
        };
        let t1 = RegressionTree::fit(&data, &cfg, &mut StdRng::seed_from_u64(9));
        let t2 = RegressionTree::fit(&data, &cfg, &mut StdRng::seed_from_u64(9));
        assert_eq!(t1, t2);
    }
}
