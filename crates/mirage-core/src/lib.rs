//! Mirage — the proactive resource provisioner (the paper's primary
//! contribution).
//!
//! Given a chain of wall-clock-limited sub-jobs on a batch GPU cluster,
//! Mirage decides *when* to submit each successor sub-job so that it
//! starts right as its predecessor ends, minimizing service interruption
//! at a controlled overlap cost. This crate assembles the substrates into
//! the full system:
//!
//! * [`state`] — the §4.1 40-variable state encoding and the `k × m`
//!   state-matrix history,
//! * [`reward`] — the §4.5 interruption/overlap reward with the
//!   user-configurable `e_I`/`e_O` coefficients,
//! * [`episode`] — the provisioning-episode driver over the Slurm
//!   simulator (submit / no-submit every decision interval),
//! * [`policy`] — the eight §6 methods behind one trait,
//! * [`features`] — compact features for the ensemble baselines,
//! * [`train`] — §4.9 offline collection + foundation pretraining +
//!   online RL fine-tuning,
//! * [`eval`] — the §6 evaluation harness (load levels, zero-interruption
//!   fractions, reduction vs reactive),
//! * [`chain`] — whole-chain provisioning (§4.1's rolling
//!   predecessor–successor pairs),
//! * [`tune`] — deterministic hyperparameter grid search (the RayTune
//!   substitution).

pub mod chain;
pub mod episode;
pub mod eval;
pub mod features;
pub mod policy;
pub mod reward;
pub mod state;
pub mod train;
pub mod tune;

pub use chain::{chain_stretch, provision_chain, ChainResult, ChainSummary};
pub use episode::{run_episode, Action, DecisionContext, EpisodeConfig, EpisodeResult};
pub use eval::{evaluate, EvalConfig, EvalReport, LoadLevel, MethodSummary};
pub use policy::{
    AvgWaitPolicy, DqnPolicy, PgPolicy, ProvisionPolicy, ReactivePolicy, WaitModel,
    WaitPredictorPolicy,
};
pub use reward::{EpisodeOutcome, RewardShaper};
pub use state::{PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS};
pub use train::{
    collect_offline, sample_episode_starts, sample_training_starts, train_method, MethodKind,
    OfflineData, TrainConfig,
};
pub use tune::{grid_search, Candidate, TuneGrid, TuneResult};

/// Convenience imports.
pub mod prelude {
    pub use crate::episode::{run_episode, Action, DecisionContext, EpisodeConfig, EpisodeResult};
    pub use crate::eval::{evaluate, EvalConfig, EvalReport, LoadLevel, MethodSummary};
    pub use crate::policy::{
        AvgWaitPolicy, DqnPolicy, PgPolicy, ProvisionPolicy, ReactivePolicy, WaitPredictorPolicy,
    };
    pub use crate::reward::{EpisodeOutcome, RewardShaper};
    pub use crate::state::{StateEncoder, StateHistory, STATE_VARS};
    pub use crate::train::{collect_offline, train_method, MethodKind, TrainConfig};
}
