//! Mirage — the proactive resource provisioner (the paper's primary
//! contribution), generic over any simulation backend.
//!
//! Given a chain of wall-clock-limited sub-jobs on a batch GPU cluster,
//! Mirage decides *when* to submit each successor sub-job so that it
//! starts right as its predecessor ends, minimizing service interruption
//! at a controlled overlap cost.
//!
//! Everything that drives a cluster here is generic over
//! `B: mirage_sim::ClusterBackend`: the same episode driver, evaluation
//! harness and training pipelines run against the fast event-driven
//! simulator, the tick-driven reference simulator, or any future backend —
//! selected by value via `SimConfig::builder()`:
//!
//! ```no_run
//! use mirage_core::episode::{run_episode, Action, EpisodeConfig};
//! use mirage_sim::{BackendKind, ClusterBackend, SimConfig};
//!
//! fn first_decision_count<B: ClusterBackend>(backend: &mut B) -> usize {
//!     let cfg = EpisodeConfig::default();
//!     let result = run_episode(backend, &[], &cfg, 86_400, |ctx| {
//!         if ctx.pred_started && ctx.pred_remaining <= 3_600 {
//!             Action::Submit
//!         } else {
//!             Action::Wait
//!         }
//!     });
//!     result.decisions.len()
//! }
//!
//! // The same provisioning code against either simulator:
//! let mut fast = SimConfig::builder().nodes(8).build();
//! let mut tick = SimConfig::builder().nodes(8).backend(BackendKind::Tick).build();
//! let _ = first_decision_count(&mut fast);
//! let _ = first_decision_count(&mut tick);
//! ```
//!
//! This crate assembles the substrates into the full system:
//!
//! * [`state`] — the §4.1 state encoding (40 paper variables plus the
//!   flag-gated fault and pool extensions) and the `k × m`
//!   state-matrix history,
//! * [`reward`] — the §4.5 interruption/overlap reward with the
//!   user-configurable `e_I`/`e_O` coefficients,
//! * [`episode`] — the provisioning-episode driver over any backend
//!   (submit / no-submit every decision interval), as a closure loop
//!   ([`run_episode`]) or an explicit state machine
//!   ([`episode::EpisodeDriver`]),
//! * [`batch`] — the batched episode engine: N episodes stepped in
//!   lockstep with one batched NN forward per decision tick
//!   ([`batch::BatchedEpisodeDriver`]),
//! * [`multiservice`] — N concurrent services with heterogeneous SLOs
//!   sharing one cluster: traffic-driven demand, a shared-cluster
//!   stampede-aware reward, lockstep services × episodes batching and
//!   the multi-service baselines ([`multiservice::MultiServiceEnv`]),
//! * [`gym`] — the same episodes behind `mirage-rl`'s Gym-style
//!   `Environment` interface,
//! * [`policy`] — the eight §6 methods behind one trait,
//! * [`features`] — compact features for the ensemble baselines,
//! * [`train`] — §4.9 offline collection + foundation pretraining +
//!   online RL fine-tuning,
//! * [`trainloop`] — the lockstep training data-path: offline collection
//!   and both online loops step `TrainConfig::collect_lanes` episodes per
//!   window through the batched engine
//!   ([`trainloop::BatchedCollector`]),
//! * [`eval`] — the §6 evaluation harness (load levels, zero-interruption
//!   fractions, reduction vs reactive),
//! * [`chaos`] — degradation under fault injection: RL vs heuristics on
//!   identically seeded crash tapes across a none/moderate/severe sweep,
//! * [`hetero`] — heterogeneous-cluster evaluation: RL vs the classic
//!   FCFS/SJF/shortest-queue/pool-greedy baselines on identically seeded
//!   pool scenarios (balanced and scarce accelerator tiers),
//! * [`checkpoint`] — crash-safe training checkpoints: full online
//!   training state (weights, optimizer moments, replay, RNG streams,
//!   ε clock, episode counter) snapshotted atomically and resumable bit
//!   for bit,
//! * [`chain`] — whole-chain provisioning (§4.1's rolling
//!   predecessor–successor pairs),
//! * [`tune`] — deterministic hyperparameter grid search (the RayTune
//!   substitution).

pub mod batch;
pub mod chain;
pub mod chaos;
pub mod checkpoint;
pub mod episode;
pub mod eval;
pub mod features;
pub mod gym;
pub mod hetero;
pub mod multiservice;
pub mod policy;
pub mod reward;
pub mod state;
pub mod train;
pub mod trainloop;
pub mod tune;

pub use batch::{run_episodes_batched, BatchPolicy, BatchedEpisodeDriver, LanePolicy};
pub use chain::{chain_stretch, provision_chain, ChainResult, ChainSummary};
pub use chaos::{
    evaluate_chaos, ChaosConfig, ChaosLane, ChaosMethodSummary, ChaosReport, ChaosSeverity,
};
pub use checkpoint::{
    CheckpointConfig, DqnTrainCheckpoint, PgTrainCheckpoint, ResumeError, KIND_DQN_TRAIN,
    KIND_PG_TRAIN,
};
pub use episode::{
    run_episode, Action, DecisionContext, EpisodeConfig, EpisodeDriver, EpisodeResult,
};
pub use eval::{evaluate, EvalConfig, EvalReport, LoadLevel, MethodSummary};
pub use gym::ProvisionEnv;
pub use hetero::{
    classic_baselines, evaluate_hetero, HeteroConfig, HeteroLane, HeteroMethodSummary,
    HeteroReport, HeteroScenario,
};
pub use multiservice::{
    bursty_scenario, diurnal_scenario, evaluate_multiservice, ExploringRlPolicy,
    GreedyPerServicePolicy, MultiMethodSummary, MultiServiceBatch, MultiServiceConfig,
    MultiServiceEnv, MultiServicePolicy, MultiServiceReport, MultiServiceResult, RlServicePolicy,
    ServiceEpisode, ServiceSlo, ServiceSpec, ShortestQueuePolicy, SlotContext, UniformSharePolicy,
};
// `policy::ShortestQueuePolicy` (the submit-timing baseline) stays
// path-qualified: the crate root already exports the multi-service node
// allocator of the same name.
pub use policy::{
    AvgWaitPolicy, DqnPolicy, FcfsPolicy, GuardedDqnPolicy, GuardedPgPolicy, PgPolicy,
    PoolGreedyPolicy, ProvisionPolicy, ReactivePolicy, SjfPolicy, WaitModel, WaitPredictorPolicy,
};
pub use reward::{EpisodeOutcome, RewardShaper};
pub use state::{PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS};
pub use train::{
    collect_offline, sample_episode_starts, sample_training_starts, train_dqn_online_checkpointed,
    train_method, train_pg_online_checkpointed, DqnTrainRun, MethodKind, OfflineData, PgTrainRun,
    TrainConfig,
};
pub use trainloop::{BatchedCollector, DqnActWindow, PgActWindow, SplitCollectPolicy};
pub use tune::{grid_search, Candidate, TuneGrid, TuneResult};

/// Convenience imports.
pub mod prelude {
    pub use crate::chaos::{evaluate_chaos, ChaosConfig, ChaosReport, ChaosSeverity};
    pub use crate::episode::{
        run_episode, Action, DecisionContext, EpisodeConfig, EpisodeDriver, EpisodeResult,
    };
    pub use crate::eval::{evaluate, EvalConfig, EvalReport, LoadLevel, MethodSummary};
    pub use crate::gym::ProvisionEnv;
    pub use crate::hetero::{
        classic_baselines, evaluate_hetero, HeteroConfig, HeteroReport, HeteroScenario,
    };
    pub use crate::multiservice::{
        bursty_scenario, diurnal_scenario, evaluate_multiservice, MultiServiceBatch,
        MultiServiceConfig, MultiServiceEnv, MultiServicePolicy, MultiServiceReport, ServiceSlo,
        ServiceSpec,
    };
    pub use crate::policy::{
        AvgWaitPolicy, DqnPolicy, PgPolicy, ProvisionPolicy, ReactivePolicy, WaitPredictorPolicy,
    };
    pub use crate::reward::{EpisodeOutcome, RewardShaper};
    pub use crate::state::{StateEncoder, StateHistory, STATE_VARS};
    pub use crate::train::{collect_offline, train_method, MethodKind, TrainConfig};
}
