//! Crash-safe training checkpoints: full online-training state snapshots
//! on a configurable cadence, resumable bit for bit.
//!
//! A checkpoint captures **everything** the online loops thread through
//! an episode chunk — network parameters, Adam moments, the replay rings
//! (DQN) or pending REINFORCE batch (PG), the replay-sampling RNG
//! stream, the global ε clock (`agent.steps`) and the episode counter —
//! so `resume_from` continues the exact run the crash interrupted:
//! resume-at-episode-*k* is bit-identical to the uninterrupted run
//! (weights, replay contents and episode outcomes), pinned by
//! `tests/crash_resume.rs` in the same style as the lockstep pins.
//!
//! # What is *not* stored, and why that is sound
//!
//! Checkpoints are written only at **chunk boundaries** of the lockstep
//! [`BatchedCollector`](crate::trainloop::BatchedCollector). At a
//! boundary every per-lane exploration stream is dead: lanes are rebuilt
//! fresh at the top of each chunk from
//! `ExploreLane::seeded(dqn_episode_seed(cfg.seed, i), agent.steps)`
//! (and the PG analogue), i.e. they are a pure function of the config
//! seed, the episode ordinal and the saved ε clock. Persisting the
//! episode counter and `agent.steps` therefore persists the per-lane RNG
//! streams *by construction* — no mid-episode lane state exists to lose.
//!
//! # Format
//!
//! The payload is a little-endian binary encoding (this module), sealed
//! in the versioned, CRC-checked `MIRAGECKPT` envelope of
//! [`mirage_nn::serialize`] and written atomically (temp file + fsync +
//! rename), so a crash mid-write leaves the previous checkpoint intact
//! and a torn or corrupted file is a typed [`CheckpointError`], never a
//! silently-wrong resume.

use std::path::{Path, PathBuf};

use mirage_nn::serialize::{seal, unseal, write_atomic};
use mirage_nn::{CheckpointError, Matrix};
use mirage_rl::{DqnAgentState, EpisodeSample, Experience, PgAgentState, ReplayBuffer};

use crate::episode::EpisodeResult;
use crate::reward::EpisodeOutcome;

/// Envelope kind tag of a DQN training-state checkpoint.
pub const KIND_DQN_TRAIN: &str = "DQNS";
/// Envelope kind tag of a PG training-state checkpoint.
pub const KIND_PG_TRAIN: &str = "PGST";

/// When and where the online loops snapshot their state.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Checkpoint file (atomically replaced on every save).
    pub path: PathBuf,
    /// Save once at least this many episodes completed since the last
    /// save, rounded up to the next lockstep chunk boundary (saves only
    /// happen between chunks). `0` disables periodic saves.
    pub every_episodes: usize,
    /// Deterministic stop hook for crash drills: return early right
    /// after the first checkpoint written at `episodes ≥ halt_after`
    /// (forcing a save at that boundary if the cadence missed it). The
    /// CI `crash_resume_smoke` uses this to "crash" a run at a known
    /// boundary without process gymnastics.
    pub halt_after: Option<usize>,
}

impl CheckpointConfig {
    /// Snapshot to `path` every `every_episodes` episodes, no halt hook.
    pub fn every(path: impl Into<PathBuf>, every_episodes: usize) -> Self {
        Self {
            path: path.into(),
            every_episodes,
            halt_after: None,
        }
    }
}

/// Why a resume was refused.
#[derive(Debug)]
pub enum ResumeError {
    /// The checkpoint file is unreadable, corrupt, truncated or of the
    /// wrong kind/version (the serializer layer's typed error).
    Checkpoint(CheckpointError),
    /// The checkpoint is internally valid but was written by a run with
    /// a different configuration; resuming it would silently diverge.
    ConfigMismatch {
        /// Which run parameter disagrees.
        field: &'static str,
        /// The value the checkpointed run used.
        saved: String,
        /// The value the resuming run is configured with.
        current: String,
    },
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Checkpoint(e) => write!(f, "cannot resume: {e}"),
            ResumeError::ConfigMismatch {
                field,
                saved,
                current,
            } => write!(
                f,
                "cannot resume: checkpoint was written with {field} = {saved}, \
                 this run has {field} = {current}"
            ),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Checkpoint(e) => Some(e),
            ResumeError::ConfigMismatch { .. } => None,
        }
    }
}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        ResumeError::Checkpoint(e)
    }
}

/// Full state of an interrupted [`train_dqn_online`]
/// (`crate::train::train_dqn_online`) run at a chunk boundary.
#[derive(Debug, Clone)]
pub struct DqnTrainCheckpoint {
    /// `TrainConfig::seed` of the run (validated on resume).
    pub cfg_seed: u64,
    /// Lockstep lane count **per training worker** of the run (validated
    /// on resume: chunk boundaries move with it).
    pub lanes: u64,
    /// Synchronized training worker count (W) of the run (validated on
    /// resume: the chunk width is `lanes × workers`, and per-lane seed
    /// streams are laid out per worker).
    pub workers: u64,
    /// Agent snapshot: weights, target, Adam moments, ε/train clocks.
    pub agent: DqnAgentState,
    /// Wait-class replay ring (capacity, write cursor, slots).
    pub replay_wait: (u64, u64, Vec<Experience>),
    /// Submit-class replay ring.
    pub replay_submit: (u64, u64, Vec<Experience>),
    /// The replay-sampling RNG stream (xoshiro256++ state words).
    pub rng: [u64; 4],
    /// Episode records completed so far (decision trajectories already
    /// drained into the replay, as in the live loop).
    pub episodes: Vec<EpisodeResult>,
}

/// Full state of an interrupted `train_pg_online` run at a chunk
/// boundary.
#[derive(Debug, Clone)]
pub struct PgTrainCheckpoint {
    /// `TrainConfig::seed` of the run (validated on resume).
    pub cfg_seed: u64,
    /// Lockstep lane count **per training worker** of the run (validated
    /// on resume).
    pub lanes: u64,
    /// Synchronized training worker count (W) of the run (validated on
    /// resume).
    pub workers: u64,
    /// Agent snapshot: weights, Adam moments, baseline, episode clock.
    pub agent: PgAgentState,
    /// Collected episodes not yet folded into a REINFORCE update (the
    /// chunk boundary can fall mid-batch).
    pub pending: Vec<EpisodeSample>,
    /// Episode records completed so far.
    pub episodes: Vec<EpisodeResult>,
}

// ---------------------------------------------------------------------
// Little-endian binary codec.

struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        Self { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn matrix(&mut self, m: &Matrix) {
        self.u64(m.rows() as u64);
        self.u64(m.cols() as u64);
        for &v in m.data() {
            self.f32(v);
        }
    }

    fn opt_matrix(&mut self, m: Option<&Matrix>) {
        match m {
            Some(m) => {
                self.bool(true);
                self.matrix(m);
            }
            None => self.bool(false),
        }
    }

    fn matrices(&mut self, ms: &[Matrix]) {
        self.u64(ms.len() as u64);
        for m in ms {
            self.matrix(m);
        }
    }

    fn opt_matrices(&mut self, ms: &[Option<Matrix>]) {
        self.u64(ms.len() as u64);
        for m in ms {
            self.opt_matrix(m.as_ref());
        }
    }

    fn experience(&mut self, e: &Experience) {
        self.matrix(&e.state);
        self.u64(e.action as u64);
        self.f32(e.reward);
        self.opt_matrix(e.next_state.as_ref());
        self.bool(e.done);
    }

    fn ring(&mut self, ring: &(u64, u64, Vec<Experience>)) {
        self.u64(ring.0);
        self.u64(ring.1);
        self.u64(ring.2.len() as u64);
        for e in &ring.2 {
            self.experience(e);
        }
    }

    fn decisions(&mut self, ds: &[(Matrix, usize)]) {
        self.u64(ds.len() as u64);
        for (m, a) in ds {
            self.matrix(m);
            self.u64(*a as u64);
        }
    }

    fn episode_result(&mut self, r: &EpisodeResult) {
        self.i64(r.outcome.interruption);
        self.i64(r.outcome.overlap);
        self.i64(r.outcome.fault_interruption);
        self.u64(r.outcome.guard_fallbacks);
        self.i64(r.pred_submit);
        self.i64(r.pred_start);
        self.i64(r.pred_end);
        self.i64(r.succ_submit);
        self.i64(r.succ_start);
        self.decisions(&r.decisions);
        self.bool(r.submitted_by_policy);
    }

    fn episode_results(&mut self, rs: &[EpisodeResult]) {
        self.u64(rs.len() as u64);
        for r in rs {
            self.episode_result(r);
        }
    }
}

struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn err(&self, msg: impl Into<String>) -> CheckpointError {
        CheckpointError::Parse {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.bytes.len() - self.pos < n {
            return Err(self.err("unexpected end of payload"));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, CheckpointError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.err(format!("invalid bool byte {b}"))),
        }
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, CheckpointError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// An element count, sanity-bounded so a crafted length field errors
    /// out instead of attempting a huge allocation: `n` elements of at
    /// least `min_size` bytes each must fit in the remaining payload.
    fn len(&mut self, min_size: usize) -> Result<usize, CheckpointError> {
        let n = self.u64()?;
        let remaining = (self.bytes.len() - self.pos) as u64;
        if n.saturating_mul(min_size.max(1) as u64) > remaining {
            return Err(self.err(format!("length {n} exceeds remaining payload")));
        }
        Ok(n as usize)
    }

    fn matrix(&mut self) -> Result<Matrix, CheckpointError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| self.err("matrix shape overflows"))?;
        if n.saturating_mul(4) > self.bytes.len() - self.pos {
            return Err(self.err(format!("matrix of {n} elements exceeds remaining payload")));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    fn opt_matrix(&mut self) -> Result<Option<Matrix>, CheckpointError> {
        Ok(if self.bool()? {
            Some(self.matrix()?)
        } else {
            None
        })
    }

    fn matrices(&mut self) -> Result<Vec<Matrix>, CheckpointError> {
        let n = self.len(17)?; // rows + cols + ≥1 element
        (0..n).map(|_| self.matrix()).collect()
    }

    fn opt_matrices(&mut self) -> Result<Vec<Option<Matrix>>, CheckpointError> {
        let n = self.len(1)?;
        (0..n).map(|_| self.opt_matrix()).collect()
    }

    fn experience(&mut self) -> Result<Experience, CheckpointError> {
        Ok(Experience {
            state: self.matrix()?,
            action: self.u64()? as usize,
            reward: self.f32()?,
            next_state: self.opt_matrix()?,
            done: self.bool()?,
        })
    }

    fn ring(&mut self) -> Result<(u64, u64, Vec<Experience>), CheckpointError> {
        let capacity = self.u64()?;
        let write = self.u64()?;
        let n = self.len(22)?;
        let buf: Vec<Experience> = (0..n)
            .map(|_| self.experience())
            .collect::<Result<_, _>>()?;
        if capacity == 0 || buf.len() as u64 > capacity || write >= capacity {
            return Err(self.err(format!(
                "inconsistent replay ring: capacity {capacity}, write {write}, len {}",
                buf.len()
            )));
        }
        Ok((capacity, write, buf))
    }

    fn decisions(&mut self) -> Result<Vec<(Matrix, usize)>, CheckpointError> {
        let n = self.len(24)?;
        (0..n)
            .map(|_| Ok((self.matrix()?, self.u64()? as usize)))
            .collect()
    }

    fn episode_result(&mut self) -> Result<EpisodeResult, CheckpointError> {
        let outcome = EpisodeOutcome {
            interruption: self.i64()?,
            overlap: self.i64()?,
            fault_interruption: self.i64()?,
            guard_fallbacks: self.u64()?,
        };
        Ok(EpisodeResult {
            outcome,
            pred_submit: self.i64()?,
            pred_start: self.i64()?,
            pred_end: self.i64()?,
            succ_submit: self.i64()?,
            succ_start: self.i64()?,
            decisions: self.decisions()?,
            submitted_by_policy: self.bool()?,
        })
    }

    fn episode_results(&mut self) -> Result<Vec<EpisodeResult>, CheckpointError> {
        let n = self.len(65)?;
        (0..n).map(|_| self.episode_result()).collect()
    }

    fn finish(self) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return Err(self.err(format!(
                "{} trailing bytes after checkpoint payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// DQN checkpoint encode/decode.

impl DqnTrainCheckpoint {
    /// Serializes into the sealed `MIRAGECKPT`/[`KIND_DQN_TRAIN`]
    /// envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.cfg_seed);
        w.u64(self.lanes);
        w.u64(self.workers);
        w.u64(self.agent.steps);
        w.u64(self.agent.train_steps);
        w.u64(self.agent.opt_t);
        w.matrices(&self.agent.net_params);
        match &self.agent.target_params {
            Some(t) => {
                w.bool(true);
                w.matrices(t);
            }
            None => w.bool(false),
        }
        w.opt_matrices(&self.agent.opt_m);
        w.opt_matrices(&self.agent.opt_v);
        w.ring(&self.replay_wait);
        w.ring(&self.replay_submit);
        for s in self.rng {
            w.u64(s);
        }
        w.episode_results(&self.episodes);
        seal(KIND_DQN_TRAIN, &w.buf)
    }

    /// Parses a sealed [`KIND_DQN_TRAIN`] envelope. Corruption anywhere
    /// — header, CRC, or payload structure — is a typed error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let payload = unseal(KIND_DQN_TRAIN, bytes)?;
        let mut r = ByteReader::new(payload);
        let cfg_seed = r.u64()?;
        let lanes = r.u64()?;
        let workers = r.u64()?;
        let steps = r.u64()?;
        let train_steps = r.u64()?;
        let opt_t = r.u64()?;
        let net_params = r.matrices()?;
        let target_params = if r.bool()? { Some(r.matrices()?) } else { None };
        let agent = DqnAgentState {
            net_params,
            target_params,
            opt_t,
            opt_m: r.opt_matrices()?,
            opt_v: r.opt_matrices()?,
            steps,
            train_steps,
        };
        let replay_wait = r.ring()?;
        let replay_submit = r.ring()?;
        let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
        let episodes = r.episode_results()?;
        r.finish()?;
        Ok(Self {
            cfg_seed,
            lanes,
            workers,
            agent,
            replay_wait,
            replay_submit,
            rng,
            episodes,
        })
    }

    /// Atomically writes the sealed checkpoint to `path`.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic(path, &self.to_bytes())
    }

    /// Loads and validates a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Rebuilds the two replay rings (consumes their snapshots).
    pub fn take_replay(&mut self) -> (ReplayBuffer, ReplayBuffer) {
        let wait = ReplayBuffer::from_raw_parts(
            self.replay_wait.0 as usize,
            self.replay_wait.1 as usize,
            std::mem::take(&mut self.replay_wait.2),
        );
        let submit = ReplayBuffer::from_raw_parts(
            self.replay_submit.0 as usize,
            self.replay_submit.1 as usize,
            std::mem::take(&mut self.replay_submit.2),
        );
        (wait, submit)
    }
}

// ---------------------------------------------------------------------
// PG checkpoint encode/decode.

impl PgTrainCheckpoint {
    /// Serializes into the sealed `MIRAGECKPT`/[`KIND_PG_TRAIN`]
    /// envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.cfg_seed);
        w.u64(self.lanes);
        w.u64(self.workers);
        w.u64(self.agent.episodes);
        w.u64(self.agent.opt_t);
        w.matrices(&self.agent.net_params);
        w.opt_matrices(&self.agent.opt_m);
        w.opt_matrices(&self.agent.opt_v);
        w.f32(self.agent.baseline);
        w.bool(self.agent.baseline_initialized);
        w.u64(self.pending.len() as u64);
        for s in &self.pending {
            w.decisions(&s.steps);
            w.f32(s.episode_return);
        }
        w.episode_results(&self.episodes);
        seal(KIND_PG_TRAIN, &w.buf)
    }

    /// Parses a sealed [`KIND_PG_TRAIN`] envelope.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let payload = unseal(KIND_PG_TRAIN, bytes)?;
        let mut r = ByteReader::new(payload);
        let cfg_seed = r.u64()?;
        let lanes = r.u64()?;
        let workers = r.u64()?;
        let episodes_clock = r.u64()?;
        let opt_t = r.u64()?;
        let net_params = r.matrices()?;
        let opt_m = r.opt_matrices()?;
        let opt_v = r.opt_matrices()?;
        let baseline = r.f32()?;
        let baseline_initialized = r.bool()?;
        let n_pending = r.len(12)?;
        let pending: Vec<EpisodeSample> = (0..n_pending)
            .map(|_| {
                Ok(EpisodeSample {
                    steps: r.decisions()?,
                    episode_return: r.f32()?,
                })
            })
            .collect::<Result<_, CheckpointError>>()?;
        let episodes = r.episode_results()?;
        r.finish()?;
        Ok(Self {
            cfg_seed,
            lanes,
            workers,
            agent: PgAgentState {
                net_params,
                opt_t,
                opt_m,
                opt_v,
                baseline,
                baseline_initialized,
                episodes: episodes_clock,
            },
            pending,
            episodes,
        })
    }

    /// Atomically writes the sealed checkpoint to `path`.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        write_atomic(path, &self.to_bytes())
    }

    /// Loads and validates a checkpoint from `path`.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        Self::from_bytes(&std::fs::read(path)?)
    }
}

/// Validates a saved run parameter against the resuming run's value.
pub(crate) fn check_match<T: PartialEq + std::fmt::Display>(
    field: &'static str,
    saved: T,
    current: T,
) -> Result<(), ResumeError> {
    if saved == current {
        Ok(())
    } else {
        Err(ResumeError::ConfigMismatch {
            field,
            saved: saved.to_string(),
            current: current.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mat(seed: u64, rows: usize, cols: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::xavier(rows, cols, &mut rng)
    }

    fn mats_eq(a: &[Matrix], b: &[Matrix]) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| {
                x.rows() == y.rows()
                    && x.cols() == y.cols()
                    && x.data()
                        .iter()
                        .zip(y.data())
                        .all(|(p, q)| p.to_bits() == q.to_bits())
            })
    }

    fn sample_dqn() -> DqnTrainCheckpoint {
        let exp = |s| Experience {
            state: mat(s, 2, 3),
            action: (s % 2) as usize,
            reward: -0.5 * s as f32,
            next_state: if s % 3 == 0 {
                Some(mat(s + 50, 2, 3))
            } else {
                None
            },
            done: s % 3 != 0,
        };
        DqnTrainCheckpoint {
            cfg_seed: 11,
            lanes: 2,
            workers: 3,
            agent: DqnAgentState {
                net_params: vec![mat(1, 4, 4), mat(2, 1, 4)],
                target_params: Some(vec![mat(3, 4, 4), mat(4, 1, 4)]),
                opt_t: 7,
                opt_m: vec![Some(mat(5, 4, 4)), None],
                opt_v: vec![None, Some(mat(6, 1, 4))],
                steps: 123,
                train_steps: 45,
            },
            replay_wait: (64, 3, (0..5).map(exp).collect()),
            replay_submit: (32, 0, (10..12).map(exp).collect()),
            rng: [1, 2, 3, 4],
            episodes: vec![EpisodeResult {
                outcome: EpisodeOutcome {
                    interruption: 300,
                    overlap: 0,
                    fault_interruption: 60,
                    guard_fallbacks: 2,
                },
                pred_submit: 0,
                pred_start: 10,
                pred_end: 110,
                succ_submit: 90,
                succ_start: 410,
                decisions: Vec::new(),
                submitted_by_policy: true,
            }],
        }
    }

    #[test]
    fn dqn_checkpoint_roundtrips_bitwise() {
        let ck = sample_dqn();
        let bytes = ck.to_bytes();
        let back = DqnTrainCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.cfg_seed, ck.cfg_seed);
        assert_eq!(back.lanes, ck.lanes);
        assert_eq!(back.workers, ck.workers);
        assert_eq!(back.agent.steps, ck.agent.steps);
        assert_eq!(back.agent.train_steps, ck.agent.train_steps);
        assert_eq!(back.agent.opt_t, ck.agent.opt_t);
        assert!(mats_eq(&back.agent.net_params, &ck.agent.net_params));
        assert!(mats_eq(
            back.agent.target_params.as_ref().unwrap(),
            ck.agent.target_params.as_ref().unwrap()
        ));
        assert_eq!(back.rng, ck.rng);
        assert_eq!(back.replay_wait.0, 64);
        assert_eq!(back.replay_wait.1, 3);
        assert_eq!(back.replay_wait.2.len(), 5);
        assert_eq!(back.replay_submit.2.len(), 2);
        assert_eq!(back.episodes.len(), 1);
        assert_eq!(back.episodes[0].outcome, ck.episodes[0].outcome);
        assert_eq!(back.episodes[0].succ_start, 410);
        assert!(back.episodes[0].submitted_by_policy);
    }

    #[test]
    fn pg_checkpoint_roundtrips_bitwise() {
        let ck = PgTrainCheckpoint {
            cfg_seed: 5,
            lanes: 4,
            workers: 2,
            agent: PgAgentState {
                net_params: vec![mat(7, 3, 3)],
                opt_t: 2,
                opt_m: vec![Some(mat(8, 3, 3))],
                opt_v: vec![Some(mat(9, 3, 3))],
                baseline: -1.25,
                baseline_initialized: true,
                episodes: 6,
            },
            pending: vec![EpisodeSample {
                steps: vec![(mat(10, 2, 3), 0), (mat(11, 2, 3), 1)],
                episode_return: -3.5,
            }],
            episodes: Vec::new(),
        };
        let back = PgTrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back.cfg_seed, 5);
        assert_eq!(back.workers, 2);
        assert_eq!(back.agent.episodes, 6);
        assert_eq!(back.agent.baseline, -1.25);
        assert!(back.agent.baseline_initialized);
        assert!(mats_eq(&back.agent.net_params, &ck.agent.net_params));
        assert_eq!(back.pending.len(), 1);
        assert_eq!(back.pending[0].steps.len(), 2);
        assert_eq!(back.pending[0].steps[1].1, 1);
        assert_eq!(back.pending[0].episode_return, -3.5);
    }

    #[test]
    fn kind_tags_are_not_interchangeable() {
        let ck = sample_dqn();
        let err = PgTrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap_err();
        assert!(matches!(err, CheckpointError::WrongKind { .. }), "{err}");
    }

    #[test]
    fn corrupted_payload_is_a_typed_error() {
        let bytes = ck_bytes();
        // Flip one payload bit: the CRC must catch it.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            DqnTrainCheckpoint::from_bytes(&flipped),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        // Truncation is caught before any payload parsing.
        assert!(DqnTrainCheckpoint::from_bytes(&bytes[..bytes.len() / 2]).is_err());
    }

    fn ck_bytes() -> Vec<u8> {
        sample_dqn().to_bytes()
    }

    #[test]
    fn trailing_garbage_inside_a_valid_envelope_is_rejected() {
        // Seal a payload with extra bytes appended *before* sealing, so
        // the CRC is valid but the structure over-runs: the reader's
        // finish() must flag it.
        let ck = sample_dqn();
        let sealed = ck.to_bytes();
        let payload = unseal(KIND_DQN_TRAIN, &sealed).unwrap();
        let mut longer = payload.to_vec();
        longer.extend_from_slice(&[0xAB; 7]);
        let resealed = seal(KIND_DQN_TRAIN, &longer);
        let err = DqnTrainCheckpoint::from_bytes(&resealed).unwrap_err();
        assert!(
            matches!(err, CheckpointError::Parse { .. }),
            "expected Parse, got {err}"
        );
    }

    #[test]
    fn take_replay_rebuilds_rings() {
        let mut ck = sample_dqn();
        let (wait, submit) = ck.take_replay();
        assert_eq!(wait.raw_parts().0, 64);
        assert_eq!(wait.raw_parts().1, 3);
        assert_eq!(wait.len(), 5);
        assert_eq!(submit.len(), 2);
    }

    #[test]
    fn config_mismatch_is_descriptive() {
        let err = check_match("seed", 11u64, 12u64).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("11") && msg.contains("12"), "{msg}");
        assert!(check_match("lanes", 4u64, 4u64).is_ok());
    }
}
