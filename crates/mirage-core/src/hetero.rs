//! Heterogeneous-cluster evaluation lane: RL vs classic baselines on
//! pool-typed hardware.
//!
//! Every provisioning method is evaluated on **identically seeded pool
//! scenarios** — a balanced fast/slow split and a scarce-accelerator
//! tiering — so the lane answers "who times the hand-off best when the
//! hardware is heterogeneous and contended?" rather than "who got the
//! fast pool?". The placement tape is a pure function of the hetero seed
//! carried inside the simulator config, so the per-episode `reset()`
//! replays the exact same slowdown draws for every method and every
//! episode start — the same controlled-experiment discipline as the
//! chaos lane's crash tapes.
//!
//! Reported per scenario × method: mean shaped reward, mean interruption,
//! and the zero-interruption fraction; plus per-scenario placement totals
//! (spans, congested placements, off-type spills, slowdowns) summed over
//! every episode run, proving the scenario actually exercised contention.

use mirage_sim::{ClusterBackend, HeteroModel, HeteroStats, SimBuilder};
use mirage_trace::JobRecord;
use serde::{Deserialize, Serialize};

use crate::episode::{run_episode, EpisodeConfig};
use crate::policy::ProvisionPolicy;
use crate::reward::RewardShaper;
use crate::train::{episode_window, sample_episode_starts};

/// One seeded pool scenario of the hetero lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeteroScenario {
    /// [`HeteroModel::balanced`]: a quarter of the partition is a fast
    /// `a100` pool (1.6× throughput), the rest baseline `v100`, moderate
    /// contention.
    Balanced,
    /// [`HeteroModel::scarce`]: an eighth of the partition is a 2×
    /// `a100` pool, a mid `v100` tier, and a 0.6× `t4` tail, full
    /// contention — fast capacity is the bottleneck.
    Scarce,
}

impl HeteroScenario {
    /// Every scenario, gentlest first (the sweep order).
    pub const ALL: [HeteroScenario; 2] = [HeteroScenario::Balanced, HeteroScenario::Scarce];

    /// Display / JSON-field name.
    pub fn label(&self) -> &'static str {
        match self {
            HeteroScenario::Balanced => "balanced",
            HeteroScenario::Scarce => "scarce",
        }
    }

    /// The pool model this scenario installs, on `seed`'s placement tape.
    pub fn model(&self, nodes: u32, seed: u64) -> HeteroModel {
        match self {
            HeteroScenario::Balanced => HeteroModel::balanced(nodes, seed),
            HeteroScenario::Scarce => HeteroModel::scarce(nodes, seed),
        }
    }
}

/// Hetero-lane settings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HeteroConfig {
    /// Episode shape (set `hetero_features` to let agents observe pool
    /// headroom and contention).
    pub episode: EpisodeConfig,
    /// Validation episodes per scenario.
    pub n_episodes: usize,
    /// Episode-start sampling seed (same starts in every scenario).
    pub seed: u64,
    /// Placement-tape seed (same hardware for every method at one
    /// scenario).
    pub hetero_seed: u64,
    /// Partition size the scenarios split into pools.
    pub nodes: u32,
    /// Reward coefficients for the mean-reward statistic.
    pub shaper: RewardShaper,
}

impl Default for HeteroConfig {
    fn default() -> Self {
        Self {
            episode: EpisodeConfig {
                hetero_features: true,
                ..EpisodeConfig::default()
            },
            n_episodes: 8,
            seed: 23,
            hetero_seed: 7171,
            nodes: 88,
            shaper: RewardShaper::default(),
        }
    }
}

/// One method's aggregate in one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeteroMethodSummary {
    /// Method label.
    pub method: String,
    /// Episodes aggregated.
    pub episodes: usize,
    /// Mean shaped reward (0 is optimal; more negative = worse).
    pub mean_reward: f64,
    /// Mean interruption (hand-off gap plus any fault downtime), hours.
    pub avg_interruption_h: f64,
    /// Fraction of episodes with zero interruption.
    pub zero_interruption_frac: f64,
    /// Total guard fallbacks across the lane's episodes (see
    /// [`crate::chaos::ChaosMethodSummary::guard_fallbacks`]).
    #[serde(default)]
    pub guard_fallbacks: u64,
}

/// One scenario's lane: per-method summaries plus the placement totals
/// the pool model actually inflicted (summed over every episode run).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroLane {
    /// Scenario of this lane.
    pub scenario: HeteroScenario,
    /// Per-method aggregates (evaluation order).
    pub methods: Vec<HeteroMethodSummary>,
    /// Placement counters summed across all methods × episodes.
    pub hetero: HeteroStats,
}

/// Full hetero sweep output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HeteroReport {
    /// One lane per scenario, [`HeteroScenario::ALL`] order.
    pub lanes: Vec<HeteroLane>,
}

impl HeteroReport {
    /// The lane at `scenario`.
    pub fn lane(&self, scenario: HeteroScenario) -> &HeteroLane {
        self.lanes
            .iter()
            .find(|l| l.scenario == scenario)
            .expect("every scenario has a lane")
    }

    /// One method's summary in one scenario.
    pub fn summary(&self, scenario: HeteroScenario, method: &str) -> &HeteroMethodSummary {
        self.lane(scenario)
            .methods
            .iter()
            .find(|m| m.method == method)
            .expect("method evaluated in every lane")
    }
}

/// Accumulates one method's running sums across a lane's episodes.
#[derive(Default)]
struct MethodAccum {
    reward: f64,
    interruption_h: f64,
    zero: usize,
    episodes: usize,
    guard_fallbacks: u64,
}

fn add_stats(total: &mut HeteroStats, run: &HeteroStats) {
    total.placements += run.placements;
    total.span_placements += run.span_placements;
    total.congested_placements += run.congested_placements;
    total.off_type_placements += run.off_type_placements;
    total.slowdowns += run.slowdowns;
}

/// Sweeps every method through the balanced and scarce pool scenarios on
/// identically seeded placement tapes.
///
/// `builder` supplies the cluster shape; this function overrides only its
/// partition size and pool model per lane, builds one backend per
/// scenario, and runs every method over the same sampled episode starts.
/// Because [`run_episode`] resets the backend up front and the placement
/// tape lives in the config, every run in one scenario sees identical
/// hardware — the comparison isolates the provisioning policy.
pub fn evaluate_hetero(
    methods: &mut [Box<dyn ProvisionPolicy>],
    builder: &SimBuilder,
    trace: &[JobRecord],
    range: (i64, i64),
    cfg: &HeteroConfig,
) -> HeteroReport {
    let starts = sample_episode_starts(range.0, range.1, &cfg.episode, cfg.n_episodes, cfg.seed);
    let mut lanes = Vec::with_capacity(HeteroScenario::ALL.len());
    for scenario in HeteroScenario::ALL {
        let mut backend = builder
            .clone()
            .nodes(cfg.nodes)
            .hetero(scenario.model(cfg.nodes, cfg.hetero_seed))
            .build();
        let mut accums: Vec<MethodAccum> = methods.iter().map(|_| MethodAccum::default()).collect();
        let mut hetero = HeteroStats::default();
        for &t0 in &starts {
            let window = episode_window(trace, t0, &cfg.episode);
            for (m, acc) in methods.iter_mut().zip(accums.iter_mut()) {
                m.reset();
                let fallbacks_before = m.guard_fallbacks();
                let mut result =
                    run_episode(&mut backend, window, &cfg.episode, t0, |ctx| m.decide(ctx));
                // `run_episode` resets the backend on entry, so the
                // counters reflect exactly this run.
                add_stats(&mut hetero, &backend.hetero_stats());
                result.outcome.guard_fallbacks = m.guard_fallbacks() - fallbacks_before;
                acc.guard_fallbacks += result.outcome.guard_fallbacks;
                let o = &result.outcome;
                acc.reward += f64::from(cfg.shaper.reward(o));
                acc.interruption_h += (o.interruption + o.fault_interruption) as f64 / 3600.0;
                if o.zero_interruption() {
                    acc.zero += 1;
                }
                acc.episodes += 1;
            }
        }
        let summaries = methods
            .iter()
            .zip(accums.iter())
            .map(|(m, acc)| {
                let n = acc.episodes.max(1) as f64;
                HeteroMethodSummary {
                    method: m.name(),
                    episodes: acc.episodes,
                    mean_reward: acc.reward / n,
                    avg_interruption_h: acc.interruption_h / n,
                    zero_interruption_frac: acc.zero as f64 / n,
                    guard_fallbacks: acc.guard_fallbacks,
                }
            })
            .collect();
        lanes.push(HeteroLane {
            scenario,
            methods: summaries,
            hetero,
        });
    }
    HeteroReport { lanes }
}

/// The four classic baselines every hetero lane compares RL against:
/// FCFS, SJF, shortest-queue and pool-greedy, evaluation order.
pub fn classic_baselines() -> Vec<Box<dyn ProvisionPolicy>> {
    vec![
        Box::new(crate::policy::FcfsPolicy),
        Box::new(crate::policy::SjfPolicy),
        Box::new(crate::policy::ShortestQueuePolicy),
        Box::new(crate::policy::PoolGreedyPolicy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReactivePolicy;
    use mirage_sim::SimConfig;
    use mirage_trace::{DAY, HOUR, MINUTE};

    fn tiny_episode() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 2,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: true,
        }
    }

    fn busy_trace(days: i64) -> Vec<JobRecord> {
        (0..days * 24)
            .map(|i| {
                JobRecord::new(
                    i as u64 + 1,
                    format!("bg{i}"),
                    (i % 3) as u32,
                    i * HOUR,
                    3,
                    6 * HOUR,
                    3 * HOUR,
                )
            })
            .collect()
    }

    fn tiny_cfg() -> HeteroConfig {
        HeteroConfig {
            episode: tiny_episode(),
            n_episodes: 2,
            nodes: 8,
            ..HeteroConfig::default()
        }
    }

    #[test]
    fn scenarios_and_labels() {
        assert_eq!(HeteroScenario::ALL.len(), 2);
        assert_eq!(HeteroScenario::Balanced.label(), "balanced");
        assert_eq!(HeteroScenario::Scarce.label(), "scarce");
        let b = HeteroScenario::Balanced.model(8, 1);
        let s = HeteroScenario::Scarce.model(8, 1);
        assert_eq!(b.pools.len(), 2);
        assert_eq!(s.pools.len(), 3);
        assert!(s.contention > b.contention);
    }

    #[test]
    fn sweep_reports_every_scenario_and_method() {
        let trace = busy_trace(8);
        let mut methods = classic_baselines();
        methods.push(Box::new(ReactivePolicy));
        let cfg = tiny_cfg();
        let builder = SimConfig::builder();
        let report = evaluate_hetero(&mut methods, &builder, &trace, (0, 8 * DAY), &cfg);
        assert_eq!(report.lanes.len(), 2);
        for (lane, sc) in report.lanes.iter().zip(HeteroScenario::ALL) {
            assert_eq!(lane.scenario, sc);
            assert_eq!(lane.methods.len(), 5);
            for m in &lane.methods {
                assert_eq!(m.episodes, 2);
                assert!(m.mean_reward <= 0.0);
            }
            assert!(lane.hetero.placements > 0, "pool allocator exercised");
        }
        let names: Vec<_> = report.lanes[0]
            .methods
            .iter()
            .map(|m| m.method.clone())
            .collect();
        assert_eq!(
            names,
            ["fcfs", "sjf", "shortest_queue", "pool_greedy", "reactive"]
        );
    }

    #[test]
    fn identical_seeds_replay_identical_lanes() {
        let trace = busy_trace(8);
        let cfg = tiny_cfg();
        let builder = SimConfig::builder();
        let mut m1 = classic_baselines();
        let mut m2 = classic_baselines();
        let a = evaluate_hetero(&mut m1, &builder, &trace, (0, 8 * DAY), &cfg);
        let b = evaluate_hetero(&mut m2, &builder, &trace, (0, 8 * DAY), &cfg);
        for (la, lb) in a.lanes.iter().zip(&b.lanes) {
            assert_eq!(la.hetero, lb.hetero);
            assert_eq!(la.methods, lb.methods);
        }
    }
}
