//! Deterministic hyperparameter grid search.
//!
//! The paper tunes its network hyperparameters with RayTune; this is the
//! native substitution (DESIGN.md §3): an exhaustive grid over candidate
//! foundation configurations, scored by held-out reward-prediction MSE
//! after a short pretraining run. Deterministic, parallel over candidates.

use mirage_nn::foundation::FoundationKind;
use mirage_nn::transformer::TransformerConfig;
use mirage_rl::{
    pretrain_foundation, reward_mse, ActionEncoding, DualHeadConfig, DualHeadNet, PretrainConfig,
    RewardSample,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::state::STATE_VARS;

/// One grid point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// Model width.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Foundation architecture.
    pub foundation: FoundationKind,
}

/// A scored grid point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuneResult {
    /// The candidate configuration.
    pub candidate: Candidate,
    /// Held-out reward-prediction MSE (lower is better).
    pub val_mse: f32,
    /// Parameter count of the built network.
    pub params: usize,
}

/// Search-space definition.
#[derive(Debug, Clone)]
pub struct TuneGrid {
    /// Widths to try.
    pub d_models: Vec<usize>,
    /// Head counts to try (must divide the width).
    pub heads: Vec<usize>,
    /// Layer counts to try.
    pub layers: Vec<usize>,
    /// Foundations to try.
    pub foundations: Vec<FoundationKind>,
}

impl Default for TuneGrid {
    fn default() -> Self {
        Self {
            d_models: vec![16, 32],
            heads: vec![2, 4],
            layers: vec![1, 2],
            foundations: vec![
                FoundationKind::Transformer,
                FoundationKind::MoE { experts: 3 },
            ],
        }
    }
}

impl TuneGrid {
    /// Enumerates all valid grid points (heads must divide d_model).
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::new();
        for &d_model in &self.d_models {
            for &heads in &self.heads {
                if d_model % heads != 0 {
                    continue;
                }
                for &layers in &self.layers {
                    for &foundation in &self.foundations {
                        out.push(Candidate {
                            d_model,
                            heads,
                            layers,
                            foundation,
                        });
                    }
                }
            }
        }
        out
    }
}

/// Scores every candidate on `(train, valid)` reward pools; returns
/// results sorted best-first. Candidates are evaluated in parallel, each
/// with its own deterministic seed.
pub fn grid_search(
    grid: &TuneGrid,
    train: &[RewardSample],
    valid: &[RewardSample],
    history_k: usize,
    epochs: usize,
    seed: u64,
) -> Vec<TuneResult> {
    assert!(!train.is_empty() && !valid.is_empty(), "empty tuning pools");
    let mut results: Vec<TuneResult> = grid
        .candidates()
        .par_iter()
        .map(|&candidate| {
            let mut net = DualHeadNet::new(DualHeadConfig {
                foundation: candidate.foundation,
                transformer: TransformerConfig {
                    input_dim: STATE_VARS,
                    seq_len: history_k,
                    d_model: candidate.d_model,
                    heads: candidate.heads,
                    layers: candidate.layers,
                    ff_mult: 2,
                },
                action_encoding: ActionEncoding::TwoHead,
                freeze_foundation: false,
                seed,
            });
            let params = net.ps.scalar_count();
            pretrain_foundation(
                &mut net,
                train,
                &PretrainConfig {
                    epochs,
                    batch_size: 32,
                    lr: 1e-3,
                    seed,
                    grad_clip: 5.0,
                },
            );
            TuneResult {
                candidate,
                val_mse: reward_mse(&net, valid),
                params,
            }
        })
        .collect();
    results.sort_by(|a, b| a.val_mse.partial_cmp(&b.val_mse).unwrap());
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_nn::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn pools(k: usize) -> (Vec<RewardSample>, Vec<RewardSample>) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut gen = |n: usize| -> Vec<RewardSample> {
            (0..n)
                .map(|_| {
                    let state = Matrix::from_fn(k, STATE_VARS, |_, _| rng.gen_range(-1.0..1.0f32));
                    let reward = state.mean_rows().sum() / STATE_VARS as f32;
                    RewardSample {
                        state,
                        action: 0,
                        reward,
                    }
                })
                .collect()
        };
        (gen(64), gen(24))
    }

    #[test]
    fn grid_enumeration_respects_divisibility() {
        let grid = TuneGrid {
            d_models: vec![6, 8],
            heads: vec![2, 4],
            layers: vec![1],
            foundations: vec![FoundationKind::Transformer],
        };
        let cands = grid.candidates();
        // 6 % 4 != 0 is excluded: (6,2), (8,2), (8,4).
        assert_eq!(cands.len(), 3);
        assert!(cands.iter().all(|c| c.d_model % c.heads == 0));
    }

    #[test]
    fn search_scores_and_sorts() {
        let (train, valid) = pools(3);
        let grid = TuneGrid {
            d_models: vec![8],
            heads: vec![2],
            layers: vec![1],
            foundations: vec![
                FoundationKind::Transformer,
                FoundationKind::MoE { experts: 2 },
            ],
        };
        let results = grid_search(&grid, &train, &valid, 3, 2, 7);
        assert_eq!(results.len(), 2);
        assert!(
            results[0].val_mse <= results[1].val_mse,
            "sorted best-first"
        );
        assert!(results.iter().all(|r| r.val_mse.is_finite()));
        assert!(results.iter().all(|r| r.params > 0));
        // MoE has more parameters than the single transformer.
        let moe = results
            .iter()
            .find(|r| matches!(r.candidate.foundation, FoundationKind::MoE { .. }))
            .unwrap();
        let tf = results
            .iter()
            .find(|r| matches!(r.candidate.foundation, FoundationKind::Transformer))
            .unwrap();
        assert!(moe.params > tf.params);
    }

    #[test]
    fn search_is_deterministic() {
        let (train, valid) = pools(3);
        let grid = TuneGrid {
            d_models: vec![8],
            heads: vec![2],
            layers: vec![1],
            foundations: vec![FoundationKind::Transformer],
        };
        let a = grid_search(&grid, &train, &valid, 3, 2, 9);
        let b = grid_search(&grid, &train, &valid, 3, 2, 9);
        assert_eq!(a, b);
    }
}
