//! Evaluation harness (§6 of the paper).
//!
//! Validation episodes are sampled from the held-out range; every method
//! runs the *same* episode (same trace window, same start instant), and
//! results are grouped by the cluster-load level observed under the
//! reactive baseline:
//!
//! * **heavy** — reactive queue wait > 12 h,
//! * **medium** — 2–12 h,
//! * **light** — < 2 h.
//!
//! Reported per method × load level: average interruption, average
//! overlap, and the zero-interruption episode fraction (the paper's
//! "jobs safeguarded with zero interruption").

use mirage_sim::ClusterBackend;
use mirage_trace::{JobRecord, HOUR};
use serde::{Deserialize, Serialize};

use crate::episode::{run_episode, EpisodeConfig};
use crate::policy::ProvisionPolicy;
use crate::reward::EpisodeOutcome;
use crate::train::{episode_window, sample_episode_starts};

/// Cluster-load classification thresholds (§6: by reactive queue wait).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LoadLevel {
    /// Reactive wait below 2 h.
    Light,
    /// Reactive wait in [2 h, 12 h).
    Medium,
    /// Reactive wait of 12 h or more.
    Heavy,
}

impl LoadLevel {
    /// Classifies by the reactive baseline's queue wait.
    pub fn classify(reactive_wait: i64) -> Self {
        if reactive_wait >= 12 * HOUR {
            LoadLevel::Heavy
        } else if reactive_wait >= 2 * HOUR {
            LoadLevel::Medium
        } else {
            LoadLevel::Light
        }
    }

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            LoadLevel::Light => "light",
            LoadLevel::Medium => "medium",
            LoadLevel::Heavy => "heavy",
        }
    }

    /// All levels, heaviest first (the paper's figure order).
    pub fn all() -> [LoadLevel; 3] {
        [LoadLevel::Heavy, LoadLevel::Medium, LoadLevel::Light]
    }
}

/// One method's outcomes on one episode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MethodOutcome {
    /// Method label.
    pub method: String,
    /// Episode outcome.
    pub outcome: EpisodeOutcome,
    /// Whether the method submitted proactively.
    pub proactive: bool,
}

/// One validation episode across all methods.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpisodeRecord {
    /// Predecessor submission instant.
    pub t0: i64,
    /// Load level under the reactive baseline.
    pub load: LoadLevel,
    /// The reactive successor wait (the classification statistic).
    pub reactive_wait: i64,
    /// Per-method outcomes (same order as the evaluated method list).
    pub methods: Vec<MethodOutcome>,
}

/// Aggregate over episodes for one method at one load level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSummary {
    /// Method label.
    pub method: String,
    /// Load level.
    pub load: LoadLevel,
    /// Episodes aggregated.
    pub episodes: usize,
    /// Mean interruption, hours.
    pub avg_interruption_h: f64,
    /// Mean overlap, hours.
    pub avg_overlap_h: f64,
    /// Fraction of episodes with zero interruption.
    pub zero_interruption_frac: f64,
}

/// Full evaluation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalReport {
    /// Per-episode records.
    pub episodes: Vec<EpisodeRecord>,
    /// Method labels in evaluation order.
    pub method_names: Vec<String>,
}

/// Evaluation settings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EvalConfig {
    /// Episode shape (must match what the methods were trained for).
    pub episode: EpisodeConfig,
    /// Validation episodes to sample.
    pub n_episodes: usize,
    /// Start-sampling seed.
    pub seed: u64,
}

/// Runs every method over the same sampled validation episodes, on any
/// [`ClusterBackend`] (the backend is reset between runs, so one value
/// hosts the whole evaluation).
///
/// The first method should be the reactive baseline; its successor wait
/// classifies each episode's load level. (If it is not, the reactive wait
/// is computed with an implicit extra run.)
pub fn evaluate<B: ClusterBackend>(
    methods: &mut [Box<dyn ProvisionPolicy>],
    backend: &mut B,
    trace: &[JobRecord],
    range: (i64, i64),
    cfg: &EvalConfig,
) -> EvalReport {
    let starts = sample_episode_starts(range.0, range.1, &cfg.episode, cfg.n_episodes, cfg.seed);
    let method_names: Vec<String> = methods.iter().map(|m| m.name()).collect();
    let reactive_idx = method_names.iter().position(|n| n == "reactive");

    let mut episodes = Vec::with_capacity(starts.len());
    for &t0 in &starts {
        let window = episode_window(trace, t0, &cfg.episode);
        let mut outcomes: Vec<MethodOutcome> = Vec::with_capacity(methods.len());
        for m in methods.iter_mut() {
            m.reset();
            let fallbacks_before = m.guard_fallbacks();
            let mut result = run_episode(backend, window, &cfg.episode, t0, |ctx| m.decide(ctx));
            // Per-episode guard-fallback delta: non-zero only when a
            // guarded policy's network emitted garbage this episode.
            result.outcome.guard_fallbacks = m.guard_fallbacks() - fallbacks_before;
            outcomes.push(MethodOutcome {
                method: m.name(),
                outcome: result.outcome,
                proactive: result.submitted_by_policy,
            });
        }
        let reactive_wait = match reactive_idx {
            Some(i) => outcomes[i].outcome.interruption,
            None => {
                let r = run_episode(backend, window, &cfg.episode, t0, |_| {
                    crate::episode::Action::Wait
                });
                r.outcome.interruption
            }
        };
        episodes.push(EpisodeRecord {
            t0,
            load: LoadLevel::classify(reactive_wait),
            reactive_wait,
            methods: outcomes,
        });
    }
    EvalReport {
        episodes,
        method_names,
    }
}

impl EvalReport {
    /// Aggregates one method at one load level.
    pub fn summarize(&self, method: &str, load: LoadLevel) -> MethodSummary {
        let mut n = 0usize;
        let mut sum_i = 0.0f64;
        let mut sum_o = 0.0f64;
        let mut zero = 0usize;
        for ep in self.episodes.iter().filter(|e| e.load == load) {
            if let Some(mo) = ep.methods.iter().find(|m| m.method == method) {
                n += 1;
                sum_i += mo.outcome.interruption as f64 / 3600.0;
                sum_o += mo.outcome.overlap as f64 / 3600.0;
                if mo.outcome.zero_interruption() {
                    zero += 1;
                }
            }
        }
        MethodSummary {
            method: method.to_string(),
            load,
            episodes: n,
            avg_interruption_h: if n > 0 { sum_i / n as f64 } else { 0.0 },
            avg_overlap_h: if n > 0 { sum_o / n as f64 } else { 0.0 },
            zero_interruption_frac: if n > 0 { zero as f64 / n as f64 } else { 0.0 },
        }
    }

    /// All summaries: methods × load levels (paper figure layout).
    pub fn all_summaries(&self) -> Vec<MethodSummary> {
        let mut out = Vec::new();
        for load in LoadLevel::all() {
            for m in &self.method_names {
                out.push(self.summarize(m, load));
            }
        }
        out
    }

    /// Episode count at a load level.
    pub fn episodes_at(&self, load: LoadLevel) -> usize {
        self.episodes.iter().filter(|e| e.load == load).count()
    }

    /// Interruption reduction of `method` vs the reactive baseline at a
    /// load level, in percent (the §6.1 headline statistic).
    pub fn reduction_vs_reactive(&self, method: &str, load: LoadLevel) -> Option<f64> {
        let m = self.summarize(method, load);
        let r = self.summarize("reactive", load);
        if m.episodes == 0 || r.episodes == 0 || r.avg_interruption_h <= 0.0 {
            return None;
        }
        Some((1.0 - m.avg_interruption_h / r.avg_interruption_h) * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{AvgWaitPolicy, ReactivePolicy};
    use mirage_sim::{SimConfig, Simulator};
    use mirage_trace::{DAY, MINUTE};

    fn tiny_episode() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        }
    }

    fn congested_trace(days: i64) -> Vec<JobRecord> {
        // Steady stream keeping a 4-node cluster busy.
        (0..days * 24 * 2)
            .map(|i| {
                JobRecord::new(
                    i as u64 + 1,
                    format!("bg{i}"),
                    (i % 5) as u32,
                    i * HOUR / 2,
                    2,
                    6 * HOUR,
                    3 * HOUR,
                )
            })
            .collect()
    }

    #[test]
    fn load_classification_thresholds() {
        assert_eq!(LoadLevel::classify(0), LoadLevel::Light);
        assert_eq!(LoadLevel::classify(2 * HOUR), LoadLevel::Medium);
        assert_eq!(LoadLevel::classify(12 * HOUR - 1), LoadLevel::Medium);
        assert_eq!(LoadLevel::classify(12 * HOUR), LoadLevel::Heavy);
        assert_eq!(LoadLevel::classify(3 * DAY), LoadLevel::Heavy);
    }

    #[test]
    fn evaluation_runs_all_methods_on_same_episodes() {
        let trace = congested_trace(14);
        let mut methods: Vec<Box<dyn ProvisionPolicy>> =
            vec![Box::new(ReactivePolicy), Box::new(AvgWaitPolicy::default())];
        let cfg = EvalConfig {
            episode: tiny_episode(),
            n_episodes: 4,
            seed: 7,
        };
        let mut sim = Simulator::new(SimConfig::new(4));
        let report = evaluate(&mut methods, &mut sim, &trace, (0, 14 * DAY), &cfg);
        assert_eq!(report.episodes.len(), 4);
        for ep in &report.episodes {
            assert_eq!(ep.methods.len(), 2);
            assert_eq!(ep.methods[0].method, "reactive");
            // Reactive never overlaps by construction.
            assert_eq!(ep.methods[0].outcome.overlap, 0);
        }
        let summaries = report.all_summaries();
        assert_eq!(summaries.len(), 2 * 3);
        let total: usize = LoadLevel::all()
            .iter()
            .map(|&l| report.episodes_at(l))
            .sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn summaries_aggregate_consistently() {
        let trace = congested_trace(10);
        let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(ReactivePolicy)];
        let cfg = EvalConfig {
            episode: tiny_episode(),
            n_episodes: 3,
            seed: 9,
        };
        let mut sim = Simulator::new(SimConfig::new(4));
        let report = evaluate(&mut methods, &mut sim, &trace, (0, 10 * DAY), &cfg);
        for load in LoadLevel::all() {
            let s = report.summarize("reactive", load);
            assert_eq!(s.episodes, report.episodes_at(load));
            assert!(s.avg_interruption_h >= 0.0);
            assert!(s.zero_interruption_frac >= 0.0 && s.zero_interruption_frac <= 1.0);
        }
    }

    #[test]
    fn reduction_vs_reactive_is_zero_for_itself() {
        let trace = congested_trace(10);
        let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(ReactivePolicy)];
        let cfg = EvalConfig {
            episode: tiny_episode(),
            n_episodes: 3,
            seed: 11,
        };
        let mut sim = Simulator::new(SimConfig::new(4));
        let report = evaluate(&mut methods, &mut sim, &trace, (0, 10 * DAY), &cfg);
        for load in LoadLevel::all() {
            if report.episodes_at(load) > 0 {
                if let Some(red) = report.reduction_vs_reactive("reactive", load) {
                    assert!(red.abs() < 1e-9);
                }
            }
        }
    }
}
