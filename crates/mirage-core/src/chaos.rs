//! Chaos evaluation lane: degradation under fault injection.
//!
//! Every provisioning method is evaluated on **identically seeded fault
//! schedules** at increasing severity — none / moderate / severe — so the
//! lane answers "how gracefully does each method degrade when nodes crash
//! and jobs die mid-run?" rather than "who got lucky with the crashes?".
//! The fault tape is a pure function of `(fault_seed, severity)` carried
//! inside the simulator config, so the per-episode `reset()` replays the
//! exact same crashes for every method and every episode start.
//!
//! Reported per severity × method: mean shaped reward, mean total
//! interruption (hand-off gap + fault downtime), mean fault-caused
//! downtime, and the zero-interruption fraction; plus per-severity fault
//! totals (crashes, evictions, retries, retry successes, terminal
//! failures) summed over every episode run.

use mirage_sim::{ClusterBackend, FaultModel, FaultStats, RetryPolicy, SimBuilder};
use mirage_trace::JobRecord;
use serde::{Deserialize, Serialize};

use crate::episode::{run_episode, EpisodeConfig};
use crate::policy::ProvisionPolicy;
use crate::reward::RewardShaper;
use crate::train::{episode_window, sample_episode_starts};

/// Fault-injection severity of one chaos lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChaosSeverity {
    /// Perfectly reliable hardware — the control lane; results must match
    /// a fault-free evaluation bit for bit.
    None,
    /// [`FaultModel::moderate`]: ~4-day MTBF, ~2 h repairs, 2 % transient
    /// job failures.
    Moderate,
    /// [`FaultModel::severe`]: ~18 h MTBF, ~4 h repairs, 8 % transient job
    /// failures.
    Severe,
}

impl ChaosSeverity {
    /// Every severity, mildest first (the sweep order).
    pub const ALL: [ChaosSeverity; 3] = [
        ChaosSeverity::None,
        ChaosSeverity::Moderate,
        ChaosSeverity::Severe,
    ];

    /// Display / JSON-field name.
    pub fn label(&self) -> &'static str {
        match self {
            ChaosSeverity::None => "none",
            ChaosSeverity::Moderate => "moderate",
            ChaosSeverity::Severe => "severe",
        }
    }

    /// The fault model this severity injects, on `seed`'s crash tape.
    pub fn fault_model(&self, seed: u64) -> FaultModel {
        match self {
            ChaosSeverity::None => FaultModel::none(),
            ChaosSeverity::Moderate => FaultModel::moderate(seed),
            ChaosSeverity::Severe => FaultModel::severe(seed),
        }
    }
}

/// Chaos-lane settings.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Episode shape (set `fault_features` to let agents observe cluster
    /// health).
    pub episode: EpisodeConfig,
    /// Validation episodes per severity.
    pub n_episodes: usize,
    /// Episode-start sampling seed (same starts at every severity).
    pub seed: u64,
    /// Crash-tape seed (same tape for every method at one severity).
    pub fault_seed: u64,
    /// Retry policy for evicted jobs.
    pub retry: RetryPolicy,
    /// Reward coefficients for the mean-reward statistic.
    pub shaper: RewardShaper,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            episode: EpisodeConfig::default(),
            n_episodes: 8,
            seed: 17,
            fault_seed: 4242,
            retry: RetryPolicy::default(),
            shaper: RewardShaper::default(),
        }
    }
}

/// One method's aggregate at one severity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosMethodSummary {
    /// Method label.
    pub method: String,
    /// Episodes aggregated.
    pub episodes: usize,
    /// Mean shaped reward (0 is optimal; more negative = worse).
    pub mean_reward: f64,
    /// Mean total interruption — hand-off gap plus fault downtime, hours.
    pub avg_interruption_h: f64,
    /// Mean fault-caused downtime alone, hours.
    pub avg_fault_interruption_h: f64,
    /// Fraction of episodes with zero interruption of either kind.
    pub zero_interruption_frac: f64,
    /// Total guard fallbacks across the lane's episodes: decisions
    /// where a guarded policy's network emitted a non-finite or
    /// degenerate output and degraded to the heuristic. Non-zero means
    /// the method survived this lane on its fallback, not its network.
    #[serde(default)]
    pub guard_fallbacks: u64,
}

/// One severity's lane: per-method summaries plus the fault totals the
/// tape actually inflicted (summed over every episode run).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosLane {
    /// Severity of this lane.
    pub severity: ChaosSeverity,
    /// Per-method aggregates (evaluation order).
    pub methods: Vec<ChaosMethodSummary>,
    /// Fault counters summed across all methods × episodes.
    pub faults: FaultStats,
}

/// Full chaos sweep output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// One lane per severity, [`ChaosSeverity::ALL`] order.
    pub lanes: Vec<ChaosLane>,
}

impl ChaosReport {
    /// The lane at `severity`.
    pub fn lane(&self, severity: ChaosSeverity) -> &ChaosLane {
        self.lanes
            .iter()
            .find(|l| l.severity == severity)
            .expect("every severity has a lane")
    }

    /// One method's summary at one severity.
    pub fn summary(&self, severity: ChaosSeverity, method: &str) -> &ChaosMethodSummary {
        self.lane(severity)
            .methods
            .iter()
            .find(|m| m.method == method)
            .expect("method evaluated in every lane")
    }
}

/// Accumulates one method's running sums across a lane's episodes.
#[derive(Default)]
struct MethodAccum {
    reward: f64,
    interruption_h: f64,
    fault_h: f64,
    zero: usize,
    episodes: usize,
    guard_fallbacks: u64,
}

fn add_stats(total: &mut FaultStats, run: &FaultStats) {
    total.node_crashes += run.node_crashes;
    total.node_recoveries += run.node_recoveries;
    total.evictions += run.evictions;
    total.job_failures += run.job_failures;
    total.retries += run.retries;
    total.retry_successes += run.retry_successes;
    total.failed_jobs += run.failed_jobs;
}

/// Sweeps every method through the none → moderate → severe fault
/// severities on identically seeded crash tapes.
///
/// `builder` supplies the cluster shape; this function overrides only its
/// fault model and retry policy per lane, builds one backend per severity,
/// and runs every method over the same sampled episode starts. Because
/// [`run_episode`] resets the backend up front and the fault tape lives in
/// the config, every run at one severity sees the identical crash
/// schedule — the comparison isolates the provisioning policy.
pub fn evaluate_chaos(
    methods: &mut [Box<dyn ProvisionPolicy>],
    builder: &SimBuilder,
    trace: &[JobRecord],
    range: (i64, i64),
    cfg: &ChaosConfig,
) -> ChaosReport {
    let starts = sample_episode_starts(range.0, range.1, &cfg.episode, cfg.n_episodes, cfg.seed);
    let mut lanes = Vec::with_capacity(ChaosSeverity::ALL.len());
    for severity in ChaosSeverity::ALL {
        let mut backend = builder
            .clone()
            .faults(severity.fault_model(cfg.fault_seed))
            .retry(cfg.retry)
            .build();
        let mut accums: Vec<MethodAccum> = methods.iter().map(|_| MethodAccum::default()).collect();
        let mut faults = FaultStats::default();
        for &t0 in &starts {
            let window = episode_window(trace, t0, &cfg.episode);
            for (m, acc) in methods.iter_mut().zip(accums.iter_mut()) {
                m.reset();
                let fallbacks_before = m.guard_fallbacks();
                let mut result =
                    run_episode(&mut backend, window, &cfg.episode, t0, |ctx| m.decide(ctx));
                // `run_episode` resets the backend on entry, so the
                // counters reflect exactly this run.
                add_stats(&mut faults, &backend.fault_stats());
                result.outcome.guard_fallbacks = m.guard_fallbacks() - fallbacks_before;
                acc.guard_fallbacks += result.outcome.guard_fallbacks;
                let o = &result.outcome;
                acc.reward += f64::from(cfg.shaper.reward(o));
                acc.interruption_h += (o.interruption + o.fault_interruption) as f64 / 3600.0;
                acc.fault_h += o.fault_interruption as f64 / 3600.0;
                if o.zero_interruption() {
                    acc.zero += 1;
                }
                acc.episodes += 1;
            }
        }
        let summaries = methods
            .iter()
            .zip(accums.iter())
            .map(|(m, acc)| {
                let n = acc.episodes.max(1) as f64;
                ChaosMethodSummary {
                    method: m.name(),
                    episodes: acc.episodes,
                    mean_reward: acc.reward / n,
                    avg_interruption_h: acc.interruption_h / n,
                    avg_fault_interruption_h: acc.fault_h / n,
                    zero_interruption_frac: acc.zero as f64 / n,
                    guard_fallbacks: acc.guard_fallbacks,
                }
            })
            .collect();
        lanes.push(ChaosLane {
            severity,
            methods: summaries,
            faults,
        });
    }
    ChaosReport { lanes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReactivePolicy;
    use mirage_sim::SimConfig;
    use mirage_trace::{DAY, HOUR, MINUTE};

    fn tiny_episode() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: true,
            hetero_features: false,
        }
    }

    fn busy_trace(days: i64) -> Vec<JobRecord> {
        (0..days * 24)
            .map(|i| {
                JobRecord::new(
                    i as u64 + 1,
                    format!("bg{i}"),
                    (i % 3) as u32,
                    i * HOUR,
                    2,
                    6 * HOUR,
                    3 * HOUR,
                )
            })
            .collect()
    }

    #[test]
    fn severity_tiers_and_labels() {
        assert_eq!(ChaosSeverity::ALL.len(), 3);
        assert_eq!(ChaosSeverity::None.label(), "none");
        assert!(ChaosSeverity::None.fault_model(5).is_none());
        let mo = ChaosSeverity::Moderate.fault_model(5);
        let se = ChaosSeverity::Severe.fault_model(5);
        assert!(se.mtbf < mo.mtbf && se.job_fail_prob > mo.job_fail_prob);
    }

    #[test]
    fn sweep_reports_every_severity_and_method() {
        let trace = busy_trace(8);
        let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(ReactivePolicy)];
        let cfg = ChaosConfig {
            episode: tiny_episode(),
            n_episodes: 2,
            ..ChaosConfig::default()
        };
        let builder = SimConfig::builder().nodes(4);
        let report = evaluate_chaos(&mut methods, &builder, &trace, (0, 8 * DAY), &cfg);
        assert_eq!(report.lanes.len(), 3);
        for (lane, sev) in report.lanes.iter().zip(ChaosSeverity::ALL) {
            assert_eq!(lane.severity, sev);
            assert_eq!(lane.methods.len(), 1);
            assert_eq!(lane.methods[0].episodes, 2);
        }
        // The control lane cannot count faults.
        let none = report.lane(ChaosSeverity::None);
        assert_eq!(none.faults, FaultStats::default());
        assert_eq!(none.methods[0].avg_fault_interruption_h, 0.0);
    }

    #[test]
    fn identical_seeds_replay_identical_chaos() {
        let trace = busy_trace(8);
        let cfg = ChaosConfig {
            episode: tiny_episode(),
            n_episodes: 2,
            ..ChaosConfig::default()
        };
        let builder = SimConfig::builder().nodes(4);
        let mut m1: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(ReactivePolicy)];
        let mut m2: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(ReactivePolicy)];
        let a = evaluate_chaos(&mut m1, &builder, &trace, (0, 8 * DAY), &cfg);
        let b = evaluate_chaos(&mut m2, &builder, &trace, (0, 8 * DAY), &cfg);
        for (la, lb) in a.lanes.iter().zip(&b.lanes) {
            assert_eq!(la.faults, lb.faults);
            assert_eq!(la.methods, lb.methods);
        }
    }
}
