//! Chain provisioning — walking a whole sequence of sub-jobs.
//!
//! §4.1 of the paper: "the model maintains a current Predecessor-Successor
//! pair for each group of chained sub-jobs … When J2 is submitted per the
//! model's decision, J2 becomes the predecessor and J3 becomes the
//! successor, and so on, until J4 is submitted." This module runs that
//! loop: one policy provisions an entire chain, each hand-off scored
//! separately, with cumulative service-interruption accounting.

use mirage_sim::ClusterBackend;
use mirage_trace::JobRecord;
use serde::{Deserialize, Serialize};

use crate::episode::{run_episode, EpisodeConfig, EpisodeResult};
use crate::policy::ProvisionPolicy;
use crate::reward::EpisodeOutcome;

/// Result of provisioning one chain of sub-jobs.
#[derive(Debug, Clone)]
pub struct ChainResult {
    /// Per-hand-off episode results (`links − 1` entries for `links`
    /// sub-jobs).
    pub handoffs: Vec<EpisodeResult>,
    /// Total service interruption across the chain, seconds.
    pub total_interruption: i64,
    /// Total overlap across the chain, seconds.
    pub total_overlap: i64,
    /// Hand-offs that were gap-free.
    pub zero_interruption_handoffs: usize,
}

/// Summary statistics of a chain run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChainSummary {
    /// Number of hand-offs.
    pub handoffs: usize,
    /// Mean interruption per hand-off, hours.
    pub avg_interruption_h: f64,
    /// Mean overlap per hand-off, hours.
    pub avg_overlap_h: f64,
    /// Fraction of gap-free hand-offs.
    pub zero_fraction: f64,
}

impl ChainResult {
    /// Aggregates the chain into summary statistics.
    pub fn summary(&self) -> ChainSummary {
        let n = self.handoffs.len().max(1);
        ChainSummary {
            handoffs: self.handoffs.len(),
            avg_interruption_h: self.total_interruption as f64 / 3600.0 / n as f64,
            avg_overlap_h: self.total_overlap as f64 / 3600.0 / n as f64,
            zero_fraction: self.zero_interruption_handoffs as f64 / n as f64,
        }
    }
}

/// Provisions a chain of `links` sub-jobs starting at `t0`, using `policy`
/// for every hand-off, on any [`ClusterBackend`].
///
/// Each hand-off is simulated as one episode; the next episode starts where
/// the previous predecessor ended (the successor of hand-off *i* is the
/// predecessor of hand-off *i+1*, as in the paper). The backend is reset
/// and reloaded from the trace for each episode, so hand-offs are
/// independent trials along the chain's real timeline.
pub fn provision_chain<B: ClusterBackend>(
    backend: &mut B,
    trace: &[JobRecord],
    cfg: &EpisodeConfig,
    t0: i64,
    links: usize,
    policy: &mut dyn ProvisionPolicy,
) -> ChainResult {
    assert!(links >= 2, "a chain needs at least two sub-jobs");
    let mut handoffs = Vec::with_capacity(links - 1);
    let mut start = t0;
    for _ in 0..links - 1 {
        policy.reset();
        let result = run_episode(backend, trace, cfg, start, |ctx| policy.decide(ctx));
        // The next sub-job's life begins where this predecessor ended.
        start = result.pred_end;
        handoffs.push(result);
    }
    let total_interruption = handoffs.iter().map(|h| h.outcome.interruption).sum();
    let total_overlap = handoffs.iter().map(|h| h.outcome.overlap).sum();
    let zero = handoffs
        .iter()
        .filter(|h| h.outcome.zero_interruption())
        .count();
    ChainResult {
        handoffs,
        total_interruption,
        total_overlap,
        zero_interruption_handoffs: zero,
    }
}

/// Convenience: total time-to-solution of the chain (first submit to last
/// predecessor end) versus the ideal (uninterrupted) duration.
pub fn chain_stretch(result: &ChainResult, cfg: &EpisodeConfig) -> f64 {
    let Some(first) = result.handoffs.first() else {
        return 1.0;
    };
    let Some(last) = result.handoffs.last() else {
        return 1.0;
    };
    let actual = (last.pred_end - first.pred_submit) as f64;
    let ideal = (result.handoffs.len() as i64 * cfg.pair_runtime) as f64;
    let _ = EpisodeOutcome::from_times(0, 0);
    if ideal > 0.0 {
        actual / ideal
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReactivePolicy;
    use mirage_sim::{SimConfig, Simulator};
    use mirage_trace::{DAY, HOUR, MINUTE};

    fn cfg() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        }
    }

    #[test]
    fn chain_on_idle_cluster_is_seamless() {
        let mut policy = ReactivePolicy;
        let mut sim = Simulator::new(SimConfig::new(4));
        let result = provision_chain(&mut sim, &[], &cfg(), DAY, 4, &mut policy);
        assert_eq!(result.handoffs.len(), 3);
        assert_eq!(result.total_interruption, 0);
        assert_eq!(result.total_overlap, 0);
        assert_eq!(result.zero_interruption_handoffs, 3);
        let s = result.summary();
        assert_eq!(s.zero_fraction, 1.0);
        assert!((chain_stretch(&result, &cfg()) - 1.0).abs() < 0.05);
    }

    #[test]
    fn links_chain_consecutively() {
        let mut policy = ReactivePolicy;
        let mut sim = Simulator::new(SimConfig::new(4));
        let result = provision_chain(&mut sim, &[], &cfg(), DAY, 3, &mut policy);
        // Each hand-off starts where the previous predecessor ended.
        assert_eq!(result.handoffs[1].pred_submit, result.handoffs[0].pred_end);
    }

    #[test]
    fn congestion_accumulates_interruption_reactively() {
        // Keep the 4-node cluster saturated across the whole chain span.
        let bg: Vec<JobRecord> = (0..400)
            .map(|i| {
                JobRecord::new(
                    i + 1,
                    format!("bg{i}"),
                    (i % 5) as u32,
                    i as i64 * 15 * MINUTE,
                    2,
                    6 * HOUR,
                    5 * HOUR,
                )
            })
            .collect();
        let mut policy = ReactivePolicy;
        let mut sim = Simulator::new(SimConfig::new(4));
        let result = provision_chain(&mut sim, &bg, &cfg(), DAY, 3, &mut policy);
        assert!(
            result.total_interruption > 0,
            "saturated cluster must interrupt a reactive chain"
        );
        assert!(chain_stretch(&result, &cfg()) > 1.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_link_is_rejected() {
        let mut policy = ReactivePolicy;
        let mut sim = Simulator::new(SimConfig::new(4));
        let _ = provision_chain(&mut sim, &[], &cfg(), 0, 1, &mut policy);
    }
}
