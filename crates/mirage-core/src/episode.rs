//! Provisioning-episode driver (§4.4, §5.1 of the paper), generic over
//! any [`ClusterBackend`].
//!
//! One episode covers one predecessor–successor pair of chained sub-jobs:
//!
//! 1. the backend replays background trace jobs to build realistic queue
//!    state, while the driver records state vectors at the decision
//!    cadence,
//! 2. the predecessor sub-job is submitted at the episode start,
//! 3. every `decision_interval` seconds the policy sees the `k × m` state
//!    matrix and answers *submit* or *no-submit* for the successor,
//! 4. once the predecessor completes, the driver submits the successor
//!    if the policy has not (that is exactly the reactive user's behavior,
//!    so no learned policy can do worse than `reactive` on interruption),
//! 5. the backend runs until the successor dispatches, revealing the
//!    episode outcome (interruption or overlap).
//!
//! Two entry points share the machinery: [`run_episode`] drives a policy
//! closure to completion, and [`EpisodeDriver`] exposes the same loop one
//! decision at a time (the Gym-style surface `crate::gym` builds on).

use mirage_nn::Matrix;
use mirage_sim::{ClusterBackend, ClusterSnapshot, JobStatus};
use mirage_trace::{JobRecord, DAY, HOUR};
use serde::{Deserialize, Serialize};

use crate::reward::EpisodeOutcome;
use crate::state::{EncoderScratch, PredecessorState, StateEncoder, StateHistory, SuccessorSpec};

/// The provisioner's two actions (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Do not submit the successor yet.
    Wait,
    /// Submit the successor now.
    Submit,
}

impl Action {
    /// Action index used by the RL agents (no-submit = 0, submit = 1).
    pub fn index(self) -> usize {
        match self {
            Action::Wait => 0,
            Action::Submit => 1,
        }
    }

    /// Inverse of [`Action::index`].
    pub fn from_index(i: usize) -> Self {
        if i == 1 {
            Action::Submit
        } else {
            Action::Wait
        }
    }
}

/// Everything a policy may look at when deciding (§4.1: no job-internal
/// state beyond the pair's own public attributes).
///
/// The matrix and snapshot are **borrowed from the driver's reusable
/// buffers** — valid until the next `advance()` — so the steady-state
/// decision loop hands policies a view without copying or allocating.
#[derive(Debug, Clone, Copy)]
pub struct DecisionContext<'a> {
    /// Simulated time of the decision.
    pub now: i64,
    /// The `k × m` state matrix (history of encoded snapshots).
    pub state_matrix: &'a Matrix,
    /// Raw snapshot at the decision instant.
    pub snapshot: &'a ClusterSnapshot,
    /// Whether the predecessor has started running.
    pub pred_started: bool,
    /// Estimated seconds until the predecessor ends: limit-based while
    /// running, `timelimit` while still queued (the user knows only the
    /// limit, not the true runtime).
    pub pred_remaining: i64,
    /// Mean queue wait of background jobs that started in the last 24 h
    /// (the observable the `avg` heuristic uses), seconds.
    pub recent_avg_wait: Option<f64>,
    /// Successor spec.
    pub successor: SuccessorSpec,
}

/// Episode parameters. The paper's evaluation uses pairs of 48-hour jobs
/// (1-node in §6.1, 8-node in §6.2) with a 10-minute decision cadence; the
/// defaults here use a 30-minute cadence and k = 24 (DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpisodeConfig {
    /// Nodes requested by both sub-jobs.
    pub pair_nodes: u32,
    /// Wall-clock limit of both sub-jobs.
    pub pair_timelimit: i64,
    /// Actual runtime of both sub-jobs (long-running services run to the
    /// limit).
    pub pair_runtime: i64,
    /// Seconds between decisions (the paper's 10-minute invocation).
    pub decision_interval: i64,
    /// History rows in the state matrix (`k`).
    pub history_k: usize,
    /// Background-trace replay before the episode start, to build up
    /// realistic queue/running state. Must exceed the longest plausible
    /// wait + limit so the warm state is faithful.
    pub warmup: i64,
    /// User id for the pair (distinct from background users).
    pub pair_user: u32,
    /// Expose the backend's fault surface (available-node fraction,
    /// recent eviction rate) as extra state features. Off by default:
    /// with the flag off the encoded vectors are byte-identical to the
    /// pre-fault encoder, which is what the bit-identity pins rely on.
    #[serde(default)]
    pub fault_features: bool,
    /// Expose the backend's heterogeneity surface (per-pool headroom,
    /// contended running share) as extra state features. Off by default,
    /// with the same bit-identity guarantee as `fault_features`.
    #[serde(default)]
    pub hetero_features: bool,
}

impl Default for EpisodeConfig {
    fn default() -> Self {
        Self {
            pair_nodes: 1,
            pair_timelimit: 48 * HOUR,
            pair_runtime: 48 * HOUR,
            decision_interval: HOUR,
            history_k: 12,
            // Long enough for multi-day backlogs to rebuild inside the
            // replay window; short warm-ups systematically underestimate
            // congestion on clusters whose queues deepen over a week.
            warmup: 12 * DAY,
            pair_user: 1_000_000,
            fault_features: false,
            hetero_features: false,
        }
    }
}

/// Full record of one episode.
#[derive(Debug, Clone)]
pub struct EpisodeResult {
    /// Interruption/overlap outcome.
    pub outcome: EpisodeOutcome,
    /// When the predecessor was submitted.
    pub pred_submit: i64,
    /// When the predecessor started.
    pub pred_start: i64,
    /// When the predecessor ended.
    pub pred_end: i64,
    /// When the successor was submitted.
    pub succ_submit: i64,
    /// When the successor started.
    pub succ_start: i64,
    /// `(state matrix, action index)` at every decision the policy made
    /// (ends with the submit decision if the policy submitted).
    pub decisions: Vec<(Matrix, usize)>,
    /// Whether the policy submitted (vs the reactive fallback at
    /// predecessor completion).
    pub submitted_by_policy: bool,
}

impl EpisodeResult {
    /// The successor's queue wait.
    pub fn succ_wait(&self) -> i64 {
        self.succ_start - self.succ_submit
    }

    /// Moves the recorded decision trajectory out, leaving `decisions`
    /// empty. Converting decisions into training samples (replay
    /// experiences, REINFORCE steps) owns the `k × m` matrices outright —
    /// taking them avoids a per-decision matrix clone.
    pub fn take_decisions(&mut self) -> Vec<(Matrix, usize)> {
        std::mem::take(&mut self.decisions)
    }
}

/// One episode as an explicit state machine over any backend.
///
/// The driver owns (or mutably borrows, via the `&mut B` blanket impl of
/// [`ClusterBackend`]) the backend for the episode. Usage:
///
/// 1. [`EpisodeDriver::new`] replays warm-up, records the pre-`t0` history
///    window and submits the predecessor,
/// 2. [`advance`](Self::advance) moves to the next decision instant and
///    yields the [`DecisionContext`] — or `None` once the reactive
///    fallback submitted the successor,
/// 3. [`apply`](Self::apply) records the policy's decision; `true` means
///    the successor is in and the decision loop is over,
/// 4. [`finish`](Self::finish) resolves the outcome.
pub struct EpisodeDriver<B: ClusterBackend> {
    backend: B,
    cfg: EpisodeConfig,
    t0: i64,
    encoder: StateEncoder,
    history: StateHistory,
    succ_spec: SuccessorSpec,
    pred_id: u64,
    succ_id: Option<u64>,
    succ_submit: i64,
    submitted_by_policy: bool,
    decisions: Vec<(Matrix, usize)>,
    now: i64,
    // Reusable per-decision buffers: the snapshot's vectors, the state
    // matrix and the encoder's percentile scratch are written in place
    // every `advance()`, so the steady-state loop allocates nothing.
    snapshot: ClusterSnapshot,
    matrix: Matrix,
    enc_scratch: EncoderScratch,
    pending_decision: bool,
    record: bool,
    // Scalar context of the last `advance()` that yielded a decision, so
    // `decision_context()` can re-expose the full `DecisionContext` after
    // the `advance` borrow ended (the lockstep batch drivers' hook).
    last_pred_started: bool,
    last_pred_remaining: i64,
    last_avg_wait: Option<f64>,
}

impl<B: ClusterBackend> EpisodeDriver<B> {
    /// Resets `backend`, replays `trace` up to `t0` (recording the history
    /// window at the decision cadence) and submits the predecessor.
    pub fn new(mut backend: B, trace: &[JobRecord], cfg: &EpisodeConfig, t0: i64) -> Self {
        backend.reset_with(trace);
        let total_nodes = backend.total_nodes();

        let mut encoder = StateEncoder::new(total_nodes, cfg.pair_timelimit.max(48 * HOUR));
        encoder.fault_features = cfg.fault_features;
        encoder.hetero_features = cfg.hetero_features;
        let mut history = StateHistory::new(cfg.history_k.max(1));
        let succ_spec = SuccessorSpec {
            nodes: cfg.pair_nodes,
            timelimit: cfg.pair_timelimit,
        };

        // Replay up to the start of the recorded history window, then
        // record state vectors at the decision cadence while approaching
        // t0. The snapshot and encoder buffers allocated here are the ones
        // the decision loop keeps reusing.
        let mut snapshot = ClusterSnapshot::default();
        let mut enc_scratch = EncoderScratch::default();
        let record_start = t0 - (cfg.history_k as i64) * cfg.decision_interval;
        backend.run_until(record_start.min(t0));
        let mut t = record_start;
        while t < t0 {
            if t > record_start {
                backend.run_until(t);
            }
            let pred = PredecessorState {
                nodes: cfg.pair_nodes,
                timelimit: cfg.pair_timelimit,
                queue_time: 0,
                elapsed: 0,
            };
            backend.sample_into(&mut snapshot);
            history.push(encoder.encode_into(&snapshot, &pred, &succ_spec, &mut enc_scratch));
            t += cfg.decision_interval;
        }
        backend.run_until(t0);

        // Submit the predecessor.
        let pred_job = JobRecord::new(
            0,
            "mirage_pred",
            cfg.pair_user,
            t0,
            cfg.pair_nodes,
            cfg.pair_timelimit,
            cfg.pair_runtime,
        );
        let pred_id = backend.submit(pred_job);

        Self {
            backend,
            cfg: *cfg,
            t0,
            encoder,
            history,
            succ_spec,
            pred_id,
            succ_id: None,
            succ_submit: 0,
            submitted_by_policy: false,
            decisions: Vec::new(),
            now: t0,
            snapshot,
            matrix: Matrix::zeros(0, 0),
            enc_scratch,
            pending_decision: false,
            record: true,
            last_pred_started: false,
            last_pred_remaining: 0,
            last_avg_wait: None,
        }
    }

    /// Controls whether `apply()` records `(state matrix, action)` pairs
    /// into the episode result. Recording clones the `k × m` matrix per
    /// decision; pure serving/benchmark loops turn it off to keep the
    /// steady state allocation-free.
    pub fn set_record_decisions(&mut self, record: bool) {
        self.record = record;
    }

    fn successor_job(&self) -> JobRecord {
        JobRecord::new(
            0,
            "mirage_succ",
            self.cfg.pair_user,
            0, // overridden by submit()
            self.cfg.pair_nodes,
            self.cfg.pair_timelimit,
            self.cfg.pair_runtime,
        )
    }

    /// Advances to the next decision instant. Returns the context the
    /// policy must decide on, or `None` when the successor is already in
    /// (the reactive fallback fired, or [`apply`](Self::apply) submitted)
    /// — the decision loop is over and further calls stay `None`.
    ///
    /// The context borrows the driver's reusable snapshot/matrix buffers,
    /// so the steady-state loop allocates nothing; read what you need,
    /// then call [`apply`](Self::apply).
    pub fn advance(&mut self) -> Option<DecisionContext<'_>> {
        if self.succ_id.is_some() {
            // Calling past the end must not submit a second successor.
            return None;
        }
        self.now += self.cfg.decision_interval;
        self.backend.run_until(self.now);
        let now = self.now;
        let cfg = &self.cfg;

        let pred_status = self
            .backend
            .status(self.pred_id)
            .expect("predecessor exists");
        let (pred_state, pred_started, pred_remaining, pred_done) = match pred_status {
            JobStatus::Pending | JobStatus::Future => (
                PredecessorState {
                    nodes: cfg.pair_nodes,
                    timelimit: cfg.pair_timelimit,
                    queue_time: now - self.t0,
                    elapsed: 0,
                },
                false,
                cfg.pair_timelimit,
                false,
            ),
            JobStatus::Running { start } => (
                PredecessorState {
                    nodes: cfg.pair_nodes,
                    timelimit: cfg.pair_timelimit,
                    queue_time: start - self.t0,
                    elapsed: now - start,
                },
                true,
                (start + cfg.pair_timelimit - now).max(0),
                false,
            ),
            // A terminally failed predecessor (fault injection, retries
            // exhausted) ends the service instance exactly like a
            // completion: the reactive user restarts via the successor.
            JobStatus::Completed { start, end } | JobStatus::Failed { start, end } => (
                PredecessorState {
                    nodes: cfg.pair_nodes,
                    timelimit: cfg.pair_timelimit,
                    queue_time: start - self.t0,
                    elapsed: end - start,
                },
                true,
                0,
                true,
            ),
            JobStatus::Rejected => unreachable!("pair jobs always fit"),
        };

        self.backend.sample_into(&mut self.snapshot);
        self.history.push(self.encoder.encode_into(
            &self.snapshot,
            &pred_state,
            &self.succ_spec,
            &mut self.enc_scratch,
        ));

        // Reactive fallback: the predecessor is done — a real user submits
        // the successor right now no matter what the policy thinks.
        if pred_done {
            self.succ_id = Some(self.backend.submit(self.successor_job()));
            self.succ_submit = self.backend.now();
            return None;
        }

        self.history.write_matrix(&mut self.matrix);
        self.pending_decision = true;
        self.last_pred_started = pred_started;
        self.last_pred_remaining = pred_remaining;
        self.last_avg_wait = self.backend.avg_recent_wait(24 * HOUR);
        Some(self.decision_context())
    }

    /// The [`DecisionContext`] of the last [`advance`](Self::advance)
    /// that returned `Some`, rebuilt from the driver's reusable buffers.
    /// Lockstep batch drivers use this to re-expose every pending
    /// episode's context after their `advance` borrows ended (heuristic
    /// collection policies and feature extraction read it). Only
    /// meaningful between such an `advance` and the matching
    /// [`apply`](Self::apply).
    pub fn decision_context(&self) -> DecisionContext<'_> {
        DecisionContext {
            now: self.now,
            state_matrix: &self.matrix,
            snapshot: &self.snapshot,
            pred_started: self.last_pred_started,
            pred_remaining: self.last_pred_remaining,
            recent_avg_wait: self.last_avg_wait,
            successor: self.succ_spec,
        }
    }

    /// The driver's current `k × m` state matrix — the same buffer the
    /// last [`advance`](Self::advance)'s [`DecisionContext`] borrowed,
    /// re-exposed so lockstep batch drivers can gather many episodes'
    /// matrices after their `advance` borrows have ended. Only
    /// meaningful between an `advance` that returned `Some` and the
    /// matching [`apply`](Self::apply).
    pub fn state_matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Records the policy's decision for the context returned by the last
    /// [`advance`](Self::advance). Returns `true` once the successor is
    /// submitted (the decision loop is over).
    pub fn apply(&mut self, action: Action) -> bool {
        assert!(self.pending_decision, "apply() must follow advance()");
        self.pending_decision = false;
        if self.record {
            self.decisions.push((self.matrix.clone(), action.index()));
        }
        if action == Action::Submit {
            self.succ_id = Some(self.backend.submit(self.successor_job()));
            self.succ_submit = self.backend.now();
            self.submitted_by_policy = true;
            return true;
        }
        false
    }

    /// Runs the backend until both the predecessor completed and the
    /// successor started, and returns the episode record plus the backend
    /// (reusable for the next episode after a reset).
    pub fn finish(mut self) -> (EpisodeResult, B) {
        let succ_id = self.succ_id.expect("successor submitted before finish()");
        let (pred_start, pred_end, succ_start) = loop {
            let pred_done = matches!(
                self.backend.status(self.pred_id),
                Some(JobStatus::Completed { .. } | JobStatus::Failed { .. })
            );
            let succ_started = matches!(
                self.backend.status(succ_id),
                Some(
                    JobStatus::Running { .. }
                        | JobStatus::Completed { .. }
                        | JobStatus::Failed { .. }
                )
            );
            if pred_done && succ_started {
                let (ps, pe) = match self.backend.status(self.pred_id) {
                    Some(JobStatus::Completed { start, end })
                    | Some(JobStatus::Failed { start, end }) => (start, end),
                    _ => unreachable!(),
                };
                let ss = match self.backend.status(succ_id) {
                    Some(JobStatus::Running { start }) => start,
                    Some(JobStatus::Completed { start, .. }) => start,
                    Some(JobStatus::Failed { start, .. }) => start,
                    _ => unreachable!(),
                };
                break (ps, pe, ss);
            }
            assert!(
                self.backend.is_active(),
                "simulation drained before the pair resolved"
            );
            self.backend.step(HOUR);
        };

        // Downtime the pair suffered from fault evictions (eviction →
        // restart gaps) is interruption the user experienced, charged by
        // the reward identically to the submit-too-late kind.
        let mut outcome = EpisodeOutcome::from_times(pred_end, succ_start);
        outcome.fault_interruption = self.backend.job_faults(self.pred_id).downtime
            + self.backend.job_faults(succ_id).downtime;

        let result = EpisodeResult {
            outcome,
            pred_submit: self.t0,
            pred_start,
            pred_end,
            succ_submit: self.succ_submit,
            succ_start,
            decisions: self.decisions,
            submitted_by_policy: self.submitted_by_policy,
        };
        (result, self.backend)
    }

    /// Abandons the episode, handing the backend back untouched-from-here
    /// (the next [`EpisodeDriver::new`] resets it anyway).
    pub fn into_backend(self) -> B {
        self.backend
    }
}

/// Runs one episode on any backend. `trace` is the background workload
/// (pre-windowed to `[t0 − warmup, …]` by the caller for speed); `t0` is
/// the predecessor submission instant; `decide` is called at each decision
/// point. The backend is reset first, so any backend value can be reused
/// across episodes.
pub fn run_episode<B: ClusterBackend>(
    backend: &mut B,
    trace: &[JobRecord],
    cfg: &EpisodeConfig,
    t0: i64,
    mut decide: impl FnMut(&DecisionContext) -> Action,
) -> EpisodeResult {
    let mut driver = EpisodeDriver::new(backend, trace, cfg, t0);
    // The context borrows the driver's buffers, so the decision is taken
    // before `apply` re-borrows the driver mutably.
    while let Some(ctx) = driver.advance() {
        let action = decide(&ctx);
        if driver.apply(action) {
            break;
        }
    }
    driver.finish().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_sim::{BackendKind, SimConfig, Simulator};
    use mirage_trace::MINUTE;

    fn bg_job(id: u64, submit: i64, nodes: u32, runtime: i64) -> JobRecord {
        JobRecord::new(
            id,
            format!("bg{id}"),
            5,
            submit,
            nodes,
            2 * runtime,
            runtime,
        )
    }

    fn small_cfg() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        }
    }

    fn sim4() -> Simulator {
        Simulator::new(SimConfig::new(4))
    }

    #[test]
    fn reactive_on_idle_cluster_has_zero_everything() {
        // Empty cluster: pred starts instantly, successor (reactive)
        // submitted at pred end also starts instantly → no gap, no overlap.
        let r = run_episode(&mut sim4(), &[], &small_cfg(), DAY, |_| Action::Wait);
        assert!(!r.submitted_by_policy);
        assert_eq!(r.outcome.interruption, 0);
        assert_eq!(r.outcome.overlap, 0);
        assert_eq!(r.pred_start, DAY);
        assert_eq!(r.succ_start, r.pred_end);
    }

    #[test]
    fn reactive_under_load_gets_interrupted() {
        // Background saturates the cluster around the pred end, so the
        // reactively-submitted successor must wait → interruption.
        let cfg = small_cfg();
        let t0 = DAY;
        let pred_end = t0 + cfg.pair_runtime; // pred starts immediately on idle 4-node cluster (1 node)
        let bg: Vec<JobRecord> = (0..12)
            .map(|i| bg_job(i + 1, pred_end - HOUR + i as i64 * 60, 2, 6 * HOUR))
            .collect();
        let r = run_episode(&mut sim4(), &bg, &cfg, t0, |_| Action::Wait);
        assert!(
            r.outcome.interruption > 0,
            "queue was full at pred end: {:?}",
            r.outcome
        );
        assert_eq!(r.outcome.overlap, 0);
    }

    #[test]
    fn early_submission_on_idle_cluster_pays_overlap() {
        // Submitting immediately on an idle cluster starts the successor
        // right away → overlap ≈ the predecessor's whole runtime.
        let r = run_episode(&mut sim4(), &[], &small_cfg(), DAY, |_| Action::Submit);
        assert!(r.submitted_by_policy);
        assert_eq!(r.outcome.interruption, 0);
        assert!(r.outcome.overlap > 3 * HOUR, "overlap {:?}", r.outcome);
    }

    #[test]
    fn well_timed_submission_beats_reactive_under_load() {
        // Same congested backdrop; a policy submitting ~2 h before the
        // pred end lets the successor age in the queue.
        let cfg = small_cfg();
        let t0 = DAY;
        let pred_end = t0 + cfg.pair_runtime;
        let bg: Vec<JobRecord> = (0..12)
            .map(|i| bg_job(i + 1, pred_end - HOUR + i as i64 * 60, 2, 6 * HOUR))
            .collect();
        let mut sim = sim4();
        let reactive = run_episode(&mut sim, &bg, &cfg, t0, |_| Action::Wait);
        let proactive = run_episode(&mut sim, &bg, &cfg, t0, |ctx| {
            if ctx.pred_started && ctx.pred_remaining <= 2 * HOUR {
                Action::Submit
            } else {
                Action::Wait
            }
        });
        assert!(proactive.submitted_by_policy);
        assert!(
            proactive.outcome.interruption < reactive.outcome.interruption,
            "proactive {:?} vs reactive {:?}",
            proactive.outcome,
            reactive.outcome
        );
    }

    #[test]
    fn decisions_record_states_and_actions() {
        let cfg = small_cfg();
        let mut count = 0;
        let r = run_episode(&mut sim4(), &[], &cfg, DAY, |_| {
            count += 1;
            if count >= 3 {
                Action::Submit
            } else {
                Action::Wait
            }
        });
        assert_eq!(r.decisions.len(), 3);
        assert_eq!(r.decisions[0].1, 0);
        assert_eq!(r.decisions[2].1, 1);
        let (m, _) = &r.decisions[0];
        assert_eq!(m.shape(), (cfg.history_k, crate::state::STATE_VARS));
    }

    #[test]
    fn succ_wait_is_consistent() {
        let r = run_episode(&mut sim4(), &[], &small_cfg(), DAY, |_| Action::Wait);
        assert_eq!(r.succ_wait(), r.succ_start - r.succ_submit);
        assert!(r.succ_wait() >= 0);
    }

    #[test]
    fn any_backend_runs_episodes_too() {
        // The same episode through enum-dispatched backends: the
        // tick-driven reference produces a valid (slightly tick-shifted)
        // outcome through the identical generic code path.
        let cfg = small_cfg();
        for kind in [BackendKind::EventDriven, BackendKind::Tick] {
            let mut backend = SimConfig::builder().nodes(4).backend(kind).build();
            let r = run_episode(&mut backend, &[], &cfg, DAY, |_| Action::Wait);
            // The tick-driven backend starts jobs only on scheduler
            // ticks, so the predecessor's end drifts off the decision
            // grid and the reactive fallback (which fires at decision
            // instants) pays up to one decision interval plus one
            // scheduling pass.
            assert!(
                r.outcome.interruption <= cfg.decision_interval + 120,
                "{kind:?}: {:?}",
                r.outcome
            );
            assert_eq!(r.outcome.overlap, 0, "{kind:?}");
            assert!(r.pred_start >= DAY, "{kind:?}");
        }
    }

    #[test]
    fn driver_steps_match_run_episode() {
        // Driving the state machine by hand gives the same record as the
        // closure loop.
        let cfg = small_cfg();
        let policy = |ctx: &DecisionContext| {
            if ctx.pred_started && ctx.pred_remaining <= HOUR {
                Action::Submit
            } else {
                Action::Wait
            }
        };
        let by_loop = run_episode(&mut sim4(), &[], &cfg, DAY, policy);

        let mut sim = sim4();
        let mut driver = EpisodeDriver::new(&mut sim, &[], &cfg, DAY);
        while let Some(ctx) = driver.advance() {
            let action = policy(&ctx);
            if driver.apply(action) {
                break;
            }
        }
        let (by_driver, _) = driver.finish();
        assert_eq!(by_driver.outcome, by_loop.outcome);
        assert_eq!(by_driver.decisions.len(), by_loop.decisions.len());
        assert_eq!(by_driver.submitted_by_policy, by_loop.submitted_by_policy);
        assert_eq!(by_driver.succ_start, by_loop.succ_start);
    }

    #[test]
    fn advance_past_the_end_is_inert() {
        // Once the successor is in, extra advance() calls must not submit
        // a second successor or disturb the outcome (release-mode safety
        // for external drivers of the state machine).
        let mut sim = sim4();
        let mut driver = EpisodeDriver::new(&mut sim, &[], &small_cfg(), DAY);
        while let Some(ctx) = driver.advance() {
            let _ = ctx;
            if driver.apply(Action::Submit) {
                break;
            }
        }
        assert!(driver.advance().is_none());
        assert!(driver.advance().is_none());
        let (result, _) = driver.finish();
        assert!(result.submitted_by_policy);
        assert_eq!(result.decisions.len(), 1);
    }

    #[test]
    fn backend_is_reusable_across_episodes() {
        // One backend value, many episodes: reset makes them independent.
        let mut sim = sim4();
        let a = run_episode(&mut sim, &[], &small_cfg(), DAY, |_| Action::Wait);
        let b = run_episode(&mut sim, &[], &small_cfg(), DAY, |_| Action::Wait);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.pred_start, b.pred_start);
    }
}
