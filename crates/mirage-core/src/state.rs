//! State encoding (§4.1–4.2 of the paper).
//!
//! Each instant is summarized by an `m = 46`-dimensional vector:
//!
//! | vars   | content                                                        |
//! |--------|----------------------------------------------------------------|
//! | 1      | queued job count                                               |
//! | 2–6    | queued sizes: 0/25/50/75/100th percentiles                     |
//! | 7–11   | queued ages: percentiles                                       |
//! | 12–16  | queued runtime limits: percentiles                             |
//! | 17     | running job count                                              |
//! | 18–24  | running sizes: percentiles + mean + std                        |
//! | 25–29  | running elapsed: percentiles                                   |
//! | 30–34  | running limits: percentiles                                    |
//! | 35–38  | predecessor size, limit, queue time, elapsed                   |
//! | 39–40  | successor size, limit                                          |
//! | 41–42  | fault state: available-node fraction, recent eviction rate     |
//! | 43–46  | hetero state: pool 0/1 free fractions, tail-pool free, contention |
//!
//! The fault pair is written only when
//! [`StateEncoder::fault_features`] is set (off by default): with the
//! flag off both variables are the constant `0.0`, keeping every
//! pre-fault encoding byte-identical. The hetero quad follows the same
//! discipline behind [`StateEncoder::hetero_features`]: the free-node
//! fractions of the first two pools, the aggregate free fraction of any
//! remaining pools, and the contended share of running jobs — all `0.0`
//! with the flag off, so hetero-off encodings stay byte-identical too.
//!
//! `k` consecutive vectors, recorded every `interval` seconds, stack into
//! the `k × m` state matrix the foundation model consumes (the paper's
//! default: 144 rows at 10-minute cadence = 24 h of history).
//!
//! All features are normalized: node counts by the partition size, times
//! by the site's 48 h limit, counts by `log1p` against a nominal queue
//! scale — trees ignore this, the transformer needs it.

use mirage_nn::Matrix;
use mirage_sim::ClusterSnapshot;
use serde::{Deserialize, Serialize};

/// Width of the per-instant state vector: the paper's 40 variables plus
/// the two fault-state variables (zero unless fault features are on) plus
/// the four hetero-state variables (zero unless hetero features are on).
pub const STATE_VARS: usize = 46;

/// Predecessor-job status at encoding time (§4.1(c)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredecessorState {
    /// Requested nodes.
    pub nodes: u32,
    /// Wall-clock limit, seconds.
    pub timelimit: i64,
    /// Queue wait it experienced, seconds (0 while still queued).
    pub queue_time: i64,
    /// Elapsed runtime, seconds (0 while queued).
    pub elapsed: i64,
}

/// Successor-job static information (§4.1(d); it has not entered the
/// cluster yet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuccessorSpec {
    /// Requested nodes.
    pub nodes: u32,
    /// Wall-clock limit, seconds.
    pub timelimit: i64,
}

/// Normalizing encoder from cluster snapshots to state vectors/matrices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateEncoder {
    /// Partition size for node normalization.
    pub total_nodes: u32,
    /// Time normalizer (the site's 48 h cap).
    pub max_time: i64,
    /// Nominal queue length for count normalization.
    pub queue_scale: f32,
    /// Whether to write the fault-state variables (vars 41–42). Off by
    /// default so fault-free encodings stay byte-identical to the
    /// pre-fault layout.
    #[serde(default)]
    pub fault_features: bool,
    /// Whether to write the hetero-state variables (vars 43–46). Off by
    /// default so hetero-off encodings stay byte-identical to the
    /// pre-pool layout.
    #[serde(default)]
    pub hetero_features: bool,
}

/// Reusable working memory for [`StateEncoder::encode_into`]: one value
/// buffer shared by the six percentile statistics, so per-decision
/// encoding allocates nothing once its capacity covers the backlog.
#[derive(Debug, Clone, Default)]
pub struct EncoderScratch {
    vals: Vec<f32>,
}

impl StateEncoder {
    /// Encoder for a partition of `total_nodes` with a 48 h limit.
    pub fn new(total_nodes: u32, max_time: i64) -> Self {
        Self {
            total_nodes,
            max_time,
            queue_scale: 1000.0,
            fault_features: false,
            hetero_features: false,
        }
    }

    #[inline]
    fn norm_nodes(&self, n: f32) -> f32 {
        n / self.total_nodes.max(1) as f32
    }

    #[inline]
    fn norm_time(&self, t: f32) -> f32 {
        (t / self.max_time as f32).clamp(0.0, 4.0)
    }

    #[inline]
    fn norm_count(&self, c: f32) -> f32 {
        (1.0 + c).ln() / (1.0 + self.queue_scale).ln()
    }

    /// Encodes one instant into the 46-variable vector (allocating
    /// convenience wrapper around [`StateEncoder::encode_into`]).
    pub fn encode(
        &self,
        snap: &ClusterSnapshot,
        pred: &PredecessorState,
        succ: &SuccessorSpec,
    ) -> [f32; STATE_VARS] {
        self.encode_into(snap, pred, succ, &mut EncoderScratch::default())
    }

    /// Encodes one instant into the 46-variable vector, computing every
    /// percentile through the reusable `scratch` buffer: no allocation
    /// once its capacity covers the deepest queue/running set seen. The
    /// output is identical to [`StateEncoder::encode`].
    pub fn encode_into(
        &self,
        snap: &ClusterSnapshot,
        pred: &PredecessorState,
        succ: &SuccessorSpec,
        scratch: &mut EncoderScratch,
    ) -> [f32; STATE_VARS] {
        let mut v = [0.0f32; STATE_VARS];
        let vals = &mut scratch.vals;

        // (a) queue state.
        v[0] = self.norm_count(snap.queued.len() as f32);
        fill(vals, snap.queued.iter().map(|q| q.nodes as f32));
        percentiles_in_place(&mut v[1..6], vals, |x| self.norm_nodes(x));
        fill(vals, snap.queued.iter().map(|q| q.age as f32));
        percentiles_in_place(&mut v[6..11], vals, |x| self.norm_time(x));
        fill(vals, snap.queued.iter().map(|q| q.timelimit as f32));
        percentiles_in_place(&mut v[11..16], vals, |x| self.norm_time(x));

        // (b) server state. Mean/std are computed *before* the percentile
        // sort, in snapshot order, matching the historical arithmetic.
        v[16] = self.norm_count(snap.running.len() as f32);
        fill(vals, snap.running.iter().map(|r| r.nodes as f32));
        v[22] = self.norm_nodes(mean(vals));
        v[23] = self.norm_nodes(std_dev(vals));
        percentiles_in_place(&mut v[17..22], vals, |x| self.norm_nodes(x));
        fill(vals, snap.running.iter().map(|r| r.elapsed as f32));
        percentiles_in_place(&mut v[24..29], vals, |x| self.norm_time(x));
        fill(vals, snap.running.iter().map(|r| r.timelimit as f32));
        percentiles_in_place(&mut v[29..34], vals, |x| self.norm_time(x));

        // (c) predecessor job state.
        v[34] = self.norm_nodes(pred.nodes as f32);
        v[35] = self.norm_time(pred.timelimit as f32);
        v[36] = self.norm_time(pred.queue_time as f32);
        v[37] = self.norm_time(pred.elapsed as f32);

        // (d) successor job information.
        v[38] = self.norm_nodes(succ.nodes as f32);
        v[39] = self.norm_time(succ.timelimit as f32);

        // (e) fault state, gated so fault-free encodings stay
        // byte-identical: healthy-node fraction and recent eviction rate.
        if self.fault_features {
            v[40] = self.norm_nodes(snap.available_nodes() as f32);
            v[41] = self.norm_count(snap.recent_evictions as f32);
        }

        // (f) hetero state, gated the same way: per-pool headroom for the
        // two head pools, aggregate headroom of the tail, and the
        // contended share of running jobs.
        if self.hetero_features {
            v[42] = self.norm_nodes(snap.pool_free.first().copied().unwrap_or(0) as f32);
            v[43] = self.norm_nodes(snap.pool_free.get(1).copied().unwrap_or(0) as f32);
            let tail: u32 = snap.pool_free.iter().skip(2).sum();
            v[44] = self.norm_nodes(tail as f32);
            v[45] = snap.contention() as f32;
        }
        v
    }
}

/// Refills `buf` from an iterator without shrinking its capacity.
fn fill(buf: &mut Vec<f32>, it: impl Iterator<Item = f32>) {
    buf.clear();
    buf.extend(it);
}

/// Fixed-length history of state vectors forming the `k × m` state matrix.
#[derive(Debug, Clone)]
pub struct StateHistory {
    k: usize,
    rows: Vec<[f32; STATE_VARS]>,
}

impl StateHistory {
    /// History holding the most recent `k` vectors.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "history must hold at least one row");
        Self {
            k,
            rows: Vec::with_capacity(k),
        }
    }

    /// Appends the newest vector, evicting the oldest beyond `k`.
    pub fn push(&mut self, v: [f32; STATE_VARS]) {
        if self.rows.len() == self.k {
            self.rows.remove(0);
        }
        self.rows.push(v);
    }

    /// Recorded row count (≤ k).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The state matrix: oldest row first, newest last. Until `k` rows have
    /// been recorded, the earliest row is repeated as left-padding so the
    /// matrix always has `k` rows (the foundation model expects a fixed
    /// sequence length).
    pub fn matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.write_matrix(&mut out);
        out
    }

    /// Writes the state matrix into a caller-provided buffer (reshaped in
    /// place; no allocation once warm). Identical contents to
    /// [`StateHistory::matrix`].
    pub fn write_matrix(&self, out: &mut Matrix) {
        out.reset(self.k, STATE_VARS);
        self.write_matrix_rows(out, 0);
    }

    /// Writes the `k` state-matrix rows into rows `row0 .. row0 + k` of a
    /// larger (already shaped) matrix — the row-stacked-batch assembly
    /// primitive: lockstep engines write each episode's block straight
    /// into the shared batch matrix instead of staging a `k × m` copy.
    /// Row contents are identical to [`StateHistory::matrix`].
    pub fn write_matrix_rows(&self, out: &mut Matrix, row0: usize) {
        assert!(!self.rows.is_empty(), "no state recorded yet");
        let pad = self.k - self.rows.len();
        for r in 0..self.k {
            let idx = r.saturating_sub(pad).min(self.rows.len() - 1);
            out.row_mut(row0 + r).copy_from_slice(&self.rows[idx]);
        }
    }

    /// Most recent vector.
    pub fn latest(&self) -> &[f32; STATE_VARS] {
        self.rows.last().expect("no state recorded yet")
    }
}

/// Writes `[p0, p25, p50, p75, p100]` of `xs` (after `f`) into `out`,
/// using in-place selection (no copy, no allocation, O(n) instead of a
/// full sort — this runs six times per decision). The selected values are
/// exactly the order statistics a full sort would produce.
fn percentiles_in_place(out: &mut [f32], xs: &mut [f32], f: impl Fn(f32) -> f32) {
    debug_assert_eq!(out.len(), 5);
    if xs.is_empty() {
        out.fill(0.0);
        return;
    }
    let n = xs.len();
    let idx = |p: f32| ((n - 1) as f32 * p).round() as usize;
    let (i25, i50, i75) = (idx(0.25), idx(0.5), idx(0.75));
    // total_cmp: branchless, and these features never produce NaN.
    let cmp = |a: &f32, b: &f32| a.total_cmp(b);
    if n <= 128 {
        // Small inputs: one unstable sort beats repeated selection.
        xs.sort_unstable_by(cmp);
    } else {
        // Deep backlogs: O(n) selection instead of an O(n log n) sort.
        // After the three nested selects (each within the suffix the
        // previous one partitioned), min/max are confined to the outer
        // partitions.
        xs.select_nth_unstable_by(i25, cmp);
        if i50 > i25 {
            xs[i25..].select_nth_unstable_by(i50 - i25, cmp);
        }
        if i75 > i50 {
            xs[i50..].select_nth_unstable_by(i75 - i50, cmp);
        }
        let min = xs[..=i25].iter().copied().fold(f32::INFINITY, f32::min);
        let max = xs[i75..].iter().copied().fold(f32::NEG_INFINITY, f32::max);
        out[0] = f(min);
        out[1] = f(xs[i25]);
        out[2] = f(xs[i50]);
        out[3] = f(xs[i75]);
        out[4] = f(max);
        return;
    }
    out[0] = f(xs[0]);
    out[1] = f(xs[i25]);
    out[2] = f(xs[i50]);
    out[3] = f(xs[i75]);
    out[4] = f(xs[n - 1]);
}

fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

fn std_dev(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_sim::{QueuedJobView, RunningJobView};
    use mirage_trace::HOUR;

    fn snap(queued: usize, running: usize) -> ClusterSnapshot {
        ClusterSnapshot {
            now: 1000,
            free_nodes: 4,
            total_nodes: 16,
            down_nodes: 0,
            recent_evictions: 0,
            queued: (0..queued)
                .map(|i| QueuedJobView {
                    id: i as u64,
                    nodes: 1 + (i % 4) as u32,
                    submit: 0,
                    age: (i as i64 + 1) * HOUR,
                    timelimit: 24 * HOUR,
                    user: 1,
                })
                .collect(),
            running: (0..running)
                .map(|i| RunningJobView {
                    id: 100 + i as u64,
                    nodes: 2,
                    start: 0,
                    elapsed: (i as i64 + 1) * HOUR / 2,
                    timelimit: 48 * HOUR,
                    user: 2,
                })
                .collect(),
            ..ClusterSnapshot::default()
        }
    }

    fn pred() -> PredecessorState {
        PredecessorState {
            nodes: 1,
            timelimit: 48 * HOUR,
            queue_time: HOUR,
            elapsed: 10 * HOUR,
        }
    }

    fn succ() -> SuccessorSpec {
        SuccessorSpec {
            nodes: 1,
            timelimit: 48 * HOUR,
        }
    }

    #[test]
    fn vector_is_forty_six_wide_and_finite() {
        let enc = StateEncoder::new(16, 48 * HOUR);
        let v = enc.encode(&snap(5, 3), &pred(), &succ());
        assert_eq!(v.len(), 46);
        assert!(v.iter().all(|x| x.is_finite()));
        assert_eq!(
            &v[40..],
            &[0.0; 6],
            "fault and hetero vars stay zero with the flags off"
        );
    }

    #[test]
    fn fault_features_encode_health_and_eviction_rate() {
        let mut enc = StateEncoder::new(16, 48 * HOUR);
        enc.fault_features = true;
        let mut s = snap(2, 1);
        s.down_nodes = 4;
        s.recent_evictions = 3;
        let v = enc.encode(&s, &pred(), &succ());
        assert!((v[40] - 12.0 / 16.0).abs() < 1e-6, "12 of 16 nodes healthy");
        assert!(v[41] > 0.0, "eviction rate surfaces");
        // The first 40 variables are untouched by the flag.
        let mut off = enc;
        off.fault_features = false;
        let v_off = off.encode(&s, &pred(), &succ());
        assert_eq!(&v[..40], &v_off[..40]);
        assert_eq!(&v_off[40..], &[0.0; 6]);
    }

    #[test]
    fn hetero_features_encode_pool_headroom_and_contention() {
        let mut enc = StateEncoder::new(16, 48 * HOUR);
        enc.hetero_features = true;
        let mut s = snap(2, 4);
        s.pool_free = vec![2, 6, 3, 1];
        s.pool_total = vec![4, 8, 3, 1];
        s.contended_running = 1;
        let v = enc.encode(&s, &pred(), &succ());
        assert!((v[42] - 2.0 / 16.0).abs() < 1e-6, "pool 0 headroom");
        assert!((v[43] - 6.0 / 16.0).abs() < 1e-6, "pool 1 headroom");
        assert!((v[44] - 4.0 / 16.0).abs() < 1e-6, "tail pools aggregate");
        assert!((v[45] - 0.25).abs() < 1e-6, "1 of 4 running contended");
        // The first 42 variables are untouched by the flag, and a
        // homogeneous snapshot encodes zeros even with the flag on.
        let mut off = enc;
        off.hetero_features = false;
        let v_off = off.encode(&s, &pred(), &succ());
        assert_eq!(&v[..42], &v_off[..42]);
        assert_eq!(&v_off[42..], &[0.0; 4]);
        let v_homog = enc.encode(&snap(2, 0), &pred(), &succ());
        assert_eq!(&v_homog[42..], &[0.0; 4]);
    }

    #[test]
    fn empty_cluster_encodes_zeros_for_stats() {
        let enc = StateEncoder::new(16, 48 * HOUR);
        let v = enc.encode(&snap(0, 0), &pred(), &succ());
        assert_eq!(v[0], 0.0, "log1p(0) = 0 queue count");
        assert!(v[1..16].iter().all(|&x| x == 0.0), "queue stats empty");
        assert!(v[17..34].iter().all(|&x| x == 0.0), "server stats empty");
        // Predecessor/successor vars still present.
        assert!(v[34] > 0.0 && v[39] > 0.0);
    }

    #[test]
    fn busier_queue_raises_count_var() {
        let enc = StateEncoder::new(16, 48 * HOUR);
        let v_small = enc.encode(&snap(2, 0), &pred(), &succ());
        let v_big = enc.encode(&snap(50, 0), &pred(), &succ());
        assert!(v_big[0] > v_small[0]);
    }

    #[test]
    fn percentiles_are_monotone() {
        let enc = StateEncoder::new(16, 48 * HOUR);
        let v = enc.encode(&snap(9, 0), &pred(), &succ());
        for w in v[6..11].windows(2) {
            assert!(
                w[0] <= w[1],
                "age percentiles must be sorted: {:?}",
                &v[6..11]
            );
        }
    }

    #[test]
    fn normalization_bounds_hold() {
        let enc = StateEncoder::new(16, 48 * HOUR);
        let v = enc.encode(&snap(20, 10), &pred(), &succ());
        // Node fractions within [0, 2] (oversized jobs clamp naturally).
        assert!(v[1..6].iter().all(|&x| (0.0..=2.0).contains(&x)));
        // Times clamped at 4× the max limit.
        assert!(v.iter().all(|&x| x <= 4.0));
    }

    #[test]
    fn history_pads_then_slides() {
        let mut h = StateHistory::new(3);
        let mk = |x: f32| {
            let mut v = [0.0f32; STATE_VARS];
            v[0] = x;
            v
        };
        h.push(mk(1.0));
        let m = h.matrix();
        assert_eq!(m.shape(), (3, STATE_VARS));
        // All rows padded with the single recorded vector.
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 0), 1.0);
        h.push(mk(2.0));
        h.push(mk(3.0));
        h.push(mk(4.0)); // evicts 1.0
        let m = h.matrix();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(2, 0), 4.0);
        assert_eq!(h.latest()[0], 4.0);
    }

    #[test]
    #[should_panic(expected = "no state recorded")]
    fn empty_history_matrix_panics() {
        let h = StateHistory::new(2);
        let _ = h.matrix();
    }
}
