//! Batched episode engine: N provisioning episodes stepped in lockstep
//! with **one batched NN forward per decision tick**.
//!
//! Training and evaluation throughput in the paper's regime is dominated
//! by running many episodes, and each episode's per-decision forward pass
//! is a chain of tiny matmuls that cannot saturate a core on its own. The
//! [`BatchedEpisodeDriver`] amortizes them: it drives one
//! [`EpisodeDriver`] per episode (each against its own backend — built,
//! e.g., by `mirage_sim::BackendPool::build_all`), gathers the episodes'
//! `k × m` state matrices into one row-stacked `(width·k) × m` batch, and
//! hands the whole batch to a [`BatchPolicy`] — the RL agents answer it
//! with a single `q_values_batch`/`p_probs_batch` forward instead of one
//! forward per episode.
//!
//! Episodes finish at different ticks (a policy submits, or the reactive
//! fallback fires); the batch narrows as they do, and the per-episode
//! results are **bit-identical** to sequential execution — the batched NN
//! paths are pinned to their sequential counterparts by property tests,
//! and each episode's simulator evolves exactly as it would alone.
//!
//! The engine serves **both evaluation and training collection**: greedy
//! serving goes through [`BatchPolicy`]/[`BatchedEpisodeDriver::run`],
//! while the §4.9 training loops (`mirage_core::train`) drive windows of
//! ε-greedy/stochastic episodes through
//! [`LanePolicy`]/[`BatchedEpisodeDriver::run_lanes`] — same lockstep
//! ticks and batched forwards, plus per-lane RNG/ε streams and
//! per-episode [`DecisionContext`] access
//! ([`BatchedEpisodeDriver::pending_context`]) for heuristic collection
//! and feature extraction.

use mirage_nn::Matrix;
use mirage_rl::{DqnAgent, PgAgent};
use mirage_sim::ClusterBackend;
use mirage_trace::JobRecord;

use crate::episode::{Action, DecisionContext, EpisodeConfig, EpisodeDriver, EpisodeResult};
use crate::state::STATE_VARS;

/// A policy that answers one decision tick for a whole batch of episodes:
/// `states` row-stacks `width` state matrices (`width · k` rows), and the
/// implementation pushes exactly `width` action indices (0 = wait,
/// 1 = submit) into `actions`, one per block in order.
///
/// Implemented by the greedy RL agents (one batched forward per call) and
/// by plain closures for heuristics and tests.
pub trait BatchPolicy {
    /// Decides all `width` episodes of one lockstep tick.
    fn decide_batch(&mut self, states: &Matrix, width: usize, actions: &mut Vec<usize>);
}

impl BatchPolicy for DqnAgent {
    fn decide_batch(&mut self, states: &Matrix, width: usize, actions: &mut Vec<usize>) {
        self.act_greedy_batch(states, width, actions);
    }
}

impl BatchPolicy for PgAgent {
    fn decide_batch(&mut self, states: &Matrix, width: usize, actions: &mut Vec<usize>) {
        self.act_greedy_batch(states, width, actions);
    }
}

impl<F: FnMut(&Matrix, usize, &mut Vec<usize>)> BatchPolicy for F {
    fn decide_batch(&mut self, states: &Matrix, width: usize, actions: &mut Vec<usize>) {
        self(states, width, actions)
    }
}

/// A policy deciding one lockstep tick of a training/collection *window*.
///
/// Unlike [`BatchPolicy`] — which sees only the row-stacked states — a
/// lane policy is handed the whole driver, so it can map batch rows to
/// window lanes ([`BatchedEpisodeDriver::pending`]) for per-lane RNG and
/// ε streams that survive the batch narrowing, and inspect each pending
/// episode's [`DecisionContext`]
/// ([`BatchedEpisodeDriver::pending_context`]) for heuristic policies
/// and feature extraction. Implemented by the training window adapters
/// in `mirage_core::train`.
pub trait LanePolicy<B: ClusterBackend> {
    /// Called once before a window's first tick with the window's global
    /// episode-ordinal range: episodes `first..first + width`, in lane
    /// order. Stateless policies keep the no-op default.
    fn begin_window(&mut self, first: usize, width: usize) {
        let _ = (first, width);
    }

    /// Decides one lockstep tick: pushes exactly one action index per
    /// pending batch row, in row order ([`BatchedEpisodeDriver::pending`]
    /// maps rows to lanes).
    fn decide_lanes(&mut self, driver: &BatchedEpisodeDriver<B>, actions: &mut Vec<usize>);
}

/// N lockstep episodes behind one batched decision loop.
///
/// Usage mirrors [`EpisodeDriver`], lifted to a batch:
///
/// 1. [`BatchedEpisodeDriver::new`] starts one episode per
///    `(backend, t0)` pair (warm-up replay and predecessor submission
///    happen per episode, exactly as sequentially),
/// 2. [`advance_tick`](Self::advance_tick) moves every still-deciding
///    episode one decision interval and assembles the row-stacked batch
///    of state matrices; episodes whose reactive fallback fired drop out,
/// 3. [`apply`](Self::apply) records one action per pending episode,
/// 4. [`finish`](Self::finish) resolves every episode's outcome.
///
/// [`run`](Self::run) wires 2–3 to a [`BatchPolicy`] until no episode is
/// deciding. The assembled batch and the pending bookkeeping reuse their
/// buffers, so a steady-state tick allocates nothing.
pub struct BatchedEpisodeDriver<B: ClusterBackend> {
    drivers: Vec<EpisodeDriver<B>>,
    /// Per episode: still inside the decision loop.
    deciding: Vec<bool>,
    /// Episode indices awaiting an action for the current tick, in batch
    /// row order.
    pending: Vec<usize>,
    /// Row-stacked state matrices of the pending episodes
    /// (`pending.len() · k × m`).
    batch: Matrix,
    k: usize,
}

impl<B: ClusterBackend> BatchedEpisodeDriver<B> {
    /// Starts one episode per backend: `backends[i]` hosts an episode
    /// whose predecessor is submitted at `t0s[i]`, all sharing `trace`
    /// and `cfg`.
    pub fn new(
        backends: impl IntoIterator<Item = B>,
        trace: &[JobRecord],
        cfg: &EpisodeConfig,
        t0s: &[i64],
    ) -> Self {
        Self::with_windows(backends, t0s.iter().map(|_| trace), cfg, t0s)
    }

    /// [`new`](Self::new) with a **per-episode background trace**:
    /// episode `i` replays `windows[i]`. Training windows mix episode
    /// starts, and each start replays only its own
    /// `mirage_core::train::episode_window` slice of the full trace —
    /// sharing one slice across different `t0`s would change every
    /// episode's warm-up state (and break bit-identity with sequential
    /// training).
    pub fn with_windows<'w>(
        backends: impl IntoIterator<Item = B>,
        windows: impl IntoIterator<Item = &'w [JobRecord]>,
        cfg: &EpisodeConfig,
        t0s: &[i64],
    ) -> Self {
        let backends: Vec<B> = backends.into_iter().collect();
        let windows: Vec<&[JobRecord]> = windows.into_iter().collect();
        assert_eq!(
            backends.len(),
            t0s.len(),
            "need exactly one backend per episode start (got {} backends for {} starts)",
            backends.len(),
            t0s.len()
        );
        assert_eq!(
            windows.len(),
            t0s.len(),
            "need exactly one trace window per episode start (got {} windows for {} starts)",
            windows.len(),
            t0s.len()
        );
        let drivers: Vec<EpisodeDriver<B>> = backends
            .into_iter()
            .zip(windows)
            .zip(t0s)
            .map(|((backend, window), &t0)| EpisodeDriver::new(backend, window, cfg, t0))
            .collect();
        assert!(!drivers.is_empty(), "batch needs at least one episode");
        let n = drivers.len();
        Self {
            drivers,
            deciding: vec![true; n],
            pending: Vec::with_capacity(n),
            batch: Matrix::zeros(0, 0),
            k: cfg.history_k.max(1),
        }
    }

    /// Episode count (fixed; the *pending* width shrinks as episodes
    /// leave the decision loop).
    pub fn width(&self) -> usize {
        self.drivers.len()
    }

    /// Whether any episode still awaits decisions.
    pub fn is_deciding(&self) -> bool {
        self.deciding.iter().any(|&d| d)
    }

    /// Forwards [`EpisodeDriver::set_record_decisions`] to every episode.
    pub fn set_record_decisions(&mut self, record: bool) {
        for d in &mut self.drivers {
            d.set_record_decisions(record);
        }
    }

    /// Advances every still-deciding episode one decision interval and
    /// assembles the batch. Returns the pending width: how many episodes
    /// produced a decision context this tick (0 when the remaining
    /// episodes all hit their reactive fallback — check
    /// [`is_deciding`](Self::is_deciding) to tell that apart from being
    /// done).
    pub fn advance_tick(&mut self) -> usize {
        self.pending.clear();
        for i in 0..self.drivers.len() {
            if !self.deciding[i] {
                continue;
            }
            match self.drivers[i].advance() {
                Some(_) => self.pending.push(i),
                None => self.deciding[i] = false,
            }
        }
        let width = self.pending.len();
        if width > 0 {
            self.batch.reset(width * self.k, STATE_VARS);
            for (slot, &i) in self.pending.iter().enumerate() {
                let m = self.drivers[i].state_matrix();
                debug_assert_eq!(m.shape(), (self.k, STATE_VARS));
                for r in 0..self.k {
                    self.batch
                        .row_mut(slot * self.k + r)
                        .copy_from_slice(m.row(r));
                }
            }
        }
        width
    }

    /// The row-stacked states of the episodes pending after the last
    /// [`advance_tick`](Self::advance_tick).
    pub fn batch_states(&self) -> &Matrix {
        &self.batch
    }

    /// Episode indices the current batch rows belong to, in row order.
    pub fn pending(&self) -> &[usize] {
        &self.pending
    }

    /// The [`DecisionContext`] of pending batch row `row` (index into
    /// [`pending`](Self::pending)), rebuilt from its episode driver's
    /// buffers — valid between the last
    /// [`advance_tick`](Self::advance_tick) and the matching
    /// [`apply`](Self::apply). Heuristic collection policies and feature
    /// extraction read it; the NN policies only need
    /// [`batch_states`](Self::batch_states).
    pub fn pending_context(&self, row: usize) -> DecisionContext<'_> {
        self.drivers[self.pending[row]].decision_context()
    }

    /// Applies one action per pending episode (batch row order).
    pub fn apply(&mut self, actions: &[Action]) {
        assert_eq!(
            actions.len(),
            self.pending.len(),
            "one action per pending episode"
        );
        for (slot, &i) in self.pending.iter().enumerate() {
            if self.drivers[i].apply(actions[slot]) {
                self.deciding[i] = false;
            }
        }
        self.pending.clear();
    }

    /// [`apply`](Self::apply) from action indices (the agents' output).
    fn apply_indices(&mut self, actions: &[usize]) {
        assert_eq!(
            actions.len(),
            self.pending.len(),
            "one action per pending episode"
        );
        for (slot, &i) in self.pending.iter().enumerate() {
            if self.drivers[i].apply(Action::from_index(actions[slot])) {
                self.deciding[i] = false;
            }
        }
        self.pending.clear();
    }

    /// Drives the decision loops to completion: one `decide_batch` (= one
    /// batched NN forward for the RL agents) per lockstep tick.
    pub fn run<P: BatchPolicy + ?Sized>(&mut self, policy: &mut P) {
        let mut actions = Vec::with_capacity(self.width());
        while self.is_deciding() {
            let width = self.advance_tick();
            if width == 0 {
                continue;
            }
            actions.clear();
            policy.decide_batch(&self.batch, width, &mut actions);
            assert_eq!(
                actions.len(),
                width,
                "policy must answer every pending episode"
            );
            self.apply_indices(&actions);
        }
    }

    /// [`run`](Self::run) for training/collection windows: one
    /// [`LanePolicy::decide_lanes`] per lockstep tick, with the driver
    /// itself exposed so the policy can follow its lanes through the
    /// narrowing batch. (`begin_window` is the *collector's* call — it
    /// knows the window's episode ordinals; this loop only ticks.)
    pub fn run_lanes<P: LanePolicy<B> + ?Sized>(&mut self, policy: &mut P) {
        let mut actions = Vec::with_capacity(self.width());
        while self.is_deciding() {
            let width = self.advance_tick();
            if width == 0 {
                continue;
            }
            actions.clear();
            policy.decide_lanes(self, &mut actions);
            assert_eq!(
                actions.len(),
                width,
                "policy must answer every pending episode"
            );
            self.apply_indices(&actions);
        }
    }

    /// Resolves every episode (running each backend until its pair
    /// completes) and returns the per-episode results alongside the
    /// backends, both in construction order.
    pub fn finish(self) -> (Vec<EpisodeResult>, Vec<B>) {
        assert!(
            !self.is_deciding(),
            "finish() before every decision loop ended"
        );
        let mut results = Vec::with_capacity(self.drivers.len());
        let mut backends = Vec::with_capacity(self.drivers.len());
        for driver in self.drivers {
            let (result, backend) = driver.finish();
            results.push(result);
            backends.push(backend);
        }
        (results, backends)
    }
}

/// Convenience wrapper: batches `t0s.len()` episodes across `backends`,
/// runs `policy` in lockstep and returns the per-episode results —
/// bit-identical to calling [`crate::episode::run_episode`] once per
/// `(backend, t0)` with the sequential form of the same policy.
pub fn run_episodes_batched<B: ClusterBackend, P: BatchPolicy + ?Sized>(
    backends: impl IntoIterator<Item = B>,
    trace: &[JobRecord],
    cfg: &EpisodeConfig,
    t0s: &[i64],
    policy: &mut P,
) -> Vec<EpisodeResult> {
    let mut driver = BatchedEpisodeDriver::new(backends, trace, cfg, t0s);
    driver.run(policy);
    driver.finish().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::run_episode;
    use mirage_rl::{ActionEncoding, DqnConfig, DualHeadConfig, DualHeadNet};
    use mirage_sim::{BackendPool, SimConfig, Simulator};
    use mirage_trace::{DAY, HOUR, MINUTE};

    fn small_cfg() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        }
    }

    fn bg_trace() -> Vec<JobRecord> {
        (0..40)
            .map(|i| {
                JobRecord::new(
                    i + 1,
                    format!("bg{i}"),
                    5,
                    DAY + i as i64 * 1800,
                    1 + (i % 3) as u32,
                    6 * HOUR,
                    3 * HOUR,
                )
            })
            .collect()
    }

    fn dqn_agent() -> DqnAgent {
        DqnAgent::new(
            DualHeadNet::new(DualHeadConfig {
                foundation: mirage_nn::FoundationKind::Transformer,
                transformer: mirage_nn::TransformerConfig {
                    input_dim: STATE_VARS,
                    seq_len: 4,
                    d_model: 8,
                    heads: 2,
                    layers: 1,
                    ff_mult: 2,
                },
                action_encoding: ActionEncoding::TwoHead,
                freeze_foundation: false,
                seed: 5,
            }),
            DqnConfig::default(),
        )
    }

    #[test]
    fn lockstep_batch_matches_sequential_episodes() {
        // The headline bit-identity claim at the episode level: N
        // episodes through one batched agent forward per tick produce
        // exactly the per-episode decisions and outcomes of sequential
        // execution — including episodes that end at different ticks.
        let cfg = small_cfg();
        let trace = bg_trace();
        let t0s = [DAY, DAY + 2 * HOUR, DAY + 5 * HOUR, DAY + HOUR / 2];

        let mut seq_agent = dqn_agent();
        let sequential: Vec<EpisodeResult> = t0s
            .iter()
            .map(|&t0| {
                let mut sim = Simulator::new(SimConfig::new(4));
                run_episode(&mut sim, &trace, &cfg, t0, |ctx| {
                    Action::from_index(seq_agent.act_greedy(ctx.state_matrix))
                })
            })
            .collect();

        let mut batch_agent = dqn_agent();
        let backends = (0..t0s.len()).map(|_| Simulator::new(SimConfig::new(4)));
        let batched = run_episodes_batched(backends, &trace, &cfg, &t0s, &mut batch_agent);

        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.outcome, s.outcome);
            assert_eq!(b.succ_submit, s.succ_submit);
            assert_eq!(b.succ_start, s.succ_start);
            assert_eq!(b.submitted_by_policy, s.submitted_by_policy);
            assert_eq!(b.decisions.len(), s.decisions.len());
            for ((bm, ba), (sm, sa)) in b.decisions.iter().zip(&s.decisions) {
                assert_eq!(ba, sa);
                assert_eq!(bm, sm);
            }
        }
    }

    #[test]
    fn closure_policies_and_pool_built_backends_compose() {
        // A heuristic closure over the raw batch, against BackendPool-
        // constructed backends; every episode must resolve.
        let cfg = small_cfg();
        let t0s = [DAY, DAY + HOUR];
        let pool = BackendPool::new(|_seed: u64| Simulator::new(SimConfig::new(4)), t0s.len());
        let mut submit_after = |_: &Matrix, width: usize, actions: &mut Vec<usize>| {
            actions.extend(std::iter::repeat_n(1usize, width));
        };
        let results = run_episodes_batched(pool.build_all(), &[], &cfg, &t0s, &mut submit_after);
        assert_eq!(results.len(), 2);
        for r in &results {
            assert!(r.submitted_by_policy);
            assert_eq!(r.decisions.len(), 1);
        }
    }

    #[test]
    fn width_narrows_as_episodes_finish() {
        let cfg = small_cfg();
        // Episode 0 submits on its first decision; episode 1 never does.
        let t0s = [DAY, DAY];
        let backends = (0..2).map(|_| Simulator::new(SimConfig::new(4)));
        let mut driver = BatchedEpisodeDriver::new(backends, &[], &cfg, &t0s);
        let w = driver.advance_tick();
        assert_eq!(w, 2);
        assert_eq!(driver.batch_states().shape(), (2 * 4, STATE_VARS));
        driver.apply(&[Action::Submit, Action::Wait]);
        let w = driver.advance_tick();
        assert_eq!(w, 1, "submitted episode left the batch");
        assert_eq!(driver.pending(), &[1]);
        assert_eq!(driver.batch_states().shape(), (4, STATE_VARS));
        driver.apply(&[Action::Wait]);
        while driver.is_deciding() {
            let w = driver.advance_tick();
            let waits = vec![Action::Wait; w];
            driver.apply(&waits);
        }
        let (results, _) = driver.finish();
        assert!(results[0].submitted_by_policy);
        assert!(!results[1].submitted_by_policy);
    }
}
