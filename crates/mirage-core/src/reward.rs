//! Reward shaping (§4.5 of the paper).
//!
//! Once the successor sub-job starts running, the episode outcome is
//! revealed: either an **interruption** (the successor started after the
//! predecessor ended — service gap) or an **overlap** (it started before —
//! node-hours double-held). The reward is the negative, user-weighted
//! penalty of Eq. 8: zero is the best possible reward.

use serde::{Deserialize, Serialize};

/// User-configurable penalty coefficients `e_I` / `e_O`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardShaper {
    /// Penalty per hour of interruption (performance-sensitive users raise
    /// this).
    pub e_interrupt: f32,
    /// Penalty per hour of overlap (resource-waste-averse users raise
    /// this).
    pub e_overlap: f32,
}

impl Default for RewardShaper {
    /// The balanced default: interruption hurts twice as much as overlap —
    /// a few hours of overlap are benign (§6.3: the successor loads
    /// checkpoints and takes over with no wasted computation), while an
    /// interruption is a hard service gap.
    fn default() -> Self {
        Self {
            e_interrupt: 2.0,
            e_overlap: 1.0,
        }
    }
}

/// Outcome of one provisioning episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpisodeOutcome {
    /// Seconds of service gap (`max(0, succ_start − pred_end)`).
    pub interruption: i64,
    /// Seconds both jobs held nodes (`max(0, pred_end − succ_start)`).
    pub overlap: i64,
    /// Seconds of service downtime caused by fault evictions of either
    /// sub-job (node crashes, transient failures). Zero when the backend
    /// runs without a fault model.
    #[serde(default)]
    pub fault_interruption: i64,
    /// Decisions in this episode where the policy's network emitted a
    /// non-finite or degenerate output and a guarded wrapper degraded to
    /// the reactive heuristic. Zero for healthy (or unguarded) policies;
    /// a non-zero count is the visible trace of silent NN corruption.
    #[serde(default)]
    pub guard_fallbacks: u64,
}

impl EpisodeOutcome {
    /// Derives the outcome from the two timestamps.
    pub fn from_times(pred_end: i64, succ_start: i64) -> Self {
        Self {
            interruption: (succ_start - pred_end).max(0),
            overlap: (pred_end - succ_start).max(0),
            fault_interruption: 0,
            guard_fallbacks: 0,
        }
    }

    /// Whether the hand-off was gap-free.
    pub fn zero_interruption(&self) -> bool {
        self.interruption == 0 && self.fault_interruption == 0
    }
}

impl RewardShaper {
    /// Eq. 8: negative weighted penalty in hours; 0 is the optimum.
    /// Fault-caused downtime is a service gap like any other, so it is
    /// charged at the same `e_interrupt` rate as hand-off gaps.
    pub fn reward(&self, outcome: &EpisodeOutcome) -> f32 {
        let hours_i = (outcome.interruption + outcome.fault_interruption) as f32 / 3600.0;
        let hours_o = outcome.overlap as f32 / 3600.0;
        -(self.e_interrupt * hours_i + self.e_overlap * hours_o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_trace::HOUR;

    #[test]
    fn outcome_is_one_sided() {
        let gap = EpisodeOutcome::from_times(100, 400);
        assert_eq!(gap.interruption, 300);
        assert_eq!(gap.overlap, 0);
        let lap = EpisodeOutcome::from_times(400, 100);
        assert_eq!(lap.interruption, 0);
        assert_eq!(lap.overlap, 300);
        let perfect = EpisodeOutcome::from_times(250, 250);
        assert_eq!((perfect.interruption, perfect.overlap), (0, 0));
        assert!(perfect.zero_interruption());
    }

    #[test]
    fn perfect_handoff_gets_zero_reward() {
        let shaper = RewardShaper::default();
        let r = shaper.reward(&EpisodeOutcome::from_times(100, 100));
        assert_eq!(r, 0.0);
    }

    #[test]
    fn rewards_are_negative_penalties() {
        let shaper = RewardShaper {
            e_interrupt: 2.0,
            e_overlap: 1.0,
        };
        let r_gap = shaper.reward(&EpisodeOutcome::from_times(0, 3 * HOUR));
        assert!((r_gap + 6.0).abs() < 1e-5, "3h gap × e_I=2 → −6");
        let r_lap = shaper.reward(&EpisodeOutcome::from_times(3 * HOUR, 0));
        assert!((r_lap + 3.0).abs() < 1e-5, "3h overlap × e_O=1 → −3");
    }

    #[test]
    fn fault_downtime_is_charged_like_interruption() {
        let shaper = RewardShaper::default();
        let mut o = EpisodeOutcome::from_times(100, 100);
        assert_eq!(shaper.reward(&o), 0.0);
        o.fault_interruption = 3 * HOUR;
        assert!(
            (shaper.reward(&o) + 6.0).abs() < 1e-5,
            "3h downtime × e_I=2 → −6"
        );
        assert!(!o.zero_interruption());
    }

    #[test]
    fn coefficients_express_user_preference() {
        let outcome_gap = EpisodeOutcome::from_times(0, HOUR);
        let outcome_lap = EpisodeOutcome::from_times(HOUR, 0);
        // Performance-sensitive user: interruption much worse.
        let perf = RewardShaper {
            e_interrupt: 10.0,
            e_overlap: 1.0,
        };
        assert!(perf.reward(&outcome_gap) < perf.reward(&outcome_lap));
        // Waste-averse user: overlap much worse.
        let frugal = RewardShaper {
            e_interrupt: 1.0,
            e_overlap: 10.0,
        };
        assert!(frugal.reward(&outcome_lap) < frugal.reward(&outcome_gap));
    }
}
