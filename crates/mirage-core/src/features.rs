//! Feature extraction for the ensemble baselines (§6: Random Forest and
//! XGBoost).
//!
//! Trees cannot consume the full `k × m` state matrix efficiently, so the
//! ensemble methods see a compact summary: the newest state vector, two
//! older vectors for trend information, and the pair-specific scalars.

use crate::episode::DecisionContext;
use crate::state::STATE_VARS;

/// Width of the ensemble feature vector.
pub const FEATURE_DIM: usize = 3 * STATE_VARS + 3;

/// Builds the ensemble feature vector from a decision context.
///
/// Layout: newest state row ‖ row k/2 ‖ row 0 (oldest) ‖
/// `[pred_remaining_h, recent_avg_wait_h, queued_nodes_fraction]`.
pub fn extract_features(ctx: &DecisionContext) -> Vec<f32> {
    let mut f = Vec::with_capacity(FEATURE_DIM);
    extract_features_into(ctx, &mut f);
    f
}

/// [`extract_features`] writing into a reusable buffer: `out` is cleared
/// and refilled, so per-decision feature extraction allocates nothing
/// once the buffer's capacity reaches [`FEATURE_DIM`].
pub fn extract_features_into(ctx: &DecisionContext, out: &mut Vec<f32>) {
    let m = ctx.state_matrix;
    let k = m.rows();
    out.clear();
    out.extend_from_slice(m.row(k - 1));
    out.extend_from_slice(m.row(k / 2));
    out.extend_from_slice(m.row(0));
    out.push(ctx.pred_remaining as f32 / 3600.0);
    out.push(ctx.recent_avg_wait.unwrap_or(0.0) as f32 / 3600.0);
    let total = ctx.snapshot.total_nodes.max(1);
    out.push(ctx.snapshot.queued_nodes() as f32 / total as f32);
    debug_assert_eq!(out.len(), FEATURE_DIM);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::SuccessorSpec;
    use mirage_nn::Matrix;
    use mirage_sim::ClusterSnapshot;
    use mirage_trace::HOUR;

    struct CtxData {
        m: Matrix,
        snap: ClusterSnapshot,
    }

    fn data(k: usize) -> CtxData {
        CtxData {
            m: Matrix::from_fn(k, STATE_VARS, |r, c| (r * STATE_VARS + c) as f32),
            snap: ClusterSnapshot {
                now: 0,
                free_nodes: 2,
                total_nodes: 8,
                down_nodes: 0,
                recent_evictions: 0,
                queued: vec![],
                running: vec![],
                ..ClusterSnapshot::default()
            },
        }
    }

    fn ctx(d: &CtxData) -> DecisionContext<'_> {
        DecisionContext {
            now: 0,
            state_matrix: &d.m,
            snapshot: &d.snap,
            pred_started: true,
            pred_remaining: 2 * HOUR,
            recent_avg_wait: Some(3.0 * HOUR as f64),
            successor: SuccessorSpec {
                nodes: 1,
                timelimit: 48 * HOUR,
            },
        }
    }

    #[test]
    fn feature_vector_has_documented_width() {
        let d = data(8);
        let f = extract_features(&ctx(&d));
        assert_eq!(f.len(), FEATURE_DIM);
    }

    #[test]
    fn rows_are_sampled_newest_middle_oldest() {
        let d = data(8);
        let f = extract_features(&ctx(&d));
        // Newest row starts at element 7·40.
        assert_eq!(f[0], (7 * STATE_VARS) as f32);
        // Middle row (k/2 = 4).
        assert_eq!(f[STATE_VARS], (4 * STATE_VARS) as f32);
        // Oldest row.
        assert_eq!(f[2 * STATE_VARS], 0.0);
    }

    #[test]
    fn scalar_tail_is_in_hours_and_fractions() {
        let d = data(4);
        let f = extract_features(&ctx(&d));
        assert!(
            (f[FEATURE_DIM - 3] - 2.0).abs() < 1e-6,
            "pred remaining in hours"
        );
        assert!((f[FEATURE_DIM - 2] - 3.0).abs() < 1e-6, "avg wait in hours");
        assert_eq!(f[FEATURE_DIM - 1], 0.0, "empty queue fraction");
    }

    #[test]
    fn missing_avg_wait_encodes_zero() {
        let d = data(4);
        let mut c = ctx(&d);
        c.recent_avg_wait = None;
        let f = extract_features(&c);
        assert_eq!(f[FEATURE_DIM - 2], 0.0);
    }

    #[test]
    fn into_variant_reuses_buffer_and_matches() {
        let d = data(8);
        let c = ctx(&d);
        let expected = extract_features(&c);
        // A dirty, differently-sized buffer must come out identical.
        let mut buf = vec![99.0f32; 7];
        extract_features_into(&c, &mut buf);
        assert_eq!(buf, expected);
    }
}
