//! The eight provisioning policies compared in §6 of the paper.
//!
//! * Heuristics: [`ReactivePolicy`] (the common practice) and
//!   [`AvgWaitPolicy`] (submit `T_avg` before the predecessor's end).
//! * Ensemble learners: [`WaitPredictorPolicy`] wrapping a Random Forest
//!   or XGBoost-style wait predictor.
//! * RL: [`DqnPolicy`] and [`PgPolicy`] over a transformer or MoE
//!   foundation — the four {transformer, MoE} × {DQN, PG} combinations.
//! * Guarded RL: [`GuardedDqnPolicy`] / [`GuardedPgPolicy`] wrap the
//!   same agents behind `mirage-rl`'s output guard — a non-finite or
//!   degenerate network output degrades to the reactive heuristic and
//!   is counted, so silent NN corruption shows up in episode outcomes.

use mirage_ensemble::{GradientBoosting, RandomForest};
use mirage_rl::{DqnAgent, GuardedPolicy, PgAgent};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::episode::{Action, DecisionContext};
use crate::features::extract_features;

/// A provisioning policy: called at every decision instant.
pub trait ProvisionPolicy: Send {
    /// Display name used in reports (e.g. `"reactive"`, `"MoE+DQN"`).
    fn name(&self) -> String;
    /// Per-episode reset (clear internal state).
    fn reset(&mut self) {}
    /// The §4.3 decision: submit the successor now or wait.
    fn decide(&mut self, ctx: &DecisionContext) -> Action;
    /// Cumulative count of decisions where a guard rejected the policy's
    /// network output and degraded to the heuristic. `0` for unguarded
    /// policies; the evaluation harnesses diff this around each episode
    /// to stamp [`EpisodeOutcome::guard_fallbacks`](crate::reward::EpisodeOutcome::guard_fallbacks).
    fn guard_fallbacks(&self) -> u64 {
        0
    }
}

/// The reactive baseline: never submits proactively; the episode driver's
/// fallback submits at predecessor completion — exactly what researchers
/// do by hand today (§6: "the reactive baseline is what researchers
/// usually use as a common practice").
#[derive(Debug, Clone, Default)]
pub struct ReactivePolicy;

impl ProvisionPolicy for ReactivePolicy {
    fn name(&self) -> String {
        "reactive".into()
    }

    fn decide(&mut self, _ctx: &DecisionContext) -> Action {
        Action::Wait
    }
}

/// The `avg` heuristic: monitor the average queue wait `T_avg` and submit
/// the successor `T_avg` before the predecessor finishes.
#[derive(Debug, Clone)]
pub struct AvgWaitPolicy {
    /// Safety multiplier on `T_avg` (1.0 = the paper's heuristic).
    pub multiplier: f64,
}

impl Default for AvgWaitPolicy {
    fn default() -> Self {
        Self { multiplier: 1.0 }
    }
}

impl ProvisionPolicy for AvgWaitPolicy {
    fn name(&self) -> String {
        "avg".into()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        // Until the predecessor runs, its end time is unbounded — wait.
        if !ctx.pred_started {
            return Action::Wait;
        }
        let t_avg = ctx.recent_avg_wait.unwrap_or(0.0) * self.multiplier;
        if (ctx.pred_remaining as f64) <= t_avg {
            Action::Submit
        } else {
            Action::Wait
        }
    }
}

/// Which ensemble model backs a [`WaitPredictorPolicy`].
#[derive(Debug, Clone)]
pub enum WaitModel {
    /// Random forest regressor.
    Forest(RandomForest),
    /// Gradient-boosted trees (XGBoost-style).
    Gbdt(GradientBoosting),
}

impl WaitModel {
    fn predict_wait_hours(&self, features: &[f32]) -> f32 {
        match self {
            WaitModel::Forest(f) => f.predict(features),
            WaitModel::Gbdt(g) => g.predict(features),
        }
    }

    fn label(&self) -> &'static str {
        match self {
            WaitModel::Forest(_) => "random-forest",
            WaitModel::Gbdt(_) => "xgboost",
        }
    }
}

/// Ensemble policy: predicts the successor's queue wait from the current
/// features and submits once the predecessor's remaining time drops below
/// the prediction.
#[derive(Debug, Clone)]
pub struct WaitPredictorPolicy {
    /// The fitted wait model (target in hours).
    pub model: WaitModel,
}

impl WaitPredictorPolicy {
    /// Wraps a fitted model.
    pub fn new(model: WaitModel) -> Self {
        Self { model }
    }
}

impl ProvisionPolicy for WaitPredictorPolicy {
    fn name(&self) -> String {
        self.model.label().into()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        if !ctx.pred_started {
            return Action::Wait;
        }
        let features = extract_features(ctx);
        let predicted_wait_h = self.model.predict_wait_hours(&features).max(0.0);
        if ctx.pred_remaining as f32 / 3600.0 <= predicted_wait_h {
            Action::Submit
        } else {
            Action::Wait
        }
    }
}

/// DQN policy (deterministic, §4.4): submit when Q(submit) > Q(no-submit).
pub struct DqnPolicy {
    /// The trained agent.
    pub agent: DqnAgent,
    /// Display label (`"transformer+DQN"` / `"MoE+DQN"`).
    pub label: String,
}

impl ProvisionPolicy for DqnPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        Action::from_index(self.agent.act_greedy(ctx.state_matrix))
    }
}

/// Policy-gradient policy (non-deterministic, §4.4): the action is sampled
/// from the P-head's output distribution.
pub struct PgPolicy {
    /// The trained agent.
    pub agent: PgAgent,
    /// Display label (`"transformer+PG"` / `"MoE+PG"`).
    pub label: String,
    /// Sampling seed (per-policy stream keeps evaluation reproducible).
    pub rng: StdRng,
    /// `true` = argmax instead of sampling (deterministic evaluation).
    pub deterministic: bool,
}

impl PgPolicy {
    /// Sampling policy with the given seed.
    pub fn new(agent: PgAgent, label: impl Into<String>, seed: u64) -> Self {
        Self {
            agent,
            label: label.into(),
            rng: StdRng::seed_from_u64(seed),
            deterministic: false,
        }
    }
}

impl ProvisionPolicy for PgPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        let idx = if self.deterministic {
            self.agent.act_greedy(ctx.state_matrix)
        } else {
            self.agent.act(ctx.state_matrix, &mut self.rng)
        };
        Action::from_index(idx)
    }
}

/// [`DqnPolicy`] behind the output guard: every Q pair is validated
/// before the argmax, and a non-finite pair degrades to `Wait` (the
/// reactive move) instead of acting on garbage. Fallbacks are counted
/// and surfaced through [`ProvisionPolicy::guard_fallbacks`].
pub struct GuardedDqnPolicy {
    /// The guarded agent (exposes the wrapped agent and its counters).
    pub guard: GuardedPolicy<DqnAgent>,
    /// Display label (e.g. `"transformer+DQN"`).
    pub label: String,
}

impl GuardedDqnPolicy {
    /// Wraps a trained agent with a zeroed fallback counter.
    pub fn new(agent: DqnAgent, label: impl Into<String>) -> Self {
        Self {
            guard: GuardedPolicy::new(agent),
            label: label.into(),
        }
    }
}

impl ProvisionPolicy for GuardedDqnPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        Action::from_index(self.guard.act_greedy(ctx.state_matrix))
    }

    fn guard_fallbacks(&self) -> u64 {
        self.guard.stats().fallbacks
    }
}

/// [`PgPolicy`] behind the output guard: the probability pair must be
/// finite, non-negative and normalized before it is sampled (or
/// argmax-ed); anything else degrades to `Wait` and is counted. A
/// healthy net draws the identical RNG stream as the unguarded policy.
pub struct GuardedPgPolicy {
    /// The guarded agent (exposes the wrapped agent and its counters).
    pub guard: GuardedPolicy<PgAgent>,
    /// Display label (e.g. `"transformer+PG"`).
    pub label: String,
    /// Sampling seed (per-policy stream keeps evaluation reproducible).
    pub rng: StdRng,
    /// `true` = argmax instead of sampling (deterministic evaluation).
    pub deterministic: bool,
}

impl GuardedPgPolicy {
    /// Sampling policy with the given seed and a zeroed fallback counter.
    pub fn new(agent: PgAgent, label: impl Into<String>, seed: u64) -> Self {
        Self {
            guard: GuardedPolicy::new(agent),
            label: label.into(),
            rng: StdRng::seed_from_u64(seed),
            deterministic: false,
        }
    }
}

impl ProvisionPolicy for GuardedPgPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        let idx = if self.deterministic {
            self.guard.act_greedy(ctx.state_matrix)
        } else {
            self.guard.act(ctx.state_matrix, &mut self.rng)
        };
        Action::from_index(idx)
    }

    fn guard_fallbacks(&self) -> u64 {
        self.guard.stats().fallbacks
    }
}

// ---------------------------------------------------------------------
// Classic-scheduler baselines for the heterogeneous lane.
//
// Each reinterprets a textbook queueing discipline as a submit-timing
// rule, so the hetero evaluation compares RL against the moves a classic
// scheduler would imply — not against straw men. All four are stateless
// and deterministic, which keeps the lane's seeded comparisons exact.

/// First-come-first-served: enter the queue immediately and let arrival
/// order do the rest. Maximal overlap exposure, minimal interruption —
/// the "book a node the moment you can" discipline.
#[derive(Debug, Clone, Default)]
pub struct FcfsPolicy;

impl ProvisionPolicy for FcfsPolicy {
    fn name(&self) -> String {
        "fcfs".into()
    }

    fn decide(&mut self, _ctx: &DecisionContext) -> Action {
        Action::Submit
    }
}

/// Expected work of one queued job, node-seconds: half the wall-clock
/// limit is the classic requested-vs-actual runtime prior.
fn queued_work(nodes: u32, timelimit: i64) -> f64 {
    nodes as f64 * timelimit as f64 / 2.0
}

/// Shortest-job-first: only the queued jobs *shorter* than the successor
/// would run ahead of it under SJF order, so the estimated wait is their
/// aggregate work spread over the partition. Submit once the
/// predecessor's remaining time drops below that estimate.
#[derive(Debug, Clone, Default)]
pub struct SjfPolicy;

impl ProvisionPolicy for SjfPolicy {
    fn name(&self) -> String {
        "sjf".into()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        if !ctx.pred_started {
            return Action::Wait;
        }
        let ahead: f64 = ctx
            .snapshot
            .queued
            .iter()
            .filter(|q| q.timelimit <= ctx.successor.timelimit)
            .map(|q| queued_work(q.nodes, q.timelimit))
            .sum();
        let est_wait = ahead / ctx.snapshot.total_nodes.max(1) as f64;
        if ctx.pred_remaining as f64 <= est_wait {
            Action::Submit
        } else {
            Action::Wait
        }
    }
}

/// Shortest-queue: estimate the whole backlog's drain time (every queued
/// job's expected work over the partition) and join once the
/// predecessor's remaining time drops below it — the deeper the queue,
/// the earlier this submits. Distinct from the multi-service allocator
/// of the same name ([`crate::multiservice::ShortestQueuePolicy`]),
/// which splits *nodes* across services; this one times a *submission*.
#[derive(Debug, Clone, Default)]
pub struct ShortestQueuePolicy;

impl ProvisionPolicy for ShortestQueuePolicy {
    fn name(&self) -> String {
        "shortest_queue".into()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        if !ctx.pred_started {
            return Action::Wait;
        }
        let backlog: f64 = ctx
            .snapshot
            .queued
            .iter()
            .map(|q| queued_work(q.nodes, q.timelimit))
            .sum();
        let drain = backlog / ctx.snapshot.total_nodes.max(1) as f64;
        if ctx.pred_remaining as f64 <= drain {
            Action::Submit
        } else {
            Action::Wait
        }
    }
}

/// Pool-greedy: the heterogeneity-aware claim-it-while-it's-free rule.
/// Submits the moment any node pool has enough free nodes to host the
/// successor outright (falling back to aggregate free nodes on a
/// homogeneous cluster with no pool snapshot). Greedy capacity grabbing
/// front-runs contention but pays overlap whenever the cluster is quiet.
#[derive(Debug, Clone, Default)]
pub struct PoolGreedyPolicy;

impl ProvisionPolicy for PoolGreedyPolicy {
    fn name(&self) -> String {
        "pool_greedy".into()
    }

    fn decide(&mut self, ctx: &DecisionContext) -> Action {
        if !ctx.pred_started {
            return Action::Wait;
        }
        let snap = ctx.snapshot;
        let fits = if snap.pool_free.is_empty() {
            snap.free_nodes >= ctx.successor.nodes
        } else {
            snap.pool_free.iter().any(|&f| f >= ctx.successor.nodes)
        };
        if fits {
            Action::Submit
        } else {
            Action::Wait
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{SuccessorSpec, STATE_VARS};
    use mirage_nn::Matrix;
    use mirage_sim::ClusterSnapshot;
    use mirage_trace::HOUR;

    struct CtxData {
        m: Matrix,
        snap: ClusterSnapshot,
    }

    fn data() -> CtxData {
        CtxData {
            m: Matrix::zeros(4, STATE_VARS),
            snap: ClusterSnapshot {
                now: 0,
                free_nodes: 4,
                total_nodes: 8,
                down_nodes: 0,
                recent_evictions: 0,
                queued: vec![],
                running: vec![],
                ..ClusterSnapshot::default()
            },
        }
    }

    fn ctx(
        d: &CtxData,
        pred_started: bool,
        pred_remaining: i64,
        avg_wait: Option<f64>,
    ) -> DecisionContext<'_> {
        DecisionContext {
            now: 0,
            state_matrix: &d.m,
            snapshot: &d.snap,
            pred_started,
            pred_remaining,
            recent_avg_wait: avg_wait,
            successor: SuccessorSpec {
                nodes: 1,
                timelimit: 48 * HOUR,
            },
        }
    }

    #[test]
    fn reactive_always_waits() {
        let d = data();
        let mut p = ReactivePolicy;
        assert_eq!(p.decide(&ctx(&d, true, 0, Some(1e9))), Action::Wait);
        assert_eq!(p.name(), "reactive");
    }

    #[test]
    fn avg_submits_when_remaining_below_t_avg() {
        let d = data();
        let mut p = AvgWaitPolicy::default();
        // 2h remaining, 3h average wait → submit now.
        assert_eq!(
            p.decide(&ctx(&d, true, 2 * HOUR, Some(3.0 * HOUR as f64))),
            Action::Submit
        );
        // 5h remaining, 3h average wait → hold.
        assert_eq!(
            p.decide(&ctx(&d, true, 5 * HOUR, Some(3.0 * HOUR as f64))),
            Action::Wait
        );
        // Not started yet → always hold.
        assert_eq!(p.decide(&ctx(&d, false, 0, Some(1e9))), Action::Wait);
        // No wait data → nothing suggests congestion; hold until the end.
        assert_eq!(p.decide(&ctx(&d, true, HOUR, None)), Action::Wait);
    }

    #[test]
    fn avg_multiplier_scales_the_threshold() {
        let d = data();
        let mut cautious = AvgWaitPolicy { multiplier: 0.5 };
        // 2h remaining, 3h avg → 1.5h effective threshold → hold.
        assert_eq!(
            cautious.decide(&ctx(&d, true, 2 * HOUR, Some(3.0 * HOUR as f64))),
            Action::Wait
        );
    }

    #[test]
    fn guarded_policy_degrades_to_wait_and_counts() {
        use mirage_nn::foundation::FoundationKind;
        use mirage_nn::transformer::TransformerConfig;
        use mirage_rl::{ActionEncoding, DqnConfig, DualHeadConfig, DualHeadNet};

        let mut net = DualHeadNet::new(DualHeadConfig {
            foundation: FoundationKind::Transformer,
            transformer: TransformerConfig {
                input_dim: STATE_VARS,
                seq_len: 4,
                d_model: 8,
                heads: 2,
                layers: 1,
                ff_mult: 2,
            },
            action_encoding: ActionEncoding::TwoHead,
            freeze_foundation: false,
            seed: 3,
        });
        // NaN every weight: a silently corrupted checkpoint or diverged
        // update, as seen from inference.
        let ids: Vec<_> = net.ps.iter().map(|(id, _)| id).collect();
        for id in ids {
            for v in net.ps.get_mut(id).data_mut() {
                *v = f32::NAN;
            }
        }
        let d = data();
        let mut p = GuardedDqnPolicy::new(DqnAgent::new(net, DqnConfig::default()), "guarded");
        assert_eq!(p.guard_fallbacks(), 0);
        for _ in 0..3 {
            assert_eq!(p.decide(&ctx(&d, true, 0, None)), Action::Wait);
        }
        assert_eq!(p.guard_fallbacks(), 3, "every poisoned decision counted");
    }

    #[test]
    fn unguarded_policies_report_zero_fallbacks() {
        assert_eq!(ReactivePolicy.guard_fallbacks(), 0);
        assert_eq!(AvgWaitPolicy::default().guard_fallbacks(), 0);
    }

    #[test]
    fn classic_baselines_follow_their_disciplines() {
        use mirage_sim::QueuedJobView;
        let mut d = data();
        let (mut fcfs, mut sjf) = (FcfsPolicy, SjfPolicy);
        let (mut sq, mut pg) = (ShortestQueuePolicy, PoolGreedyPolicy);
        assert_eq!(fcfs.name(), "fcfs");
        assert_eq!(sjf.name(), "sjf");
        assert_eq!(sq.name(), "shortest_queue");
        assert_eq!(pg.name(), "pool_greedy");

        // FCFS submits unconditionally — even before the predecessor runs.
        assert_eq!(fcfs.decide(&ctx(&d, false, HOUR, None)), Action::Submit);
        // Everyone else holds until the predecessor is at least running.
        for p in [
            sjf.decide(&ctx(&d, false, 0, None)),
            sq.decide(&ctx(&d, false, 0, None)),
            pg.decide(&ctx(&d, false, 0, None)),
        ] {
            assert_eq!(p, Action::Wait);
        }

        // Empty queue → zero estimated wait: SJF and shortest-queue hold
        // to the very end.
        assert_eq!(sjf.decide(&ctx(&d, true, HOUR, None)), Action::Wait);
        assert_eq!(sq.decide(&ctx(&d, true, HOUR, None)), Action::Wait);
        assert_eq!(sjf.decide(&ctx(&d, true, 0, None)), Action::Submit);

        // Eight 1-node jobs at a 4 h limit ≈ 2 h of expected work over the
        // 8-node partition → both submit at 2 h remaining, neither at 3 h.
        let short = |id| QueuedJobView {
            id,
            nodes: 1,
            submit: 0,
            age: 0,
            timelimit: 4 * HOUR,
            user: 1,
        };
        d.snap.queued = (0..8).map(short).collect();
        assert_eq!(sjf.decide(&ctx(&d, true, 3 * HOUR, None)), Action::Wait);
        assert_eq!(sjf.decide(&ctx(&d, true, 2 * HOUR, None)), Action::Submit);
        assert_eq!(sq.decide(&ctx(&d, true, 2 * HOUR, None)), Action::Submit);

        // A queued monster over the successor's own limit inflates the
        // whole-backlog drain but is invisible to SJF order.
        d.snap.queued.push(QueuedJobView {
            id: 99,
            nodes: 8,
            submit: 0,
            age: 0,
            timelimit: 96 * HOUR,
            user: 1,
        });
        assert_eq!(sjf.decide(&ctx(&d, true, 3 * HOUR, None)), Action::Wait);
        assert_eq!(sq.decide(&ctx(&d, true, 3 * HOUR, None)), Action::Submit);

        // Pool-greedy keys on per-pool headroom when pools are reported…
        d.snap.pool_free = vec![0, 0];
        assert_eq!(pg.decide(&ctx(&d, true, HOUR, None)), Action::Wait);
        d.snap.pool_free = vec![0, 2];
        assert_eq!(pg.decide(&ctx(&d, true, HOUR, None)), Action::Submit);
        // …and on aggregate free nodes on a homogeneous cluster.
        d.snap.pool_free.clear();
        assert_eq!(pg.decide(&ctx(&d, true, HOUR, None)), Action::Submit);
        d.snap.free_nodes = 0;
        assert_eq!(pg.decide(&ctx(&d, true, HOUR, None)), Action::Wait);
    }

    #[test]
    fn wait_predictor_uses_model_output() {
        let d = data();
        use mirage_ensemble::{Dataset, GbdtConfig};
        // Train a trivial GBDT that always predicts ~5 (hours).
        let rows: Vec<Vec<f32>> = (0..16)
            .map(|_| vec![0.0; crate::features::FEATURE_DIM])
            .collect();
        let ys = vec![5.0f32; 16];
        let data = Dataset::from_rows(&rows, &ys);
        let model = GradientBoosting::fit(
            &data,
            &GbdtConfig {
                n_rounds: 2,
                ..Default::default()
            },
        );
        let mut p = WaitPredictorPolicy::new(WaitModel::Gbdt(model));
        assert_eq!(p.name(), "xgboost");
        // 3h remaining < 5h predicted wait → submit.
        assert_eq!(p.decide(&ctx(&d, true, 3 * HOUR, None)), Action::Submit);
        // 10h remaining > 5h predicted wait → hold.
        assert_eq!(p.decide(&ctx(&d, true, 10 * HOUR, None)), Action::Wait);
    }
}
