//! Gym-style environment adapter: provisioning episodes behind
//! `mirage-rl`'s [`Environment`] interface, generic over any
//! [`ClusterBackend`].
//!
//! RL cluster-scheduling reproductions conventionally expose the cluster
//! as a Gymnasium-like environment (reset → state, step(action) →
//! (state, reward, done)). [`ProvisionEnv`] is that surface for Mirage's
//! predecessor–successor episodes: `reset` starts the next sampled episode
//! and returns the first `k × m` state matrix, `step` applies
//! submit/no-submit, and the §4.5 delayed episode reward arrives on the
//! terminal transition (Eq. 8 credits every step of the episode with the
//! same return, which is exactly how the training pipelines consume
//! trajectories).

use mirage_nn::Matrix;
use mirage_rl::{Environment, StepResult};
use mirage_sim::ClusterBackend;
use mirage_trace::JobRecord;

use crate::episode::{Action, EpisodeConfig, EpisodeDriver, EpisodeResult};
use crate::reward::RewardShaper;
use crate::train::episode_window;

/// Provisioning episodes as an RL environment over any backend.
pub struct ProvisionEnv<B: ClusterBackend> {
    backend: Option<B>,
    driver: Option<EpisodeDriver<B>>,
    trace: Vec<JobRecord>,
    cfg: EpisodeConfig,
    shaper: RewardShaper,
    starts: Vec<i64>,
    next_start: usize,
    last_state: Matrix,
    /// Record of the most recently finished episode.
    pub last_result: Option<EpisodeResult>,
}

impl<B: ClusterBackend> ProvisionEnv<B> {
    /// Builds the environment: episodes cycle through `starts` (predecessor
    /// submission instants) over `trace`, shaped by `shaper`.
    pub fn new(
        backend: B,
        trace: Vec<JobRecord>,
        cfg: EpisodeConfig,
        shaper: RewardShaper,
        starts: Vec<i64>,
    ) -> Self {
        assert!(
            !starts.is_empty(),
            "an environment needs at least one episode start"
        );
        let k = cfg.history_k.max(1);
        Self {
            backend: Some(backend),
            driver: None,
            trace,
            cfg,
            shaper,
            starts,
            next_start: 0,
            last_state: Matrix::zeros(k, crate::state::STATE_VARS),
            last_result: None,
        }
    }

    /// The episode start the *next* `reset` will use.
    pub fn upcoming_start(&self) -> i64 {
        self.starts[self.next_start % self.starts.len()]
    }

    fn take_backend(&mut self) -> B {
        match (self.driver.take(), self.backend.take()) {
            (Some(driver), _) => driver.into_backend(),
            (None, Some(backend)) => backend,
            (None, None) => unreachable!("backend is always parked or driving"),
        }
    }

    fn finish_driver(&mut self, driver: EpisodeDriver<B>) -> f32 {
        let (result, backend) = driver.finish();
        let reward = self.shaper.reward(&result.outcome);
        self.last_result = Some(result);
        self.backend = Some(backend);
        reward
    }
}

impl<B: ClusterBackend> Environment for ProvisionEnv<B> {
    fn reset(&mut self) -> Matrix {
        let mut backend = self.take_backend();
        // Skip (rare) episodes that resolve before the first decision;
        // bounded so a degenerate start list cannot loop forever.
        for _ in 0..self.starts.len().max(8) {
            let t0 = self.starts[self.next_start % self.starts.len()];
            self.next_start = (self.next_start + 1) % self.starts.len();
            let window = episode_window(&self.trace, t0, &self.cfg);
            let mut driver = EpisodeDriver::new(backend, window, &self.cfg, t0);
            // The context borrows the driver's buffers: copy the state out
            // before the driver itself is moved into `self`.
            let first_state = driver.advance().map(|ctx| ctx.state_matrix.clone());
            match first_state {
                Some(state) => {
                    self.last_state = state.clone();
                    self.driver = Some(driver);
                    return state;
                }
                None => {
                    // Fallback fired before any decision: record and move
                    // on to the next start.
                    self.finish_driver(driver);
                    backend = self.backend.take().expect("finish parked the backend");
                }
            }
        }
        panic!("no episode start yielded a decision point");
    }

    fn state(&self) -> Matrix {
        self.last_state.clone()
    }

    fn step(&mut self, action: usize) -> StepResult {
        let mut driver = self.driver.take().expect("reset() before step()");
        if driver.apply(Action::from_index(action)) {
            // Submitted: the episode resolves now.
            let reward = self.finish_driver(driver);
            return StepResult {
                state: self.last_state.clone(),
                reward,
                done: true,
            };
        }
        let next_state = driver.advance().map(|ctx| ctx.state_matrix.clone());
        match next_state {
            Some(state) => {
                self.last_state = state;
                self.driver = Some(driver);
                StepResult {
                    state: self.last_state.clone(),
                    reward: 0.0,
                    done: false,
                }
            }
            None => {
                // Reactive fallback submitted the successor.
                let reward = self.finish_driver(driver);
                StepResult {
                    state: self.last_state.clone(),
                    reward,
                    done: true,
                }
            }
        }
    }

    fn action_count(&self) -> usize {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_rl::rollout;
    use mirage_sim::{SimConfig, Simulator};
    use mirage_trace::{DAY, HOUR, MINUTE};

    fn cfg() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        }
    }

    fn env() -> ProvisionEnv<Simulator> {
        ProvisionEnv::new(
            Simulator::new(SimConfig::new(4)),
            vec![],
            cfg(),
            RewardShaper::default(),
            vec![DAY, 2 * DAY],
        )
    }

    #[test]
    fn reset_yields_the_state_matrix_shape() {
        let mut e = env();
        let s = e.reset();
        assert_eq!(s.shape(), (4, crate::state::STATE_VARS));
        assert_eq!(e.action_count(), 2);
        assert_eq!(e.state(), s);
    }

    #[test]
    fn submit_terminates_with_the_episode_reward() {
        let mut e = env();
        let _ = e.reset();
        let r = e.step(Action::Submit.index());
        assert!(r.done);
        // Idle cluster + immediate submission = pure overlap penalty < 0.
        assert!(r.reward < 0.0, "reward {}", r.reward);
        let result = e.last_result.as_ref().expect("episode recorded");
        assert!(result.submitted_by_policy);
        assert!(result.outcome.overlap > 0);
    }

    #[test]
    fn waiting_reaches_the_reactive_fallback() {
        let mut e = env();
        let _ = e.reset();
        let mut steps = 0;
        let last = loop {
            let r = e.step(Action::Wait.index());
            steps += 1;
            assert!(steps < 100, "episode must terminate");
            if r.done {
                break r;
            }
        };
        // Idle cluster, reactive: zero interruption and zero overlap.
        assert_eq!(last.reward, 0.0);
        let result = e.last_result.as_ref().unwrap();
        assert!(!result.submitted_by_policy);
        assert_eq!(result.outcome.interruption, 0);
    }

    #[test]
    fn episodes_cycle_through_starts() {
        let mut e = env();
        let first_start = e.upcoming_start();
        let _ = e.reset();
        let second_start = e.upcoming_start();
        assert_ne!(first_start, second_start);
        // Finish the first episode, then the env is reusable.
        let _ = e.step(Action::Submit.index());
        let s = e.reset();
        assert_eq!(s.shape(), (4, crate::state::STATE_VARS));
        assert_eq!(e.last_result.as_ref().unwrap().pred_submit, first_start);
    }

    #[test]
    fn rollout_helper_drives_the_env() {
        let mut e = env();
        let (trajectory, total) = rollout(&mut e, |_| Action::Wait.index(), 500);
        assert!(!trajectory.is_empty());
        assert!(trajectory.len() < 500, "episode terminated by itself");
        assert!(trajectory.iter().all(|(_, a)| *a == 0));
        assert_eq!(total, 0.0, "idle reactive episode has zero penalty");
    }
}
