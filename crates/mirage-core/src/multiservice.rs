//! Multi-service provisioning: N concurrent services with heterogeneous
//! SLOs sharing one cluster.
//!
//! The paper provisions a single interactive service per episode; at
//! production scale a batch cluster hosts *many* services whose
//! provisioning decisions contend for the same queue. This module opens
//! that workload on top of the existing machinery:
//!
//! * a **scenario layer** — [`ServiceSpec`] (latency target /
//!   interruption budget mapped to per-service reward weights, demand
//!   drawn from a [`TrafficModel`]'s requests/s → required-node curve)
//!   and [`MultiServiceConfig`] (N services + shared episode cadence),
//!   with canonical [`diurnal_scenario`] / [`bursty_scenario`] builders;
//! * a **shared-cluster episode engine** — [`MultiServiceEnv`] steps all
//!   services of one episode per decision tick against a single
//!   [`ClusterBackend`], mirroring the backend-call sequence of
//!   [`EpisodeDriver`](crate::episode::EpisodeDriver) *exactly*: with one
//!   service the episode is bit-identical to the single-service driver
//!   (pinned by property tests);
//! * a **lockstep batch** — [`MultiServiceBatch`] stacks every pending
//!   `(episode, service)` state matrix of a tick into one batch, so the
//!   RL agents answer episodes × services with a single batched forward,
//!   exactly as `crate::batch` does for episodes alone;
//! * a **shared-cluster reward** — per-service Eq. 8 penalties from the
//!   service's own SLO weights, minus a *stampede* penalty charged when
//!   several services provision in the same tick (simultaneous successor
//!   submissions pile onto the queue and interrupt each other);
//! * **classic baselines** — [`UniformSharePolicy`],
//!   [`GreedyPerServicePolicy`] and [`ShortestQueuePolicy`] beside the
//!   RL agents, wired into [`evaluate_multiservice`] so RL-vs-heuristic
//!   numbers come out of one harness.

use mirage_nn::Matrix;
use mirage_rl::{DqnAgent, ServiceLanes};
use mirage_sim::{ClusterBackend, ClusterSnapshot, JobStatus, ServiceUsage};
use mirage_trace::{JobRecord, TrafficModel, DAY, HOUR};
use serde::{Deserialize, Serialize};

use crate::episode::{Action, EpisodeConfig};
use crate::reward::{EpisodeOutcome, RewardShaper};
use crate::state::{
    EncoderScratch, PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS,
};

/// A service's level objectives, in episode terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceSlo {
    /// Target ceiling on the hand-off gap, seconds (tight for
    /// latency-critical services).
    pub latency_target: i64,
    /// Interruption budget per episode, seconds: the gap the service
    /// tolerates before the episode counts as an SLO miss.
    pub interruption_budget: i64,
}

impl ServiceSlo {
    /// A balanced SLO: both knobs at `target`.
    pub fn with_target(target: i64) -> Self {
        Self {
            latency_target: target.max(1),
            interruption_budget: target.max(1),
        }
    }

    /// Maps the SLO onto Eq. 8 weights: a service with a tight latency
    /// target weighs interruption hours more heavily (scaled against the
    /// 4-hour reference target, clamped to [1, 8]× the default), while
    /// the overlap weight stays at the default — overlap wastes nodes
    /// equally for everyone.
    pub fn weights(&self) -> RewardShaper {
        let base = RewardShaper::default();
        let scale = (4.0 * HOUR as f32 / self.latency_target.max(1) as f32).clamp(0.5, 4.0);
        RewardShaper {
            e_interrupt: base.e_interrupt * scale,
            e_overlap: base.e_overlap,
        }
    }
}

impl Default for ServiceSlo {
    fn default() -> Self {
        Self::with_target(4 * HOUR)
    }
}

/// One service in a multi-service scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Display name (`"svc0"`, `"search"`, …).
    pub name: String,
    /// User id tagging this service's pair jobs in the shared queue
    /// (distinct per service, distinct from background users) — the key
    /// the per-service [`ServiceUsage`] ledger is read under.
    pub user: u32,
    /// Wall-clock limit of the service's sub-jobs.
    pub timelimit: i64,
    /// Actual runtime of the sub-jobs (services run to the limit).
    pub runtime: i64,
    /// The service's objectives (reporting: SLO hit/miss per episode).
    pub slo: ServiceSlo,
    /// Eq. 8 weights used for this service's reward (scenario builders
    /// derive them from the SLO via [`ServiceSlo::weights`]).
    pub shaper: RewardShaper,
    /// Demand model: requests/s over time → required nodes.
    pub traffic: TrafficModel,
}

impl ServiceSpec {
    /// Nodes the service must provision at `t` (its traffic model's
    /// requests/s → required-node curve).
    pub fn nodes_at(&self, t: i64) -> u32 {
        self.traffic.required_nodes(t)
    }
}

/// N services plus the shared episode parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiServiceConfig {
    /// The concurrent services, in decision order.
    pub services: Vec<ServiceSpec>,
    /// Seconds between decisions (shared cadence — one lockstep tick
    /// decides every service).
    pub decision_interval: i64,
    /// History rows per service state matrix (`k`).
    pub history_k: usize,
    /// Background-trace replay before the episode start.
    pub warmup: i64,
    /// Stampede penalty: charged per *peer* service submitting its
    /// successor in the same decision tick (0 disables the coupling).
    pub stampede_coef: f32,
}

impl MultiServiceConfig {
    /// The degenerate one-service configuration equivalent to a
    /// single-service [`EpisodeConfig`] + [`RewardShaper`]: constant
    /// traffic pinned to `pair_nodes`, the pair's user id, and no
    /// stampede coupling. Under this config a [`MultiServiceEnv`]
    /// episode is bit-identical to the
    /// [`EpisodeDriver`](crate::episode::EpisodeDriver) episode — the
    /// property test `tests/multiservice.rs` pins it.
    pub fn single(cfg: &EpisodeConfig, shaper: RewardShaper) -> Self {
        Self {
            services: vec![ServiceSpec {
                name: "service".into(),
                user: cfg.pair_user,
                timelimit: cfg.pair_timelimit,
                runtime: cfg.pair_runtime,
                slo: ServiceSlo::default(),
                shaper,
                traffic: TrafficModel::constant(cfg.pair_nodes),
            }],
            decision_interval: cfg.decision_interval,
            history_k: cfg.history_k,
            warmup: cfg.warmup,
            stampede_coef: 0.0,
        }
    }

    /// Service count.
    pub fn n_services(&self) -> usize {
        self.services.len()
    }
}

/// First user id the scenario builders assign to services (clear of the
/// single-service `pair_user` default and every background user).
pub const SERVICE_USER_BASE: u32 = 2_000_000;

/// Canonical diurnal scenario: `services` day-night services with
/// staggered peak hours, heterogeneous latency targets and smooth
/// (burst-free) demand, sized so their combined peak wants roughly half
/// of `cluster_nodes`.
pub fn diurnal_scenario(services: usize, cluster_nodes: u32, seed: u64) -> MultiServiceConfig {
    scenario(services, cluster_nodes, seed, false)
}

/// Canonical bursty scenario: the diurnal base with a mean-one Gamma
/// burst overlay per service (independent seed-split streams), so demand
/// spikes hit services at uncorrelated instants.
pub fn bursty_scenario(services: usize, cluster_nodes: u32, seed: u64) -> MultiServiceConfig {
    scenario(services, cluster_nodes, seed, true)
}

fn scenario(services: usize, cluster_nodes: u32, seed: u64, bursty: bool) -> MultiServiceConfig {
    use mirage_trace::{split_seed, GammaBurst};
    let services = services.max(1);
    let targets = [30 * 60, HOUR, 2 * HOUR, 4 * HOUR];
    // Combined mean demand ≈ cluster_nodes / 2, split evenly.
    let mean_nodes = (f64::from(cluster_nodes) * 0.5 / services as f64).max(1.0);
    let specs = (0..services)
        .map(|i| {
            let slo = ServiceSlo::with_target(targets[i % targets.len()]);
            let mut traffic =
                TrafficModel::diurnal(mean_nodes * 20.0, 20.0, 0.35, (8 + 4 * (i % 4)) as f64);
            if bursty {
                traffic = traffic.with_burst(
                    GammaBurst::mean_one(1.5, 2 * HOUR),
                    split_seed(seed, i as u64),
                );
            }
            ServiceSpec {
                name: format!("svc{i}"),
                user: SERVICE_USER_BASE + i as u32,
                timelimit: 24 * HOUR,
                runtime: 24 * HOUR,
                slo,
                shaper: slo.weights(),
                traffic,
            }
        })
        .collect();
    MultiServiceConfig {
        services: specs,
        decision_interval: HOUR,
        history_k: 12,
        warmup: 12 * DAY,
        stampede_coef: 0.5,
    }
}

/// Everything a heuristic needs to decide one pending `(episode,
/// service)` slot — the multi-service analogue of
/// [`crate::episode::DecisionContext`], as owned scalars so batched
/// policies can look at every slot of a tick at once.
#[derive(Debug, Clone, Copy)]
pub struct SlotContext {
    /// Episode (batch instance) index.
    pub instance: usize,
    /// Service index within the episode.
    pub service: usize,
    /// Services sharing the episode's cluster.
    pub n_services: usize,
    /// Simulated time of the decision.
    pub now: i64,
    /// Whether this service's predecessor has started running.
    pub pred_started: bool,
    /// Estimated seconds until the predecessor ends (limit-based).
    pub pred_remaining: i64,
    /// Mean queue wait of jobs started in the last 24 h, seconds.
    pub recent_avg_wait: Option<f64>,
    /// The successor the service would submit now (nodes follow the
    /// traffic curve).
    pub successor: SuccessorSpec,
    /// Partition size of the shared cluster.
    pub total_nodes: u32,
    /// Idle nodes at the decision instant.
    pub free_nodes: u32,
    /// Nodes requested by the queued jobs at the decision instant.
    pub queued_nodes: u64,
    /// Peer services of this episode that already provisioned their
    /// successor.
    pub peers_provisioned: usize,
}

/// A policy deciding every pending `(episode, service)` slot of one
/// lockstep tick: `batch` row-stacks `slots.len()` state matrices
/// (`slots.len() · k` rows), and the implementation pushes exactly one
/// [`Action`] per slot, in order. RL policies answer with one batched
/// forward; heuristics read the per-slot contexts.
pub trait MultiServicePolicy: Send {
    /// Display name used in reports.
    fn name(&self) -> String;
    /// Per-episode-batch reset.
    fn reset(&mut self) {}
    /// Decides all slots of one tick.
    fn decide(&mut self, batch: &Matrix, slots: &[SlotContext], actions: &mut Vec<Action>);
}

/// Greedy RL agent over the slot batch: one `q_values_batch` forward per
/// tick for all episodes × services (the serving path).
pub struct RlServicePolicy {
    /// The trained agent.
    pub agent: DqnAgent,
    /// Display label.
    pub label: String,
    indices: Vec<usize>,
}

impl RlServicePolicy {
    /// Wraps a (trained) agent.
    pub fn new(agent: DqnAgent, label: impl Into<String>) -> Self {
        Self {
            agent,
            label: label.into(),
            indices: Vec::new(),
        }
    }
}

impl MultiServicePolicy for RlServicePolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, batch: &Matrix, slots: &[SlotContext], actions: &mut Vec<Action>) {
        self.agent
            .act_greedy_batch(batch, slots.len(), &mut self.indices);
        actions.extend(self.indices.iter().map(|&i| Action::from_index(i)));
    }
}

/// ε-greedy RL agent with per-`(episode, service)` exploration lanes —
/// the collection path. Each slot draws from its own
/// [`mirage_rl::ExploreLane`] stream in the [`ServiceLanes`] grid, so a
/// service's exploration is independent of how many services and
/// episodes share the lockstep batch.
pub struct ExploringRlPolicy {
    /// The learning agent.
    pub agent: DqnAgent,
    /// Per-`(episode, service)` exploration streams.
    pub lanes: ServiceLanes,
    /// Display label.
    pub label: String,
    rows: Vec<usize>,
    indices: Vec<usize>,
}

impl ExploringRlPolicy {
    /// Wraps an agent with a lane grid sized `instances × services`.
    pub fn new(agent: DqnAgent, lanes: ServiceLanes, label: impl Into<String>) -> Self {
        Self {
            agent,
            lanes,
            label: label.into(),
            rows: Vec::new(),
            indices: Vec::new(),
        }
    }
}

impl MultiServicePolicy for ExploringRlPolicy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn decide(&mut self, batch: &Matrix, slots: &[SlotContext], actions: &mut Vec<Action>) {
        self.rows.clear();
        self.rows
            .extend(slots.iter().map(|s| self.lanes.flat(s.instance, s.service)));
        self.agent.act_batch(
            batch,
            self.lanes.as_mut_slice(),
            &self.rows,
            &mut self.indices,
        );
        actions.extend(self.indices.iter().map(|&i| Action::from_index(i)));
    }
}

/// Uniform-share baseline: every service provisions as if it owned
/// `1/N` of the cluster. The lead time scales the observed average wait
/// by how much of the service's fair share the successor needs — a
/// service asking for more than its share provisions earlier, one well
/// under it provisions later.
#[derive(Debug, Clone, Default)]
pub struct UniformSharePolicy;

impl MultiServicePolicy for UniformSharePolicy {
    fn name(&self) -> String {
        "uniform-share".into()
    }

    fn decide(&mut self, _batch: &Matrix, slots: &[SlotContext], actions: &mut Vec<Action>) {
        for s in slots {
            if !s.pred_started {
                actions.push(Action::Wait);
                continue;
            }
            let share = (f64::from(s.total_nodes) / s.n_services as f64).max(1.0);
            let pressure = f64::from(s.successor.nodes) / share;
            let lead = s.recent_avg_wait.unwrap_or(0.0) * pressure;
            actions.push(if (s.pred_remaining as f64) <= lead {
                Action::Submit
            } else {
                Action::Wait
            });
        }
    }
}

/// Greedy-per-service baseline: every service independently runs the
/// single-service `avg` heuristic (submit `T_avg` before its own
/// predecessor ends), ignoring the other services entirely — the
/// stampede-prone common practice this subsystem's shared reward is
/// built to expose.
#[derive(Debug, Clone)]
pub struct GreedyPerServicePolicy {
    /// Safety multiplier on `T_avg` (1.0 = the paper's heuristic).
    pub multiplier: f64,
}

impl Default for GreedyPerServicePolicy {
    fn default() -> Self {
        Self { multiplier: 1.0 }
    }
}

impl MultiServicePolicy for GreedyPerServicePolicy {
    fn name(&self) -> String {
        "greedy-per-service".into()
    }

    fn decide(&mut self, _batch: &Matrix, slots: &[SlotContext], actions: &mut Vec<Action>) {
        for s in slots {
            let t_avg = s.recent_avg_wait.unwrap_or(0.0) * self.multiplier;
            actions.push(if s.pred_started && (s.pred_remaining as f64) <= t_avg {
                Action::Submit
            } else {
                Action::Wait
            });
        }
    }
}

/// Shortest-queue baseline: within a lead window before the predecessor
/// ends, grab capacity during queue *dips* (submit while the queued
/// demand fits the idle nodes — the successor would start almost
/// immediately); if no dip shows up, fall back to the greedy `T_avg`
/// threshold so the service still provisions before the hand-off.
#[derive(Debug, Clone)]
pub struct ShortestQueuePolicy {
    /// Lead window as a multiple of the observed average wait.
    pub window_mult: f64,
}

impl Default for ShortestQueuePolicy {
    fn default() -> Self {
        Self { window_mult: 3.0 }
    }
}

impl MultiServicePolicy for ShortestQueuePolicy {
    fn name(&self) -> String {
        "shortest-queue".into()
    }

    fn decide(&mut self, _batch: &Matrix, slots: &[SlotContext], actions: &mut Vec<Action>) {
        for s in slots {
            if !s.pred_started {
                actions.push(Action::Wait);
                continue;
            }
            let t_avg = s.recent_avg_wait.unwrap_or(0.0);
            let window = (t_avg * self.window_mult).max(HOUR as f64);
            let remaining = s.pred_remaining as f64;
            let dip = s.queued_nodes <= u64::from(s.free_nodes);
            actions.push(if (remaining <= window && dip) || remaining <= t_avg {
                Action::Submit
            } else {
                Action::Wait
            });
        }
    }
}

/// Record of one service's episode inside a multi-service run.
#[derive(Debug, Clone)]
pub struct ServiceEpisode {
    /// Service name.
    pub name: String,
    /// Service user id.
    pub user: u32,
    /// Interruption/overlap outcome of the hand-off.
    pub outcome: EpisodeOutcome,
    /// When the predecessor was submitted / started / ended.
    pub pred_submit: i64,
    /// Predecessor dispatch instant.
    pub pred_start: i64,
    /// Predecessor completion instant.
    pub pred_end: i64,
    /// When the successor was submitted / started.
    pub succ_submit: i64,
    /// Successor dispatch instant.
    pub succ_start: i64,
    /// Whether the policy submitted (vs the reactive fallback).
    pub submitted_by_policy: bool,
    /// Peer services whose successor landed in the same decision tick.
    pub co_submitters: usize,
    /// Whether the episode met the service's interruption budget.
    pub slo_met: bool,
    /// The shared-cluster reward: the service's own Eq. 8 penalty minus
    /// the stampede penalty for co-submitting peers.
    pub reward: f32,
    /// `(state matrix, action)` at every decision the policy made.
    pub decisions: Vec<(Matrix, usize)>,
    /// The service's ledger on the shared cluster at episode end.
    pub usage: ServiceUsage,
}

/// Result of one multi-service episode.
#[derive(Debug, Clone)]
pub struct MultiServiceResult {
    /// Per-service records, in service order.
    pub services: Vec<ServiceEpisode>,
    /// Decision ticks in which two or more services submitted.
    pub stampede_ticks: usize,
}

impl MultiServiceResult {
    /// Summed shared-cluster reward over the services.
    pub fn total_reward(&self) -> f32 {
        self.services.iter().map(|s| s.reward).sum()
    }
}

/// Per-service decision state inside a [`MultiServiceEnv`].
struct ServiceState {
    encoder: StateEncoder,
    history: StateHistory,
    succ_spec: SuccessorSpec,
    /// The predecessor's actual size, pinned at submission (the
    /// successor's size keeps following the traffic curve; the
    /// predecessor's cannot change once queued).
    pred_nodes: u32,
    pred_id: u64,
    succ_id: Option<u64>,
    succ_submit: i64,
    submitted_by_policy: bool,
    submit_tick: u64,
    matrix: Matrix,
    decisions: Vec<(Matrix, usize)>,
    last_pred_started: bool,
    last_pred_remaining: i64,
}

/// One multi-service episode as an explicit state machine: N services
/// sharing one backend, stepped per decision tick.
///
/// The loop mirrors [`EpisodeDriver`](crate::episode::EpisodeDriver)
/// lifted to N services — same warm-up replay, same per-tick
/// `run_until`/`status`/`sample` sequence,
/// same reactive fallback, same resolution loop — with one shared
/// snapshot per tick (the cluster state is the same for every service at
/// a given instant) and per-service encoders/histories/pair jobs. With
/// one service the backend sees the *identical* call sequence, which is
/// what makes the N=1 degeneration bit-exact.
pub struct MultiServiceEnv<B: ClusterBackend> {
    backend: B,
    cfg: MultiServiceConfig,
    t0: i64,
    services: Vec<ServiceState>,
    now: i64,
    tick: u64,
    snapshot: ClusterSnapshot,
    enc_scratch: EncoderScratch,
    pending: Vec<usize>,
    batch: Matrix,
    last_avg_wait: Option<f64>,
    record: bool,
    /// Successor submissions per decision tick (stampede accounting).
    submits_by_tick: Vec<u32>,
}

impl<B: ClusterBackend> MultiServiceEnv<B> {
    /// Resets `backend`, replays `trace` up to `t0` (recording each
    /// service's history window at the decision cadence) and submits
    /// every service's predecessor at `t0`, in service order.
    pub fn new(mut backend: B, trace: &[JobRecord], cfg: &MultiServiceConfig, t0: i64) -> Self {
        assert!(!cfg.services.is_empty(), "need at least one service");
        backend.reset_with(trace);
        let total_nodes = backend.total_nodes();
        let k = cfg.history_k.max(1);

        let mut services: Vec<ServiceState> = cfg
            .services
            .iter()
            .map(|svc| ServiceState {
                encoder: StateEncoder::new(total_nodes, svc.timelimit.max(48 * HOUR)),
                history: StateHistory::new(k),
                succ_spec: SuccessorSpec {
                    nodes: svc.nodes_at(t0),
                    timelimit: svc.timelimit,
                },
                pred_nodes: svc.nodes_at(t0),
                pred_id: 0,
                succ_id: None,
                succ_submit: 0,
                submitted_by_policy: false,
                submit_tick: 0,
                matrix: Matrix::zeros(0, 0),
                decisions: Vec::new(),
                last_pred_started: false,
                last_pred_remaining: 0,
            })
            .collect();

        // Warm-up replay with history recording, exactly as the
        // single-service driver: one shared snapshot per recorded tick,
        // one encoded row per service.
        let mut snapshot = ClusterSnapshot::default();
        let mut enc_scratch = EncoderScratch::default();
        let record_start = t0 - (k as i64) * cfg.decision_interval;
        backend.run_until(record_start.min(t0));
        let mut t = record_start;
        while t < t0 {
            if t > record_start {
                backend.run_until(t);
            }
            backend.sample_into(&mut snapshot);
            for (svc, st) in cfg.services.iter().zip(&mut services) {
                let pred = PredecessorState {
                    nodes: st.pred_nodes,
                    timelimit: svc.timelimit,
                    queue_time: 0,
                    elapsed: 0,
                };
                st.history.push(st.encoder.encode_into(
                    &snapshot,
                    &pred,
                    &st.succ_spec,
                    &mut enc_scratch,
                ));
            }
            t += cfg.decision_interval;
        }
        backend.run_until(t0);

        // Submit every predecessor at t0, in service order (they queue
        // behind each other exactly as N users hitting submit together).
        for (svc, st) in cfg.services.iter().zip(&mut services) {
            let pred = JobRecord::new(
                0,
                "mirage_pred",
                svc.user,
                t0,
                st.pred_nodes,
                svc.timelimit,
                svc.runtime,
            );
            st.pred_id = backend.submit(pred);
        }

        Self {
            backend,
            cfg: cfg.clone(),
            t0,
            services,
            now: t0,
            tick: 0,
            snapshot,
            enc_scratch,
            pending: Vec::new(),
            batch: Matrix::zeros(0, 0),
            last_avg_wait: None,
            record: true,
            submits_by_tick: Vec::new(),
        }
    }

    /// Service count.
    pub fn n_services(&self) -> usize {
        self.services.len()
    }

    /// Whether any service still awaits decisions.
    pub fn is_deciding(&self) -> bool {
        self.services.iter().any(|s| s.succ_id.is_none())
    }

    /// Controls whether `apply()` records `(state matrix, action)` pairs
    /// per service (cloning the matrix per decision; benchmark loops
    /// turn it off).
    pub fn set_record_decisions(&mut self, record: bool) {
        self.record = record;
    }

    fn successor_job(svc: &ServiceSpec, spec: SuccessorSpec) -> JobRecord {
        JobRecord::new(
            0,
            "mirage_succ",
            svc.user,
            0, // overridden by submit()
            spec.nodes,
            svc.timelimit,
            svc.runtime,
        )
    }

    fn note_submit(&mut self, tick: u64) {
        let i = tick as usize;
        if self.submits_by_tick.len() <= i {
            self.submits_by_tick.resize(i + 1, 0);
        }
        self.submits_by_tick[i] += 1;
    }

    /// Advances one decision interval: runs the shared backend to the
    /// next tick, samples it once, updates every still-deciding
    /// service's history (successor sizes following the traffic curve)
    /// and fires reactive fallbacks. Returns the pending width — how
    /// many services await an action this tick (0 with
    /// [`is_deciding`](Self::is_deciding) false means the episode's
    /// decision loop is over).
    pub fn advance_tick(&mut self) -> usize {
        self.pending.clear();
        if !self.is_deciding() {
            return 0;
        }
        self.now += self.cfg.decision_interval;
        self.backend.run_until(self.now);
        self.tick += 1;
        let now = self.now;
        self.backend.sample_into(&mut self.snapshot);

        for i in 0..self.services.len() {
            if self.services[i].succ_id.is_some() {
                continue;
            }
            let svc = &self.cfg.services[i];
            let st = &mut self.services[i];
            let pred_status = self.backend.status(st.pred_id).expect("predecessor exists");
            let pred_nodes = st.pred_nodes;
            // Demand follows the traffic curve: the successor the service
            // would submit *now* is sized for current load.
            st.succ_spec = SuccessorSpec {
                nodes: svc.nodes_at(now),
                timelimit: svc.timelimit,
            };
            let (pred_state, pred_started, pred_remaining, pred_done) = match pred_status {
                JobStatus::Pending | JobStatus::Future => (
                    PredecessorState {
                        nodes: pred_nodes,
                        timelimit: svc.timelimit,
                        queue_time: now - self.t0,
                        elapsed: 0,
                    },
                    false,
                    svc.timelimit,
                    false,
                ),
                JobStatus::Running { start } => (
                    PredecessorState {
                        nodes: pred_nodes,
                        timelimit: svc.timelimit,
                        queue_time: start - self.t0,
                        elapsed: now - start,
                    },
                    true,
                    (start + svc.timelimit - now).max(0),
                    false,
                ),
                // A terminally failed predecessor (fault injection,
                // retries exhausted) ends the instance like a completion:
                // the operator restarts via the successor.
                JobStatus::Completed { start, end } | JobStatus::Failed { start, end } => (
                    PredecessorState {
                        nodes: pred_nodes,
                        timelimit: svc.timelimit,
                        queue_time: start - self.t0,
                        elapsed: end - start,
                    },
                    true,
                    0,
                    true,
                ),
                JobStatus::Rejected => unreachable!("pair jobs always fit"),
            };

            st.history.push(st.encoder.encode_into(
                &self.snapshot,
                &pred_state,
                &st.succ_spec,
                &mut self.enc_scratch,
            ));

            if pred_done {
                // Reactive fallback: a real operator submits the
                // successor the moment the predecessor is done.
                let job = Self::successor_job(svc, st.succ_spec);
                let id = self.backend.submit(job);
                let st = &mut self.services[i];
                st.succ_id = Some(id);
                st.succ_submit = self.backend.now();
                st.submit_tick = self.tick;
                self.note_submit(self.tick);
                continue;
            }

            let st = &mut self.services[i];
            st.history.write_matrix(&mut st.matrix);
            st.last_pred_started = pred_started;
            st.last_pred_remaining = pred_remaining;
            self.pending.push(i);
        }

        let width = self.pending.len();
        if width > 0 {
            self.last_avg_wait = self.backend.avg_recent_wait(24 * HOUR);
            let k = self.cfg.history_k.max(1);
            self.batch.reset(width * k, STATE_VARS);
            for (slot, &i) in self.pending.iter().enumerate() {
                let m = &self.services[i].matrix;
                debug_assert_eq!(m.shape(), (k, STATE_VARS));
                for r in 0..k {
                    self.batch.row_mut(slot * k + r).copy_from_slice(m.row(r));
                }
            }
        }
        width
    }

    /// The row-stacked states of the services pending after the last
    /// [`advance_tick`](Self::advance_tick) (`pending · k` rows).
    pub fn batch_states(&self) -> &Matrix {
        &self.batch
    }

    /// Service indices the current batch rows belong to, in row order.
    pub fn pending(&self) -> &[usize] {
        &self.pending
    }

    /// The [`SlotContext`] of pending batch row `row` (instance 0; the
    /// lockstep batch driver overwrites the instance).
    pub fn slot_context(&self, row: usize) -> SlotContext {
        let i = self.pending[row];
        let st = &self.services[i];
        SlotContext {
            instance: 0,
            service: i,
            n_services: self.services.len(),
            now: self.now,
            pred_started: st.last_pred_started,
            pred_remaining: st.last_pred_remaining,
            recent_avg_wait: self.last_avg_wait,
            successor: st.succ_spec,
            total_nodes: self.snapshot.total_nodes,
            free_nodes: self.snapshot.free_nodes,
            queued_nodes: u64::from(self.snapshot.queued_nodes()),
            peers_provisioned: self.services.iter().filter(|s| s.succ_id.is_some()).count(),
        }
    }

    /// Applies one action per pending service (batch row order).
    pub fn apply(&mut self, actions: &[Action]) {
        assert_eq!(
            actions.len(),
            self.pending.len(),
            "one action per pending service"
        );
        let mut pending = std::mem::take(&mut self.pending);
        for (slot, &i) in pending.iter().enumerate() {
            if self.record {
                let m = self.services[i].matrix.clone();
                self.services[i].decisions.push((m, actions[slot].index()));
            }
            if actions[slot] == Action::Submit {
                let svc = &self.cfg.services[i];
                let job = Self::successor_job(svc, self.services[i].succ_spec);
                let id = self.backend.submit(job);
                let st = &mut self.services[i];
                st.succ_id = Some(id);
                st.succ_submit = self.backend.now();
                st.submitted_by_policy = true;
                st.submit_tick = self.tick;
                self.note_submit(self.tick);
            }
        }
        // Hand the emptied buffer back so the next tick reuses it.
        pending.clear();
        self.pending = pending;
    }

    /// Drives the decision loop to completion with `policy` (single
    /// episode; instance index 0).
    pub fn run<P: MultiServicePolicy + ?Sized>(&mut self, policy: &mut P) {
        let mut slots = Vec::with_capacity(self.n_services());
        let mut actions = Vec::with_capacity(self.n_services());
        while self.is_deciding() {
            let width = self.advance_tick();
            if width == 0 {
                continue;
            }
            slots.clear();
            for row in 0..width {
                slots.push(self.slot_context(row));
            }
            actions.clear();
            policy.decide(&self.batch, &slots, &mut actions);
            assert_eq!(actions.len(), width, "policy must answer every slot");
            self.apply(&actions);
        }
    }

    /// Runs the backend until every pair resolves and returns the
    /// episode record plus the backend.
    pub fn finish(mut self) -> (MultiServiceResult, B) {
        assert!(
            !self.is_deciding(),
            "finish() before the decision loop ended"
        );
        loop {
            let all_resolved = self.services.iter().all(|st| {
                let pred_done = matches!(
                    self.backend.status(st.pred_id),
                    Some(JobStatus::Completed { .. } | JobStatus::Failed { .. })
                );
                let succ_started = matches!(
                    self.backend
                        .status(st.succ_id.expect("successor submitted")),
                    Some(
                        JobStatus::Running { .. }
                            | JobStatus::Completed { .. }
                            | JobStatus::Failed { .. }
                    )
                );
                pred_done && succ_started
            });
            if all_resolved {
                break;
            }
            assert!(
                self.backend.is_active(),
                "simulation drained before every pair resolved"
            );
            self.backend.step(HOUR);
        }

        let services = self
            .cfg
            .services
            .iter()
            .zip(&mut self.services)
            .map(|(svc, st)| {
                let (pred_start, pred_end) = match self.backend.status(st.pred_id) {
                    Some(JobStatus::Completed { start, end })
                    | Some(JobStatus::Failed { start, end }) => (start, end),
                    _ => unreachable!("predecessor resolved"),
                };
                let succ_id = st.succ_id.expect("submitted");
                let succ_start = match self.backend.status(succ_id) {
                    Some(JobStatus::Running { start }) => start,
                    Some(JobStatus::Completed { start, .. }) => start,
                    Some(JobStatus::Failed { start, .. }) => start,
                    _ => unreachable!("successor started"),
                };
                let mut outcome = EpisodeOutcome::from_times(pred_end, succ_start);
                // Eviction → restart gaps the pair suffered under fault
                // injection are interruption the service's users saw.
                outcome.fault_interruption = self.backend.job_faults(st.pred_id).downtime
                    + self.backend.job_faults(succ_id).downtime;
                let co_submitters = (self.submits_by_tick[st.submit_tick as usize] - 1) as usize;
                let reward =
                    svc.shaper.reward(&outcome) - self.cfg.stampede_coef * co_submitters as f32;
                ServiceEpisode {
                    name: svc.name.clone(),
                    user: svc.user,
                    outcome,
                    pred_submit: self.t0,
                    pred_start,
                    pred_end,
                    succ_submit: st.succ_submit,
                    succ_start,
                    submitted_by_policy: st.submitted_by_policy,
                    co_submitters,
                    slo_met: outcome.interruption <= svc.slo.interruption_budget,
                    reward,
                    decisions: std::mem::take(&mut st.decisions),
                    usage: self.backend.user_usage(svc.user),
                }
            })
            .collect();

        let stampede_ticks = self.submits_by_tick.iter().filter(|&&c| c >= 2).count();
        (
            MultiServiceResult {
                services,
                stampede_ticks,
            },
            self.backend,
        )
    }
}

/// M multi-service episodes in lockstep: one row-stacked batch across
/// every pending `(episode, service)` slot per tick — services ×
/// episodes behind a single policy call (one batched NN forward for the
/// RL policies), narrowing as services and episodes finish.
pub struct MultiServiceBatch<B: ClusterBackend> {
    envs: Vec<MultiServiceEnv<B>>,
    k: usize,
    batch: Matrix,
    slots: Vec<SlotContext>,
    /// Pending width per env for the current tick.
    widths: Vec<usize>,
    /// Decisions answered so far (bench throughput accounting).
    decisions: u64,
}

impl<B: ClusterBackend> MultiServiceBatch<B> {
    /// Starts one multi-service episode per backend: `backends[i]`
    /// hosts the episode starting at `t0s[i]`, all sharing `trace` and
    /// `cfg`.
    pub fn new(
        backends: impl IntoIterator<Item = B>,
        trace: &[JobRecord],
        cfg: &MultiServiceConfig,
        t0s: &[i64],
    ) -> Self {
        let envs: Vec<MultiServiceEnv<B>> = backends
            .into_iter()
            .zip(t0s)
            .map(|(b, &t0)| MultiServiceEnv::new(b, trace, cfg, t0))
            .collect();
        assert_eq!(envs.len(), t0s.len(), "one backend per episode start");
        assert!(!envs.is_empty(), "batch needs at least one episode");
        Self {
            envs,
            k: cfg.history_k.max(1),
            batch: Matrix::zeros(0, 0),
            slots: Vec::new(),
            widths: vec![0; t0s.len()],
            decisions: 0,
        }
    }

    /// Episode count.
    pub fn width(&self) -> usize {
        self.envs.len()
    }

    /// Whether any episode still awaits decisions.
    pub fn is_deciding(&self) -> bool {
        self.envs.iter().any(|e| e.is_deciding())
    }

    /// Total `(episode, service)` decisions answered so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Forwards [`MultiServiceEnv::set_record_decisions`] to every
    /// episode.
    pub fn set_record_decisions(&mut self, record: bool) {
        for e in &mut self.envs {
            e.set_record_decisions(record);
        }
    }

    /// Advances every still-deciding episode one tick and assembles the
    /// combined slot batch. Returns the pending slot count.
    pub fn advance_tick(&mut self) -> usize {
        self.slots.clear();
        for (i, env) in self.envs.iter_mut().enumerate() {
            self.widths[i] = if env.is_deciding() {
                env.advance_tick()
            } else {
                0
            };
        }
        let total: usize = self.widths.iter().sum();
        if total == 0 {
            return 0;
        }
        self.batch.reset(total * self.k, STATE_VARS);
        let mut slot = 0;
        for (i, env) in self.envs.iter().enumerate() {
            for row in 0..self.widths[i] {
                let mut ctx = env.slot_context(row);
                ctx.instance = i;
                self.slots.push(ctx);
                let m = env.batch_states();
                for r in 0..self.k {
                    self.batch
                        .row_mut(slot * self.k + r)
                        .copy_from_slice(m.row(row * self.k + r));
                }
                slot += 1;
            }
        }
        total
    }

    /// The combined row-stacked states of the pending slots.
    pub fn batch_states(&self) -> &Matrix {
        &self.batch
    }

    /// The pending slots' contexts, in batch row order.
    pub fn slots(&self) -> &[SlotContext] {
        &self.slots
    }

    /// Applies one action per pending slot (batch row order).
    pub fn apply(&mut self, actions: &[Action]) {
        assert_eq!(actions.len(), self.slots.len(), "one action per slot");
        self.decisions += actions.len() as u64;
        let mut offset = 0;
        for (i, env) in self.envs.iter_mut().enumerate() {
            let w = self.widths[i];
            if w > 0 {
                env.apply(&actions[offset..offset + w]);
                offset += w;
            }
        }
        self.slots.clear();
    }

    /// Drives every episode to the end of its decision loop: one
    /// [`MultiServicePolicy::decide`] per lockstep tick.
    pub fn run<P: MultiServicePolicy + ?Sized>(&mut self, policy: &mut P) {
        let mut actions = Vec::new();
        while self.is_deciding() {
            let width = self.advance_tick();
            if width == 0 {
                continue;
            }
            actions.clear();
            policy.decide(&self.batch, &self.slots, &mut actions);
            assert_eq!(actions.len(), width, "policy must answer every slot");
            self.apply(&actions);
        }
    }

    /// Resolves every episode and returns the results in construction
    /// order, alongside the backends.
    pub fn finish(self) -> (Vec<MultiServiceResult>, Vec<B>) {
        assert!(!self.is_deciding(), "finish() before decisions ended");
        let mut results = Vec::with_capacity(self.envs.len());
        let mut backends = Vec::with_capacity(self.envs.len());
        for env in self.envs {
            let (r, b) = env.finish();
            results.push(r);
            backends.push(b);
        }
        (results, backends)
    }
}

/// Aggregate of one method over a batch of multi-service episodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiMethodSummary {
    /// Method display name.
    pub method: String,
    /// Episodes evaluated.
    pub episodes: usize,
    /// Mean shared-cluster reward per service-episode.
    pub mean_reward: f64,
    /// Mean interruption per service-episode, hours.
    pub mean_interruption_h: f64,
    /// Mean overlap per service-episode, hours.
    pub mean_overlap_h: f64,
    /// Fraction of service-episodes meeting their interruption budget.
    pub slo_hit_rate: f64,
    /// Decision ticks with ≥ 2 simultaneous submissions, summed over
    /// episodes.
    pub stampede_ticks: usize,
    /// Fraction of service-episodes provisioned by the policy (vs the
    /// reactive fallback).
    pub proactive_rate: f64,
}

/// Report of one multi-service evaluation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiServiceReport {
    /// Scenario label (`"diurnal"`, `"bursty"`, …).
    pub scenario: String,
    /// Services per episode.
    pub services: usize,
    /// Per-method aggregates, in method order.
    pub methods: Vec<MultiMethodSummary>,
    /// Total `(episode, service)` decisions answered across methods.
    pub decisions: u64,
}

impl MultiServiceReport {
    /// The summary for `method`, if present.
    pub fn method(&self, method: &str) -> Option<&MultiMethodSummary> {
        self.methods.iter().find(|m| m.method == method)
    }
}

/// Evaluates every method over the same multi-service episodes: each
/// method drives a lockstep [`MultiServiceBatch`] across `t0s` (fresh
/// identically-seeded backends per method, so methods see identical
/// clusters), aggregating per-service rewards, SLO hits and stampede
/// counts into a [`MultiServiceReport`].
pub fn evaluate_multiservice<B, F>(
    methods: &mut [Box<dyn MultiServicePolicy>],
    mut make_backends: F,
    trace: &[JobRecord],
    t0s: &[i64],
    cfg: &MultiServiceConfig,
    scenario: &str,
) -> MultiServiceReport
where
    B: ClusterBackend,
    F: FnMut(usize) -> Vec<B>,
{
    assert!(!t0s.is_empty(), "evaluation needs at least one episode");
    let mut summaries = Vec::with_capacity(methods.len());
    let mut decisions = 0u64;
    for m in methods.iter_mut() {
        m.reset();
        let backends = make_backends(t0s.len());
        let mut batch = MultiServiceBatch::new(backends, trace, cfg, t0s);
        batch.set_record_decisions(false);
        batch.run(m.as_mut());
        decisions += batch.decisions();
        let (results, _) = batch.finish();

        let n = results.len();
        let per_service = (n * cfg.n_services()) as f64;
        let mut reward = 0.0f64;
        let mut interruption = 0.0f64;
        let mut overlap = 0.0f64;
        let mut slo_hits = 0usize;
        let mut proactive = 0usize;
        let mut stampede = 0usize;
        for r in &results {
            stampede += r.stampede_ticks;
            for s in &r.services {
                reward += f64::from(s.reward);
                interruption += s.outcome.interruption as f64 / 3600.0;
                overlap += s.outcome.overlap as f64 / 3600.0;
                slo_hits += usize::from(s.slo_met);
                proactive += usize::from(s.submitted_by_policy);
            }
        }
        summaries.push(MultiMethodSummary {
            method: m.name(),
            episodes: n,
            mean_reward: reward / per_service,
            mean_interruption_h: interruption / per_service,
            mean_overlap_h: overlap / per_service,
            slo_hit_rate: slo_hits as f64 / per_service,
            stampede_ticks: stampede,
            proactive_rate: proactive as f64 / per_service,
        });
    }
    MultiServiceReport {
        scenario: scenario.into(),
        services: cfg.n_services(),
        methods: summaries,
        decisions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::episode::run_episode;
    use mirage_sim::{SimConfig, Simulator};
    use mirage_trace::MINUTE;

    fn sim(nodes: u32) -> Simulator {
        Simulator::new(SimConfig::new(nodes))
    }

    fn episode_cfg() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        }
    }

    fn two_service_cfg() -> MultiServiceConfig {
        let mut cfg = MultiServiceConfig::single(&episode_cfg(), RewardShaper::default());
        let mut second = cfg.services[0].clone();
        second.name = "svc1".into();
        second.user = 1001;
        second.slo = ServiceSlo::with_target(HOUR);
        second.shaper = second.slo.weights();
        cfg.services.push(second);
        cfg.stampede_coef = 0.5;
        cfg
    }

    fn bg_trace() -> Vec<JobRecord> {
        (0..30)
            .map(|i| {
                JobRecord::new(
                    i + 1,
                    format!("bg{i}"),
                    5,
                    DAY / 2 + i as i64 * 1200,
                    1 + (i % 2) as u32,
                    5 * HOUR,
                    2 * HOUR,
                )
            })
            .collect()
    }

    #[test]
    fn single_service_matches_episode_driver_exactly() {
        // The in-module smoke of the N=1 degeneration claim (the full
        // property test lives in tests/multiservice.rs): same decisions,
        // same outcome, same timestamps.
        let cfg = episode_cfg();
        let ms = MultiServiceConfig::single(&cfg, RewardShaper::default());
        let trace = bg_trace();
        let threshold = |started: bool, remaining: i64| {
            if started && remaining <= HOUR {
                Action::Submit
            } else {
                Action::Wait
            }
        };

        let expect = run_episode(&mut sim(4), &trace, &cfg, DAY, |ctx| {
            threshold(ctx.pred_started, ctx.pred_remaining)
        });

        let mut env = MultiServiceEnv::new(sim(4), &trace, &ms, DAY);
        let mut policy_calls = 0;
        while env.is_deciding() {
            let w = env.advance_tick();
            if w == 0 {
                continue;
            }
            let ctx = env.slot_context(0);
            policy_calls += 1;
            env.apply(&[threshold(ctx.pred_started, ctx.pred_remaining)]);
        }
        let (result, _) = env.finish();
        let s = &result.services[0];
        assert_eq!(s.outcome, expect.outcome);
        assert_eq!(s.succ_submit, expect.succ_submit);
        assert_eq!(s.succ_start, expect.succ_start);
        assert_eq!(s.pred_start, expect.pred_start);
        assert_eq!(s.submitted_by_policy, expect.submitted_by_policy);
        assert_eq!(s.decisions.len(), expect.decisions.len());
        assert_eq!(policy_calls, expect.decisions.len());
        for ((am, aa), (bm, ba)) in s.decisions.iter().zip(&expect.decisions) {
            assert_eq!(aa, ba);
            assert_eq!(am, bm);
        }
        assert_eq!(s.co_submitters, 0);
        assert_eq!(result.stampede_ticks, 0);
        assert_eq!(s.reward, RewardShaper::default().reward(&expect.outcome));
    }

    #[test]
    fn services_share_the_cluster_and_tag_their_jobs() {
        let cfg = two_service_cfg();
        let mut env = MultiServiceEnv::new(sim(4), &[], &cfg, DAY);
        // Submit both successors immediately: on an idle 4-node cluster
        // both pairs overlap, and the ledger sees each service's jobs.
        while env.is_deciding() {
            let w = env.advance_tick();
            if w == 0 {
                continue;
            }
            env.apply(&vec![Action::Submit; w]);
        }
        let (result, backend) = env.finish();
        assert_eq!(result.services.len(), 2);
        for s in &result.services {
            assert!(s.submitted_by_policy);
            assert!(s.outcome.overlap > 0, "{:?}", s.outcome);
            assert!(!s.usage.is_idle());
            assert_eq!(s.usage.user, s.user);
        }
        // Both submitted at the same tick → one stampede tick, each
        // charged one co-submitter.
        assert_eq!(result.stampede_ticks, 1);
        assert_eq!(result.services[0].co_submitters, 1);
        // Stampede penalty shows up in the reward.
        let s0 = &result.services[0];
        let base = cfg.services[0].shaper.reward(&s0.outcome);
        assert!((s0.reward - (base - 0.5)).abs() < 1e-6);
        // The shared backend accounted both users separately.
        assert_eq!(backend.user_usage(999).completed, 2);
        assert_eq!(backend.user_usage(1001).completed, 2);
    }

    #[test]
    fn lockstep_batch_matches_sequential_envs() {
        // Two episodes × two services through one batched closure must
        // equal running each episode's env alone.
        let cfg = two_service_cfg();
        let trace = bg_trace();
        let t0s = [DAY, DAY + 2 * HOUR];
        let decide = |s: &SlotContext| {
            if s.pred_started && s.pred_remaining <= s.service as i64 * HOUR + HOUR {
                Action::Submit
            } else {
                Action::Wait
            }
        };

        let sequential: Vec<MultiServiceResult> = t0s
            .iter()
            .map(|&t0| {
                let mut env = MultiServiceEnv::new(sim(4), &trace, &cfg, t0);
                while env.is_deciding() {
                    let w = env.advance_tick();
                    if w == 0 {
                        continue;
                    }
                    let acts: Vec<Action> = (0..w).map(|r| decide(&env.slot_context(r))).collect();
                    env.apply(&acts);
                }
                env.finish().0
            })
            .collect();

        struct Closure<F>(F);
        impl<F: FnMut(&SlotContext) -> Action + Send> MultiServicePolicy for Closure<F> {
            fn name(&self) -> String {
                "closure".into()
            }
            fn decide(
                &mut self,
                _batch: &Matrix,
                slots: &[SlotContext],
                actions: &mut Vec<Action>,
            ) {
                actions.extend(slots.iter().map(&mut self.0));
            }
        }
        let backends = (0..t0s.len()).map(|_| sim(4));
        let mut batch = MultiServiceBatch::new(backends, &trace, &cfg, &t0s);
        batch.run(&mut Closure(decide));
        let (batched, _) = batch.finish();

        assert_eq!(batched.len(), sequential.len());
        for (b, s) in batched.iter().zip(&sequential) {
            assert_eq!(b.stampede_ticks, s.stampede_ticks);
            for (bs, ss) in b.services.iter().zip(&s.services) {
                assert_eq!(bs.outcome, ss.outcome);
                assert_eq!(bs.succ_submit, ss.succ_submit);
                assert_eq!(bs.submitted_by_policy, ss.submitted_by_policy);
                assert_eq!(bs.reward, ss.reward);
                assert_eq!(bs.decisions.len(), ss.decisions.len());
                for ((bm, ba), (sm, sa)) in bs.decisions.iter().zip(&ss.decisions) {
                    assert_eq!(ba, sa);
                    assert_eq!(bm, sm);
                }
            }
        }
    }

    #[test]
    fn traffic_sizes_the_pair_jobs() {
        // A diurnal service's successor request follows the demand curve:
        // provision at a different hour, get a different node count.
        let mut cfg = MultiServiceConfig::single(&episode_cfg(), RewardShaper::default());
        cfg.services[0].traffic = TrafficModel::diurnal(60.0, 10.0, 0.5, 14.0);
        let peak_t0 = 10 * DAY + 10 * HOUR; // decisions land around 14:00
        let mut env = MultiServiceEnv::new(sim(32), &[], &cfg, peak_t0);
        let w = env.advance_tick();
        assert_eq!(w, 1);
        let near_peak = env.slot_context(0).successor.nodes;
        env.apply(&[Action::Wait]);
        assert!(
            near_peak > 6,
            "peak demand should exceed the mean: {near_peak}"
        );
    }

    #[test]
    fn baselines_answer_every_slot_and_differ() {
        let cfg = two_service_cfg();
        let trace = bg_trace();
        let run_with = |policy: &mut dyn MultiServicePolicy| {
            let mut env = MultiServiceEnv::new(sim(2), &trace, &cfg, DAY);
            env.run(policy);
            let (r, _) = env.finish();
            r
        };
        let uniform = run_with(&mut UniformSharePolicy);
        let greedy = run_with(&mut GreedyPerServicePolicy::default());
        let shortest = run_with(&mut ShortestQueuePolicy::default());
        for r in [&uniform, &greedy, &shortest] {
            assert_eq!(r.services.len(), 2);
        }
        // Shortest-queue provisions during dips, so on this congested
        // 2-node cluster it must act earlier than pure greedy for at
        // least one service (sanity that the heuristics are distinct).
        let earliest =
            |r: &MultiServiceResult| r.services.iter().map(|s| s.succ_submit).min().unwrap();
        assert!(earliest(&shortest) <= earliest(&greedy));
    }

    #[test]
    fn scenario_builders_produce_heterogeneous_services() {
        let d = diurnal_scenario(4, 64, 7);
        assert_eq!(d.n_services(), 4);
        let users: Vec<u32> = d.services.iter().map(|s| s.user).collect();
        let mut unique = users.clone();
        unique.dedup();
        assert_eq!(users, unique, "distinct users per service");
        assert!(d.services.iter().all(|s| s.traffic.burst.is_none()));
        // SLO targets differ across services.
        assert_ne!(
            d.services[0].slo.latency_target,
            d.services[1].slo.latency_target
        );
        // Tighter SLO → heavier interruption weight.
        assert!(d.services[0].shaper.e_interrupt > d.services[3].shaper.e_interrupt);
        let b = bursty_scenario(3, 64, 7);
        assert!(b.services.iter().all(|s| s.traffic.burst.is_some()));
        // Burst streams are seed-split per service.
        assert_ne!(b.services[0].traffic.seed, b.services[1].traffic.seed);
    }

    #[test]
    fn evaluate_reports_rl_and_baselines_on_one_harness() {
        use mirage_rl::{DqnConfig, DualHeadConfig, DualHeadNet};
        let cfg = two_service_cfg();
        let trace = bg_trace();
        let agent = DqnAgent::new(
            DualHeadNet::new(DualHeadConfig::small(
                mirage_nn::FoundationKind::Transformer,
                STATE_VARS,
                cfg.history_k,
                5,
            )),
            DqnConfig::default(),
        );
        let mut methods: Vec<Box<dyn MultiServicePolicy>> = vec![
            Box::new(RlServicePolicy::new(agent, "dqn")),
            Box::new(UniformSharePolicy),
            Box::new(GreedyPerServicePolicy::default()),
            Box::new(ShortestQueuePolicy::default()),
        ];
        let t0s = [DAY, DAY + 3 * HOUR];
        let report = evaluate_multiservice(
            &mut methods,
            |n| (0..n).map(|_| sim(4)).collect::<Vec<_>>(),
            &trace,
            &t0s,
            &cfg,
            "unit",
        );
        assert_eq!(report.scenario, "unit");
        assert_eq!(report.services, 2);
        assert_eq!(report.methods.len(), 4);
        assert!(report.decisions > 0);
        for m in &report.methods {
            assert_eq!(m.episodes, 2);
            assert!(m.mean_reward <= 0.0, "{}: {}", m.method, m.mean_reward);
            assert!((0.0..=1.0).contains(&m.slo_hit_rate));
            assert!((0.0..=1.0).contains(&m.proactive_rate));
        }
        assert!(report.method("dqn").is_some());
        assert!(report.method("uniform-share").is_some());
    }
}
