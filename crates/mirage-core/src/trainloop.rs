//! The lockstep training data-path (§4.9): one engine behind online
//! DQN/PG fine-tuning and §4.9.1 offline collection.
//!
//! Training throughput in the paper's regime is sample-collection
//! throughput: every decision of every training episode used to pay a
//! full per-episode NN forward in the sequential loops of
//! [`crate::train`]. The [`BatchedCollector`] replaces those loops' run
//! machinery with lockstep *windows*: `lanes` episodes step together
//! through a [`BatchedEpisodeDriver`], one batched forward per decision
//! tick (reusing the per-lane embed-row caches, which the agents
//! invalidate on every train step), and each window's results come back
//! in episode order so replay pushes and update cadence are untouched.
//!
//! Correctness contract, pinned by the `lockstep_training` property
//! tests:
//!
//! * with `lanes == 1`, a training run is **bit-identical** to the
//!   sequential loop this module replaced — same replay contents, same
//!   final weights, same episode outcomes;
//! * with `lanes == N`, every lane is bit-identical to a sequential run
//!   of its episode under the same per-lane `(seed, ε-step-base)` and
//!   the same window-start weights ([`ExploreLane`] keeps lane streams
//!   and clocks independent of the batch width).
//!
//! Acting inside a window always uses the window-start weights (updates
//! happen between windows, per finished episode) — that is the standard
//! batched-collection trade, and `lanes == 1` recovers the fully
//! sequential cadence exactly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use mirage_rl::{DqnAgent, ExploreLane, PgAgent};
use mirage_sim::{BackendFactory, BackendPool};
use mirage_trace::JobRecord;

use crate::batch::{BatchedEpisodeDriver, LanePolicy};
use crate::episode::{Action, EpisodeConfig, EpisodeResult};
use crate::features::extract_features;
use crate::train::episode_window;

/// Lockstep episode collection over a [`BackendPool`]: chunks an episode
/// list into windows of at most `lanes`, builds one fresh pool backend
/// and one [`episode_window`] trace slice per lane, and steps each
/// window through a [`BatchedEpisodeDriver`].
pub struct BatchedCollector<'a, F: BackendFactory> {
    pool: &'a BackendPool<F>,
    trace: &'a [JobRecord],
    episode: &'a EpisodeConfig,
    lanes: usize,
}

impl<'a, F: BackendFactory> BatchedCollector<'a, F> {
    /// Collector stepping `lanes` episodes per lockstep window (clamped
    /// to at least 1).
    pub fn new(
        pool: &'a BackendPool<F>,
        trace: &'a [JobRecord],
        episode: &'a EpisodeConfig,
        lanes: usize,
    ) -> Self {
        Self {
            pool,
            trace,
            episode,
            lanes: lanes.max(1),
        }
    }

    /// Window width (episodes per lockstep window).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Builds the lockstep driver for one window of episode starts: one
    /// fresh pool backend (seeded as [`BackendPool::build_n`]) and one
    /// per-`t0` trace window per lane. Decision recording is on — the
    /// trajectories are the training data.
    pub fn window(&self, t0s: &[i64]) -> BatchedEpisodeDriver<F::Backend> {
        self.window_at(0, t0s)
    }

    /// [`window`](Self::window) for a *sub*-window whose lanes occupy
    /// slots `first .. first + t0s.len()` of a wider lockstep window:
    /// backends come from [`BackendPool::build_range`], so `W` workers
    /// each driving their contiguous lane range use, collectively, the
    /// exact backend sequence one worker driving the whole window would.
    pub fn window_at(&self, first: usize, t0s: &[i64]) -> BatchedEpisodeDriver<F::Backend> {
        let windows: Vec<&[JobRecord]> = t0s
            .iter()
            .map(|&t0| episode_window(self.trace, t0, self.episode))
            .collect();
        BatchedEpisodeDriver::with_windows(
            self.pool.build_range(first, t0s.len()),
            windows,
            self.episode,
            t0s,
        )
    }

    /// Runs every episode of `t0s` through lockstep windows with one
    /// policy and returns all results in episode order. The convenience
    /// path for policies with no between-window training (offline
    /// collection); training loops that update weights between windows
    /// iterate [`window`](Self::window) themselves.
    pub fn run<P: LanePolicy<F::Backend>>(
        &self,
        t0s: &[i64],
        policy: &mut P,
    ) -> Vec<EpisodeResult> {
        let mut results = Vec::with_capacity(t0s.len());
        for chunk in t0s.chunks(self.lanes) {
            policy.begin_window(results.len(), chunk.len());
            let mut driver = self.window(chunk);
            driver.run_lanes(policy);
            results.extend(driver.finish().0);
        }
        results
    }

    /// [`run`](Self::run) with whole windows fanned out across `threads`
    /// std threads (each window still steps its lanes in lockstep):
    /// threads claim window indices from a shared cursor and every
    /// window's results land at its own offset, so the output — every
    /// episode against its own fresh, identically seeded backend — is
    /// byte-identical to the single-threaded [`run`](Self::run),
    /// whatever the thread interleaving. One policy is built per thread
    /// (`make_policy`) and all are returned for the caller to merge;
    /// windows reach a thread's policy in claim order, so policies must
    /// key any per-episode state on the absolute ordinals
    /// `begin_window` hands them. NN-free offline collection uses this;
    /// the online RL loops keep one thread (one shared set of weights).
    pub fn run_threaded<P, MkP>(
        &self,
        t0s: &[i64],
        threads: usize,
        make_policy: MkP,
    ) -> (Vec<EpisodeResult>, Vec<P>)
    where
        P: LanePolicy<F::Backend> + Send,
        MkP: Fn() -> P + Sync,
    {
        let mut windows: Vec<(usize, &[i64])> = Vec::new();
        let mut first = 0;
        for chunk in t0s.chunks(self.lanes) {
            windows.push((first, chunk));
            first += chunk.len();
        }
        let threads = threads.clamp(1, windows.len().max(1));
        if threads == 1 {
            let mut policy = make_policy();
            let results = self.run(t0s, &mut policy);
            return (results, vec![policy]);
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Vec<EpisodeResult>>>> =
            (0..windows.len()).map(|_| Mutex::new(None)).collect();
        let policies: Vec<P> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let slots = &slots;
                    let windows = &windows;
                    let make_policy = &make_policy;
                    scope.spawn(move || {
                        let mut policy = make_policy();
                        loop {
                            let w = cursor.fetch_add(1, Ordering::Relaxed);
                            if w >= windows.len() {
                                break;
                            }
                            let (first, chunk) = windows[w];
                            policy.begin_window(first, chunk.len());
                            let mut driver = self.window(chunk);
                            driver.run_lanes(&mut policy);
                            *slots[w].lock().expect("unpoisoned window slot") =
                                Some(driver.finish().0);
                        }
                        policy
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("collector thread panicked"))
                .collect()
        });
        let results = slots
            .into_iter()
            .flat_map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned window slot")
                    .expect("every window index was claimed exactly once")
            })
            .collect();
        (results, policies)
    }
}

/// One window of ε-greedy DQN collection: each lockstep tick is a single
/// [`DqnAgent::act_batch`] forward, with batch rows mapped through the
/// driver's pending list onto the window's [`ExploreLane`]s.
pub struct DqnActWindow<'a> {
    /// The training agent (weights frozen while the window runs).
    pub agent: &'a mut DqnAgent,
    /// One exploration lane per window episode, lane order.
    pub lanes: &'a mut [ExploreLane],
}

impl<B: mirage_sim::ClusterBackend> LanePolicy<B> for DqnActWindow<'_> {
    fn decide_lanes(&mut self, driver: &BatchedEpisodeDriver<B>, actions: &mut Vec<usize>) {
        self.agent
            .act_batch(driver.batch_states(), self.lanes, driver.pending(), actions);
    }
}

/// One window of stochastic PG collection: each lockstep tick is a
/// single [`PgAgent::act_sample_batch`] forward with per-lane RNG draws.
pub struct PgActWindow<'a> {
    /// The training agent (weights frozen while the window runs).
    pub agent: &'a mut PgAgent,
    /// One sampling lane per window episode, lane order.
    pub lanes: &'a mut [ExploreLane],
}

impl<B: mirage_sim::ClusterBackend> LanePolicy<B> for PgActWindow<'_> {
    fn decide_lanes(&mut self, driver: &BatchedEpisodeDriver<B>, actions: &mut Vec<usize>) {
        self.agent
            .act_sample_batch(driver.batch_states(), self.lanes, driver.pending(), actions);
    }
}

/// One `chunk.len()`-lane lockstep window of ε-greedy DQN collection
/// split across synchronized workers, `per_worker` contiguous lanes
/// each: every worker acts with its own clone of the window-start agent
/// (weights are frozen while a window runs, and the per-lane embed
/// caches are bit-transparent), drives backends from
/// [`BackendPool::build_range`] over its lane slots, and results land in
/// lane order — bit-identical to one worker driving the whole window
/// (pinned by `tests/lockstep_training.rs`). `lanes` must hold one
/// [`ExploreLane`] per chunk episode, lane order.
pub fn dqn_collect_sharded<F: BackendFactory>(
    collector: &BatchedCollector<'_, F>,
    chunk: &[i64],
    per_worker: usize,
    agent: &DqnAgent,
    lanes: &mut [ExploreLane],
) -> Vec<EpisodeResult> {
    collect_sharded(collector, chunk, per_worker, lanes, |driver, sub_lanes| {
        let mut local = agent.clone();
        driver.run_lanes(&mut DqnActWindow {
            agent: &mut local,
            lanes: sub_lanes,
        });
    })
}

/// The stochastic-PG analogue of [`dqn_collect_sharded`]: per-lane RNG
/// streams live in `lanes`, so worker fan-out never moves a draw between
/// episodes.
pub fn pg_collect_sharded<F: BackendFactory>(
    collector: &BatchedCollector<'_, F>,
    chunk: &[i64],
    per_worker: usize,
    agent: &PgAgent,
    lanes: &mut [ExploreLane],
) -> Vec<EpisodeResult> {
    collect_sharded(collector, chunk, per_worker, lanes, |driver, sub_lanes| {
        let mut local = agent.clone();
        driver.run_lanes(&mut PgActWindow {
            agent: &mut local,
            lanes: sub_lanes,
        });
    })
}

/// Shared fan-out: contiguous `per_worker`-lane sub-windows, one thread
/// each. `run` receives the sub-window's driver plus its lane slice
/// (clones its agent inside the thread); results re-assemble in lane
/// order.
fn collect_sharded<F, Run>(
    collector: &BatchedCollector<'_, F>,
    chunk: &[i64],
    per_worker: usize,
    lanes: &mut [ExploreLane],
    run: Run,
) -> Vec<EpisodeResult>
where
    F: BackendFactory,
    Run: Fn(&mut BatchedEpisodeDriver<F::Backend>, &mut [ExploreLane]) + Sync,
{
    assert_eq!(chunk.len(), lanes.len(), "one exploration lane per episode");
    let per_worker = per_worker.max(1);
    let n_shards = chunk.len().div_ceil(per_worker).max(1);
    let mut slots: Vec<Option<Vec<EpisodeResult>>> = (0..n_shards).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut lanes_rest = lanes;
        let mut first = 0usize;
        for slot in &mut slots {
            let n = per_worker.min(chunk.len() - first);
            let (sub_lanes, rest) = lanes_rest.split_at_mut(n);
            lanes_rest = rest;
            let sub = &chunk[first..first + n];
            let run = &run;
            scope.spawn(move || {
                let mut driver = collector.window_at(first, sub);
                run(&mut driver, sub_lanes);
                *slot = Some(driver.finish().0);
            });
            first += n;
        }
    });
    slots
        .into_iter()
        .flat_map(|s| s.expect("every sub-window ran"))
        .collect()
}

/// The §4.9.1 split-point heuristic over collection windows: task `i`
/// waits (`splits[i] == None`, the reactive run) or submits once the
/// predecessor's elapsed fraction of its limit passes
/// `(j + 1) / (points + 1)` (`splits[i] == Some(j)`), and the features
/// at each task's first submit decision are recorded for the ensemble
/// wait predictors.
pub struct SplitCollectPolicy<'a> {
    episode: &'a EpisodeConfig,
    points: usize,
    splits: &'a [Option<usize>],
    first: usize,
    /// Features at each task's first submit decision, task order
    /// (pre-sized to the task count: windows may reach a policy out of
    /// order under [`BatchedCollector::run_threaded`]).
    pub submit_features: Vec<Option<Vec<f32>>>,
}

impl<'a> SplitCollectPolicy<'a> {
    /// Policy over `splits.len()` tasks with `points` split points.
    pub fn new(episode: &'a EpisodeConfig, points: usize, splits: &'a [Option<usize>]) -> Self {
        Self {
            episode,
            points: points.max(1),
            splits,
            first: 0,
            submit_features: vec![None; splits.len()],
        }
    }
}

impl<B: mirage_sim::ClusterBackend> LanePolicy<B> for SplitCollectPolicy<'_> {
    fn begin_window(&mut self, first: usize, _width: usize) {
        self.first = first;
    }

    fn decide_lanes(&mut self, driver: &BatchedEpisodeDriver<B>, actions: &mut Vec<usize>) {
        for (row, &lane) in driver.pending().iter().enumerate() {
            let task = self.first + lane;
            let ctx = driver.pending_context(row);
            let act = match self.splits[task] {
                None => Action::Wait,
                Some(j) => {
                    // Submit once the predecessor's elapsed fraction
                    // passes (j+1)/(points+1) of its limit.
                    let threshold =
                        (j as i64 + 1) * self.episode.pair_timelimit / (self.points as i64 + 1);
                    let elapsed = self.episode.pair_timelimit - ctx.pred_remaining;
                    if ctx.pred_started && elapsed >= threshold {
                        Action::Submit
                    } else {
                        Action::Wait
                    }
                }
            };
            if act == Action::Submit && self.submit_features[task].is_none() {
                self.submit_features[task] = Some(extract_features(&ctx));
            }
            actions.push(act.index());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_sim::{BackendKind, SimConfig};
    use mirage_trace::{DAY, HOUR, MINUTE};

    fn small_cfg() -> EpisodeConfig {
        EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        }
    }

    fn bg_trace() -> Vec<JobRecord> {
        (0..10 * 24)
            .map(|i| {
                JobRecord::new(
                    i as u64 + 1,
                    format!("bg{i}"),
                    (i % 5) as u32,
                    i * HOUR,
                    1 + (i % 3) as u32,
                    4 * HOUR,
                    2 * HOUR,
                )
            })
            .collect()
    }

    #[test]
    fn threaded_windows_match_single_threaded_run_bitwise() {
        // Window fan-out across threads must not change anything: same
        // per-episode outcomes and decisions, same recorded features,
        // whatever the thread count.
        let cfg = small_cfg();
        let trace = bg_trace();
        let pool = SimConfig::builder()
            .nodes(4)
            .backend(BackendKind::Pooled { workers: 4 })
            .build_pool();
        let t0s: Vec<i64> = (0..10).map(|i| 2 * DAY + i * 5 * HOUR).collect();
        let splits: Vec<Option<usize>> = (0..10)
            .map(|i| if i % 3 == 0 { None } else { Some(i % 3 - 1) })
            .collect();
        let collector = BatchedCollector::new(&pool, &trace, &cfg, 3);

        let mut single = SplitCollectPolicy::new(&cfg, 2, &splits);
        let sequential = collector.run(&t0s, &mut single);
        for threads in [2usize, 4] {
            let (threaded, policies) =
                collector.run_threaded(&t0s, threads, || SplitCollectPolicy::new(&cfg, 2, &splits));
            assert_eq!(threaded.len(), sequential.len());
            for (a, b) in threaded.iter().zip(&sequential) {
                assert_eq!(a.outcome, b.outcome);
                assert_eq!(a.succ_submit, b.succ_submit);
                assert_eq!(a.submitted_by_policy, b.submitted_by_policy);
                assert_eq!(a.decisions, b.decisions);
            }
            // Every task's features appear in exactly one thread policy
            // and match the single-threaded recording.
            for i in 0..t0s.len() {
                let merged: Vec<&Vec<f32>> = policies
                    .iter()
                    .filter_map(|p| p.submit_features[i].as_ref())
                    .collect();
                assert!(merged.len() <= 1, "task {i} ran on one thread");
                assert_eq!(
                    merged.first().copied(),
                    single.submit_features[i].as_ref(),
                    "task {i} features"
                );
            }
        }
    }
}
