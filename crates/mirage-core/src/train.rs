//! Training pipelines (§4.9 of the paper).
//!
//! * **Offline sample collection** (§4.9.1): episodes replayed from the
//!   training range submit the successor at evenly split points between
//!   the predecessor's start and its end; every decision in the episode
//!   is credited with the delayed episode reward (Eq. 8) and stored in
//!   the experience memory pool.
//! * **Foundation pretraining**: supervised reward regression over the
//!   collected pool (`mirage-rl::offline`).
//! * **Online training** (§4.9.2): DQN trains on-policy with ε-greedy
//!   exploration and replay mini-batches; PG trains on Monte-Carlo
//!   episode rollouts.
//! * **Ensemble fitting**: the same episodes supply (features → observed
//!   successor wait) pairs for the Random Forest / XGBoost baselines.
//!
//! All episode execution — offline collection and both online loops —
//! runs through the lockstep [`BatchedCollector`]
//! (`TrainConfig::collect_lanes` episodes per window, one batched NN
//! forward per decision tick); see [`crate::trainloop`] for the engine
//! and its bit-identity contract with the sequential loops it replaced.

use mirage_ensemble::{Dataset, ForestConfig, GbdtConfig, GradientBoosting, RandomForest};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::transformer::TransformerConfig;
use mirage_rl::{
    pretrain_foundation, ActionEncoding, BalancedReplay, DqnAgent, DqnConfig, DualHeadConfig,
    DualHeadNet, EpisodeSample, Experience, ExploreLane, PgAgent, PgConfig, PretrainConfig,
    RewardSample,
};
use mirage_sim::{BackendFactory, BackendPool, ClusterBackend};
use mirage_trace::{JobRecord, DAY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::checkpoint::{
    check_match, CheckpointConfig, DqnTrainCheckpoint, PgTrainCheckpoint, ResumeError,
};
use crate::episode::{EpisodeConfig, EpisodeResult};
use crate::policy::{
    AvgWaitPolicy, DqnPolicy, PgPolicy, ProvisionPolicy, ReactivePolicy, WaitModel,
    WaitPredictorPolicy,
};
use crate::reward::RewardShaper;
use crate::state::STATE_VARS;
use crate::trainloop::{
    dqn_collect_sharded, pg_collect_sharded, BatchedCollector, DqnActWindow, PgActWindow,
    SplitCollectPolicy,
};

/// The eight §6 methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodKind {
    /// Submit on predecessor completion (common practice).
    Reactive,
    /// Submit `T_avg` before the predecessor's end.
    AvgHeuristic,
    /// Random-forest wait predictor.
    RandomForest,
    /// Gradient-boosted wait predictor.
    Xgboost,
    /// Transformer foundation + DQN head.
    TransformerDqn,
    /// MoE foundation + DQN head (the paper's default Mirage model).
    MoeDqn,
    /// Transformer foundation + PG head (the aggressive option).
    TransformerPg,
    /// MoE foundation + PG head.
    MoePg,
}

impl MethodKind {
    /// All methods in the order the paper's figures list them.
    pub fn all() -> [MethodKind; 8] {
        [
            MethodKind::Reactive,
            MethodKind::AvgHeuristic,
            MethodKind::RandomForest,
            MethodKind::Xgboost,
            MethodKind::TransformerDqn,
            MethodKind::MoeDqn,
            MethodKind::TransformerPg,
            MethodKind::MoePg,
        ]
    }

    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            MethodKind::Reactive => "reactive",
            MethodKind::AvgHeuristic => "avg",
            MethodKind::RandomForest => "random-forest",
            MethodKind::Xgboost => "xgboost",
            MethodKind::TransformerDqn => "transformer+DQN",
            MethodKind::MoeDqn => "MoE+DQN",
            MethodKind::TransformerPg => "transformer+PG",
            MethodKind::MoePg => "MoE+PG",
        }
    }

    /// Whether this method needs any training at all.
    pub fn is_learned(&self) -> bool {
        !matches!(self, MethodKind::Reactive | MethodKind::AvgHeuristic)
    }
}

/// End-to-end training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Episode shape (pair size, cadence, history length…).
    pub episode: EpisodeConfig,
    /// Predecessor start points sampled from the training range.
    pub offline_episodes: usize,
    /// Successor submission split points per episode (7 in §4.9.1).
    pub split_points: usize,
    /// Reward shaping coefficients.
    pub shaper: RewardShaper,
    /// Foundation/optimizer seed.
    pub seed: u64,
    /// MoE expert count.
    pub moe_experts: usize,
    /// Foundation pretraining settings.
    pub pretrain: PretrainConfig,
    /// Online DQN settings.
    pub dqn: DqnConfig,
    /// Online PG settings.
    pub pg: PgConfig,
    /// Online fine-tuning episodes (per RL method).
    pub online_episodes: usize,
    /// Replay-batch size for online DQN updates.
    pub batch_size: usize,
    /// Replay mini-batch updates after each online episode.
    pub updates_per_episode: usize,
    /// Lockstep episode lanes **per training worker** per
    /// online-collection window (and per offline-collection window,
    /// capped by the pool width). Each window's acting shares the
    /// window-start weights; `Some(1)` recovers the fully sequential
    /// collect-update cadence bit for bit, and every lane is
    /// bit-identical to a sequential run under its own `(seed, ε-base)`
    /// whatever the width (see `crate::trainloop`). `None` (the default)
    /// auto-sizes to the machine via
    /// [`TrainConfig::collect_lanes_for`]: `min(pool workers,`
    /// [`l1_lane_cap`](Self::l1_lane_cap)`)`.
    pub collect_lanes: Option<usize>,
    /// Synchronized lockstep training workers (W). Each online window
    /// spans `W × collect_lanes` episodes: every worker collects its own
    /// `collect_lanes` contiguous lanes on its own pool-seeded backends,
    /// and every weight update shards its batch across the same `W`
    /// threads with a deterministic ascending-order gradient all-reduce
    /// before one shared Adam step. `1` (the default) is bit-identical
    /// to the single-worker trainer, and `W` workers × `L` lanes is
    /// bit-identical to one worker × `W·L` lanes (pinned by
    /// `tests/lockstep_training.rs`). Joins the checkpoint fingerprint:
    /// resumes refuse a different worker count. Clamped to at least one
    /// worker everywhere it is read, so a zero (e.g. from an absent
    /// config field) behaves as one.
    #[serde(default)]
    pub train_workers: usize,
    /// Cap on reward samples used for foundation pretraining (subsampled
    /// deterministically when the pool is larger).
    pub max_pretrain_samples: usize,
    /// Transformer width/depth.
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Encoder layers.
    pub layers: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            episode: EpisodeConfig::default(),
            offline_episodes: 24,
            split_points: 7,
            shaper: RewardShaper::default(),
            seed: 0,
            moe_experts: 3,
            pretrain: PretrainConfig {
                epochs: 4,
                batch_size: 32,
                lr: 1e-3,
                seed: 0,
                grad_clip: 5.0,
            },
            dqn: DqnConfig::default(),
            // Low online lr: REINFORCE fine-tunes the behavior-cloned
            // policy without being able to wipe it out in a few bad
            // episode batches.
            pg: PgConfig {
                entropy_coef: 0.02,
                lr: 3e-4,
                ..PgConfig::default()
            },
            online_episodes: 60,
            batch_size: 32,
            updates_per_episode: 6,
            // Auto-size to the pool: lockstep windows only pay off up to
            // the thread fan-out, and past ~8 lanes the per-window update
            // staleness outweighs the batching gain. `Some(4)` recovers
            // the old fixed default (and makes PG *globally*
            // bit-identical to the pre-lockstep sequential loop, whose
            // REINFORCE batch is 4).
            collect_lanes: None,
            train_workers: 1,
            max_pretrain_samples: 2500,
            d_model: 16,
            heads: 2,
            layers: 1,
        }
    }
}

impl TrainConfig {
    /// Resolves [`collect_lanes`](Self::collect_lanes) against the
    /// backend pool driving collection: an explicit override wins
    /// (clamped to at least one lane); `None` auto-sizes to
    /// `min(pool_workers,` [`l1_lane_cap`](Self::l1_lane_cap)`)` — one
    /// lane per collection thread, capped where the lockstep batch stops
    /// fitting in cache (and where wider windows stop paying for their
    /// update staleness).
    pub fn collect_lanes_for(&self, pool_workers: usize) -> usize {
        self.collect_lanes
            .unwrap_or_else(|| pool_workers.min(self.l1_lane_cap()))
            .max(1)
    }

    /// Deterministic cache-residency probe for the auto-sized lockstep
    /// width: the widest lane count whose hot per-tick state — one
    /// `history_k × STATE_VARS` observation row-stack plus one `d_model`
    /// activation row per lane, in `f32` — still fits a conservative
    /// 32 KiB L1 data cache, clamped to `[2, 16]`. Derived purely from
    /// the config (never from runtime timing), so auto-sized runs are
    /// reproducible across machines; an explicit
    /// [`collect_lanes`](Self::collect_lanes) override bypasses it
    /// entirely.
    pub fn l1_lane_cap(&self) -> usize {
        const L1_BYTES: usize = 32 * 1024;
        let per_lane =
            (self.episode.history_k * STATE_VARS + self.d_model) * std::mem::size_of::<f32>();
        (L1_BYTES / per_lane.max(1)).clamp(2, 16)
    }
}

/// Offline data pools produced by §4.9.1 collection.
#[derive(Debug, Default)]
pub struct OfflineData {
    /// (state, action, reward) triples for foundation pretraining and DQN.
    pub reward_samples: Vec<RewardSample>,
    /// (features, successor wait in hours) pairs for the ensembles.
    pub wait_samples: Vec<(Vec<f32>, f32)>,
    /// Decisions of the best-reward run per episode start — the
    /// behavior-cloning warm start for the P-head (REINFORCE alone is too
    /// sample-hungry at this scale; see DESIGN.md §3).
    pub best_run_decisions: Vec<(mirage_nn::Matrix, usize)>,
}

/// Samples episode start instants uniformly within `[range_start,
/// range_end)`, leaving room for warm-up before and the episode horizon
/// after.
pub fn sample_episode_starts(
    range_start: i64,
    range_end: i64,
    episode: &EpisodeConfig,
    n: usize,
    seed: u64,
) -> Vec<i64> {
    // The warm-up window may reach *before* range_start: it only replays
    // background context that already existed (no leakage), and insisting
    // on post-start warm-up would blind short validation ranges to their
    // early congested stretches.
    let lo = range_start + 2 * DAY;
    let hi = (range_end - episode.pair_timelimit - 2 * DAY).max(lo + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut starts: Vec<i64> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    starts.sort_unstable();
    starts
}

/// Samples *training* episode starts with a congestion bias: candidates
/// are ranked by the local offered demand (node-seconds submitted in the
/// preceding two days over capacity) and half the picks come from the most
/// congested quartile. Heavy-load episodes are where the paper's results
/// live, but they are rare under uniform sampling — this keeps them in the
/// training diet without touching the (uniformly sampled) validation set.
pub fn sample_training_starts(
    trace: &[JobRecord],
    nodes: u32,
    range_start: i64,
    range_end: i64,
    episode: &EpisodeConfig,
    n: usize,
    seed: u64,
) -> Vec<i64> {
    let candidates = sample_episode_starts(range_start, range_end, episode, n * 3, seed);
    let demand_at = |t0: i64| -> f64 {
        let from = t0 - 2 * DAY;
        let lo = trace.partition_point(|j| j.submit < from);
        let hi = trace.partition_point(|j| j.submit < t0);
        let ns: f64 = trace[lo..hi]
            .iter()
            .map(|j| j.nodes as f64 * j.runtime as f64)
            .sum();
        ns / (f64::from(nodes.max(1)) * (2 * DAY) as f64)
    };
    let mut ranked: Vec<(f64, i64)> = candidates.iter().map(|&t| (demand_at(t), t)).collect();
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let top_quartile = ranked.len() / 4;
    let mut picks: Vec<i64> = Vec::with_capacity(n);
    // Half from the congested quartile, half spread over the full ranking.
    for (_, t) in ranked.iter().take(top_quartile.max(1)).take(n / 2) {
        picks.push(*t);
    }
    let rest = &ranked[top_quartile.min(ranked.len())..];
    if !rest.is_empty() {
        let stride = (rest.len() / (n - picks.len()).max(1)).max(1);
        for (_, t) in rest.iter().step_by(stride) {
            if picks.len() >= n {
                break;
            }
            picks.push(*t);
        }
    }
    while picks.len() < n && !ranked.is_empty() {
        picks.push(ranked[picks.len() % ranked.len()].1);
    }
    picks.sort_unstable();
    picks
}

/// Slices the (submit-sorted) trace to the window an episode at `t0`
/// needs: warm-up before, generous horizon after.
pub fn episode_window<'a>(
    trace: &'a [JobRecord],
    t0: i64,
    episode: &EpisodeConfig,
) -> &'a [JobRecord] {
    let from = t0 - episode.warmup;
    let to = t0 + 2 * episode.pair_timelimit + 6 * DAY;
    let lo = trace.partition_point(|j| j.submit < from);
    let hi = trace.partition_point(|j| j.submit < to);
    &trace[lo..hi]
}

/// §4.9.1 offline collection: for each start, one reactive run plus
/// `split_points` runs that submit the successor at evenly split elapsed
/// fractions of the predecessor's limit. Every decision of a run is
/// credited with the delayed episode reward.
///
/// Runs step through the batched episode engine in lockstep windows
/// (each lane against its own pool-seeded backend), with whole windows
/// fanned out across the [`BackendPool`]'s worker threads; results are
/// in task order and identical to a sequential run, whatever the worker
/// count. Decision matrices move straight into the reward pool — only
/// each start's best run is copied (out of that pool) for the
/// behavior-cloning warm start.
pub fn collect_offline<F: BackendFactory>(
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
) -> OfflineData {
    let points = cfg.split_points.max(1);
    let mut t0s: Vec<i64> = Vec::new();
    let mut splits: Vec<Option<usize>> = Vec::new();
    for &t0 in starts {
        t0s.push(t0);
        splits.push(None); // reactive run (never submit proactively)
        for j in 0..points {
            t0s.push(t0);
            splits.push(Some(j));
        }
    }
    // Heuristic collection has no NN to amortize, so lockstep width
    // matters less than thread fan-out: small windows (capped by the
    // pool width), one window per pool thread at a time.
    let lanes = cfg
        .collect_lanes_for(pool.workers())
        .min(pool.workers())
        .max(1);
    let collector = BatchedCollector::new(pool, trace, &cfg.episode, lanes);
    let (results, policies) = collector.run_threaded(&t0s, pool.workers(), || {
        SplitCollectPolicy::new(&cfg.episode, points, &splits)
    });
    // Each task ran on exactly one thread; merge its features from
    // whichever per-thread policy saw it.
    let mut submit_features: Vec<Option<Vec<f32>>> = vec![None; t0s.len()];
    for mut policy in policies {
        for (i, f) in policy.submit_features.iter_mut().enumerate() {
            if f.is_some() {
                submit_features[i] = f.take();
            }
        }
    }

    let mut data = OfflineData::default();
    let mut best_per_start: std::collections::HashMap<i64, (f32, usize)> =
        std::collections::HashMap::new();
    // Reward-pool span of each task's decisions, so best runs can be
    // copied back out without keeping a second full set of matrices.
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(results.len());
    for (i, mut result) in results.into_iter().enumerate() {
        let reward = cfg.shaper.reward(&result.outcome);
        let offset = data.reward_samples.len();
        for (state, action) in result.take_decisions() {
            data.reward_samples.push(RewardSample {
                state,
                action,
                reward,
            });
        }
        spans.push((offset, data.reward_samples.len()));
        if let Some(features) = submit_features[i].take() {
            data.wait_samples
                .push((features, result.succ_wait() as f32 / 3600.0));
        }
        best_per_start
            .entry(t0s[i])
            .and_modify(|(best, idx)| {
                if reward > *best {
                    *best = reward;
                    *idx = i;
                }
            })
            .or_insert((reward, i));
    }
    let mut best: Vec<(i64, usize)> = best_per_start
        .into_iter()
        .map(|(t0, (_, idx))| (t0, idx))
        .collect();
    best.sort_unstable();
    for (_, idx) in best {
        let (lo, hi) = spans[idx];
        for s in &data.reward_samples[lo..hi] {
            data.best_run_decisions.push((s.state.clone(), s.action));
        }
    }
    data
}

/// Fits the Random Forest wait predictor on offline wait samples.
pub fn train_forest(data: &OfflineData, seed: u64) -> RandomForest {
    let (rows, ys): (Vec<Vec<f32>>, Vec<f32>) = data.wait_samples.iter().cloned().unzip();
    let ds = Dataset::from_rows(&rows, &ys);
    RandomForest::fit(
        &ds,
        &ForestConfig {
            n_trees: 60,
            seed,
            ..ForestConfig::default()
        },
    )
}

/// Fits the XGBoost-style wait predictor on offline wait samples.
pub fn train_gbdt(data: &OfflineData, seed: u64) -> GradientBoosting {
    let (rows, ys): (Vec<Vec<f32>>, Vec<f32>) = data.wait_samples.iter().cloned().unzip();
    let ds = Dataset::from_rows(&rows, &ys);
    GradientBoosting::fit(
        &ds,
        &GbdtConfig {
            n_rounds: 60,
            seed,
            ..GbdtConfig::default()
        },
    )
}

fn transformer_config(cfg: &TrainConfig) -> TransformerConfig {
    TransformerConfig {
        input_dim: STATE_VARS,
        seq_len: cfg.episode.history_k,
        d_model: cfg.d_model,
        heads: cfg.heads,
        layers: cfg.layers,
        ff_mult: 2,
    }
}

/// Builds and pretrains a dual-head network of the given foundation kind.
pub fn build_pretrained_net(
    kind: FoundationKind,
    cfg: &TrainConfig,
    data: &OfflineData,
) -> DualHeadNet {
    let mut net = DualHeadNet::new(DualHeadConfig {
        foundation: kind,
        transformer: transformer_config(cfg),
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: cfg.seed,
    });
    if !data.reward_samples.is_empty() {
        if data.reward_samples.len() > cfg.max_pretrain_samples {
            // Deterministic stride subsample keeps episode diversity.
            let stride = data.reward_samples.len() / cfg.max_pretrain_samples + 1;
            let sub: Vec<RewardSample> = data
                .reward_samples
                .iter()
                .step_by(stride.max(1))
                .cloned()
                .collect();
            pretrain_foundation(&mut net, &sub, &cfg.pretrain);
        } else {
            pretrain_foundation(&mut net, &data.reward_samples, &cfg.pretrain);
        }
    }
    net
}

/// The per-lane RNG seed of online-DQN training episode `i` (the seed
/// the pre-refactor sequential loop gave episode `i`'s RNG, kept so the
/// lockstep refactor is comparable run for run).
pub fn dqn_episode_seed(cfg_seed: u64, i: usize) -> u64 {
    cfg_seed ^ ((i as u64) << 3)
}

/// The per-lane RNG seed of online-PG training episode `i`.
pub fn pg_episode_seed(cfg_seed: u64, i: usize) -> u64 {
    cfg_seed ^ 0xBEEF ^ ((i as u64) << 4)
}

/// Online DQN fine-tuning (§4.9.2a): ε-greedy episodes collected in
/// lockstep windows of `cfg.collect_lanes` (one batched forward per
/// decision tick); each episode's decisions enter the class-balanced
/// replay pool with the delayed episode reward, followed by that
/// episode's mini-batch updates — the sequential loop's exact cadence,
/// with acting inside a window pinned to the window-start weights.
pub fn train_dqn_online<F: BackendFactory>(
    net: DualHeadNet,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
    warm_start: &OfflineData,
) -> DqnAgent {
    train_dqn_online_traced(net, pool, trace, cfg, starts, warm_start).0
}

/// [`train_dqn_online`] additionally returning the replay pool and the
/// per-episode records (decision trajectories already moved into the
/// replay, so their `decisions` are empty) — the inspection surface the
/// lockstep identity property tests pin this refactor with.
pub fn train_dqn_online_traced<F: BackendFactory>(
    net: DualHeadNet,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
    warm_start: &OfflineData,
) -> (DqnAgent, BalancedReplay, Vec<EpisodeResult>) {
    let run = dqn_online_loop(net, pool, trace, cfg, starts, warm_start, None, None)
        .expect("un-checkpointed training cannot fail");
    (run.agent, run.replay, run.episodes)
}

/// A (possibly halted) checkpointed DQN training run.
#[derive(Debug)]
pub struct DqnTrainRun {
    /// The trained (or mid-training, if halted) agent.
    pub agent: DqnAgent,
    /// The replay pool as of the last episode run.
    pub replay: BalancedReplay,
    /// Per-episode records (decisions drained into the replay).
    pub episodes: Vec<EpisodeResult>,
    /// Whether [`CheckpointConfig::halt_after`] stopped the run early
    /// (right after writing a checkpoint at a chunk boundary).
    pub halted: bool,
}

/// [`train_dqn_online`] with crash-safe checkpointing: full training
/// state — weights, target net, Adam moments, both replay rings, the
/// replay-sampling RNG, the global ε clock and the episode counter — is
/// snapshotted to `ckpt.path` at chunk boundaries on the
/// `ckpt.every_episodes` cadence. Pass `resume_from` to continue an
/// interrupted run: the resumed run is **bit-identical** to the
/// uninterrupted one (weights, replay contents, episode outcomes), as
/// pinned by `tests/crash_resume.rs`.
#[allow(clippy::too_many_arguments)]
pub fn train_dqn_online_checkpointed<F: BackendFactory>(
    net: DualHeadNet,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
    warm_start: &OfflineData,
    ckpt: &CheckpointConfig,
    resume_from: Option<&std::path::Path>,
) -> Result<DqnTrainRun, ResumeError> {
    dqn_online_loop(
        net,
        pool,
        trace,
        cfg,
        starts,
        warm_start,
        Some(ckpt),
        resume_from,
    )
}

#[allow(clippy::too_many_arguments)]
fn dqn_online_loop<F: BackendFactory>(
    net: DualHeadNet,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
    warm_start: &OfflineData,
    ckpt: Option<&CheckpointConfig>,
    resume_from: Option<&std::path::Path>,
) -> Result<DqnTrainRun, ResumeError> {
    let mut agent = DqnAgent::new(net, cfg.dqn);
    let mut replay = BalancedReplay::new(8192, 4096);
    for s in &warm_start.reward_samples {
        replay.push(Experience::terminal(s.state.clone(), s.action, s.reward));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD9);
    let t0s: Vec<i64> = starts
        .iter()
        .cycle()
        .take(cfg.online_episodes)
        .copied()
        .collect();
    let collector = BatchedCollector::new(
        pool,
        trace,
        &cfg.episode,
        cfg.collect_lanes_for(pool.workers()),
    );
    let workers = cfg.train_workers.max(1);
    let per_worker = collector.lanes();
    // A window spans every worker's lanes; workers collect their own
    // contiguous sub-windows and updates all-reduce across the same W.
    let width = per_worker * workers;
    let mut episodes: Vec<EpisodeResult> = Vec::with_capacity(t0s.len());

    if let Some(path) = resume_from {
        let mut saved = DqnTrainCheckpoint::load(path)?;
        check_match("seed", saved.cfg_seed, cfg.seed)?;
        check_match("collect lanes", saved.lanes, per_worker as u64)?;
        check_match("train workers", saved.workers, workers as u64)?;
        let done = saved.episodes.len();
        if done % width != 0 && done < t0s.len() {
            return Err(ResumeError::ConfigMismatch {
                field: "episode counter (must sit on a chunk boundary)",
                saved: done.to_string(),
                current: format!("multiple of {width}"),
            });
        }
        let (wait, submit) = saved.take_replay();
        replay = BalancedReplay::from_buffers(wait, submit);
        rng = StdRng::from_state(saved.rng);
        agent.import_state(saved.agent);
        episodes = saved.episodes;
    }

    let done = episodes.len();
    let mut last_saved = done;
    let mut lanes: Vec<ExploreLane> = Vec::with_capacity(width);
    // One row-stacked mini-batch buffer for the whole run, refilled in
    // place per update (`sample_minibatch` re-stacks from scratch), so
    // steady-state updates allocate nothing.
    let mut mb = mirage_rl::MiniBatch::new();
    for chunk_start in (0..t0s.len()).step_by(width) {
        let chunk = &t0s[chunk_start..(chunk_start + width).min(t0s.len())];
        if chunk_start + chunk.len() <= done {
            // Replayed from the checkpoint: the restored agent, replay,
            // RNG and episode records already contain this chunk.
            continue;
        }
        // Lane i resumes the agent's global ε clock and owns the RNG
        // stream its episode ordinal has always had. (This also makes
        // chunk-boundary checkpoints complete: lane streams are derived
        // from the saved ε clock and episode counter, never stored.)
        lanes.clear();
        lanes.extend(
            (episodes.len()..episodes.len() + chunk.len())
                .map(|i| ExploreLane::seeded(dqn_episode_seed(cfg.seed, i), agent.steps)),
        );
        let results = if workers <= 1 {
            let mut driver = collector.window(chunk);
            driver.run_lanes(&mut DqnActWindow {
                agent: &mut agent,
                lanes: &mut lanes,
            });
            driver.finish().0
        } else {
            // Each worker drives its own contiguous `per_worker`-lane
            // sub-window on its own pool-seeded backends; the collective
            // lane sequence is identical to one worker driving `width`
            // lanes (weights are frozen within a window).
            dqn_collect_sharded(&collector, chunk, per_worker, &agent, &mut lanes)
        };
        // Replay pushes and updates keep the sequential per-episode
        // cadence: results arrive in episode order.
        for mut result in results {
            let reward = cfg.shaper.reward(&result.outcome);
            agent.steps += result.decisions.len() as u64;
            for (state, action) in result.take_decisions() {
                replay.push(Experience::terminal(state, action, reward));
            }
            if replay.len() >= cfg.batch_size {
                for _ in 0..cfg.updates_per_episode.max(1) {
                    replay.sample_minibatch(&mut rng, cfg.batch_size, &mut mb);
                    agent.train_minibatch_sharded(&mb, workers);
                }
            }
            episodes.push(result);
        }
        if let Some(c) = ckpt {
            let at = episodes.len();
            let halt = c.halt_after.is_some_and(|h| at >= h);
            if halt || (c.every_episodes > 0 && at - last_saved >= c.every_episodes) {
                snapshot_dqn(cfg, per_worker, workers, &agent, &replay, &rng, &episodes)
                    .save(&c.path)?;
                last_saved = at;
            }
            if halt {
                return Ok(DqnTrainRun {
                    agent,
                    replay,
                    episodes,
                    halted: true,
                });
            }
        }
    }
    Ok(DqnTrainRun {
        agent,
        replay,
        episodes,
        halted: false,
    })
}

fn snapshot_dqn(
    cfg: &TrainConfig,
    lanes: usize,
    workers: usize,
    agent: &DqnAgent,
    replay: &BalancedReplay,
    rng: &StdRng,
    episodes: &[EpisodeResult],
) -> DqnTrainCheckpoint {
    let (wc, ww, wb) = replay.wait().raw_parts();
    let (sc, sw, sb) = replay.submit().raw_parts();
    DqnTrainCheckpoint {
        cfg_seed: cfg.seed,
        lanes: lanes as u64,
        workers: workers as u64,
        agent: agent.export_state(),
        replay_wait: (wc as u64, ww as u64, wb.to_vec()),
        replay_submit: (sc as u64, sw as u64, sb.to_vec()),
        rng: rng.state(),
        episodes: episodes.to_vec(),
    }
}

/// Warm-starts the P-head (and shared foundation) by behavior-cloning the
/// best-reward offline run of each training episode: cross-entropy between
/// the P-head's softmax and the demonstrated submit/no-submit decisions.
/// REINFORCE then fine-tunes from a sensible policy instead of noise.
pub fn behavior_clone(
    net: &mut DualHeadNet,
    samples: &[(mirage_nn::Matrix, usize)],
    epochs: usize,
    lr: f32,
    seed: u64,
) {
    use mirage_nn::loss::softmax_cross_entropy;
    use mirage_nn::optim::{Adam, Optimizer};
    use mirage_nn::Grads;
    use rand::seq::SliceRandom;

    if samples.is_empty() {
        return;
    }
    // Submit decisions are ~1-in-50 (one per episode): balance the classes
    // or the clone degenerates to "always wait".
    let n = samples.len() as f32;
    let n_submit = samples.iter().filter(|(_, a)| *a == 1).count() as f32;
    let n_wait = n - n_submit;
    let class_w = [
        if n_wait > 0.0 {
            n / (2.0 * n_wait)
        } else {
            0.0
        },
        if n_submit > 0.0 {
            n / (2.0 * n_submit)
        } else {
            0.0
        },
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = Adam::new(lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(32) {
            let netref = &*net;
            // Collect per-sample grads in order, then fold sequentially:
            // floating-point merge order stays deterministic across runs.
            let per_sample: Vec<Grads> = chunk
                .par_iter()
                .map(|&i| {
                    let (state, action) = &samples[i];
                    let (logits, cache) = netref.p_forward(state);
                    let (_, d_logits) = softmax_cross_entropy(&logits, *action);
                    let d_logits = d_logits.scale(class_w[*action]);
                    let mut grads = Grads::new(&netref.ps);
                    netref.p_backward(&cache, &d_logits, &mut grads);
                    grads
                })
                .collect();
            let mut grads = per_sample
                .into_iter()
                .fold(Grads::new(&netref.ps), |mut acc, g| {
                    acc.merge(g);
                    acc
                });
            grads.scale(1.0 / chunk.len() as f32);
            grads.clip_global_norm(5.0);
            opt.step(&mut net.ps, &grads);
        }
    }
}

/// Online PG fine-tuning (§4.9.2b): Monte-Carlo rollouts under the
/// current stochastic policy, collected in lockstep windows of
/// `cfg.collect_lanes` (one batched `p_probs_batch` forward per decision
/// tick), REINFORCE update per small batch of episodes. With
/// `collect_lanes = Some(4)` — the REINFORCE batch — this is *globally*
/// bit-identical to the sequential loop it replaced: the sequential loop
/// also acted every group of four episodes on the same post-update
/// weights.
pub fn train_pg_online<F: BackendFactory>(
    net: DualHeadNet,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
) -> PgAgent {
    train_pg_online_traced(net, pool, trace, cfg, starts).0
}

/// [`train_pg_online`] additionally returning the per-episode records
/// (decision trajectories moved into the REINFORCE samples, so their
/// `decisions` are empty) — the lockstep identity tests' surface.
pub fn train_pg_online_traced<F: BackendFactory>(
    net: DualHeadNet,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
) -> (PgAgent, Vec<EpisodeResult>) {
    let run = pg_online_loop(net, pool, trace, cfg, starts, None, None)
        .expect("un-checkpointed training cannot fail");
    (run.agent, run.episodes)
}

/// A (possibly halted) checkpointed PG training run.
#[derive(Debug)]
pub struct PgTrainRun {
    /// The trained (or mid-training, if halted) agent.
    pub agent: PgAgent,
    /// Per-episode records (decisions drained into REINFORCE samples).
    pub episodes: Vec<EpisodeResult>,
    /// Whether [`CheckpointConfig::halt_after`] stopped the run early.
    pub halted: bool,
}

/// [`train_pg_online`] with crash-safe checkpointing: weights, Adam
/// moments, the EMA baseline, the not-yet-trained pending REINFORCE
/// batch and the episode counter are snapshotted to `ckpt.path` at
/// chunk boundaries. Pass `resume_from` to continue an interrupted run
/// bit-identically (see `tests/crash_resume.rs`).
pub fn train_pg_online_checkpointed<F: BackendFactory>(
    net: DualHeadNet,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
    ckpt: &CheckpointConfig,
    resume_from: Option<&std::path::Path>,
) -> Result<PgTrainRun, ResumeError> {
    pg_online_loop(net, pool, trace, cfg, starts, Some(ckpt), resume_from)
}

fn pg_online_loop<F: BackendFactory>(
    net: DualHeadNet,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
    ckpt: Option<&CheckpointConfig>,
    resume_from: Option<&std::path::Path>,
) -> Result<PgTrainRun, ResumeError> {
    let mut agent = PgAgent::new(net, cfg.pg);
    let update_batch = 4usize;
    let mut pending: Vec<EpisodeSample> = Vec::with_capacity(update_batch);
    let t0s: Vec<i64> = starts
        .iter()
        .cycle()
        .take(cfg.online_episodes)
        .copied()
        .collect();
    let collector = BatchedCollector::new(
        pool,
        trace,
        &cfg.episode,
        cfg.collect_lanes_for(pool.workers()),
    );
    let workers = cfg.train_workers.max(1);
    let per_worker = collector.lanes();
    let width = per_worker * workers;
    let mut episodes: Vec<EpisodeResult> = Vec::with_capacity(t0s.len());

    if let Some(path) = resume_from {
        let saved = PgTrainCheckpoint::load(path)?;
        check_match("seed", saved.cfg_seed, cfg.seed)?;
        check_match("collect lanes", saved.lanes, per_worker as u64)?;
        check_match("train workers", saved.workers, workers as u64)?;
        let done = saved.episodes.len();
        if done % width != 0 && done < t0s.len() {
            return Err(ResumeError::ConfigMismatch {
                field: "episode counter (must sit on a chunk boundary)",
                saved: done.to_string(),
                current: format!("multiple of {width}"),
            });
        }
        agent.import_state(saved.agent);
        pending = saved.pending;
        episodes = saved.episodes;
    }

    let done = episodes.len();
    let mut last_saved = done;
    let mut lanes: Vec<ExploreLane> = Vec::with_capacity(width);
    for chunk_start in (0..t0s.len()).step_by(width) {
        let chunk = &t0s[chunk_start..(chunk_start + width).min(t0s.len())];
        if chunk_start + chunk.len() <= done {
            continue;
        }
        lanes.clear();
        lanes.extend(
            (episodes.len()..episodes.len() + chunk.len())
                .map(|i| ExploreLane::seeded(pg_episode_seed(cfg.seed, i), 0)),
        );
        let results = if workers <= 1 {
            let mut driver = collector.window(chunk);
            driver.run_lanes(&mut PgActWindow {
                agent: &mut agent,
                lanes: &mut lanes,
            });
            driver.finish().0
        } else {
            pg_collect_sharded(&collector, chunk, per_worker, &agent, &mut lanes)
        };
        for mut result in results {
            let reward = cfg.shaper.reward(&result.outcome);
            pending.push(EpisodeSample {
                steps: result.take_decisions(),
                episode_return: reward,
            });
            if pending.len() >= update_batch {
                agent.train_episodes_sharded(&pending, workers);
                pending.clear();
            }
            episodes.push(result);
        }
        if let Some(c) = ckpt {
            let at = episodes.len();
            let halt = c.halt_after.is_some_and(|h| at >= h);
            if halt || (c.every_episodes > 0 && at - last_saved >= c.every_episodes) {
                PgTrainCheckpoint {
                    cfg_seed: cfg.seed,
                    lanes: per_worker as u64,
                    workers: workers as u64,
                    agent: agent.export_state(),
                    pending: pending.clone(),
                    episodes: episodes.clone(),
                }
                .save(&c.path)?;
                last_saved = at;
            }
            if halt {
                return Ok(PgTrainRun {
                    agent,
                    episodes,
                    halted: true,
                });
            }
        }
    }
    if !pending.is_empty() {
        agent.train_episodes_sharded(&pending, workers);
    }
    Ok(PgTrainRun {
        agent,
        episodes,
        halted: false,
    })
}

/// Trains one §6 method end to end and returns it as a policy. For the
/// heuristics this is free; for the ensembles it fits on the offline wait
/// samples; for the RL methods it pretrains the foundation and fine-tunes
/// online in lockstep windows against `pool`-built backends (any
/// [`BackendFactory`] — the same pool offline collection fans over).
pub fn train_method<F: BackendFactory>(
    kind: MethodKind,
    pool: &BackendPool<F>,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    data: &OfflineData,
    train_range: (i64, i64),
) -> Box<dyn ProvisionPolicy> {
    // Partition size for congestion-biased start sampling; only the RL
    // methods need it, and probing it costs one throwaway backend.
    let nodes = || pool.build_one().total_nodes();
    match kind {
        MethodKind::Reactive => Box::new(ReactivePolicy),
        MethodKind::AvgHeuristic => Box::new(AvgWaitPolicy::default()),
        MethodKind::RandomForest => Box::new(WaitPredictorPolicy::new(WaitModel::Forest(
            train_forest(data, cfg.seed),
        ))),
        MethodKind::Xgboost => Box::new(WaitPredictorPolicy::new(WaitModel::Gbdt(train_gbdt(
            data, cfg.seed,
        )))),
        MethodKind::TransformerDqn | MethodKind::MoeDqn => {
            let foundation = if kind == MethodKind::MoeDqn {
                FoundationKind::MoE {
                    experts: cfg.moe_experts,
                }
            } else {
                FoundationKind::Transformer
            };
            let net = build_pretrained_net(foundation, cfg, data);
            let starts = sample_training_starts(
                trace,
                nodes(),
                train_range.0,
                train_range.1,
                &cfg.episode,
                cfg.online_episodes.max(1),
                cfg.seed ^ 0x51,
            );
            let agent = train_dqn_online(net, pool, trace, cfg, &starts, data);
            Box::new(DqnPolicy {
                agent,
                label: kind.label().into(),
            })
        }
        MethodKind::TransformerPg | MethodKind::MoePg => {
            let foundation = if kind == MethodKind::MoePg {
                FoundationKind::MoE {
                    experts: cfg.moe_experts,
                }
            } else {
                FoundationKind::Transformer
            };
            let mut net = build_pretrained_net(foundation, cfg, data);
            behavior_clone(
                &mut net,
                &data.best_run_decisions,
                cfg.pretrain.epochs + 4,
                cfg.pretrain.lr,
                cfg.seed ^ 0x77,
            );
            let starts = sample_training_starts(
                trace,
                nodes(),
                train_range.0,
                train_range.1,
                &cfg.episode,
                cfg.online_episodes.max(1),
                cfg.seed ^ 0x52,
            );
            let agent = train_pg_online(net, pool, trace, cfg, &starts);
            Box::new(PgPolicy::new(agent, kind.label(), cfg.seed ^ 0x53))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mirage_sim::{BackendKind, SimConfig};
    use mirage_trace::{HOUR, MINUTE};

    fn pool4() -> BackendPool<mirage_sim::SimBuilder> {
        SimConfig::builder()
            .nodes(4)
            .backend(BackendKind::Pooled { workers: 4 })
            .build_pool()
    }

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            episode: EpisodeConfig {
                pair_nodes: 1,
                pair_timelimit: 4 * HOUR,
                pair_runtime: 4 * HOUR,
                decision_interval: 30 * MINUTE,
                history_k: 4,
                warmup: DAY,
                pair_user: 999,
                fault_features: false,
                hetero_features: false,
            },
            offline_episodes: 3,
            split_points: 3,
            online_episodes: 2,
            d_model: 8,
            heads: 2,
            layers: 1,
            ..TrainConfig::default()
        }
    }

    fn bg_trace(span_days: i64) -> Vec<JobRecord> {
        (0..span_days * 24)
            .map(|i| {
                JobRecord::new(
                    i as u64 + 1,
                    format!("bg{i}"),
                    (i % 7) as u32,
                    i * HOUR,
                    1 + (i % 3) as u32,
                    4 * HOUR,
                    2 * HOUR,
                )
            })
            .collect()
    }

    #[test]
    fn start_sampling_respects_bounds() {
        let cfg = tiny_cfg();
        let starts = sample_episode_starts(0, 20 * DAY, &cfg.episode, 10, 1);
        assert_eq!(starts.len(), 10);
        for &s in &starts {
            assert!(s >= cfg.episode.warmup);
            assert!(s < 20 * DAY);
        }
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "sorted");
    }

    #[test]
    fn window_slices_by_submit_time() {
        let cfg = tiny_cfg();
        let trace = bg_trace(30);
        let w = episode_window(&trace, 10 * DAY, &cfg.episode);
        assert!(!w.is_empty());
        assert!(w.iter().all(|j| j.submit >= 9 * DAY));
        assert!(w.len() < trace.len());
    }

    #[test]
    fn offline_collection_produces_both_pools() {
        let cfg = tiny_cfg();
        let trace = bg_trace(12);
        let starts = sample_episode_starts(0, 12 * DAY, &cfg.episode, cfg.offline_episodes, 2);
        let data = collect_offline(&pool4(), &trace, &cfg, &starts);
        assert!(!data.reward_samples.is_empty(), "reward pool empty");
        assert!(!data.wait_samples.is_empty(), "wait pool empty");
        // Eq 8: every decision of an episode shares the episode reward —
        // rewards are ≤ 0 (negative penalties).
        assert!(data.reward_samples.iter().all(|s| s.reward <= 0.0));
        // Scheduled runs must contain submit actions.
        assert!(data.reward_samples.iter().any(|s| s.action == 1));
        assert!(data.reward_samples.iter().any(|s| s.action == 0));
        // Wait targets are non-negative hours.
        assert!(data.wait_samples.iter().all(|(_, w)| *w >= 0.0));
    }

    #[test]
    fn heuristic_methods_need_no_data() {
        let cfg = tiny_cfg();
        let data = OfflineData::default();
        let pool = pool4();
        let p = train_method(MethodKind::Reactive, &pool, &[], &cfg, &data, (0, DAY));
        assert_eq!(p.name(), "reactive");
        let p = train_method(MethodKind::AvgHeuristic, &pool, &[], &cfg, &data, (0, DAY));
        assert_eq!(p.name(), "avg");
    }

    #[test]
    fn ensemble_training_runs_end_to_end() {
        let cfg = tiny_cfg();
        let trace = bg_trace(12);
        let starts = sample_episode_starts(0, 12 * DAY, &cfg.episode, 2, 3);
        let data = collect_offline(&pool4(), &trace, &cfg, &starts);
        let forest = train_forest(&data, 0);
        assert!(forest.n_trees() > 0);
        let gbdt = train_gbdt(&data, 0);
        assert!(gbdt.n_trees() > 0);
    }

    #[test]
    fn rl_training_runs_end_to_end() {
        let cfg = tiny_cfg();
        let trace = bg_trace(14);
        let starts = sample_episode_starts(0, 14 * DAY, &cfg.episode, 2, 4);
        let pool = pool4();
        let data = collect_offline(&pool, &trace, &cfg, &starts);
        let p = train_method(
            MethodKind::TransformerDqn,
            &pool,
            &trace,
            &cfg,
            &data,
            (0, 14 * DAY),
        );
        assert_eq!(p.name(), "transformer+DQN");
        let p = train_method(
            MethodKind::TransformerPg,
            &pool,
            &trace,
            &cfg,
            &data,
            (0, 14 * DAY),
        );
        assert_eq!(p.name(), "transformer+PG");
    }

    #[test]
    fn collect_lanes_auto_sizes_to_the_pool() {
        let auto = TrainConfig::default();
        assert_eq!(auto.collect_lanes, None);
        // The default shape's hot per-lane state is
        // (12·46 + 16)·4 B = 2272 B → 14 lanes fit the 32 KiB budget
        // (the hetero widening of STATE_VARS from 42 to 46 cost one lane:
        // at 42 vars a lane was 2080 B and 15 fit).
        assert_eq!(auto.l1_lane_cap(), 14);
        // None tracks the pool width up to the L1-residency cap.
        assert_eq!(auto.collect_lanes_for(1), 1);
        assert_eq!(auto.collect_lanes_for(6), 6);
        assert_eq!(auto.collect_lanes_for(32), auto.l1_lane_cap());
        // A degenerate zero-width pool still yields one lane.
        assert_eq!(auto.collect_lanes_for(0), 1);
        // The probe is config-derived (deterministic), clamped to [2, 16]:
        // a huge model cannot auto-size below two lanes, and a tiny one
        // cannot blow past the staleness-bounded ceiling.
        let huge = TrainConfig {
            d_model: 64 * 1024,
            ..TrainConfig::default()
        };
        assert_eq!(huge.l1_lane_cap(), 2);
        let tiny = TrainConfig {
            episode: EpisodeConfig {
                history_k: 4,
                ..EpisodeConfig::default()
            },
            d_model: 8,
            ..TrainConfig::default()
        };
        assert_eq!(tiny.l1_lane_cap(), 16);
        // Explicit overrides win, whatever the pool looks like.
        let pinned = TrainConfig {
            collect_lanes: Some(3),
            ..TrainConfig::default()
        };
        assert_eq!(pinned.collect_lanes_for(1), 3);
        assert_eq!(pinned.collect_lanes_for(32), 3);
        let zero = TrainConfig {
            collect_lanes: Some(0),
            ..TrainConfig::default()
        };
        assert_eq!(zero.collect_lanes_for(4), 1);
    }
}
