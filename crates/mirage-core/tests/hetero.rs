//! Integration tests for the heterogeneous-cluster evaluation lane.

use mirage_core::episode::{run_episode, Action, EpisodeConfig};
use mirage_core::hetero::{classic_baselines, evaluate_hetero, HeteroConfig, HeteroScenario};
use mirage_sim::{BackendKind, ClusterBackend, HeteroModel, NodePool, SimConfig};
use mirage_trace::{JobRecord, DAY, HOUR, MINUTE};

fn busy_trace(days: i64) -> Vec<JobRecord> {
    (0..days * 24)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 3) as u32,
                i * HOUR,
                3,
                6 * HOUR,
                3 * HOUR,
            )
        })
        .collect()
}

fn tiny_episode(hetero_features: bool) -> EpisodeConfig {
    EpisodeConfig {
        pair_nodes: 2,
        pair_timelimit: 4 * HOUR,
        pair_runtime: 4 * HOUR,
        decision_interval: 30 * MINUTE,
        history_k: 4,
        warmup: DAY,
        pair_user: 999,
        fault_features: false,
        hetero_features,
    }
}

/// The CI smoke: a two-pool contended scenario must actually exercise
/// cross-pool placement — spanning placements and contention slowdowns
/// both occur — and the lane must report every classic baseline.
#[test]
fn hetero_smoke_episode() {
    let trace = busy_trace(8);
    let mut methods = classic_baselines();
    let cfg = HeteroConfig {
        episode: tiny_episode(true),
        n_episodes: 2,
        nodes: 8,
        ..HeteroConfig::default()
    };
    let report = evaluate_hetero(
        &mut methods,
        &SimConfig::builder(),
        &trace,
        (0, 8 * DAY),
        &cfg,
    );
    assert_eq!(report.lanes.len(), 2, "balanced and scarce scenarios");
    for lane in &report.lanes {
        let names: Vec<_> = lane.methods.iter().map(|m| m.method.as_str()).collect();
        assert_eq!(names, ["fcfs", "sjf", "shortest_queue", "pool_greedy"]);
        // ≥2 pools with contention on: background jobs wider than the
        // fast pool must stripe across pools and draw slowdowns.
        assert!(
            lane.hetero.span_placements > 0,
            "{}: no placement ever spanned pools",
            lane.scenario.label()
        );
        assert!(
            lane.hetero.slowdowns > 0,
            "{}: contention never slowed a placement",
            lane.scenario.label()
        );
        for m in &lane.methods {
            assert_eq!(m.episodes, 2);
            assert!(m.mean_reward.is_finite() && m.mean_reward <= 0.0);
            assert!((0.0..=1.0).contains(&m.zero_interruption_frac));
        }
    }
    // Identical seeds replay the identical lane.
    let again = evaluate_hetero(
        &mut classic_baselines(),
        &SimConfig::builder(),
        &trace,
        (0, 8 * DAY),
        &cfg,
    );
    for (a, b) in report.lanes.iter().zip(&again.lanes) {
        assert_eq!(a.hetero, b.hetero);
        assert_eq!(a.methods, b.methods);
    }
}

/// A degenerate hetero config (one baseline-speed pool, contention off,
/// features off) leaves whole-episode outcomes byte-identical to the
/// homogeneous simulator — on both backends.
#[test]
fn degenerate_hetero_episode_matches_homogeneous() {
    let trace = busy_trace(8);
    let degenerate = HeteroModel::with_pools(vec![NodePool::new("v100", 8, 1.0)], 0.0, 3);
    for kind in [BackendKind::EventDriven, BackendKind::Tick] {
        let mut plain = SimConfig::builder().nodes(8).backend(kind).build();
        let mut pooled = SimConfig::builder()
            .nodes(8)
            .backend(kind)
            .hetero(degenerate.clone())
            .build();
        let cfg = tiny_episode(false);
        for t0 in [2 * DAY, 3 * DAY + 5 * HOUR] {
            let policy = |ctx: &mirage_core::episode::DecisionContext| {
                if ctx.pred_started && ctx.pred_remaining <= 2 * HOUR {
                    Action::Submit
                } else {
                    Action::Wait
                }
            };
            let a = run_episode(&mut plain, &trace, &cfg, t0, policy);
            let b = run_episode(&mut pooled, &trace, &cfg, t0, policy);
            assert_eq!(a.outcome, b.outcome, "{kind:?} t0={t0}");
            assert_eq!(a.decisions, b.decisions, "{kind:?} t0={t0}");
            assert_eq!(
                (a.pred_start, a.pred_end, a.succ_submit, a.succ_start),
                (b.pred_start, b.pred_end, b.succ_submit, b.succ_start),
            );
            assert_eq!(pooled.hetero_stats().slowdowns, 0);
        }
    }
}

/// Scenario models validate against their partition and differ in the
/// expected direction: scarce is more contended than balanced.
#[test]
fn scenario_models_are_sound() {
    for nodes in [8u32, 16, 88] {
        for seed in [0u64, 7, 7171] {
            let b = HeteroScenario::Balanced.model(nodes, seed);
            let s = HeteroScenario::Scarce.model(nodes, seed);
            b.validate(nodes).unwrap();
            s.validate(nodes).unwrap();
            assert!(s.contention > b.contention);
        }
    }
}
