//! Crash/resume identity pins for checkpointed online training.
//!
//! The resilient-runtime PR's contract: a run that checkpoints, "crashes"
//! (halts at a chunk boundary via [`CheckpointConfig::halt_after`]) and
//! resumes from disk is **bit-identical** to the uninterrupted run — same
//! final weights, same replay contents, same episode outcomes. That holds
//! because the checkpoint captures the full training state (weights,
//! target net, Adam moments, replay rings, the replay-sampling RNG, the
//! global ε clock and the episode counter) and because lane exploration
//! streams are a pure function of `(cfg.seed, episode ordinal, ε clock)`,
//! all of which the checkpoint restores.
//!
//! CI runs `crash_resume_smoke` as a named step.

use std::path::PathBuf;

use mirage_core::checkpoint::{CheckpointConfig, ResumeError};
use mirage_core::episode::{EpisodeConfig, EpisodeResult};
use mirage_core::state::STATE_VARS;
use mirage_core::train::{
    collect_offline, sample_episode_starts, train_dqn_online_checkpointed, train_dqn_online_traced,
    train_pg_online_checkpointed, train_pg_online_traced, TrainConfig,
};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::serialize::CheckpointError;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::ParamSet;
use mirage_rl::{ActionEncoding, DualHeadConfig, DualHeadNet, Experience};
use mirage_sim::{BackendKind, BackendPool, SimBuilder, SimConfig};
use mirage_trace::{JobRecord, DAY, HOUR, MINUTE};

fn tiny_cfg(lanes: usize) -> TrainConfig {
    TrainConfig {
        episode: EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        },
        offline_episodes: 2,
        split_points: 3,
        online_episodes: 6,
        batch_size: 16,
        updates_per_episode: 2,
        d_model: 8,
        heads: 2,
        layers: 1,
        collect_lanes: Some(lanes),
        seed: 11,
        ..TrainConfig::default()
    }
}

fn bg_trace(span_days: i64) -> Vec<JobRecord> {
    (0..span_days * 24)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 7) as u32,
                i * HOUR,
                1 + (i % 3) as u32,
                4 * HOUR,
                2 * HOUR,
            )
        })
        .collect()
}

fn pool_for(workers: usize) -> BackendPool<SimBuilder> {
    SimConfig::builder()
        .nodes(4)
        .backend(BackendKind::Pooled { workers })
        .build_pool()
}

fn net(cfg: &TrainConfig) -> DualHeadNet {
    DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: STATE_VARS,
            seq_len: cfg.episode.history_k,
            d_model: cfg.d_model,
            heads: cfg.heads,
            layers: cfg.layers,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: cfg.seed,
    })
}

fn assert_params_bitwise_eq(a: &ParamSet, b: &ParamSet, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: param count");
    for ((ida, ma), (_, mb)) in a.iter().zip(b.iter()) {
        assert_eq!(ma, mb, "{what}: param `{}` diverged", a.name(ida));
    }
}

fn assert_replay_bitwise_eq<'a>(
    a: impl Iterator<Item = &'a Experience>,
    b: impl Iterator<Item = &'a Experience>,
    what: &str,
) {
    let a: Vec<_> = a.collect();
    let b: Vec<_> = b.collect();
    assert_eq!(a.len(), b.len(), "{what}: replay size");
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.action, y.action, "{what}: action of transition {i}");
        assert_eq!(
            x.reward.to_bits(),
            y.reward.to_bits(),
            "{what}: reward of transition {i}"
        );
        assert_eq!(x.state, y.state, "{what}: state of transition {i}");
    }
}

fn assert_outcomes_eq(a: &[EpisodeResult], b: &[EpisodeResult], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: episode count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.outcome, y.outcome, "{what}: outcome of episode {i}");
        assert_eq!(x.succ_submit, y.succ_submit, "{what}: episode {i}");
        assert_eq!(x.succ_start, y.succ_start, "{what}: episode {i}");
        assert_eq!(
            x.submitted_by_policy, y.submitted_by_policy,
            "{what}: episode {i}"
        );
    }
}

fn online_starts(cfg: &TrainConfig, trace: &[JobRecord], seed: u64) -> Vec<i64> {
    sample_episode_starts(
        0,
        trace.last().map_or(10 * DAY, |j| j.submit),
        &cfg.episode,
        3,
        seed,
    )
}

/// Self-cleaning temp checkpoint path (unique per test + process).
struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(tag: &str) -> Self {
        Self(std::env::temp_dir().join(format!(
            "mirage_crash_resume_{tag}_{}.ckpt",
            std::process::id()
        )))
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn crash_resume_smoke() {
    // The CI crash drill: train DQN with periodic checkpoints, "crash"
    // right after the episode-2 chunk boundary save, resume from disk,
    // and demand the resumed run is bit-identical to the uninterrupted
    // one — weights, replay contents and episode outcomes alike.
    let cfg = tiny_cfg(2);
    let trace = bg_trace(12);
    let pool = pool_for(2);
    let starts = online_starts(&cfg, &trace, 21);
    let offline_starts = sample_episode_starts(0, 12 * DAY, &cfg.episode, 2, 22);
    let warm = collect_offline(&pool, &trace, &cfg, &offline_starts);

    let (full_agent, full_replay, full_eps) =
        train_dqn_online_traced(net(&cfg), &pool, &trace, &cfg, &starts, &warm);

    let ckpt_path = TempCkpt::new("dqn");
    let mut ckpt = CheckpointConfig::every(&ckpt_path.0, 2);
    ckpt.halt_after = Some(2);
    let halted =
        train_dqn_online_checkpointed(net(&cfg), &pool, &trace, &cfg, &starts, &warm, &ckpt, None)
            .expect("checkpointed run");
    assert!(halted.halted, "halt_after stops the run at the boundary");
    assert_eq!(halted.episodes.len(), 2, "crashed after one chunk");

    let resume_cfg = CheckpointConfig::every(&ckpt_path.0, 2);
    let resumed = train_dqn_online_checkpointed(
        net(&cfg),
        &pool,
        &trace,
        &cfg,
        &starts,
        &warm,
        &resume_cfg,
        Some(&ckpt_path.0),
    )
    .expect("resumed run");
    assert!(!resumed.halted);

    assert_outcomes_eq(&resumed.episodes, &full_eps, "dqn resume");
    assert_replay_bitwise_eq(
        resumed.replay.wait().iter(),
        full_replay.wait().iter(),
        "dqn resume wait replay",
    );
    assert_replay_bitwise_eq(
        resumed.replay.submit().iter(),
        full_replay.submit().iter(),
        "dqn resume submit replay",
    );
    assert_eq!(resumed.agent.steps, full_agent.steps, "global ε clock");
    assert_params_bitwise_eq(&resumed.agent.net.ps, &full_agent.net.ps, "dqn resume");
}

#[test]
fn pg_resume_is_bit_identical_mid_update_batch() {
    // Halting after 2 episodes leaves a half-full REINFORCE batch in
    // `pending`; the checkpoint must carry it so the resumed run trains
    // on the exact same 4-episode batches as the uninterrupted run.
    let cfg = tiny_cfg(2);
    let trace = bg_trace(12);
    let pool = pool_for(2);
    let starts = online_starts(&cfg, &trace, 31);

    let (full_agent, full_eps) = train_pg_online_traced(net(&cfg), &pool, &trace, &cfg, &starts);

    let ckpt_path = TempCkpt::new("pg");
    let mut ckpt = CheckpointConfig::every(&ckpt_path.0, 2);
    ckpt.halt_after = Some(2);
    let halted = train_pg_online_checkpointed(net(&cfg), &pool, &trace, &cfg, &starts, &ckpt, None)
        .expect("checkpointed run");
    assert!(halted.halted);
    assert_eq!(halted.episodes.len(), 2);

    let resume_cfg = CheckpointConfig::every(&ckpt_path.0, 2);
    let resumed = train_pg_online_checkpointed(
        net(&cfg),
        &pool,
        &trace,
        &cfg,
        &starts,
        &resume_cfg,
        Some(&ckpt_path.0),
    )
    .expect("resumed run");
    assert!(!resumed.halted);

    assert_outcomes_eq(&resumed.episodes, &full_eps, "pg resume");
    assert_eq!(
        resumed.agent.baseline().to_bits(),
        full_agent.baseline().to_bits(),
        "pg resume: baseline"
    );
    assert_params_bitwise_eq(&resumed.agent.net.ps, &full_agent.net.ps, "pg resume");
}

#[test]
fn crash_resume_is_bit_identical_under_two_workers() {
    // PR 9: the parallel trainer rides the same checkpointed path. A
    // 2-worker × 2-lane run that crashes after its first 4-episode
    // window and resumes from disk must equal the uninterrupted 2-worker
    // run bit for bit — and a resume with a different worker count must
    // be refused (the chunk width and seed layout move with it).
    let mut cfg = tiny_cfg(2);
    cfg.train_workers = 2;
    let trace = bg_trace(12);
    let pool = pool_for(4);
    let starts = online_starts(&cfg, &trace, 51);
    let offline_starts = sample_episode_starts(0, 12 * DAY, &cfg.episode, 2, 52);
    let warm = collect_offline(&pool, &trace, &cfg, &offline_starts);

    let (full_agent, full_replay, full_eps) =
        train_dqn_online_traced(net(&cfg), &pool, &trace, &cfg, &starts, &warm);

    let ckpt_path = TempCkpt::new("dqn_w2");
    let mut ckpt = CheckpointConfig::every(&ckpt_path.0, 4);
    ckpt.halt_after = Some(4);
    let halted =
        train_dqn_online_checkpointed(net(&cfg), &pool, &trace, &cfg, &starts, &warm, &ckpt, None)
            .expect("checkpointed run");
    assert!(halted.halted);
    assert_eq!(halted.episodes.len(), 4, "crashed after one 2×2 window");

    let resumed = train_dqn_online_checkpointed(
        net(&cfg),
        &pool,
        &trace,
        &cfg,
        &starts,
        &warm,
        &CheckpointConfig::every(&ckpt_path.0, 4),
        Some(&ckpt_path.0),
    )
    .expect("resumed run");
    assert!(!resumed.halted);

    assert_outcomes_eq(&resumed.episodes, &full_eps, "dqn W=2 resume");
    assert_replay_bitwise_eq(
        resumed.replay.wait().iter(),
        full_replay.wait().iter(),
        "dqn W=2 resume wait replay",
    );
    assert_replay_bitwise_eq(
        resumed.replay.submit().iter(),
        full_replay.submit().iter(),
        "dqn W=2 resume submit replay",
    );
    assert_eq!(resumed.agent.steps, full_agent.steps, "global ε clock");
    assert_params_bitwise_eq(&resumed.agent.net.ps, &full_agent.net.ps, "dqn W=2 resume");

    // Same checkpoint, different worker count: refused by field name.
    let mut single = cfg.clone();
    single.train_workers = 1;
    let err = train_dqn_online_checkpointed(
        net(&single),
        &pool,
        &trace,
        &single,
        &starts,
        &warm,
        &CheckpointConfig::every(&ckpt_path.0, 4),
        Some(&ckpt_path.0),
    )
    .expect_err("worker-count mismatch must refuse to resume");
    match err {
        ResumeError::ConfigMismatch { field, .. } => assert_eq!(field, "train workers"),
        other => panic!("expected ConfigMismatch, got {other}"),
    }
}

#[test]
fn resume_rejects_mismatched_runs_and_wrong_kinds() {
    let cfg = tiny_cfg(2);
    let trace = bg_trace(12);
    let pool = pool_for(2);
    let starts = online_starts(&cfg, &trace, 41);
    let offline_starts = sample_episode_starts(0, 12 * DAY, &cfg.episode, 2, 42);
    let warm = collect_offline(&pool, &trace, &cfg, &offline_starts);

    let ckpt_path = TempCkpt::new("mismatch");
    let mut ckpt = CheckpointConfig::every(&ckpt_path.0, 2);
    ckpt.halt_after = Some(2);
    train_dqn_online_checkpointed(net(&cfg), &pool, &trace, &cfg, &starts, &warm, &ckpt, None)
        .expect("checkpointed run");

    // A different seed is a different run — resuming would silently
    // diverge, so it must be refused with the offending field named.
    let mut other = cfg.clone();
    other.seed = 12;
    let err = train_dqn_online_checkpointed(
        net(&other),
        &pool,
        &trace,
        &other,
        &starts,
        &warm,
        &CheckpointConfig::every(&ckpt_path.0, 2),
        Some(&ckpt_path.0),
    )
    .expect_err("seed mismatch must refuse to resume");
    match err {
        ResumeError::ConfigMismatch { field, .. } => assert_eq!(field, "seed"),
        other => panic!("expected ConfigMismatch, got {other}"),
    }

    // A DQN checkpoint handed to the PG loop is a kind error from the
    // envelope layer, not a garbage agent.
    let err = train_pg_online_checkpointed(
        net(&cfg),
        &pool,
        &trace,
        &cfg,
        &starts,
        &CheckpointConfig::every(&ckpt_path.0, 2),
        Some(&ckpt_path.0),
    )
    .expect_err("kind mismatch must refuse to resume");
    match err {
        ResumeError::Checkpoint(CheckpointError::WrongKind { .. }) => {}
        other => panic!("expected WrongKind, got {other}"),
    }

    // A missing file is a typed I/O error, not a panic.
    let missing = std::env::temp_dir().join("mirage_crash_resume_does_not_exist.ckpt");
    let err = train_dqn_online_checkpointed(
        net(&cfg),
        &pool,
        &trace,
        &cfg,
        &starts,
        &warm,
        &CheckpointConfig::every(&ckpt_path.0, 2),
        Some(&missing),
    )
    .expect_err("missing checkpoint must refuse to resume");
    assert!(matches!(
        err,
        ResumeError::Checkpoint(CheckpointError::Io(_))
    ));
}
