//! Lockstep-training identity properties.
//!
//! The PR that introduced `mirage_core::trainloop` deleted the
//! sequential per-method episode loops in `train.rs` and rebuilt the
//! whole training data-path on the batched episode engine. These tests
//! pin the refactor to the code it replaced:
//!
//! * **batch = 1** — `train_dqn_online` with `collect_lanes = 1` is
//!   bit-identical to a verbatim replica of the deleted sequential loop:
//!   same replay contents, same final weights, same episode outcomes.
//! * **PG, default lanes** — `train_pg_online` with `collect_lanes = 4`
//!   (the REINFORCE batch) is *globally* bit-identical to the deleted
//!   sequential PG loop.
//! * **batch = N, per lane** — every lane of a lockstep window is
//!   bit-identical to a sequential run of its episode under the same
//!   per-lane `(seed, ε-base)` and window-start weights, exercised both
//!   update-free (pure collection) and with the full update cadence
//!   (the CI training-smoke shape: online_episodes = 4, batch = 2).

use mirage_core::episode::{run_episode, Action, EpisodeConfig, EpisodeResult};
use mirage_core::state::STATE_VARS;
use mirage_core::train::{
    collect_offline, dqn_episode_seed, episode_window, pg_episode_seed, sample_episode_starts,
    train_dqn_online_traced, train_pg_online_traced, OfflineData, TrainConfig,
};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::ParamSet;
use mirage_rl::{
    ActionEncoding, BalancedReplay, DqnAgent, DualHeadConfig, DualHeadNet, EpisodeSample,
    Experience, ExploreLane, PgAgent, ReplayBuffer,
};
use mirage_sim::{BackendKind, BackendPool, ClusterBackend, SimBuilder, SimConfig};
use mirage_trace::{JobRecord, DAY, HOUR, MINUTE};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_cfg(lanes: usize) -> TrainConfig {
    TrainConfig {
        episode: EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 4 * HOUR,
            pair_runtime: 4 * HOUR,
            decision_interval: 30 * MINUTE,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        },
        offline_episodes: 2,
        split_points: 3,
        online_episodes: 6,
        batch_size: 16,
        updates_per_episode: 2,
        d_model: 8,
        heads: 2,
        layers: 1,
        collect_lanes: Some(lanes),
        seed: 11,
        ..TrainConfig::default()
    }
}

/// Hourly background jobs: enough contention that episodes run several
/// decisions and outcomes differ across starts.
fn bg_trace(span_days: i64) -> Vec<JobRecord> {
    (0..span_days * 24)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 7) as u32,
                i * HOUR,
                1 + (i % 3) as u32,
                4 * HOUR,
                2 * HOUR,
            )
        })
        .collect()
}

fn pool_for(workers: usize) -> BackendPool<SimBuilder> {
    SimConfig::builder()
        .nodes(4)
        .backend(BackendKind::Pooled { workers })
        .build_pool()
}

fn net(cfg: &TrainConfig) -> DualHeadNet {
    DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: STATE_VARS,
            seq_len: cfg.episode.history_k,
            d_model: cfg.d_model,
            heads: cfg.heads,
            layers: cfg.layers,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: cfg.seed,
    })
}

fn assert_params_bitwise_eq(a: &ParamSet, b: &ParamSet, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: param count");
    for ((ida, ma), (_, mb)) in a.iter().zip(b.iter()) {
        assert_eq!(ma, mb, "{what}: param `{}` diverged", a.name(ida));
    }
}

fn assert_replay_bitwise_eq<'a>(
    a: impl Iterator<Item = &'a Experience>,
    b: impl Iterator<Item = &'a Experience>,
    what: &str,
) {
    let a: Vec<_> = a.collect();
    let b: Vec<_> = b.collect();
    assert_eq!(a.len(), b.len(), "{what}: replay size");
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x.action, y.action, "{what}: action of transition {i}");
        assert_eq!(
            x.reward.to_bits(),
            y.reward.to_bits(),
            "{what}: reward of transition {i}"
        );
        assert_eq!(x.state, y.state, "{what}: state of transition {i}");
    }
}

fn assert_outcomes_eq(a: &[EpisodeResult], b: &[EpisodeResult], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: episode count");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.outcome, y.outcome, "{what}: outcome of episode {i}");
        assert_eq!(x.succ_submit, y.succ_submit, "{what}: episode {i}");
        assert_eq!(x.succ_start, y.succ_start, "{what}: episode {i}");
        assert_eq!(
            x.submitted_by_policy, y.submitted_by_policy,
            "{what}: episode {i}"
        );
    }
}

/// Verbatim replica of the deleted sequential `train_dqn_online` body
/// (PR 3 tree): one episode at a time through `run_episode`, the agent's
/// *global* ε clock, hand-rolled two-buffer class-balanced replay, and a
/// freshly allocated mini-batch per update.
#[allow(clippy::too_many_arguments)]
fn legacy_train_dqn_online<B: ClusterBackend>(
    net: DualHeadNet,
    backend: &mut B,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
    warm_start: &OfflineData,
) -> (DqnAgent, ReplayBuffer, ReplayBuffer, Vec<EpisodeResult>) {
    let mut agent = DqnAgent::new(net, cfg.dqn);
    let mut replay_wait = ReplayBuffer::new(8192);
    let mut replay_submit = ReplayBuffer::new(4096);
    let push = |e: Experience, w: &mut ReplayBuffer, s: &mut ReplayBuffer| {
        if e.action == 1 {
            s.push(e);
        } else {
            w.push(e);
        }
    };
    for s in &warm_start.reward_samples {
        push(
            Experience::terminal(s.state.clone(), s.action, s.reward),
            &mut replay_wait,
            &mut replay_submit,
        );
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD9);
    let mut episodes = Vec::new();
    for (i, &t0) in starts.iter().cycle().take(cfg.online_episodes).enumerate() {
        let window = episode_window(trace, t0, &cfg.episode);
        let agent_ref = &mut agent;
        let mut ep_rng = StdRng::seed_from_u64(cfg.seed ^ (i as u64) << 3);
        let result = run_episode(backend, window, &cfg.episode, t0, |ctx| {
            Action::from_index(agent_ref.act(ctx.state_matrix, &mut ep_rng))
        });
        let reward = cfg.shaper.reward(&result.outcome);
        for (state, action) in &result.decisions {
            push(
                Experience::terminal(state.clone(), *action, reward),
                &mut replay_wait,
                &mut replay_submit,
            );
        }
        if replay_wait.len() + replay_submit.len() >= cfg.batch_size {
            for _ in 0..cfg.updates_per_episode.max(1) {
                let half = cfg.batch_size / 2;
                let mut batch = replay_wait.sample(&mut rng, cfg.batch_size - half);
                if !replay_submit.is_empty() {
                    batch.extend(replay_submit.sample(&mut rng, half));
                }
                agent.train_batch(&batch);
            }
        }
        episodes.push(result);
    }
    (agent, replay_wait, replay_submit, episodes)
}

/// Verbatim replica of the deleted sequential `train_pg_online` body.
fn legacy_train_pg_online<B: ClusterBackend>(
    net: DualHeadNet,
    backend: &mut B,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
) -> (PgAgent, Vec<EpisodeResult>) {
    let mut agent = PgAgent::new(net, cfg.pg);
    let batch = 4usize;
    let mut pending: Vec<EpisodeSample> = Vec::with_capacity(batch);
    let mut episodes = Vec::new();
    for (i, &t0) in starts.iter().cycle().take(cfg.online_episodes).enumerate() {
        let window = episode_window(trace, t0, &cfg.episode);
        let agent_ref = &mut agent;
        let mut ep_rng = StdRng::seed_from_u64(cfg.seed ^ 0xBEEF ^ ((i as u64) << 4));
        let result = run_episode(backend, window, &cfg.episode, t0, |ctx| {
            Action::from_index(agent_ref.act(ctx.state_matrix, &mut ep_rng))
        });
        let reward = cfg.shaper.reward(&result.outcome);
        pending.push(EpisodeSample {
            steps: result.decisions.clone(),
            episode_return: reward,
        });
        if pending.len() >= batch {
            agent.train_episodes(&pending);
            pending.clear();
        }
        episodes.push(result);
    }
    if !pending.is_empty() {
        agent.train_episodes(&pending);
    }
    (agent, episodes)
}

fn online_starts(cfg: &TrainConfig, trace: &[JobRecord], seed: u64) -> Vec<i64> {
    sample_episode_starts(
        0,
        trace.last().map_or(10 * DAY, |j| j.submit),
        &cfg.episode,
        3,
        seed,
    )
}

#[test]
fn dqn_batch1_is_bitwise_identical_to_the_deleted_sequential_loop() {
    let cfg = tiny_cfg(1);
    let trace = bg_trace(12);
    let pool = pool_for(4);
    let starts = online_starts(&cfg, &trace, 21);
    // Real warm-start pool, shared by both sides, so mini-batch updates
    // kick in from the first episode (the old loop's steady state).
    let offline_starts = sample_episode_starts(0, 12 * DAY, &cfg.episode, 2, 22);
    let warm = collect_offline(&pool, &trace, &cfg, &offline_starts);

    let mut backend = SimConfig::builder().nodes(4).build();
    let (legacy_agent, legacy_wait, legacy_submit, legacy_eps) =
        legacy_train_dqn_online(net(&cfg), &mut backend, &trace, &cfg, &starts, &warm);

    let (agent, replay, episodes) =
        train_dqn_online_traced(net(&cfg), &pool, &trace, &cfg, &starts, &warm);

    assert_outcomes_eq(&episodes, &legacy_eps, "dqn batch=1");
    assert_replay_bitwise_eq(replay.wait().iter(), legacy_wait.iter(), "dqn wait replay");
    assert_replay_bitwise_eq(
        replay.submit().iter(),
        legacy_submit.iter(),
        "dqn submit replay",
    );
    assert_eq!(agent.steps, legacy_agent.steps, "global ε clock");
    assert_params_bitwise_eq(&agent.net.ps, &legacy_agent.net.ps, "dqn batch=1");
}

#[test]
fn pg_default_lanes_are_bitwise_identical_to_the_deleted_sequential_loop() {
    // collect_lanes = 4 matches the REINFORCE update batch, so even the
    // *batched* run is globally identical to the deleted sequential
    // loop: both act on episodes 4k..4k+4 with the weights of update k.
    for lanes in [1usize, 4] {
        let cfg = tiny_cfg(lanes);
        let trace = bg_trace(12);
        let pool = pool_for(4);
        let starts = online_starts(&cfg, &trace, 31);

        let mut backend = SimConfig::builder().nodes(4).build();
        let (legacy_agent, legacy_eps) =
            legacy_train_pg_online(net(&cfg), &mut backend, &trace, &cfg, &starts);

        let (agent, episodes) = train_pg_online_traced(net(&cfg), &pool, &trace, &cfg, &starts);

        assert_outcomes_eq(&episodes, &legacy_eps, &format!("pg lanes={lanes}"));
        assert_eq!(
            agent.baseline().to_bits(),
            legacy_agent.baseline().to_bits(),
            "pg lanes={lanes}: baseline"
        );
        assert_params_bitwise_eq(
            &agent.net.ps,
            &legacy_agent.net.ps,
            &format!("pg lanes={lanes}"),
        );
    }
}

#[test]
fn dqn_lanes_match_sequential_per_lane_runs_update_free() {
    // Pure collection (batch_size too large for updates to ever fire):
    // lane i of one lockstep window must reproduce, bit for bit, a
    // sequential episode driven by `act_lane` under lane i's seed and a
    // zero ε base — decisions, replay rows and outcome alike.
    let mut cfg = tiny_cfg(3);
    cfg.online_episodes = 3;
    cfg.batch_size = 100_000; // no updates: weights stay at init
    let trace = bg_trace(12);
    let pool = pool_for(3);
    let starts = online_starts(&cfg, &trace, 41);
    let warm = OfflineData::default();

    let (_, replay, episodes) =
        train_dqn_online_traced(net(&cfg), &pool, &trace, &cfg, &starts, &warm);

    // Sequential side: same initial weights; acting never updates them,
    // so one agent serves all lanes.
    let mut seq_agent = DqnAgent::new(net(&cfg), cfg.dqn);
    let mut seq_replay = BalancedReplay::new(8192, 4096);
    let mut seq_eps = Vec::new();
    let mut backend = SimConfig::builder().nodes(4).build();
    for (i, &t0) in starts.iter().take(3).enumerate() {
        let mut lane = ExploreLane::seeded(dqn_episode_seed(cfg.seed, i), 0);
        let window = episode_window(&trace, t0, &cfg.episode);
        let agent_ref = &mut seq_agent;
        let result = run_episode(&mut backend, window, &cfg.episode, t0, |ctx| {
            Action::from_index(agent_ref.act_lane(ctx.state_matrix, &mut lane))
        });
        let reward = cfg.shaper.reward(&result.outcome);
        for (state, action) in &result.decisions {
            seq_replay.push(Experience::terminal(state.clone(), *action, reward));
        }
        seq_eps.push(result);
    }

    assert_outcomes_eq(&episodes, &seq_eps, "dqn per-lane");
    assert_replay_bitwise_eq(
        replay.wait().iter(),
        seq_replay.wait().iter(),
        "dqn per-lane wait replay",
    );
    assert_replay_bitwise_eq(
        replay.submit().iter(),
        seq_replay.submit().iter(),
        "dqn per-lane submit replay",
    );
}

/// Sequential reference for the *windowed* cadence: identical window
/// chunking, per-lane seeds, ε bases and update schedule as the lockstep
/// loop — only the acting runs one lane at a time through `run_episode`
/// and `act_lane` instead of one batched forward per tick. Any
/// divergence from `train_dqn_online_traced` is therefore attributable
/// to batching itself.
fn windowed_sequential_dqn(
    netv: DualHeadNet,
    trace: &[JobRecord],
    cfg: &TrainConfig,
    starts: &[i64],
    warm_start: &OfflineData,
) -> (DqnAgent, BalancedReplay, Vec<EpisodeResult>) {
    let mut agent = DqnAgent::new(netv, cfg.dqn);
    let mut replay = BalancedReplay::new(8192, 4096);
    for s in &warm_start.reward_samples {
        replay.push(Experience::terminal(s.state.clone(), s.action, s.reward));
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD9);
    let t0s: Vec<i64> = starts
        .iter()
        .cycle()
        .take(cfg.online_episodes)
        .copied()
        .collect();
    let mut backend = SimConfig::builder().nodes(4).build();
    let mut episodes: Vec<EpisodeResult> = Vec::new();
    for chunk in t0s.chunks(cfg.collect_lanes.expect("test configs pin lanes").max(1)) {
        let step_base = agent.steps;
        let mut results = Vec::with_capacity(chunk.len());
        for (l, &t0) in chunk.iter().enumerate() {
            let i = episodes.len() + l;
            let mut lane = ExploreLane::seeded(dqn_episode_seed(cfg.seed, i), step_base);
            let window = episode_window(trace, t0, &cfg.episode);
            let agent_ref = &mut agent;
            results.push(run_episode(&mut backend, window, &cfg.episode, t0, |ctx| {
                Action::from_index(agent_ref.act_lane(ctx.state_matrix, &mut lane))
            }));
        }
        for mut result in results {
            let reward = cfg.shaper.reward(&result.outcome);
            agent.steps += result.decisions.len() as u64;
            for (state, action) in result.take_decisions() {
                replay.push(Experience::terminal(state, action, reward));
            }
            if replay.len() >= cfg.batch_size {
                let mut batch = Vec::with_capacity(cfg.batch_size);
                for _ in 0..cfg.updates_per_episode.max(1) {
                    replay.sample_into(&mut rng, cfg.batch_size, &mut batch);
                    agent.train_batch(&batch);
                }
            }
            episodes.push(result);
        }
    }
    (agent, replay, episodes)
}

#[test]
fn training_smoke_batch2_matches_windowed_sequential() {
    // The CI training-smoke shape: tiny synthetic trace, 4 online
    // episodes in lockstep windows of 2, full replay/update cadence.
    // Batched acting must be bit-identical — replay, weights, outcomes —
    // to the windowed sequential reference above.
    let mut cfg = tiny_cfg(2);
    cfg.online_episodes = 4;
    let trace = bg_trace(12);
    let pool = pool_for(2);
    let starts = online_starts(&cfg, &trace, 51);
    let offline_starts = sample_episode_starts(0, 12 * DAY, &cfg.episode, 2, 52);
    let warm = collect_offline(&pool, &trace, &cfg, &offline_starts);

    let (seq_agent, seq_replay, seq_eps) =
        windowed_sequential_dqn(net(&cfg), &trace, &cfg, &starts, &warm);
    let (agent, replay, episodes) =
        train_dqn_online_traced(net(&cfg), &pool, &trace, &cfg, &starts, &warm);

    assert_outcomes_eq(&episodes, &seq_eps, "smoke batch=2");
    assert_replay_bitwise_eq(
        replay.wait().iter(),
        seq_replay.wait().iter(),
        "smoke wait replay",
    );
    assert_replay_bitwise_eq(
        replay.submit().iter(),
        seq_replay.submit().iter(),
        "smoke submit replay",
    );
    assert_eq!(agent.steps, seq_agent.steps, "global ε clock");
    assert_params_bitwise_eq(&agent.net.ps, &seq_agent.net.ps, "smoke batch=2");
}

#[test]
fn dqn_two_workers_match_one_worker_with_double_lanes_bitwise() {
    // The PR 9 parallel-training contract: W workers × L lanes per
    // worker is bit-identical to 1 worker × W·L lanes — same episode
    // outcomes, same replay contents, same ε clock, same final weights.
    // Workers collect contiguous L-lane sub-windows on the same
    // pool-seeded backend sequence, and every update all-reduces shard
    // gradients in ascending worker order before one shared Adam step.
    let trace = bg_trace(12);
    let pool = pool_for(4);
    let mut wide = tiny_cfg(4); // 1 worker × 4 lanes
    wide.online_episodes = 6; // exercises a partial trailing window
    let mut sharded = tiny_cfg(2); // 2 workers × 2 lanes
    sharded.online_episodes = 6;
    sharded.train_workers = 2;
    let starts = online_starts(&wide, &trace, 71);
    let offline_starts = sample_episode_starts(0, 12 * DAY, &wide.episode, 2, 72);
    let warm = collect_offline(&pool, &trace, &wide, &offline_starts);

    let (agent1, replay1, eps1) =
        train_dqn_online_traced(net(&wide), &pool, &trace, &wide, &starts, &warm);
    let (agent2, replay2, eps2) =
        train_dqn_online_traced(net(&sharded), &pool, &trace, &sharded, &starts, &warm);

    assert_outcomes_eq(&eps2, &eps1, "dqn W=2");
    assert_replay_bitwise_eq(replay2.wait().iter(), replay1.wait().iter(), "W=2 wait");
    assert_replay_bitwise_eq(
        replay2.submit().iter(),
        replay1.submit().iter(),
        "W=2 submit",
    );
    assert_eq!(agent2.steps, agent1.steps, "global ε clock");
    assert_params_bitwise_eq(&agent2.net.ps, &agent1.net.ps, "dqn W=2");
}

#[test]
fn pg_two_workers_match_one_worker_with_double_lanes_bitwise() {
    let trace = bg_trace(12);
    let pool = pool_for(4);
    let mut wide = tiny_cfg(4);
    wide.online_episodes = 6;
    let mut sharded = tiny_cfg(2);
    sharded.online_episodes = 6;
    sharded.train_workers = 2;
    let starts = online_starts(&wide, &trace, 81);

    let (agent1, eps1) = train_pg_online_traced(net(&wide), &pool, &trace, &wide, &starts);
    let (agent2, eps2) = train_pg_online_traced(net(&sharded), &pool, &trace, &sharded, &starts);

    assert_outcomes_eq(&eps2, &eps1, "pg W=2");
    assert_eq!(
        agent2.baseline().to_bits(),
        agent1.baseline().to_bits(),
        "pg W=2: baseline"
    );
    assert_params_bitwise_eq(&agent2.net.ps, &agent1.net.ps, "pg W=2");
}

#[test]
fn pg_lanes_match_sequential_per_lane_sampling() {
    // One window of stochastic PG collection (3 episodes, no update
    // before the window ends): each lane's sampled trajectory equals a
    // sequential `act`-driven episode on the lane's own RNG stream.
    let mut cfg = tiny_cfg(3);
    cfg.online_episodes = 3;
    let trace = bg_trace(12);
    let pool = pool_for(3);
    let starts = online_starts(&cfg, &trace, 61);

    let (_, episodes) = train_pg_online_traced(net(&cfg), &pool, &trace, &cfg, &starts);

    let mut seq_agent = PgAgent::new(net(&cfg), cfg.pg);
    let mut backend = SimConfig::builder().nodes(4).build();
    let seq_eps: Vec<EpisodeResult> = starts
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, &t0)| {
            let mut lane = ExploreLane::seeded(pg_episode_seed(cfg.seed, i), 0);
            let window = episode_window(&trace, t0, &cfg.episode);
            let agent_ref = &mut seq_agent;
            run_episode(&mut backend, window, &cfg.episode, t0, |ctx| {
                Action::from_index(agent_ref.act(ctx.state_matrix, &mut lane.rng))
            })
        })
        .collect();

    assert_outcomes_eq(&episodes, &seq_eps, "pg per-lane");
}
