//! Chaos-lane smoke test: severe fault injection on a fixed seed must
//! actually inject — at least one node eviction and at least one
//! successful backoff retry — and the sweep must report every severity
//! for every method. CI runs `chaos_smoke_episode` by name.

use mirage_core::chaos::{evaluate_chaos, ChaosConfig, ChaosSeverity};
use mirage_core::episode::EpisodeConfig;
use mirage_core::policy::{AvgWaitPolicy, ProvisionPolicy, ReactivePolicy};
use mirage_sim::{FaultStats, SimConfig};
use mirage_trace::{JobRecord, DAY, HOUR, MINUTE};

fn busy_trace(days: i64) -> Vec<JobRecord> {
    (0..days * 24 * 2)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 5) as u32,
                i * HOUR / 2,
                2,
                8 * HOUR,
                4 * HOUR,
            )
        })
        .collect()
}

fn episode_cfg() -> EpisodeConfig {
    EpisodeConfig {
        pair_nodes: 1,
        pair_timelimit: 6 * HOUR,
        pair_runtime: 6 * HOUR,
        decision_interval: 30 * MINUTE,
        history_k: 4,
        warmup: DAY,
        pair_user: 999,
        fault_features: true,
        hetero_features: false,
    }
}

#[test]
fn chaos_smoke_episode() {
    let trace = busy_trace(10);
    let mut methods: Vec<Box<dyn ProvisionPolicy>> =
        vec![Box::new(ReactivePolicy), Box::new(AvgWaitPolicy::default())];
    let cfg = ChaosConfig {
        episode: episode_cfg(),
        n_episodes: 3,
        seed: 17,
        fault_seed: 4242,
        ..ChaosConfig::default()
    };
    let builder = SimConfig::builder().nodes(4);
    let report = evaluate_chaos(&mut methods, &builder, &trace, (0, 10 * DAY), &cfg);

    assert_eq!(report.lanes.len(), 3, "none / moderate / severe");
    for lane in &report.lanes {
        assert_eq!(lane.methods.len(), 2, "every method in every lane");
        for m in &lane.methods {
            assert_eq!(m.episodes, 3);
            assert!(m.mean_reward <= 0.0, "rewards are negative penalties");
        }
    }

    // The control lane is fault-free by construction.
    let none = report.lane(ChaosSeverity::None);
    assert_eq!(none.faults, FaultStats::default());

    // Severe chaos on this fixed seed must evict at least one running job
    // and see at least one evicted job retry and complete.
    let severe = report.lane(ChaosSeverity::Severe);
    assert!(severe.faults.node_crashes >= 1, "crash tape fired");
    assert!(severe.faults.evictions >= 1, "at least one eviction");
    assert!(severe.faults.retries >= 1, "at least one backoff retry");
    assert!(
        severe.faults.retry_successes >= 1,
        "at least one retried job completed"
    );
    assert!(
        severe.faults.evictions >= severe.faults.retries,
        "retries never exceed evictions"
    );
}

#[test]
fn chaos_sweep_is_deterministic_for_a_fixed_seed() {
    let trace = busy_trace(8);
    let cfg = ChaosConfig {
        episode: episode_cfg(),
        n_episodes: 2,
        ..ChaosConfig::default()
    };
    let builder = SimConfig::builder().nodes(4);
    let run = |policies: &mut Vec<Box<dyn ProvisionPolicy>>| {
        evaluate_chaos(policies, &builder, &trace, (0, 8 * DAY), &cfg)
    };
    let mut m1: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(ReactivePolicy)];
    let mut m2: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(ReactivePolicy)];
    let (a, b) = (run(&mut m1), run(&mut m2));
    for (la, lb) in a.lanes.iter().zip(&b.lanes) {
        assert_eq!(la.severity, lb.severity);
        assert_eq!(la.faults, lb.faults);
        assert_eq!(la.methods, lb.methods);
    }
}
