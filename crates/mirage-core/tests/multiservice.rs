//! Property tests pinning the multi-service engine's degeneration
//! claims:
//!
//! * **N = 1 ≡ single-service** — a `MultiServiceEnv` configured via
//!   `MultiServiceConfig::single` makes the *identical* sequence of
//!   backend-mutating calls as the single-service machinery, so the
//!   episode is bit-identical: same decision count, same state matrices,
//!   same actions, same outcome and timestamps, same reward — against
//!   both the Gym-style `ProvisionEnv` and the `run_episode` closure
//!   loop, for arbitrary background load and policies.
//! * **two-service smoke** — the short shared-cluster episode CI runs
//!   explicitly: services resolve, ledgers tag per-service usage, and
//!   the stampede accounting stays consistent.

use mirage_core::episode::{run_episode, Action, EpisodeConfig};
use mirage_core::multiservice::{MultiServiceConfig, MultiServiceEnv, ServiceSlo};
use mirage_core::reward::RewardShaper;
use mirage_core::train::episode_window;
use mirage_core::ProvisionEnv;
use mirage_rl::rollout;
use mirage_sim::{SimConfig, Simulator};
use mirage_trace::{JobRecord, DAY, HOUR};
use proptest::prelude::*;

fn sim4() -> Simulator {
    Simulator::new(SimConfig::new(4))
}

/// Sorted background trace from proptest raw material.
fn build_trace(jobs: &[(i64, u32, i64)]) -> Vec<JobRecord> {
    let mut submits: Vec<(i64, u32, i64)> = jobs.to_vec();
    submits.sort_by_key(|&(submit, _, _)| submit);
    submits
        .iter()
        .enumerate()
        .map(|(i, &(submit, nodes, runtime))| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 3) as u32,
                submit,
                nodes,
                runtime * 2,
                runtime,
            )
        })
        .collect()
}

fn episode_cfg(interval: i64, k: usize, runtime_h: i64) -> EpisodeConfig {
    EpisodeConfig {
        pair_nodes: 1,
        pair_timelimit: runtime_h * HOUR,
        pair_runtime: runtime_h * HOUR,
        decision_interval: interval,
        history_k: k,
        warmup: DAY,
        pair_user: 999,
        fault_features: false,
        hetero_features: false,
    }
}

/// Drives a one-service `MultiServiceEnv` with a decision-indexed
/// policy, returning the per-service episode record.
fn run_single_service(
    window: &[JobRecord],
    ms: &MultiServiceConfig,
    t0: i64,
    mut decide: impl FnMut(usize, bool, i64) -> Action,
) -> mirage_core::multiservice::ServiceEpisode {
    let mut env = MultiServiceEnv::new(sim4(), window, ms, t0);
    let mut n = 0usize;
    while env.is_deciding() {
        let width = env.advance_tick();
        if width == 0 {
            continue;
        }
        let ctx = env.slot_context(0);
        let action = decide(n, ctx.pred_started, ctx.pred_remaining);
        n += 1;
        env.apply(&[action]);
    }
    let (mut result, _) = env.finish();
    assert_eq!(result.stampede_ticks, 0, "one service can never stampede");
    result.services.remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// N = 1 degeneration against the Gym-style `ProvisionEnv`: the same
    /// decision-indexed policy sees the same states, takes the same
    /// actions, and earns the same terminal reward.
    #[test]
    fn one_service_is_bit_identical_to_provision_env(
        jobs in prop::collection::vec((0i64..5 * DAY, 1u32..=3, 1800i64..18_000), 0..25),
        submit_at in 0usize..16,
        interval_half_hours in 1i64..=2,
        k in 2usize..6,
        runtime_h in 2i64..7,
    ) {
        let trace = build_trace(&jobs);
        let cfg = episode_cfg(interval_half_hours * HOUR / 2, k, runtime_h);
        let t0 = DAY;

        // Gym-style single-service episode.
        let mut env = ProvisionEnv::new(
            sim4(),
            trace.clone(),
            cfg,
            RewardShaper::default(),
            vec![t0],
        );
        let mut step = 0usize;
        let (trajectory, total_reward) = rollout(
            &mut env,
            |_state| {
                let a = usize::from(step == submit_at);
                step += 1;
                a
            },
            10_000,
        );
        let expect = env.last_result.clone().expect("episode finished");

        // The same episode through the multi-service engine (the env
        // windows the trace internally; mirror it).
        let ms = MultiServiceConfig::single(&cfg, RewardShaper::default());
        let window = episode_window(&trace, t0, &cfg);
        let got = run_single_service(window, &ms, t0, |n, _, _| {
            Action::from_index(usize::from(n == submit_at))
        });

        prop_assert_eq!(got.outcome, expect.outcome);
        prop_assert_eq!(got.pred_start, expect.pred_start);
        prop_assert_eq!(got.pred_end, expect.pred_end);
        prop_assert_eq!(got.succ_submit, expect.succ_submit);
        prop_assert_eq!(got.succ_start, expect.succ_start);
        prop_assert_eq!(got.submitted_by_policy, expect.submitted_by_policy);
        prop_assert_eq!(got.reward, total_reward);
        prop_assert_eq!(got.decisions.len(), trajectory.len());
        for ((gm, ga), (em, ea)) in got.decisions.iter().zip(&trajectory) {
            prop_assert_eq!(ga, ea, "same action at every decision");
            prop_assert_eq!(gm, em, "same state matrix at every decision");
        }
    }

    /// N = 1 degeneration against `run_episode` under context-sensitive
    /// threshold policies and arbitrary reward weights.
    #[test]
    fn one_service_matches_run_episode_under_threshold_policies(
        jobs in prop::collection::vec((0i64..5 * DAY, 1u32..=4, 1800i64..20_000), 0..25),
        threshold_h in 0i64..10,
        e_i in 0.0f32..8.0,
        e_o in 0.0f32..8.0,
        runtime_h in 2i64..7,
    ) {
        let trace = build_trace(&jobs);
        let cfg = episode_cfg(HOUR / 2, 4, runtime_h);
        let t0 = DAY;
        let shaper = RewardShaper { e_interrupt: e_i, e_overlap: e_o };
        let threshold = threshold_h * HOUR;

        let expect = run_episode(&mut sim4(), &trace, &cfg, t0, |ctx| {
            if ctx.pred_started && ctx.pred_remaining <= threshold {
                Action::Submit
            } else {
                Action::Wait
            }
        });

        let ms = MultiServiceConfig::single(&cfg, shaper);
        let got = run_single_service(&trace, &ms, t0, |_, started, remaining| {
            if started && remaining <= threshold {
                Action::Submit
            } else {
                Action::Wait
            }
        });

        prop_assert_eq!(got.outcome, expect.outcome);
        prop_assert_eq!(got.succ_submit, expect.succ_submit);
        prop_assert_eq!(got.succ_start, expect.succ_start);
        prop_assert_eq!(got.submitted_by_policy, expect.submitted_by_policy);
        prop_assert_eq!(got.reward, shaper.reward(&expect.outcome));
        prop_assert_eq!(got.decisions.len(), expect.decisions.len());
        for ((gm, ga), (em, ea)) in got.decisions.iter().zip(&expect.decisions) {
            prop_assert_eq!(ga, ea);
            prop_assert_eq!(gm, em);
        }
    }
}

/// The short two-service shared-cluster episode CI runs by name: both
/// services resolve on one backend, jobs are tagged per service in the
/// usage ledgers, and stampede accounting stays self-consistent.
#[test]
fn two_service_smoke_episode() {
    let cfg = episode_cfg(HOUR / 2, 4, 4);
    let mut ms = MultiServiceConfig::single(&cfg, RewardShaper::default());
    let mut second = ms.services[0].clone();
    second.name = "svc1".into();
    second.user = 1001;
    second.slo = ServiceSlo::with_target(HOUR);
    second.shaper = second.slo.weights();
    ms.services.push(second);
    ms.stampede_coef = 0.25;

    let trace = build_trace(
        &(0..20)
            .map(|i| (i * 3600, 1 + (i % 2) as u32, 7200 + i * 300))
            .collect::<Vec<_>>(),
    );
    let mut env = MultiServiceEnv::new(sim4(), &trace, &ms, DAY);
    while env.is_deciding() {
        let width = env.advance_tick();
        if width == 0 {
            continue;
        }
        let actions: Vec<Action> = (0..width)
            .map(|row| {
                let ctx = env.slot_context(row);
                if ctx.pred_started && ctx.pred_remaining <= HOUR {
                    Action::Submit
                } else {
                    Action::Wait
                }
            })
            .collect();
        env.apply(&actions);
    }
    let (result, backend) = env.finish();

    assert_eq!(result.services.len(), 2);
    for s in &result.services {
        // Outcomes are one-sided and causality holds.
        assert!(s.outcome.interruption == 0 || s.outcome.overlap == 0);
        assert!(s.succ_start >= s.succ_submit);
        assert!(s.pred_end > s.pred_start);
        // The shared backend's ledger saw this service's jobs.
        assert_eq!(s.usage.user, s.user);
        assert!(!s.usage.is_idle());
        assert!(s.reward <= 0.0);
    }
    // Stampede accounting: co-submitter counts are symmetric for N = 2
    // (either both services share a tick or neither does).
    let co: Vec<usize> = result.services.iter().map(|s| s.co_submitters).collect();
    assert_eq!(co[0], co[1]);
    assert_eq!(result.stampede_ticks, usize::from(co[0] > 0));
    // Distinct services, distinct users, shared cluster.
    assert_ne!(result.services[0].user, result.services[1].user);
    assert_eq!(backend.total_nodes(), 4);
}
