//! Property-based tests for Mirage's reward, state and episode invariants.

use mirage_core::batch::run_episodes_batched;
use mirage_core::episode::{run_episode, Action, EpisodeConfig};
use mirage_core::reward::{EpisodeOutcome, RewardShaper};
use mirage_core::state::{PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS};
use mirage_rl::{ActionEncoding, DqnAgent, DqnConfig, DualHeadConfig, DualHeadNet};
use mirage_sim::{ClusterSnapshot, QueuedJobView, RunningJobView};
use mirage_trace::{JobRecord, DAY, HOUR};
use proptest::prelude::*;

proptest! {
    /// Outcomes are one-sided and reward is never positive.
    #[test]
    fn outcome_and_reward_invariants(
        pred_end in 0i64..1_000_000,
        succ_start in 0i64..1_000_000,
        e_i in 0.0f32..20.0,
        e_o in 0.0f32..20.0,
    ) {
        let outcome = EpisodeOutcome::from_times(pred_end, succ_start);
        prop_assert!(outcome.interruption >= 0 && outcome.overlap >= 0);
        prop_assert!(outcome.interruption == 0 || outcome.overlap == 0);
        prop_assert_eq!(outcome.interruption - outcome.overlap, succ_start - pred_end);
        let shaper = RewardShaper { e_interrupt: e_i, e_overlap: e_o };
        prop_assert!(shaper.reward(&outcome) <= 0.0);
    }

    /// The state encoder is total: any snapshot yields 40 finite features.
    #[test]
    fn encoder_is_total(
        queued in prop::collection::vec((1u32..=32, 0i64..200_000, 60i64..200_000), 0..30),
        running in prop::collection::vec((1u32..=32, 0i64..200_000, 60i64..200_000), 0..20),
        free in 0u32..=88,
    ) {
        let now = 300_000i64;
        let snap = ClusterSnapshot {
            now,
            free_nodes: free,
            total_nodes: 88,
            down_nodes: 0,
            recent_evictions: 0,
            queued: queued
                .iter()
                .enumerate()
                .map(|(i, &(nodes, age, limit))| QueuedJobView {
                    id: i as u64, nodes, submit: now - age, age, timelimit: limit, user: 1,
                })
                .collect(),
            running: running
                .iter()
                .enumerate()
                .map(|(i, &(nodes, elapsed, limit))| RunningJobView {
                    id: 1000 + i as u64, nodes, start: now - elapsed, elapsed,
                    timelimit: limit, user: 2,
                })
                .collect(),
            ..ClusterSnapshot::default()
        };
        let enc = StateEncoder::new(88, 48 * HOUR);
        let pred = PredecessorState { nodes: 1, timelimit: 48 * HOUR, queue_time: 0, elapsed: 0 };
        let succ = SuccessorSpec { nodes: 1, timelimit: 48 * HOUR };
        let v = enc.encode(&snap, &pred, &succ);
        prop_assert_eq!(v.len(), STATE_VARS);
        for x in v {
            prop_assert!(x.is_finite());
            prop_assert!(x >= 0.0);
        }
    }

    /// History matrices always have exactly k rows, whatever was pushed.
    #[test]
    fn history_shape_invariant(k in 1usize..32, pushes in 1usize..64) {
        let mut h = StateHistory::new(k);
        for i in 0..pushes {
            let mut v = [0.0f32; STATE_VARS];
            v[0] = i as f32;
            h.push(v);
        }
        let m = h.matrix();
        prop_assert_eq!(m.shape(), (k, STATE_VARS));
        // Newest row is always the last push.
        prop_assert_eq!(m.get(k - 1, 0), (pushes - 1) as f32);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Episode post-conditions hold for arbitrary background load and any
    /// fixed submit-threshold policy: causality, one-sidedness, and the
    /// reactive fallback guarantee.
    #[test]
    fn episode_postconditions(
        seed_jobs in prop::collection::vec((0i64..6 * DAY, 1u32..=4, 1800i64..20_000), 0..25),
        threshold_h in 0i64..12,
    ) {
        let trace: Vec<JobRecord> = seed_jobs
            .iter()
            .enumerate()
            .map(|(i, &(submit, nodes, runtime))| {
                JobRecord::new(i as u64 + 1, format!("bg{i}"), (i % 3) as u32,
                               submit, nodes, runtime * 2, runtime)
            })
            .collect();
        let cfg = EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 8 * HOUR,
            pair_runtime: 8 * HOUR,
            decision_interval: HOUR,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        };
        let t0 = 2 * DAY;
        let mut sim = mirage_sim::Simulator::new(mirage_sim::SimConfig::new(4));
        let result = run_episode(&mut sim, &trace, &cfg, t0, |ctx| {
            if ctx.pred_started && ctx.pred_remaining <= threshold_h * HOUR {
                Action::Submit
            } else {
                Action::Wait
            }
        });
        // Causality.
        prop_assert!(result.pred_start >= result.pred_submit);
        prop_assert!(result.pred_end > result.pred_start);
        prop_assert!(result.succ_start >= result.succ_submit);
        prop_assert!(result.succ_submit >= t0);
        // One-sided outcome consistent with the timestamps.
        let expect = EpisodeOutcome::from_times(result.pred_end, result.succ_start);
        prop_assert_eq!(result.outcome, expect);
        // The reactive fallback bounds the submit time by the pred end
        // (modulo one decision interval of slack).
        prop_assert!(result.succ_submit <= result.pred_end + cfg.decision_interval);
        // Decision trail actions are consistent with the outcome.
        if result.submitted_by_policy {
            prop_assert_eq!(result.decisions.last().map(|(_, a)| *a), Some(1));
        } else {
            prop_assert!(result.decisions.iter().all(|(_, a)| *a == 0));
        }
    }

    /// The batched episode engine is execution-equivalent to sequential
    /// per-episode runs: for arbitrary background load, batch widths and
    /// (possibly coincident) start instants, every decision matrix,
    /// action and outcome matches bit for bit — one batched NN forward
    /// per tick included, via the greedy DQN agent on both sides.
    #[test]
    fn batched_episodes_match_sequential_bitwise(
        seed_jobs in prop::collection::vec((0i64..4 * DAY, 1u32..=4, 1800i64..20_000), 0..20),
        t0_offsets in prop::collection::vec(0i64..12, 1..5),
        net_seed in 0u64..1000,
    ) {
        let trace: Vec<JobRecord> = seed_jobs
            .iter()
            .enumerate()
            .map(|(i, &(submit, nodes, runtime))| {
                JobRecord::new(i as u64 + 1, format!("bg{i}"), (i % 3) as u32,
                               submit, nodes, runtime * 2, runtime)
            })
            .collect();
        let cfg = EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 6 * HOUR,
            pair_runtime: 6 * HOUR,
            decision_interval: HOUR,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        };
        let t0s: Vec<i64> = t0_offsets.iter().map(|&h| 2 * DAY + h * HOUR).collect();
        let net = || DualHeadNet::new(DualHeadConfig {
            foundation: mirage_nn::FoundationKind::Transformer,
            transformer: mirage_nn::TransformerConfig {
                input_dim: STATE_VARS,
                seq_len: 4,
                d_model: 8,
                heads: 2,
                layers: 1,
                ff_mult: 2,
            },
            action_encoding: ActionEncoding::TwoHead,
            freeze_foundation: false,
            seed: net_seed,
        });

        let mut seq_agent = DqnAgent::new(net(), DqnConfig::default());
        let sequential: Vec<_> = t0s
            .iter()
            .map(|&t0| {
                let mut sim = mirage_sim::Simulator::new(mirage_sim::SimConfig::new(4));
                run_episode(&mut sim, &trace, &cfg, t0, |ctx| {
                    Action::from_index(seq_agent.act_greedy(ctx.state_matrix))
                })
            })
            .collect();

        let mut batch_agent = DqnAgent::new(net(), DqnConfig::default());
        let backends =
            (0..t0s.len()).map(|_| mirage_sim::Simulator::new(mirage_sim::SimConfig::new(4)));
        let batched = run_episodes_batched(backends, &trace, &cfg, &t0s, &mut batch_agent);

        for (b, s) in batched.iter().zip(&sequential) {
            prop_assert_eq!(&b.outcome, &s.outcome);
            prop_assert_eq!(b.succ_submit, s.succ_submit);
            prop_assert_eq!(b.succ_start, s.succ_start);
            prop_assert_eq!(b.submitted_by_policy, s.submitted_by_policy);
            prop_assert_eq!(b.decisions.len(), s.decisions.len());
            for ((bm, ba), (sm, sa)) in b.decisions.iter().zip(&s.decisions) {
                prop_assert_eq!(ba, sa);
                prop_assert_eq!(bm, sm);
            }
        }
    }
}
