//! Layer normalization with learnable gain/bias and exact backward pass.

use crate::param::{GradSink, Grads, ParamId, ParamSet};
use crate::scratch::Scratch;
use crate::tensor::Matrix;

/// Per-row layer normalization: each row is standardized, then scaled by
/// `gamma` and shifted by `beta`.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LayerNorm {
    /// Gain, shape `1 × dim`.
    pub gamma: ParamId,
    /// Bias, shape `1 × dim`.
    pub beta: ParamId,
    /// Feature width.
    pub dim: usize,
    /// Variance floor.
    pub eps: f32,
}

/// Forward cache: standardized input and per-row inverse std.
#[derive(Debug, Clone)]
pub struct LayerNormCache {
    x_hat: Matrix,
    inv_std: Vec<f32>,
}

/// Retained training cache for a row-stacked batch. Buffers are reused
/// across calls (reset in place), so a warm update loop never allocates.
#[derive(Debug, Clone, Default)]
pub struct LayerNormBatchCache {
    x_hat: Matrix,
    inv_std: Vec<f32>,
}

impl LayerNorm {
    /// Allocates `gamma = 1`, `beta = 0`.
    pub fn new(ps: &mut ParamSet, name: &str, dim: usize) -> Self {
        let gamma = ps.alloc(format!("{name}.gamma"), Matrix::full(1, dim, 1.0));
        let beta = ps.alloc(format!("{name}.beta"), Matrix::zeros(1, dim));
        Self {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Normalizes each row of `x`.
    pub fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, LayerNormCache) {
        debug_assert_eq!(x.cols(), self.dim);
        let n = self.dim as f32;
        let gamma = ps.get(self.gamma);
        let beta = ps.get(self.beta);
        let mut x_hat = Matrix::zeros(x.rows(), x.cols());
        let mut inv_std = Vec::with_capacity(x.rows());
        let mut y = Matrix::zeros(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let istd = 1.0 / (var + self.eps).sqrt();
            inv_std.push(istd);
            for (c, &xv) in row.iter().enumerate() {
                let xh = (xv - mean) * istd;
                x_hat.set(r, c, xh);
                y.set(r, c, xh * gamma.get(0, c) + beta.get(0, c));
            }
        }
        (y, LayerNormCache { x_hat, inv_std })
    }

    /// Inference-only forward into a caller-provided buffer: no cache, no
    /// allocation once `out` is warm. Same per-row arithmetic as
    /// [`LayerNorm::forward`], so results are bit-identical.
    pub fn forward_into(&self, ps: &ParamSet, x: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(x.cols(), self.dim);
        let n = self.dim as f32;
        let gamma = ps.get(self.gamma).row(0);
        let beta = ps.get(self.beta).row(0);
        out.reset(x.rows(), x.cols());
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let istd = 1.0 / (var + self.eps).sqrt();
            let orow = out.row_mut(r);
            for c in 0..row.len() {
                let xh = (row[c] - mean) * istd;
                orow[c] = xh * gamma[c] + beta[c];
            }
        }
    }

    /// Backward pass. Accumulates `dgamma`, `dbeta`; returns `dx`.
    pub fn backward(
        &self,
        ps: &ParamSet,
        cache: &LayerNormCache,
        dy: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        let n = self.dim as f32;
        let gamma = ps.get(self.gamma);
        let mut dgamma = Matrix::zeros(1, self.dim);
        let mut dbeta = Matrix::zeros(1, self.dim);
        let mut dx = Matrix::zeros(dy.rows(), dy.cols());
        for r in 0..dy.rows() {
            let istd = cache.inv_std[r];
            // dl/dx̂ = dy ⊙ γ ; standard LN backward:
            // dx = (1/n)·istd·(n·dx̂ − Σdx̂ − x̂·Σ(dx̂⊙x̂))
            let mut sum_dxhat = 0.0;
            let mut sum_dxhat_xhat = 0.0;
            let mut dxhat = vec![0.0f32; self.dim];
            for (c, slot) in dxhat.iter_mut().enumerate() {
                let g = dy.get(r, c) * gamma.get(0, c);
                *slot = g;
                sum_dxhat += g;
                sum_dxhat_xhat += g * cache.x_hat.get(r, c);
                dgamma.set(
                    0,
                    c,
                    dgamma.get(0, c) + dy.get(r, c) * cache.x_hat.get(r, c),
                );
                dbeta.set(0, c, dbeta.get(0, c) + dy.get(r, c));
            }
            for (c, &dxh) in dxhat.iter().enumerate() {
                let xh = cache.x_hat.get(r, c);
                let v = (n * dxh - sum_dxhat - xh * sum_dxhat_xhat) * istd / n;
                dx.set(r, c, v);
            }
        }
        grads.accumulate(self.gamma, dgamma);
        grads.accumulate(self.beta, dbeta);
        dx
    }

    /// Training forward over a row-stacked batch: writes `y` into `out`
    /// and fills `cache` with the stacked standardized input + per-row
    /// inverse std. Per-row arithmetic is identical to
    /// [`LayerNorm::forward`], so outputs are bit-identical regardless of
    /// how rows are blocked.
    pub fn forward_batch_cache(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        out: &mut Matrix,
        cache: &mut LayerNormBatchCache,
    ) {
        debug_assert_eq!(x.cols(), self.dim);
        let n = self.dim as f32;
        let gamma = ps.get(self.gamma).row(0);
        let beta = ps.get(self.beta).row(0);
        out.reset(x.rows(), x.cols());
        cache.x_hat.reset(x.rows(), x.cols());
        cache.inv_std.clear();
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / n;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
            let istd = 1.0 / (var + self.eps).sqrt();
            cache.inv_std.push(istd);
            let hrow = cache.x_hat.row_mut(r);
            for (c, &xv) in row.iter().enumerate() {
                let xh = (xv - mean) * istd;
                hrow[c] = xh;
            }
            let orow = out.row_mut(r);
            for c in 0..row.len() {
                orow[c] = cache.x_hat.get(r, c) * gamma[c] + beta[c];
            }
        }
    }

    /// Batched backward over a row-stacked batch of `batch` equal-height
    /// blocks (the cache from [`LayerNorm::forward_batch_cache`]). Block
    /// `b`'s `dgamma`/`dbeta` go to `sink.grads_for(b)` in ascending
    /// order; per-row arithmetic is the exact body of
    /// [`LayerNorm::backward`], so a fused sink reproduces the sequential
    /// per-block backward bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch(
        &self,
        ps: &ParamSet,
        cache: &LayerNormBatchCache,
        dy: &Matrix,
        batch: usize,
        sink: &mut GradSink<'_>,
        dx: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        assert!(
            batch > 0 && dy.rows().is_multiple_of(batch),
            "rows must split into blocks"
        );
        let block_rows = dy.rows() / batch;
        let n = self.dim as f32;
        let gamma = ps.get(self.gamma);
        dx.reset(dy.rows(), dy.cols());
        let mut dgamma = scratch.take(1, self.dim);
        let mut dbeta = scratch.take(1, self.dim);
        let mut dxhat = scratch.take(1, self.dim);
        for b in 0..batch {
            dgamma.reset(1, self.dim);
            dbeta.reset(1, self.dim);
            for r in b * block_rows..(b + 1) * block_rows {
                let istd = cache.inv_std[r];
                let mut sum_dxhat = 0.0;
                let mut sum_dxhat_xhat = 0.0;
                for c in 0..self.dim {
                    let g = dy.get(r, c) * gamma.get(0, c);
                    dxhat.set(0, c, g);
                    sum_dxhat += g;
                    sum_dxhat_xhat += g * cache.x_hat.get(r, c);
                    dgamma.set(
                        0,
                        c,
                        dgamma.get(0, c) + dy.get(r, c) * cache.x_hat.get(r, c),
                    );
                    dbeta.set(0, c, dbeta.get(0, c) + dy.get(r, c));
                }
                for c in 0..self.dim {
                    let xh = cache.x_hat.get(r, c);
                    let v = (n * dxhat.get(0, c) - sum_dxhat - xh * sum_dxhat_xhat) * istd / n;
                    dx.set(r, c, v);
                }
            }
            let g = sink.grads_for(b);
            g.accumulate_ref(self.gamma, &dgamma);
            g.accumulate_ref(self.beta, &dbeta);
        }
        scratch.give(dxhat);
        scratch.give(dbeta);
        scratch.give(dgamma);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rows_are_standardized() {
        let mut ps = ParamSet::new();
        let ln = LayerNorm::new(&mut ps, "ln", 4);
        let x = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0]);
        let (y, _) = ln.forward(&ps, &x);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 4.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_and_shift() {
        let mut ps = ParamSet::new();
        let ln = LayerNorm::new(&mut ps, "ln", 2);
        *ps.get_mut(ln.gamma) = Matrix::row_vector(vec![2.0, 2.0]);
        *ps.get_mut(ln.beta) = Matrix::row_vector(vec![1.0, 1.0]);
        let x = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (y, _) = ln.forward(&ps, &x);
        // x̂ = [-1, 1] → y = [-1, 3].
        assert!((y.get(0, 0) + 1.0).abs() < 1e-3);
        assert!((y.get(0, 1) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let ln = LayerNorm::new(&mut ps, "ln", 5);
        // Non-trivial gamma/beta so their gradients are exercised.
        *ps.get_mut(ln.gamma) = Matrix::xavier(1, 5, &mut rng);
        *ps.get_mut(ln.beta) = Matrix::xavier(1, 5, &mut rng);
        let x = Matrix::xavier(3, 5, &mut rng).scale(3.0);
        // Weighted-sum loss breaks symmetry.
        let wvec: Vec<f32> = (0..15).map(|i| (i as f32 * 0.37).sin()).collect();
        let weights = Matrix::from_vec(3, 5, wvec);
        let loss = |ps: &ParamSet| ln.forward(ps, &x).0.hadamard(&weights).sum();
        let (_, cache) = ln.forward(&ps, &x);
        let mut grads = Grads::new(&ps);
        let dx = ln.backward(&ps, &cache, &weights, &mut grads);
        check_gradients(&mut ps, &[ln.gamma, ln.beta], loss, &grads, 1e-2, 2e-2).unwrap();
        // Check dx numerically for a few elements.
        let eps = 1e-2;
        let mut x2 = x.clone();
        for (r, c) in [(0, 0), (1, 3), (2, 4)] {
            let orig = x2.get(r, c);
            x2.set(r, c, orig + eps);
            let up = ln.forward(&ps, &x2).0.hadamard(&weights).sum();
            x2.set(r, c, orig - eps);
            let dn = ln.forward(&ps, &x2).0.hadamard(&weights).sum();
            x2.set(r, c, orig);
            let num = (up - dn) / (2.0 * eps);
            assert!(
                (dx.get(r, c) - num).abs() < 3e-2,
                "dx[{r},{c}] {} vs {num}",
                dx.get(r, c)
            );
        }
    }
}
