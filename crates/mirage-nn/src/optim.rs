//! Optimizers: SGD (with momentum) and Adam.
//!
//! Optimizer state is held outside the parameters, indexed by [`ParamId`](crate::param::ParamId)
//! position, so the same optimizer can be reused across many gradient
//! sources (offline foundation pretraining, online head training).

use serde::{Deserialize, Serialize};

use crate::param::{Grads, ParamSet};
use crate::tensor::Matrix;

/// Common interface over gradient-descent optimizers.
pub trait Optimizer {
    /// Applies one update step from accumulated gradients.
    fn step(&mut self, ps: &mut ParamSet, grads: &Grads);
    /// Current learning rate.
    fn learning_rate(&self) -> f32;
    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, ps: &mut ParamSet, grads: &Grads) {
        if self.velocity.len() < ps.len() {
            self.velocity.resize(ps.len(), None);
        }
        for (id, g) in grads.iter() {
            if self.momentum > 0.0 {
                let v =
                    self.velocity[id.0].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
                *v = v.scale(self.momentum);
                v.add_assign(g);
                ps.get_mut(id).add_scaled(&v.clone(), -self.lr);
            } else {
                ps.get_mut(id).add_scaled(g, -self.lr);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction — the optimizer the
/// paper uses for foundation-model training.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with standard hyperparameters (β₁ = 0.9, β₂ = 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Update steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The full internal state — step count and first/second moments,
    /// indexed by parameter position — for crash-safe checkpointing.
    /// Round-trips through [`Adam::restore_state`].
    pub fn state(&self) -> (u64, &[Option<Matrix>], &[Option<Matrix>]) {
        (self.t, &self.m, &self.v)
    }

    /// Restores the state captured by [`Adam::state`]: after this, the
    /// next `step` is bit-identical to what the snapshotted optimizer
    /// would have produced.
    pub fn restore_state(&mut self, t: u64, m: Vec<Option<Matrix>>, v: Vec<Option<Matrix>>) {
        self.t = t;
        self.m = m;
        self.v = v;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, ps: &mut ParamSet, grads: &Grads) {
        if self.m.len() < ps.len() {
            self.m.resize(ps.len(), None);
            self.v.resize(ps.len(), None);
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            let m = self.m[id.0].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let v = self.v[id.0].get_or_insert_with(|| Matrix::zeros(g.rows(), g.cols()));
            let p = ps.get_mut(id);
            for i in 0..g.data().len() {
                let gi = g.data()[i];
                let mi = self.beta1 * m.data()[i] + (1.0 - self.beta1) * gi;
                let vi = self.beta2 * v.data()[i] + (1.0 - self.beta2) * gi * gi;
                m.data_mut()[i] = mi;
                v.data_mut()[i] = vi;
                let m_hat = mi / bc1;
                let v_hat = vi / bc2;
                p.data_mut()[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = (w − 3)² from w = 0 and checks convergence.
    fn quadratic_descent(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut ps = ParamSet::new();
        let w = ps.alloc("w", Matrix::zeros(1, 1));
        for _ in 0..steps {
            let wv = ps.get(w).get(0, 0);
            let mut grads = Grads::new(&ps);
            grads.accumulate(w, Matrix::from_vec(1, 1, vec![2.0 * (wv - 3.0)]));
            opt.step(&mut ps, &grads);
        }
        ps.get(w).get(0, 0)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1);
        let w = quadratic_descent(&mut opt, 100);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let w = quadratic_descent(&mut opt, 200);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = quadratic_descent(&mut opt, 300);
        assert!((w - 3.0).abs() < 1e-2, "w = {w}");
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn adam_handles_sparse_grads() {
        // Two params; only one ever receives gradients.
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::zeros(1, 1));
        let b = ps.alloc("b", Matrix::full(1, 1, 7.0));
        let mut opt = Adam::new(0.05);
        for _ in 0..50 {
            let av = ps.get(a).get(0, 0);
            let mut grads = Grads::new(&ps);
            grads.accumulate(a, Matrix::from_vec(1, 1, vec![2.0 * (av - 1.0)]));
            opt.step(&mut ps, &grads);
        }
        assert!((ps.get(a).get(0, 0) - 1.0).abs() < 0.1);
        assert_eq!(ps.get(b).get(0, 0), 7.0, "untouched param must not move");
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
