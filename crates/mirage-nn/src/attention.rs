//! Multi-head self-attention (Vaswani et al.) with manual backward pass.
//!
//! This is the mechanism §4.6 of the paper leans on: attention over the
//! sequence of historical cluster snapshots "filters out irrelevant
//! snapshots in history and identifies ones that contribute to prediction".

use rand::Rng;

use crate::linear::{Linear, LinearCache};
use crate::param::{GradSink, Grads, ParamSet};
use crate::scratch::Scratch;
use crate::tensor::Matrix;

/// Multi-head self-attention over a `seq × d_model` input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Head count (must divide `d_model`).
    pub heads: usize,
    /// Model width.
    pub d_model: usize,
}

/// Forward cache for the backward pass.
#[derive(Debug, Clone)]
pub struct AttentionCache {
    cq: LinearCache,
    ck: LinearCache,
    cv: LinearCache,
    co: LinearCache,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Per-head softmaxed attention matrices (`seq × seq`).
    attn: Vec<Matrix>,
}

/// Retained training cache for a row-stacked batch of sequences. All
/// buffers are reused across calls (reset in place), so a warm update
/// loop never allocates.
#[derive(Debug, Clone, Default)]
pub struct AttentionBatchCache {
    /// The stacked layer input (needed for the projection backward).
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    concat: Matrix,
    /// Softmaxed attention per `(block, head)`, indexed `b·heads + h`.
    attn: Vec<Matrix>,
}

impl MultiHeadAttention {
    /// Allocates projection parameters.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        d_model: usize,
        heads: usize,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(
            heads > 0 && d_model.is_multiple_of(heads),
            "heads must divide d_model"
        );
        Self {
            wq: Linear::new(ps, &format!("{name}.wq"), d_model, d_model, rng),
            wk: Linear::new(ps, &format!("{name}.wk"), d_model, d_model, rng),
            wv: Linear::new(ps, &format!("{name}.wv"), d_model, d_model, rng),
            wo: Linear::new(ps, &format!("{name}.wo"), d_model, d_model, rng),
            heads,
            d_model,
        }
    }

    /// Head width.
    fn d_head(&self) -> usize {
        self.d_model / self.heads
    }

    /// Self-attention forward over `x` (`seq × d_model`).
    pub fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, AttentionCache) {
        let (q, cq) = self.wq.forward(ps, x);
        let (k, ck) = self.wk.forward(ps, x);
        let (v, cv) = self.wv.forward(ps, x);
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        let seq = x.rows();
        let mut concat = Matrix::zeros(seq, self.d_model);
        let mut attn = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = col_slice(&q, h * dh, dh);
            let kh = col_slice(&k, h * dh, dh);
            let vh = col_slice(&v, h * dh, dh);
            let scores = qh.matmul_t(&kh).scale(scale);
            let a = scores.softmax_rows();
            let oh = a.matmul(&vh);
            col_slice_write(&mut concat, &oh, h * dh);
            attn.push(a);
        }
        let (y, co) = self.wo.forward(ps, &concat);
        (
            y,
            AttentionCache {
                cq,
                ck,
                cv,
                co,
                q,
                k,
                v,
                attn,
            },
        )
    }

    /// Inference-only forward into a caller-provided buffer, with every
    /// temporary drawn from `scratch`: no cache, no allocation once the
    /// arena is warm. Bit-identical to [`MultiHeadAttention::forward`]
    /// (same projection, score, softmax and mixing arithmetic in the same
    /// order). Single-sequence special case of
    /// [`MultiHeadAttention::forward_batch_into`].
    pub fn forward_into(&self, ps: &ParamSet, x: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        self.forward_batch_into(ps, x, 1, out, scratch);
    }

    /// Batched inference forward: `x` row-stacks `batch` independent
    /// `seq × d_model` sequences (`x.rows() = batch · seq`), and `out`
    /// receives the row-stacked attention outputs. The Q/K/V and output
    /// projections run as **one matmul each over the whole batch** (the
    /// amortization this path exists for), while the score/softmax/mix
    /// stage is confined to each block — sequences never attend across
    /// episode boundaries. Per block the arithmetic is bit-identical to
    /// [`MultiHeadAttention::forward_into`] on that block alone:
    ///
    /// * projections are row-local, so row-stacking cannot change them,
    /// * the per-head Q/K/V column slices are read *in place* from the
    ///   projected matrices (head columns are contiguous within each
    ///   row), with the scale folded into the score multiply exactly as
    ///   the cached path's `scale` pass applies it,
    /// * head outputs accumulate straight into the concat buffer in
    ///   ascending key order, like the cached path's `a.matmul(&vh)`.
    pub fn forward_batch_into(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        batch: usize,
        out: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        let rows = x.rows();
        assert!(
            batch >= 1 && rows.is_multiple_of(batch),
            "batch {batch} must evenly divide {rows} stacked rows"
        );
        let seq = rows / batch;
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();

        let mut q = scratch.take(rows, self.d_model);
        let mut k = scratch.take(rows, self.d_model);
        let mut v = scratch.take(rows, self.d_model);
        self.wq.forward_into(ps, x, &mut q);
        self.wk.forward_into(ps, x, &mut k);
        self.wv.forward_into(ps, x, &mut v);

        let mut concat = scratch.take(rows, self.d_model);
        let mut scores = scratch.take(seq, seq);
        // Transposed-key buffer, only materialized for the narrow-head
        // fast path below (zero-sized otherwise).
        let use_kt = dh <= 8;
        let mut kt = scratch.take(if use_kt { dh } else { 0 }, if use_kt { seq } else { 0 });
        for blk in 0..batch {
            let row0 = blk * seq;
            for h in 0..self.heads {
                let cols = h * dh..(h + 1) * dh;
                // scores[r][c] = ⟨q_h[row0+r], k_h[row0+c]⟩ · scale.
                //
                // For d_head ≤ 8 the keys are transposed per head/block
                // and the dot accumulates key-outer: the inner loop runs
                // across *keys* (vector-width parallel, no horizontal
                // sums), while each score still sums its products in
                // ascending head-dim order — `tensor::dot`'s exact order
                // below one full lane chunk, so the cached path's
                // `qh.matmul_t(&kh)` is reproduced bit for bit. Wider
                // heads fall back to `dot`, whose lane-chunked order is
                // what the cached path computes there.
                if use_kt {
                    for (t, c0) in cols.clone().enumerate() {
                        let ktrow = kt.row_mut(t);
                        for (c, kv) in ktrow.iter_mut().enumerate() {
                            *kv = k.get(row0 + c, c0);
                        }
                    }
                    for r in 0..seq {
                        let qrow = &q.row(row0 + r)[cols.clone()];
                        let srow = scores.row_mut(r);
                        srow.fill(0.0);
                        for (t, &qv) in qrow.iter().enumerate() {
                            for (s, &kv) in srow.iter_mut().zip(kt.row(t)) {
                                *s += qv * kv;
                            }
                        }
                        for s in srow.iter_mut() {
                            *s *= scale;
                        }
                    }
                } else {
                    for r in 0..seq {
                        let qrow = &q.row(row0 + r)[cols.clone()];
                        let srow = scores.row_mut(r);
                        for (c, s) in srow.iter_mut().enumerate() {
                            *s = crate::tensor::dot(qrow, &k.row(row0 + c)[cols.clone()]) * scale;
                        }
                    }
                }
                scores.softmax_rows_in_place();
                // concat_h[row0+r] = Σ_c a[r][c] · v_h[row0+c].
                for r in 0..seq {
                    let arow = scores.row(r);
                    let orow = &mut concat.row_mut(row0 + r)[cols.clone()];
                    orow.fill(0.0);
                    for (c, &a) in arow.iter().enumerate() {
                        let vrow = &v.row(row0 + c)[cols.clone()];
                        for (o, &vv) in orow.iter_mut().zip(vrow) {
                            *o += a * vv;
                        }
                    }
                }
            }
        }
        self.wo.forward_into(ps, &concat, out);
        scratch.give(kt);
        scratch.give(scores);
        scratch.give(concat);
        scratch.give(v);
        scratch.give(k);
        scratch.give(q);
    }

    /// Backward pass; accumulates all projection gradients and returns `dx`.
    pub fn backward(
        &self,
        ps: &ParamSet,
        cache: &AttentionCache,
        dy: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();
        let seq = dy.rows();
        let d_concat = self.wo.backward(ps, &cache.co, dy, grads);

        let mut dq = Matrix::zeros(seq, self.d_model);
        let mut dk = Matrix::zeros(seq, self.d_model);
        let mut dv = Matrix::zeros(seq, self.d_model);
        for h in 0..self.heads {
            let doh = col_slice(&d_concat, h * dh, dh);
            let qh = col_slice(&cache.q, h * dh, dh);
            let kh = col_slice(&cache.k, h * dh, dh);
            let vh = col_slice(&cache.v, h * dh, dh);
            let a = &cache.attn[h];
            // O = A·V
            let da = doh.matmul_t(&vh);
            let dvh = a.t_matmul(&doh);
            // softmax backward (per row).
            let ds = softmax_rows_backward(a, &da).scale(scale);
            let dqh = ds.matmul(&kh);
            let dkh = ds.t_matmul(&qh);
            col_slice_write(&mut dq, &dqh, h * dh);
            col_slice_write(&mut dk, &dkh, h * dh);
            col_slice_write(&mut dv, &dvh, h * dh);
        }
        let dx_q = self.wq.backward(ps, &cache.cq, &dq, grads);
        let dx_k = self.wk.backward(ps, &cache.ck, &dk, grads);
        let dx_v = self.wv.backward(ps, &cache.cv, &dv, grads);
        dx_q.add(&dx_k).add(&dx_v)
    }

    /// Training forward over a row-stacked batch of `batch` independent
    /// `seq × d_model` sequences: writes the attention output into `out`
    /// and fills `cache` for [`MultiHeadAttention::backward_batch`].
    ///
    /// Projections run as one matmul each over the whole stack (row-local,
    /// so row-stacking cannot change them); the score/softmax/mix stage is
    /// block-confined, using the exact per-sample kernels of
    /// [`MultiHeadAttention::forward`] on materialized head slices — per
    /// block the result is bit-identical to the cached per-sample forward.
    pub fn forward_batch_cache(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        batch: usize,
        out: &mut Matrix,
        cache: &mut AttentionBatchCache,
        scratch: &mut Scratch,
    ) {
        let rows = x.rows();
        assert!(
            batch >= 1 && rows.is_multiple_of(batch),
            "batch {batch} must evenly divide {rows} stacked rows"
        );
        let seq = rows / batch;
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();

        cache.x.copy_from(x);
        self.wq.forward_into(ps, x, &mut cache.q);
        self.wk.forward_into(ps, x, &mut cache.k);
        self.wv.forward_into(ps, x, &mut cache.v);
        cache.concat.reset(rows, self.d_model);
        cache.attn.resize_with(batch * self.heads, Matrix::default);

        let mut qh = scratch.take(seq, dh);
        let mut kh = scratch.take(seq, dh);
        let mut vh = scratch.take(seq, dh);
        let mut oh = scratch.take(seq, dh);
        let mut tbuf = scratch.take(dh, seq);
        for b in 0..batch {
            let row0 = b * seq;
            for h in 0..self.heads {
                col_slice_range_into(&cache.q, row0, seq, h * dh, dh, &mut qh);
                col_slice_range_into(&cache.k, row0, seq, h * dh, dh, &mut kh);
                col_slice_range_into(&cache.v, row0, seq, h * dh, dh, &mut vh);
                let a = &mut cache.attn[b * self.heads + h];
                qh.matmul_t_buf_into(&kh, a, &mut tbuf);
                a.scale_in_place(scale);
                a.softmax_rows_in_place();
                a.matmul_into(&vh, &mut oh);
                col_slice_write_range(&mut cache.concat, row0, &oh, h * dh);
            }
        }
        self.wo.forward_into(ps, &cache.concat, out);
        scratch.give(tbuf);
        scratch.give(oh);
        scratch.give(vh);
        scratch.give(kh);
        scratch.give(qh);
    }

    /// Batched backward for [`MultiHeadAttention::forward_batch_cache`].
    /// Block `b`'s projection gradients go to `sink.grads_for(b)` in
    /// ascending block order (wo, then wq/wk/wv — per-parameter chains
    /// stay flat ascending sums, so a fused sink is bit-identical to the
    /// sequential per-sample backward); `dx` receives the row-stacked
    /// input gradient.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch(
        &self,
        ps: &ParamSet,
        cache: &AttentionBatchCache,
        dy: &Matrix,
        batch: usize,
        sink: &mut GradSink<'_>,
        dx: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        let rows = dy.rows();
        assert!(
            batch >= 1 && rows.is_multiple_of(batch),
            "batch {batch} must evenly divide {rows} stacked rows"
        );
        let seq = rows / batch;
        let dh = self.d_head();
        let scale = 1.0 / (dh as f32).sqrt();

        let mut d_concat = scratch.take(rows, self.d_model);
        self.wo
            .backward_batch(ps, &cache.concat, dy, batch, sink, &mut d_concat, scratch);

        let mut dq = scratch.take(rows, self.d_model);
        let mut dk = scratch.take(rows, self.d_model);
        let mut dv = scratch.take(rows, self.d_model);
        let mut doh = scratch.take(seq, dh);
        let mut qh = scratch.take(seq, dh);
        let mut kh = scratch.take(seq, dh);
        let mut vh = scratch.take(seq, dh);
        let mut da = scratch.take(seq, seq);
        let mut ds = scratch.take(seq, seq);
        let mut dqh = scratch.take(seq, dh);
        let mut dkh = scratch.take(seq, dh);
        let mut dvh = scratch.take(seq, dh);
        let mut tbuf = scratch.take(dh, seq);
        for b in 0..batch {
            let row0 = b * seq;
            for h in 0..self.heads {
                col_slice_range_into(&d_concat, row0, seq, h * dh, dh, &mut doh);
                col_slice_range_into(&cache.q, row0, seq, h * dh, dh, &mut qh);
                col_slice_range_into(&cache.k, row0, seq, h * dh, dh, &mut kh);
                col_slice_range_into(&cache.v, row0, seq, h * dh, dh, &mut vh);
                let a = &cache.attn[b * self.heads + h];
                doh.matmul_t_buf_into(&vh, &mut da, &mut tbuf);
                a.t_matmul_into(&doh, &mut dvh);
                softmax_rows_backward_into(a, &da, &mut ds);
                ds.scale_in_place(scale);
                ds.matmul_into(&kh, &mut dqh);
                ds.t_matmul_into(&qh, &mut dkh);
                col_slice_write_range(&mut dq, row0, &dqh, h * dh);
                col_slice_write_range(&mut dk, row0, &dkh, h * dh);
                col_slice_write_range(&mut dv, row0, &dvh, h * dh);
            }
        }
        scratch.give(tbuf);
        scratch.give(dvh);
        scratch.give(dkh);
        scratch.give(dqh);
        scratch.give(ds);
        scratch.give(da);
        scratch.give(vh);
        scratch.give(kh);
        scratch.give(qh);
        scratch.give(doh);

        self.wq
            .backward_batch(ps, &cache.x, &dq, batch, sink, dx, scratch);
        let mut dx_k = scratch.take(rows, self.d_model);
        let mut dx_v = scratch.take(rows, self.d_model);
        self.wk
            .backward_batch(ps, &cache.x, &dk, batch, sink, &mut dx_k, scratch);
        self.wv
            .backward_batch(ps, &cache.x, &dv, batch, sink, &mut dx_v, scratch);
        // Same elementwise (q + k) + v order as the per-sample backward's
        // `dx_q.add(&dx_k).add(&dx_v)`.
        dx.add_assign(&dx_k);
        dx.add_assign(&dx_v);
        scratch.give(dx_v);
        scratch.give(dx_k);
        scratch.give(dv);
        scratch.give(dk);
        scratch.give(dq);
        scratch.give(d_concat);
    }
}

/// Copies columns `[start, start+width)` into a new matrix.
fn col_slice(m: &Matrix, start: usize, width: usize) -> Matrix {
    Matrix::from_fn(m.rows(), width, |r, c| m.get(r, start + c))
}

/// Writes `src` into columns `[start, ...)` of `dst`.
fn col_slice_write(dst: &mut Matrix, src: &Matrix, start: usize) {
    let width = src.cols();
    for r in 0..src.rows() {
        dst.row_mut(r)[start..start + width].copy_from_slice(src.row(r));
    }
}

/// Copies the `rows`-row band starting at `row0` of columns
/// `[start, start+width)` into `out` — the band-local equivalent of
/// `col_slice` on a standalone copy of the block (same element reads).
fn col_slice_range_into(
    m: &Matrix,
    row0: usize,
    rows: usize,
    start: usize,
    width: usize,
    out: &mut Matrix,
) {
    out.reset(rows, width);
    for r in 0..rows {
        out.row_mut(r)
            .copy_from_slice(&m.row(row0 + r)[start..start + width]);
    }
}

/// Writes `src` into columns `[start, ...)` of the row band of `dst`
/// starting at `row0`.
fn col_slice_write_range(dst: &mut Matrix, row0: usize, src: &Matrix, start: usize) {
    let width = src.cols();
    for r in 0..src.rows() {
        dst.row_mut(row0 + r)[start..start + width].copy_from_slice(src.row(r));
    }
}

/// Row-wise softmax Jacobian-vector product: given the softmax output `a`
/// and upstream `da`, returns `ds` where `s` are the pre-softmax scores.
pub fn softmax_rows_backward(a: &Matrix, da: &Matrix) -> Matrix {
    let mut ds = Matrix::zeros(0, 0);
    softmax_rows_backward_into(a, da, &mut ds);
    ds
}

/// Allocation-free variant of [`softmax_rows_backward`]: identical
/// per-row arithmetic written into `ds`.
pub fn softmax_rows_backward_into(a: &Matrix, da: &Matrix, ds: &mut Matrix) {
    ds.reset(a.rows(), a.cols());
    for r in 0..a.rows() {
        let arow = a.row(r);
        let darow = da.row(r);
        let dot: f32 = arow.iter().zip(darow).map(|(x, y)| x * y).sum();
        for c in 0..a.cols() {
            ds.set(r, c, arow[c] * (darow[c] - dot));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_shape_matches_input() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mha = MultiHeadAttention::new(&mut ps, "a", 8, 2, &mut rng);
        let x = Matrix::xavier(5, 8, &mut rng);
        let (y, cache) = mha.forward(&ps, &x);
        assert_eq!(y.shape(), (5, 8));
        assert_eq!(cache.attn.len(), 2);
        // Attention rows are probability distributions.
        for a in &cache.attn {
            for r in 0..a.rows() {
                let s: f32 = a.row(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "heads must divide d_model")]
    fn rejects_indivisible_heads() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = MultiHeadAttention::new(&mut ps, "a", 7, 2, &mut rng);
    }

    #[test]
    fn softmax_backward_matches_jacobian() {
        // For a 1×n row: ds_i = a_i (da_i − Σ_j da_j a_j).
        let logits = Matrix::row_vector(vec![0.3, -0.2, 0.9]);
        let a = logits.softmax_rows();
        let da = Matrix::row_vector(vec![1.0, 0.0, -1.0]);
        let ds = softmax_rows_backward(&a, &da);
        // Finite differences through the softmax.
        let eps = 1e-3;
        for i in 0..3 {
            let mut up = logits.clone();
            up.set(0, i, up.get(0, i) + eps);
            let mut dn = logits.clone();
            dn.set(0, i, dn.get(0, i) - eps);
            let f = |m: &Matrix| -> f32 {
                let s = m.softmax_rows();
                s.row(0).iter().zip(da.row(0)).map(|(x, y)| x * y).sum()
            };
            let num = (f(&up) - f(&dn)) / (2.0 * eps);
            assert!((ds.get(0, i) - num).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mha = MultiHeadAttention::new(&mut ps, "a", 6, 2, &mut rng);
        let x = Matrix::xavier(4, 6, &mut rng);
        let wvec: Vec<f32> = (0..24).map(|i| ((i * 7) as f32 * 0.13).cos()).collect();
        let weights = Matrix::from_vec(4, 6, wvec);
        let loss = |ps: &ParamSet| mha.forward(ps, &x).0.hadamard(&weights).sum();
        let (_, cache) = mha.forward(&ps, &x);
        let mut grads = Grads::new(&ps);
        let dx = mha.backward(&ps, &cache, &weights, &mut grads);
        let ids = [
            mha.wq.w, mha.wq.b, mha.wk.w, mha.wk.b, mha.wv.w, mha.wv.b, mha.wo.w, mha.wo.b,
        ];
        check_gradients(&mut ps, &ids, loss, &grads, 1e-2, 3e-2).unwrap();
        // Spot-check dx.
        let eps = 1e-2;
        let mut x2 = x.clone();
        for (r, c) in [(0, 0), (2, 3), (3, 5)] {
            let orig = x2.get(r, c);
            x2.set(r, c, orig + eps);
            let up = mha.forward(&ps, &x2).0.hadamard(&weights).sum();
            x2.set(r, c, orig - eps);
            let dn = mha.forward(&ps, &x2).0.hadamard(&weights).sum();
            x2.set(r, c, orig);
            let num = (up - dn) / (2.0 * eps);
            assert!((dx.get(r, c) - num).abs() < 3e-2, "dx[{r},{c}]");
        }
    }
}
