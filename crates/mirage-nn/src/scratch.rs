//! Reusable buffer arena for allocation-free inference.
//!
//! Every `forward_into` path in this crate threads a [`Scratch`] through
//! the layer stack instead of allocating temporaries. The arena is a LIFO
//! free list of [`Matrix`] buffers:
//!
//! * [`Scratch::take`] pops a buffer and reshapes it in place
//!   ([`Matrix::reset`] reuses the existing allocation whenever its
//!   capacity suffices),
//! * [`Scratch::give`] pushes it back when the caller is done.
//!
//! # The reuse contract
//!
//! The steady-state decision loop is *shape-stationary*: every iteration
//! requests the same sequence of buffer shapes in the same order. Because
//! the free list is LIFO and call sites are deterministic, each `take`
//! after the first iteration pops a buffer whose capacity already fits its
//! shape — so **no call allocates after warm-up**. The first pass through
//! a new model (or a new input shape) grows buffers as needed; that is the
//! warm-up the allocation-regression test excludes.
//!
//! Callers must balance `take`/`give` (give back what you took, ideally in
//! reverse order). An unbalanced caller only costs re-warming — the arena
//! never aliases or corrupts data, since `take` transfers ownership.

use crate::tensor::Matrix;

/// LIFO free list of reusable [`Matrix`] buffers.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    free: Vec<Matrix>,
}

impl Scratch {
    /// Empty arena; buffers are created on first use and recycled after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops a buffer and reshapes it to `rows × cols`, zero-filled. Only
    /// allocates when the arena is empty or the recycled buffer's capacity
    /// is too small (i.e. during warm-up).
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.free.pop().unwrap_or_else(|| Matrix::zeros(0, 0));
        m.reset(rows, cols);
        m
    }

    /// Returns a buffer to the arena for reuse.
    pub fn give(&mut self, m: Matrix) {
        self.free.push(m);
    }

    /// Number of parked buffers (diagnostic).
    pub fn parked(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zero_fills_and_reuses_allocations() {
        let mut s = Scratch::new();
        let mut a = s.take(4, 4);
        a.set(0, 0, 7.0);
        let ptr = a.data().as_ptr();
        s.give(a);
        let b = s.take(2, 3);
        assert_eq!(b.shape(), (2, 3));
        assert!(b.data().iter().all(|&v| v == 0.0), "stale data must clear");
        assert_eq!(b.data().as_ptr(), ptr, "buffer must be recycled");
        assert_eq!(s.parked(), 0);
    }

    #[test]
    fn lifo_order_keeps_shapes_stationary() {
        let mut s = Scratch::new();
        // Warm-up pass: take two buffers of different sizes, give back in
        // reverse order.
        let big = s.take(16, 16);
        let small = s.take(2, 2);
        s.give(small);
        s.give(big);
        // Second pass requests the same shapes in the same order and must
        // get capacity-matching buffers back.
        let big2 = s.take(16, 16);
        let small2 = s.take(2, 2);
        assert!(big2.data().len() == 256 && small2.data().len() == 4);
    }
}
