//! Finite-difference gradient checking.
//!
//! Every manual backward pass in this crate is validated against central
//! differences. The checker is public so downstream crates (the RL heads,
//! the dual-head agent) can verify their own composite losses too.

use crate::param::{Grads, ParamId, ParamSet};

/// Verifies analytic gradients of `loss` with central finite differences.
///
/// For each parameter in `ids`, perturbs every element by `±eps` and
/// compares `(loss(x+eps) − loss(x−eps)) / 2eps` against the accumulated
/// analytic gradient. Fails if any element deviates by more than
/// `tol · max(1, |analytic|)`.
///
/// `loss` must be a pure function of the parameter set.
pub fn check_gradients(
    ps: &mut ParamSet,
    ids: &[ParamId],
    loss: impl Fn(&ParamSet) -> f32,
    grads: &Grads,
    eps: f32,
    tol: f32,
) -> Result<(), String> {
    for &id in ids {
        let (rows, cols) = ps.get(id).shape();
        let analytic = grads
            .get(id)
            .ok_or_else(|| format!("no gradient accumulated for {}", ps.name(id)))?
            .clone();
        for r in 0..rows {
            for c in 0..cols {
                let orig = ps.get(id).get(r, c);
                ps.get_mut(id).set(r, c, orig + eps);
                let up = loss(ps);
                ps.get_mut(id).set(r, c, orig - eps);
                let down = loss(ps);
                ps.get_mut(id).set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps);
                let a = analytic.get(r, c);
                let scale = a.abs().max(1.0);
                if (a - numeric).abs() > tol * scale {
                    return Err(format!(
                        "{}[{r},{c}]: analytic {a:.5} vs numeric {numeric:.5}",
                        ps.name(id)
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    #[test]
    fn accepts_correct_gradient() {
        // loss = sum(w^2) → dloss/dw = 2w.
        let mut ps = ParamSet::new();
        let w = ps.alloc("w", Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]));
        let mut grads = Grads::new(&ps);
        grads.accumulate(w, ps.get(w).scale(2.0));
        let loss = |ps: &ParamSet| ps.get(w).data().iter().map(|v| v * v).sum::<f32>();
        check_gradients(&mut ps, &[w], loss, &grads, 1e-3, 1e-2).unwrap();
    }

    #[test]
    fn rejects_wrong_gradient() {
        let mut ps = ParamSet::new();
        let w = ps.alloc("w", Matrix::from_vec(1, 2, vec![1.0, 2.0]));
        let mut grads = Grads::new(&ps);
        grads.accumulate(w, Matrix::row_vector(vec![100.0, 100.0]));
        let loss = |ps: &ParamSet| ps.get(w).sum();
        assert!(check_gradients(&mut ps, &[w], loss, &grads, 1e-3, 1e-2).is_err());
    }

    #[test]
    fn reports_missing_gradient() {
        let mut ps = ParamSet::new();
        let w = ps.alloc("w", Matrix::zeros(1, 1));
        let grads = Grads::new(&ps);
        let err = check_gradients(&mut ps, &[w], |_| 0.0, &grads, 1e-3, 1e-2).unwrap_err();
        assert!(err.contains("no gradient"));
    }
}
