//! Checkpointing: crash-safe, checksummed parameter-set files.
//!
//! # Checkpoint format
//!
//! Every checkpoint is a one-line ASCII envelope header followed by the
//! raw payload bytes:
//!
//! ```text
//! MIRAGECKPT <version> <kind> <payload-len> <crc32-hex>\n
//! <payload bytes>
//! ```
//!
//! * `version` — format version, currently `1`. Loaders reject newer
//!   versions with a typed error instead of misparsing them.
//! * `kind` — a four-character tag naming the payload type (`NNPS` for a
//!   parameter-set JSON body; `mirage-core` seals its training-state
//!   snapshots with its own tags). Loading a checkpoint under the wrong
//!   kind is a typed error, so a training-state file can never be
//!   silently misread as bare network weights.
//! * `payload-len` / `crc32-hex` — the payload's byte length and IEEE
//!   CRC-32, both validated on load. Truncation and bit corruption each
//!   map to their own [`CheckpointError`] variant; a corrupted checkpoint
//!   can never yield a silently-wrong [`ParamSet`].
//!
//! Parameter-set payloads stay human-inspectable JSON (the build
//! environment has no serde_json, so the body is written and parsed by
//! hand):
//!
//! ```json
//! {"params": [{"name": "layer.w", "rows": 2, "cols": 2,
//!              "data": [1.5, -2.0, 0.0, 3.25]}, ...]}
//! ```
//!
//! # Recovery semantics
//!
//! [`save_params`] (and any writer built on [`write_atomic`]) never
//! modifies the destination file in place: the sealed bytes go to a
//! temporary file in the same directory, which is fsynced and then
//! renamed over the target. A crash mid-write leaves either the previous
//! checkpoint or the new one — never a torn file. Non-finite parameters
//! are rejected *before* anything touches the filesystem, so a diverged
//! run cannot clobber its last good checkpoint with an unloadable one.
//! Headerless files that start with `{` are accepted by [`load_params`]
//! as legacy bare-JSON checkpoints (no integrity check is possible for
//! those).

use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::param::ParamSet;
use crate::tensor::Matrix;

/// Leading magic token of every sealed checkpoint.
pub const CHECKPOINT_MAGIC: &str = "MIRAGECKPT";
/// Current envelope format version.
pub const CHECKPOINT_VERSION: u32 = 1;
/// Payload-kind tag for parameter-set (network weights) checkpoints.
pub const KIND_PARAMS: &str = "NNPS";

/// Typed checkpoint failure: every way a save or load can go wrong,
/// distinguishable by the caller. Corruption is always one of these —
/// never a panic, never a silently different payload.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (open/read/write/fsync/rename).
    Io(std::io::Error),
    /// The file does not begin with a `MIRAGECKPT` envelope header.
    BadMagic,
    /// The envelope is from a newer (or unknown) format version.
    UnsupportedVersion(u32),
    /// The payload kind does not match what the loader expected.
    WrongKind {
        /// Kind tag the loader asked for.
        expected: &'static str,
        /// Kind tag found in the header.
        found: String,
    },
    /// The header is structurally malformed (missing or unparsable field).
    Header(String),
    /// The payload is shorter or longer than the header's declared length.
    Truncated {
        /// Byte length declared in the header.
        expected: usize,
        /// Byte length actually present.
        found: usize,
    },
    /// The payload bytes do not hash to the header's CRC-32.
    ChecksumMismatch {
        /// CRC-32 declared in the header.
        expected: u32,
        /// CRC-32 of the bytes actually present.
        found: u32,
    },
    /// The payload passed integrity checks but is not valid checkpoint
    /// JSON (or violates a structural invariant like `data.len != r×c`).
    Parse {
        /// Byte offset inside the payload where parsing failed.
        pos: usize,
        /// What the parser expected.
        msg: String,
    },
    /// A parameter holds NaN/∞ and cannot be written losslessly.
    NonFinite(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::BadMagic => write!(f, "not a mirage checkpoint (bad magic)"),
            Self::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            Self::WrongKind { expected, found } => {
                write!(
                    f,
                    "wrong checkpoint kind: expected {expected}, found {found}"
                )
            }
            Self::Header(msg) => write!(f, "malformed checkpoint header: {msg}"),
            Self::Truncated { expected, found } => write!(
                f,
                "truncated checkpoint: header declares {expected} payload bytes, found {found}"
            ),
            Self::ChecksumMismatch { expected, found } => write!(
                f,
                "checkpoint checksum mismatch: header {expected:08x}, payload {found:08x}"
            ),
            Self::Parse { pos, msg } => {
                write!(f, "checkpoint parse error at byte {pos}: {msg}")
            }
            Self::NonFinite(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// IEEE CRC-32 lookup table, built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum in every envelope header).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wraps `payload` in the versioned, checksummed envelope under a
/// four-character `kind` tag. The inverse of [`unseal`].
pub fn seal(kind: &str, payload: &[u8]) -> Vec<u8> {
    debug_assert!(
        kind.len() == 4 && kind.is_ascii(),
        "checkpoint kind tags are four ASCII characters"
    );
    let mut out = format!(
        "{CHECKPOINT_MAGIC} {CHECKPOINT_VERSION} {kind} {} {:08x}\n",
        payload.len(),
        crc32(payload)
    )
    .into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Validates the envelope of `bytes` (magic, version, kind, length,
/// checksum) and returns the payload slice.
pub fn unseal<'a>(kind: &'static str, bytes: &'a [u8]) -> Result<&'a [u8], CheckpointError> {
    // The header always fits well within the first 128 bytes; bounding
    // the newline scan keeps garbage inputs from scanning megabytes.
    let nl = bytes
        .iter()
        .take(128)
        .position(|&b| b == b'\n')
        .ok_or(CheckpointError::BadMagic)?;
    let header = std::str::from_utf8(&bytes[..nl]).map_err(|_| CheckpointError::BadMagic)?;
    let mut fields = header.split(' ');
    if fields.next() != Some(CHECKPOINT_MAGIC) {
        return Err(CheckpointError::BadMagic);
    }
    let version: u32 = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::Header("unparsable version".into()))?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let found_kind = fields
        .next()
        .ok_or_else(|| CheckpointError::Header("missing kind tag".into()))?;
    if found_kind != kind {
        return Err(CheckpointError::WrongKind {
            expected: kind,
            found: found_kind.to_string(),
        });
    }
    let len: usize = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| CheckpointError::Header("unparsable payload length".into()))?;
    let declared_crc = fields
        .next()
        .and_then(|v| u32::from_str_radix(v, 16).ok())
        .ok_or_else(|| CheckpointError::Header("unparsable checksum".into()))?;
    if fields.next().is_some() {
        return Err(CheckpointError::Header("trailing header fields".into()));
    }
    let payload = &bytes[nl + 1..];
    if payload.len() != len {
        return Err(CheckpointError::Truncated {
            expected: len,
            found: payload.len(),
        });
    }
    let found_crc = crc32(payload);
    if found_crc != declared_crc {
        return Err(CheckpointError::ChecksumMismatch {
            expected: declared_crc,
            found: found_crc,
        });
    }
    Ok(payload)
}

/// Atomically replaces `path` with `bytes`: write to a same-directory
/// temporary file, fsync it, then rename over the target (with a
/// best-effort directory fsync so the rename itself is durable). A crash
/// at any point leaves either the old file or the new one, never a torn
/// mix; on error the temporary file is cleaned up.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Header(format!("{} has no file name", path.display())))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let write = (|| -> std::io::Result<()> {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if write.is_err() {
        std::fs::remove_file(&tmp).ok();
    } else if let Ok(d) = File::open(&dir) {
        d.sync_all().ok();
    }
    write.map_err(CheckpointError::Io)
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a parameter set in the checkpoint JSON format.
///
/// Fails if any parameter is non-finite: JSON has no `NaN`/`inf`
/// tokens, so writing them would produce a checkpoint that can never be
/// loaded back — better to refuse at save time, when the diverged
/// training run is still debuggable.
pub fn params_to_json(ps: &ParamSet) -> Result<String, CheckpointError> {
    use std::fmt::Write as _;

    let mut out = String::from("{\"params\": [");
    for (i, (id, m)) in ps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        write_json_string(&mut out, ps.name(id));
        let _ = write!(
            out,
            ", \"rows\": {}, \"cols\": {}, \"data\": [",
            m.rows(),
            m.cols()
        );
        for (j, v) in m.data().iter().enumerate() {
            if !v.is_finite() {
                return Err(CheckpointError::NonFinite(format!(
                    "parameter {:?} contains non-finite value {v} at index {j}; \
                     refusing to write an unloadable checkpoint",
                    ps.name(id)
                )));
            }
            if j > 0 {
                out.push(',');
            }
            // `{:?}` prints the shortest f32 representation that parses
            // back to the same bits (for finite values).
            let _ = write!(out, "{v:?}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    Ok(out)
}

/// Minimal pull parser for the checkpoint subset of JSON.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> CheckpointError {
        CheckpointError::Parse {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), CheckpointError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full code point.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, CheckpointError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

/// Parses the checkpoint JSON format back into a parameter set.
pub fn params_from_json(text: &str) -> Result<ParamSet, CheckpointError> {
    let mut p = Parser::new(text);
    let mut ps = ParamSet::new();
    p.expect(b'{')?;
    let key = p.string()?;
    if key != "params" {
        return Err(p.err("expected \"params\" key"));
    }
    p.expect(b':')?;
    p.expect(b'[')?;
    if !p.eat(b']') {
        loop {
            p.expect(b'{')?;
            let mut name: Option<String> = None;
            let mut rows = 0usize;
            let mut cols = 0usize;
            let mut data: Vec<f32> = Vec::new();
            loop {
                let field = p.string()?;
                p.expect(b':')?;
                match field.as_str() {
                    "name" => name = Some(p.string()?),
                    "rows" => rows = p.number()? as usize,
                    "cols" => cols = p.number()? as usize,
                    "data" => {
                        p.expect(b'[')?;
                        if !p.eat(b']') {
                            loop {
                                data.push(p.number()? as f32);
                                if !p.eat(b',') {
                                    break;
                                }
                            }
                            p.expect(b']')?;
                        }
                    }
                    _ => return Err(p.err("unknown field")),
                }
                if !p.eat(b',') {
                    break;
                }
            }
            p.expect(b'}')?;
            let name = name.ok_or_else(|| p.err("missing name"))?;
            let expected = rows
                .checked_mul(cols)
                .ok_or_else(|| p.err("rows x cols overflows"))?;
            if data.len() != expected {
                return Err(p.err("data length does not match rows x cols"));
            }
            ps.alloc(name, Matrix::from_vec(rows, cols, data));
            if !p.eat(b',') {
                break;
            }
        }
        p.expect(b']')?;
    }
    p.expect(b'}')?;
    Ok(ps)
}

/// Decodes a parameter set from sealed checkpoint bytes, accepting
/// headerless bare JSON (a `{` first byte) as the legacy format.
pub fn params_from_bytes(bytes: &[u8]) -> Result<ParamSet, CheckpointError> {
    if bytes.first() == Some(&b'{') {
        let text = std::str::from_utf8(bytes).map_err(|_| CheckpointError::Parse {
            pos: 0,
            msg: "legacy checkpoint is not UTF-8".into(),
        })?;
        return params_from_json(text);
    }
    let payload = unseal(KIND_PARAMS, bytes)?;
    let text = std::str::from_utf8(payload).map_err(|_| CheckpointError::Parse {
        pos: 0,
        msg: "payload is not UTF-8".into(),
    })?;
    params_from_json(text)
}

/// Saves a parameter set to `path` as a sealed, atomically-replaced
/// checkpoint. Fails (without touching the file) if any parameter is
/// non-finite.
pub fn save_params(ps: &ParamSet, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
    let text = params_to_json(ps)?;
    write_atomic(path, &seal(KIND_PARAMS, text.as_bytes()))
}

/// Loads a parameter set from a checkpoint written by [`save_params`]
/// (or a legacy headerless JSON checkpoint).
pub fn load_params(path: impl AsRef<Path>) -> Result<ParamSet, CheckpointError> {
    let bytes = std::fs::read(path)?;
    params_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut ps = ParamSet::new();
        let a = ps.alloc(
            "layer.w",
            Matrix::from_vec(2, 2, vec![1.5, -2.0, 0.0, 3.25]),
        );
        let b = ps.alloc("layer.b", Matrix::row_vector(vec![0.5]));
        let dir = std::env::temp_dir().join("mirage_nn_ser_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        save_params(&ps, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(a), ps.get(a));
        assert_eq!(loaded.get(b), ps.get(b));
        assert_eq!(loaded.name(a), "layer.w");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(matches!(
            load_params("/nonexistent/mirage/ckpt.json"),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn in_memory_roundtrip_is_exact_for_awkward_values() {
        let mut ps = ParamSet::new();
        let id = ps.alloc(
            "odd \"name\" with\\slashes",
            Matrix::from_vec(1, 4, vec![f32::MIN_POSITIVE, 1e-30, -1.2345678e10, 0.1]),
        );
        let text = params_to_json(&ps).unwrap();
        let loaded = params_from_json(&text).unwrap();
        assert_eq!(loaded.name(id), "odd \"name\" with\\slashes");
        assert_eq!(loaded.get(id), ps.get(id));
    }

    #[test]
    fn empty_param_set_roundtrips() {
        let ps = ParamSet::new();
        let loaded = params_from_json(&params_to_json(&ps).unwrap()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn non_finite_parameters_are_rejected_at_save_time() {
        let mut ps = ParamSet::new();
        ps.alloc("w", Matrix::from_vec(1, 2, vec![1.0, f32::NAN]));
        let err = params_to_json(&ps).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        let dir = std::env::temp_dir().join("mirage_nn_ser_nan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::remove_file(&path).ok();
        assert!(save_params(&ps, &path).is_err());
        assert!(!path.exists(), "failed save must not leave a file behind");
        let mut inf = ParamSet::new();
        inf.alloc("w", Matrix::from_vec(1, 1, vec![f32::INFINITY]));
        assert!(params_to_json(&inf).is_err());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(params_from_json("{\"params\": [").is_err());
        assert!(params_from_json("{\"other\": []}").is_err());
        assert!(params_from_json(
            "{\"params\": [{\"name\": \"x\", \"rows\": 2, \"cols\": 2, \"data\": [1.0]}]}"
        )
        .is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn seal_unseal_roundtrip_and_kind_check() {
        let sealed = seal("TEST", b"payload bytes");
        assert_eq!(unseal("TEST", &sealed).unwrap(), b"payload bytes");
        assert!(matches!(
            unseal("OTHR", &sealed),
            Err(CheckpointError::WrongKind { .. })
        ));
    }

    #[test]
    fn envelope_corruption_yields_typed_errors() {
        let sealed = seal(KIND_PARAMS, b"{\"params\": []}");
        // Truncated payload.
        assert!(matches!(
            unseal(KIND_PARAMS, &sealed[..sealed.len() - 3]),
            Err(CheckpointError::Truncated { .. })
        ));
        // Flipped payload bit.
        let mut flipped = sealed.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        assert!(matches!(
            unseal(KIND_PARAMS, &flipped),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        // Garbage prefix.
        assert!(matches!(
            unseal(KIND_PARAMS, b"not a checkpoint\nat all"),
            Err(CheckpointError::BadMagic)
        ));
        // Future version.
        let future = seal(KIND_PARAMS, b"x").splice_version();
        assert!(matches!(
            unseal(KIND_PARAMS, &future),
            Err(CheckpointError::UnsupportedVersion(_))
        ));
    }

    trait SpliceVersion {
        fn splice_version(self) -> Vec<u8>;
    }

    impl SpliceVersion for Vec<u8> {
        /// Rewrites the header's version field to `9`.
        fn splice_version(mut self) -> Vec<u8> {
            let pos = CHECKPOINT_MAGIC.len() + 1;
            self[pos] = b'9';
            self
        }
    }

    #[test]
    fn legacy_headerless_json_still_loads() {
        let mut ps = ParamSet::new();
        let id = ps.alloc("w", Matrix::from_vec(1, 2, vec![0.25, -4.0]));
        let text = params_to_json(&ps).unwrap();
        let dir = std::env::temp_dir().join("mirage_nn_ser_legacy_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("legacy.json");
        std::fs::write(&path, text.as_bytes()).unwrap();
        let loaded = load_params(&path).unwrap();
        assert_eq!(loaded.get(id), ps.get(id));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_atomic_replaces_and_cleans_up() {
        let dir = std::env::temp_dir().join("mirage_nn_ser_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("target.ckpt");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No stray temp files left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(strays.is_empty(), "temp files left behind: {strays:?}");
        std::fs::remove_file(path).ok();
    }
}
