//! Checkpointing: save/load parameter sets as JSON.
//!
//! JSON keeps checkpoints human-inspectable and append-friendly for the
//! experiment manifests; the models here are small enough (10⁴–10⁶
//! scalars) that a binary format buys nothing.

use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::Path;

use crate::param::ParamSet;

/// Saves a parameter set to `path` as JSON.
pub fn save_params(ps: &ParamSet, path: impl AsRef<Path>) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    serde_json::to_writer(&mut w, ps)?;
    w.flush()
}

/// Loads a parameter set from a JSON file written by [`save_params`].
pub fn load_params(path: impl AsRef<Path>) -> std::io::Result<ParamSet> {
    let file = File::open(path)?;
    let r = BufReader::new(file);
    Ok(serde_json::from_reader(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("layer.w", Matrix::from_vec(2, 2, vec![1.5, -2.0, 0.0, 3.25]));
        let b = ps.alloc("layer.b", Matrix::row_vector(vec![0.5]));
        let dir = std::env::temp_dir().join("mirage_nn_ser_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        save_params(&ps, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(a), ps.get(a));
        assert_eq!(loaded.get(b), ps.get(b));
        assert_eq!(loaded.name(a), "layer.w");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_params("/nonexistent/mirage/ckpt.json").is_err());
    }
}
