//! Checkpointing: save/load parameter sets as JSON.
//!
//! JSON keeps checkpoints human-inspectable and append-friendly for the
//! experiment manifests; the models here are small enough (10⁴–10⁶
//! scalars) that a binary format buys nothing. The format is written and
//! parsed by hand (the build environment has no serde_json), as a single
//! object:
//!
//! ```json
//! {"params": [{"name": "layer.w", "rows": 2, "cols": 2,
//!              "data": [1.5, -2.0, 0.0, 3.25]}, ...]}
//! ```

use std::fs::File;
use std::io::{BufWriter, Error, ErrorKind, Read, Write};
use std::path::Path;

use crate::param::ParamSet;
use crate::tensor::Matrix;

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders a parameter set in the checkpoint JSON format.
///
/// Fails if any parameter is non-finite: JSON has no `NaN`/`inf`
/// tokens, so writing them would produce a checkpoint that can never be
/// loaded back — better to refuse at save time, when the diverged
/// training run is still debuggable.
pub fn params_to_json(ps: &ParamSet) -> Result<String, Error> {
    use std::fmt::Write as _;

    let mut out = String::from("{\"params\": [");
    for (i, (id, m)) in ps.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("{\"name\": ");
        write_json_string(&mut out, ps.name(id));
        let _ = write!(
            out,
            ", \"rows\": {}, \"cols\": {}, \"data\": [",
            m.rows(),
            m.cols()
        );
        for (j, v) in m.data().iter().enumerate() {
            if !v.is_finite() {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!(
                        "parameter {:?} contains non-finite value {v} at index {j}; \
                         refusing to write an unloadable checkpoint",
                        ps.name(id)
                    ),
                ));
            }
            if j > 0 {
                out.push(',');
            }
            // `{:?}` prints the shortest f32 representation that parses
            // back to the same bits (for finite values).
            let _ = write!(out, "{v:?}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    Ok(out)
}

/// Minimal pull parser for the checkpoint subset of JSON.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(
            ErrorKind::InvalidData,
            format!("checkpoint parse error at byte {}: {msg}", self.pos),
        )
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full code point.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| self.err("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

/// Parses the checkpoint JSON format back into a parameter set.
pub fn params_from_json(text: &str) -> Result<ParamSet, Error> {
    let mut p = Parser::new(text);
    let mut ps = ParamSet::new();
    p.expect(b'{')?;
    let key = p.string()?;
    if key != "params" {
        return Err(p.err("expected \"params\" key"));
    }
    p.expect(b':')?;
    p.expect(b'[')?;
    if !p.eat(b']') {
        loop {
            p.expect(b'{')?;
            let mut name: Option<String> = None;
            let mut rows = 0usize;
            let mut cols = 0usize;
            let mut data: Vec<f32> = Vec::new();
            loop {
                let field = p.string()?;
                p.expect(b':')?;
                match field.as_str() {
                    "name" => name = Some(p.string()?),
                    "rows" => rows = p.number()? as usize,
                    "cols" => cols = p.number()? as usize,
                    "data" => {
                        p.expect(b'[')?;
                        if !p.eat(b']') {
                            loop {
                                data.push(p.number()? as f32);
                                if !p.eat(b',') {
                                    break;
                                }
                            }
                            p.expect(b']')?;
                        }
                    }
                    _ => return Err(p.err("unknown field")),
                }
                if !p.eat(b',') {
                    break;
                }
            }
            p.expect(b'}')?;
            let name = name.ok_or_else(|| p.err("missing name"))?;
            if data.len() != rows * cols {
                return Err(p.err("data length does not match rows x cols"));
            }
            ps.alloc(name, Matrix::from_vec(rows, cols, data));
            if !p.eat(b',') {
                break;
            }
        }
        p.expect(b']')?;
    }
    p.expect(b'}')?;
    Ok(ps)
}

/// Saves a parameter set to `path` as JSON. Fails (without touching the
/// file) if any parameter is non-finite.
pub fn save_params(ps: &ParamSet, path: impl AsRef<Path>) -> std::io::Result<()> {
    let text = params_to_json(ps)?;
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Loads a parameter set from a JSON file written by [`save_params`].
pub fn load_params(path: impl AsRef<Path>) -> std::io::Result<ParamSet> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    params_from_json(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    #[test]
    fn roundtrip_preserves_everything() {
        let mut ps = ParamSet::new();
        let a = ps.alloc(
            "layer.w",
            Matrix::from_vec(2, 2, vec![1.5, -2.0, 0.0, 3.25]),
        );
        let b = ps.alloc("layer.b", Matrix::row_vector(vec![0.5]));
        let dir = std::env::temp_dir().join("mirage_nn_ser_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        save_params(&ps, &path).unwrap();
        let loaded = load_params(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.get(a), ps.get(a));
        assert_eq!(loaded.get(b), ps.get(b));
        assert_eq!(loaded.name(a), "layer.w");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(load_params("/nonexistent/mirage/ckpt.json").is_err());
    }

    #[test]
    fn in_memory_roundtrip_is_exact_for_awkward_values() {
        let mut ps = ParamSet::new();
        let id = ps.alloc(
            "odd \"name\" with\\slashes",
            Matrix::from_vec(1, 4, vec![f32::MIN_POSITIVE, 1e-30, -1.2345678e10, 0.1]),
        );
        let text = params_to_json(&ps).unwrap();
        let loaded = params_from_json(&text).unwrap();
        assert_eq!(loaded.name(id), "odd \"name\" with\\slashes");
        assert_eq!(loaded.get(id), ps.get(id));
    }

    #[test]
    fn empty_param_set_roundtrips() {
        let ps = ParamSet::new();
        let loaded = params_from_json(&params_to_json(&ps).unwrap()).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn non_finite_parameters_are_rejected_at_save_time() {
        let mut ps = ParamSet::new();
        ps.alloc("w", Matrix::from_vec(1, 2, vec![1.0, f32::NAN]));
        let err = params_to_json(&ps).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
        let dir = std::env::temp_dir().join("mirage_nn_ser_nan_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::remove_file(&path).ok();
        assert!(save_params(&ps, &path).is_err());
        assert!(!path.exists(), "failed save must not leave a file behind");
        let mut inf = ParamSet::new();
        inf.alloc("w", Matrix::from_vec(1, 1, vec![f32::INFINITY]));
        assert!(params_to_json(&inf).is_err());
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(params_from_json("{\"params\": [").is_err());
        assert!(params_from_json("{\"other\": []}").is_err());
        assert!(params_from_json(
            "{\"params\": [{\"name\": \"x\", \"rows\": 2, \"cols\": 2, \"data\": [1.0]}]}"
        )
        .is_err());
    }
}
