//! Transformer encoder (pre-LN) — the paper's foundation model (§4.6).
//!
//! The encoder consumes the `k × m` state matrix of §4.2 as a sequence of
//! `k` snapshot rows: each row is embedded to `d_model`, sinusoidal
//! positional encodings are added, the stack of encoder layers mixes
//! history with multi-head self-attention, and mean-pooling produces the
//! `1 × d_model` feature the V-head / P-head decision layers consume.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::{Activation, ActivationCache};
use crate::attention::{AttentionBatchCache, AttentionCache, MultiHeadAttention};
use crate::layernorm::{LayerNorm, LayerNormBatchCache, LayerNormCache};
use crate::linear::{Linear, LinearCache};
use crate::param::{GradSink, Grads, ParamSet};
use crate::scratch::Scratch;
use crate::tensor::Matrix;

/// Transformer encoder hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Width of one input snapshot row (`m`, 40 in the paper).
    pub input_dim: usize,
    /// History length in snapshots (`k`, 144 in the paper).
    pub seq_len: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Encoder layer count.
    pub layers: usize,
    /// Feed-forward expansion factor (`d_ff = ff_mult × d_model`).
    pub ff_mult: usize,
}

impl TransformerConfig {
    /// Small defaults used by the experiment harness (DESIGN.md §3,
    /// substitution 3): k = 24 rows of m = 40 variables, d_model = 32.
    pub fn small(input_dim: usize, seq_len: usize) -> Self {
        Self {
            input_dim,
            seq_len,
            d_model: 32,
            heads: 4,
            layers: 2,
            ff_mult: 2,
        }
    }
}

/// One pre-LN encoder layer:
/// `h = x + MHSA(LN1(x))`; `y = h + FFN(LN2(h))`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderLayer {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    act: Activation,
}

/// Cache of one encoder layer.
#[derive(Debug, Clone)]
pub struct EncoderLayerCache {
    c_ln1: LayerNormCache,
    c_attn: AttentionCache,
    c_ln2: LayerNormCache,
    c_ff1: LinearCache,
    c_act: ActivationCache,
    c_ff2: LinearCache,
}

/// Retained training cache of one encoder layer for a row-stacked batch.
/// Every buffer is reused across calls, so a warm update loop never
/// allocates.
#[derive(Debug, Clone, Default)]
pub struct EncoderLayerBatchCache {
    c_ln1: LayerNormBatchCache,
    c_attn: AttentionBatchCache,
    c_ln2: LayerNormBatchCache,
    /// LN2 output — the FFN input (`rows × d_model`).
    n2: Matrix,
    /// Pre-activation FFN hidden (`rows × d_ff`).
    f1: Matrix,
    /// Post-activation FFN hidden (`rows × d_ff`).
    g: Matrix,
}

impl EncoderLayer {
    fn new(ps: &mut ParamSet, name: &str, cfg: &TransformerConfig, rng: &mut impl Rng) -> Self {
        let d = cfg.d_model;
        let d_ff = cfg.ff_mult * d;
        Self {
            ln1: LayerNorm::new(ps, &format!("{name}.ln1"), d),
            attn: MultiHeadAttention::new(ps, &format!("{name}.attn"), d, cfg.heads, rng),
            ln2: LayerNorm::new(ps, &format!("{name}.ln2"), d),
            ff1: Linear::new(ps, &format!("{name}.ff1"), d, d_ff, rng),
            ff2: Linear::new(ps, &format!("{name}.ff2"), d_ff, d, rng),
            act: Activation::Gelu,
        }
    }

    fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, EncoderLayerCache) {
        let (n1, c_ln1) = self.ln1.forward(ps, x);
        let (a, c_attn) = self.attn.forward(ps, &n1);
        let h = x.add(&a);
        let (n2, c_ln2) = self.ln2.forward(ps, &h);
        let (f1, c_ff1) = self.ff1.forward(ps, &n2);
        let (g, c_act) = self.act.forward(&f1);
        let (f2, c_ff2) = self.ff2.forward(ps, &g);
        let y = h.add(&f2);
        (
            y,
            EncoderLayerCache {
                c_ln1,
                c_attn,
                c_ln2,
                c_ff1,
                c_act,
                c_ff2,
            },
        )
    }

    /// Batched inference layer forward: `x` row-stacks `batch` sequences.
    /// LayerNorm, the feed-forward pair and both residual adds are
    /// row-local, so they run over the whole stacked matrix unchanged;
    /// self-attention is confined to each block. Per block, bit-identical
    /// to [`EncoderLayer::forward`] on that block alone.
    fn forward_batch_into(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        batch: usize,
        out: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        let (rows, d) = x.shape();
        let mut n1 = scratch.take(rows, d);
        self.ln1.forward_into(ps, x, &mut n1);
        let mut a = scratch.take(rows, d);
        self.attn
            .forward_batch_into(ps, &n1, batch, &mut a, scratch);
        // h = x + a
        let mut h = scratch.take(rows, d);
        h.copy_from(x);
        h.add_assign(&a);
        let mut n2 = scratch.take(rows, d);
        self.ln2.forward_into(ps, &h, &mut n2);
        let mut f1 = scratch.take(rows, self.ff1.out_dim);
        self.ff1.forward_into(ps, &n2, &mut f1);
        self.act.apply_in_place(&mut f1);
        // y = h + FFN(…): ff2 lands in `out`, then the residual is added
        // via a borrowed buffer so the operand order matches `h.add(&f2)`.
        self.ff2.forward_into(ps, &f1, out);
        let mut y = scratch.take(0, 0);
        y.copy_from(&h);
        y.add_assign(out);
        std::mem::swap(&mut y, out);
        scratch.give(y);
        scratch.give(f1);
        scratch.give(n2);
        scratch.give(h);
        scratch.give(a);
        scratch.give(n1);
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &EncoderLayerCache,
        dy: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        // y = h + FFN(LN2(h)) → dh = dy + LN2ᵀ(FFNᵀ(dy)).
        let d_f2 = self.ff2.backward(ps, &cache.c_ff2, dy, grads);
        let d_g = self.act.backward(&cache.c_act, &d_f2);
        let d_n2 = self.ff1.backward(ps, &cache.c_ff1, &d_g, grads);
        let d_h_ffn = self.ln2.backward(ps, &cache.c_ln2, &d_n2, grads);
        let dh = dy.add(&d_h_ffn);
        // h = x + MHSA(LN1(x)) → dx = dh + LN1ᵀ(MHSAᵀ(dh)).
        let d_a = self.attn.backward(ps, &cache.c_attn, &dh, grads);
        let d_x_attn = self.ln1.backward(ps, &cache.c_ln1, &d_a, grads);
        dh.add(&d_x_attn)
    }

    /// Training forward over a row-stacked batch: same data flow as
    /// [`EncoderLayer::forward_batch_into`] but filling `cache` for
    /// [`EncoderLayer::backward_batch`]. Per block, bit-identical to
    /// [`EncoderLayer::forward`] on that block alone.
    fn forward_batch_cache(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        batch: usize,
        out: &mut Matrix,
        cache: &mut EncoderLayerBatchCache,
        scratch: &mut Scratch,
    ) {
        let (rows, d) = x.shape();
        let mut n1 = scratch.take(rows, d);
        self.ln1
            .forward_batch_cache(ps, x, &mut n1, &mut cache.c_ln1);
        let mut a = scratch.take(rows, d);
        self.attn
            .forward_batch_cache(ps, &n1, batch, &mut a, &mut cache.c_attn, scratch);
        // h = x + a
        let mut h = scratch.take(rows, d);
        h.copy_from(x);
        h.add_assign(&a);
        self.ln2
            .forward_batch_cache(ps, &h, &mut cache.n2, &mut cache.c_ln2);
        self.ff1.forward_into(ps, &cache.n2, &mut cache.f1);
        cache.g.copy_from(&cache.f1);
        self.act.apply_in_place(&mut cache.g);
        // y = h + FFN(…), same operand order as `h.add(&f2)`.
        self.ff2.forward_into(ps, &cache.g, out);
        let mut y = scratch.take(0, 0);
        y.copy_from(&h);
        y.add_assign(out);
        std::mem::swap(&mut y, out);
        scratch.give(y);
        scratch.give(h);
        scratch.give(a);
        scratch.give(n1);
    }

    /// Batched backward mirroring [`EncoderLayer::backward`] sublayer by
    /// sublayer. Block `b`'s parameter gradients go to `sink.grads_for(b)`
    /// in ascending block order per parameter, so a fused sink reproduces
    /// the sequential per-sample backward bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn backward_batch(
        &self,
        ps: &ParamSet,
        cache: &EncoderLayerBatchCache,
        dy: &Matrix,
        batch: usize,
        sink: &mut GradSink<'_>,
        dx: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        let (rows, d) = dy.shape();
        let d_ff = self.ff1.out_dim;
        // y = h + FFN(LN2(h)) → dh = dy + LN2ᵀ(FFNᵀ(dy)).
        let mut dg = scratch.take(rows, d_ff);
        self.ff2
            .backward_batch(ps, &cache.g, dy, batch, sink, &mut dg, scratch);
        let mut df1 = scratch.take(rows, d_ff);
        self.act.backward_into(&cache.f1, &dg, &mut df1);
        let mut d_n2 = scratch.take(rows, d);
        self.ff1
            .backward_batch(ps, &cache.n2, &df1, batch, sink, &mut d_n2, scratch);
        let mut d_h_ffn = scratch.take(rows, d);
        self.ln2
            .backward_batch(ps, &cache.c_ln2, &d_n2, batch, sink, &mut d_h_ffn, scratch);
        let mut dh = scratch.take(rows, d);
        dh.copy_from(dy);
        dh.add_assign(&d_h_ffn);
        // h = x + MHSA(LN1(x)) → dx = dh + LN1ᵀ(MHSAᵀ(dh)).
        let mut d_a = scratch.take(rows, d);
        self.attn
            .backward_batch(ps, &cache.c_attn, &dh, batch, sink, &mut d_a, scratch);
        let mut d_x_attn = scratch.take(rows, d);
        self.ln1
            .backward_batch(ps, &cache.c_ln1, &d_a, batch, sink, &mut d_x_attn, scratch);
        dx.copy_from(&dh);
        dx.add_assign(&d_x_attn);
        scratch.give(d_x_attn);
        scratch.give(d_a);
        scratch.give(dh);
        scratch.give(d_h_ffn);
        scratch.give(d_n2);
        scratch.give(df1);
        scratch.give(dg);
    }
}

/// Full encoder: row embedding + positional encoding + layer stack +
/// mean pooling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerEncoder {
    /// Hyperparameters.
    pub cfg: TransformerConfig,
    embed: Linear,
    layers: Vec<EncoderLayer>,
    /// Precomputed sinusoidal positional encodings (`seq_len × d_model`).
    pos: Matrix,
}

/// Encoder cache.
#[derive(Debug, Clone)]
pub struct TransformerCache {
    c_embed: LinearCache,
    c_layers: Vec<EncoderLayerCache>,
    seq: usize,
}

/// Retained training cache for a row-stacked batch of sequences
/// (`batch` blocks of `seq` rows each). The stacked input `xs` is *not*
/// cached — [`TransformerEncoder::backward_batch`] takes it from the
/// caller for the embedding backward.
#[derive(Debug, Clone, Default)]
pub struct TransformerBatchCache {
    c_layers: Vec<EncoderLayerBatchCache>,
    seq: usize,
    batch: usize,
}

/// Incremental embed-row cache for the inference path (one per episode):
/// the last input window and its pre-positional embedding rows. The
/// decision loop shifts its history window by one row per tick, so
/// [`TransformerEncoder::forward_cached_into`] reuses `seq − 1` embed
/// rows and recomputes exactly the new one.
///
/// Reuse is keyed on **bitwise** input-row equality, and recomputation is
/// bit-identical to the full embed matmul — cached results can never
/// drift from uncached ones. What the cache *cannot* see is a parameter
/// update: call [`EmbedRowCache::clear`] after any training step on the
/// owning network.
#[derive(Debug, Clone)]
pub struct EmbedRowCache {
    /// Last input window (`seq × input_dim`).
    x: Matrix,
    /// Pre-positional embed rows of `x` (`seq × d_model`).
    e: Matrix,
    /// Whether `x`/`e` hold a previous pass.
    warm: bool,
}

impl Default for EmbedRowCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbedRowCache {
    /// Empty (cold) cache.
    pub fn new() -> Self {
        Self {
            x: Matrix::zeros(0, 0),
            e: Matrix::zeros(0, 0),
            warm: false,
        }
    }

    /// Drops the cached rows; the next pass recomputes everything. Must
    /// be called after any update to the encoder's parameters.
    pub fn clear(&mut self) {
        self.warm = false;
    }
}

/// Bitwise slice equality — the cache-reuse predicate. `f32::to_bits`
/// comparison (not `==`) so `-0.0` vs `0.0` or NaN payloads can never
/// alias two inputs whose embeddings could differ in bits.
fn rows_bit_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

impl TransformerEncoder {
    /// Allocates all encoder parameters in `ps`.
    pub fn new(ps: &mut ParamSet, name: &str, cfg: TransformerConfig, rng: &mut impl Rng) -> Self {
        let embed = Linear::new(
            ps,
            &format!("{name}.embed"),
            cfg.input_dim,
            cfg.d_model,
            rng,
        );
        let layers = (0..cfg.layers)
            .map(|l| EncoderLayer::new(ps, &format!("{name}.layer{l}"), &cfg, rng))
            .collect();
        let pos = positional_encoding(cfg.seq_len, cfg.d_model);
        Self {
            cfg,
            embed,
            layers,
            pos,
        }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.cfg.d_model
    }

    /// Handle of the row-embedding weight (used by tests and diagnostics to
    /// check which parts of a model received gradients).
    pub fn embed_w(&self) -> crate::param::ParamId {
        self.embed.w
    }

    /// Encodes a `seq × input_dim` state matrix into a pooled `1 × d_model`
    /// feature row.
    pub fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, TransformerCache) {
        assert_eq!(x.cols(), self.cfg.input_dim, "state row width mismatch");
        assert!(
            x.rows() <= self.cfg.seq_len,
            "sequence longer than configured"
        );
        let (e, c_embed) = self.embed.forward(ps, x);
        let mut h = Matrix::from_fn(e.rows(), e.cols(), |r, c| e.get(r, c) + self.pos.get(r, c));
        let mut c_layers = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (next, c) = layer.forward(ps, &h);
            h = next;
            c_layers.push(c);
        }
        let pooled = h.mean_rows();
        (
            pooled,
            TransformerCache {
                c_embed,
                c_layers,
                seq: x.rows(),
            },
        )
    }

    /// Inference-only encode into a caller-provided `1 × d_model` buffer,
    /// with every temporary drawn from `scratch`: no cache, no allocation
    /// once the arena is warm. Bit-identical to
    /// [`TransformerEncoder::forward`].
    pub fn forward_into(&self, ps: &ParamSet, x: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        assert_eq!(x.cols(), self.cfg.input_dim, "state row width mismatch");
        assert!(
            x.rows() <= self.cfg.seq_len,
            "sequence longer than configured"
        );
        let mut h = scratch.take(x.rows(), self.cfg.d_model);
        self.embed.forward_into(ps, x, &mut h);
        self.encode_embedded(ps, &mut h, x.rows(), 1, out, scratch);
        scratch.give(h);
    }

    /// [`TransformerEncoder::forward_into`] with incremental embed-row
    /// caching: in a decision loop only one history row changes per tick
    /// (the window shifts by one and a new row arrives), so the embedding
    /// rows of unchanged inputs are reused from `cache` and only dirty
    /// rows are recomputed. Reuse requires *bitwise* row equality and the
    /// single-row recompute accumulates in the same ascending-`k` order
    /// as the matmul microkernel, so the result is bit-identical to
    /// [`TransformerEncoder::forward_into`] whatever the cache state.
    ///
    /// The cache keys on input content only — it cannot see parameter
    /// updates. Holding a `&self` borrow across the cache's lifetime (as
    /// the batched episode driver does) rules mutation out statically;
    /// anything that trains the encoder between calls must call
    /// [`EmbedRowCache::clear`] first.
    pub fn forward_cached_into(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        out: &mut Matrix,
        scratch: &mut Scratch,
        cache: &mut EmbedRowCache,
    ) {
        assert_eq!(x.cols(), self.cfg.input_dim, "state row width mismatch");
        assert!(
            x.rows() <= self.cfg.seq_len,
            "sequence longer than configured"
        );
        self.embed_cached_rows(ps, x, 0, x.rows(), cache);
        let mut h = scratch.take(0, 0);
        h.copy_from(&cache.e);
        self.encode_embedded(ps, &mut h, x.rows(), 1, out, scratch);
        scratch.give(h);
    }

    /// Batched inference encode: `xs` row-stacks `batch` independent
    /// `seq × input_dim` state matrices (uniform `seq = xs.rows() /
    /// batch`), and row `b` of the `batch × d_model` output receives
    /// episode `b`'s pooled feature. The row embedding runs as **one
    /// matmul over the whole batch**, the layer stack shares its
    /// row-local projections the same way, and attention/pooling are
    /// confined to each block — so each output row is bit-identical to a
    /// sequential [`TransformerEncoder::forward_into`] of that block.
    pub fn forward_batch_into(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        batch: usize,
        out: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        let seq = self.batch_seq(xs, batch);
        let mut h = scratch.take(xs.rows(), self.cfg.d_model);
        self.embed.forward_into(ps, xs, &mut h);
        self.encode_embedded(ps, &mut h, seq, batch, out, scratch);
        scratch.give(h);
    }

    /// [`TransformerEncoder::forward_batch_into`] with one
    /// [`EmbedRowCache`] per episode (`caches.len() == batch`): dirty
    /// embed rows are recomputed per episode, everything else is reused.
    /// Bit-identical to the uncached batch path (and therefore to the
    /// sequential per-episode path).
    pub fn forward_batch_cached_into(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        batch: usize,
        out: &mut Matrix,
        scratch: &mut Scratch,
        caches: &mut [EmbedRowCache],
    ) {
        let seq = self.batch_seq(xs, batch);
        assert_eq!(caches.len(), batch, "one embed cache per episode");
        let mut h = scratch.take(xs.rows(), self.cfg.d_model);
        for (blk, cache) in caches.iter_mut().enumerate() {
            self.embed_cached_rows(ps, xs, blk * seq, seq, cache);
            for r in 0..seq {
                h.row_mut(blk * seq + r).copy_from_slice(cache.e.row(r));
            }
        }
        self.encode_embedded(ps, &mut h, seq, batch, out, scratch);
        scratch.give(h);
    }

    /// Validates a row-stacked batch and returns the per-block sequence
    /// length.
    fn batch_seq(&self, xs: &Matrix, batch: usize) -> usize {
        assert_eq!(xs.cols(), self.cfg.input_dim, "state row width mismatch");
        assert!(
            batch >= 1 && xs.rows().is_multiple_of(batch),
            "batch {batch} must evenly divide {} stacked rows",
            xs.rows()
        );
        let seq = xs.rows() / batch;
        assert!(seq <= self.cfg.seq_len, "sequence longer than configured");
        seq
    }

    /// Shared inference body behind every `forward*_into` entry point:
    /// `h` holds `batch` row-stacked blocks of pre-positional embed rows
    /// (`batch·seq × d_model`). Adds the positional encodings per block,
    /// runs the layer stack (attention confined to each block), and
    /// mean-pools each block into row `b` of `out` with the exact
    /// [`Matrix::mean_rows_into`] arithmetic.
    fn encode_embedded(
        &self,
        ps: &ParamSet,
        h: &mut Matrix,
        seq: usize,
        batch: usize,
        out: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        // e + positional encoding, in the same element order as `forward`
        // (pos row index restarts at every block boundary).
        for blk in 0..batch {
            for r in 0..seq {
                for (hv, &pv) in h.row_mut(blk * seq + r).iter_mut().zip(self.pos.row(r)) {
                    *hv += pv;
                }
            }
        }
        let mut next = scratch.take(h.rows(), self.cfg.d_model);
        for layer in &self.layers {
            layer.forward_batch_into(ps, h, batch, &mut next, scratch);
            std::mem::swap(h, &mut next);
        }
        out.reset(batch, self.cfg.d_model);
        for blk in 0..batch {
            let orow = out.row_mut(blk);
            for r in 0..seq {
                for (o, &v) in orow.iter_mut().zip(h.row(blk * seq + r)) {
                    *o += v;
                }
            }
            let inv = 1.0 / seq.max(1) as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
        scratch.give(next);
    }

    /// Embeds rows `row0 .. row0 + seq` of `xs` into `cache.e`
    /// (pre-positional), recomputing only rows whose input changed since
    /// the cached pass. Three per-row cases, checked in order:
    ///
    /// 1. bitwise-equal to the cached row at the same index → keep,
    /// 2. bitwise-equal to the cached row one below (the history window
    ///    shifted) → move that embed row up in place (ascending `r` reads
    ///    source rows before they are overwritten),
    /// 3. otherwise → recompute `e[r] = x[r]·W + b` with a single
    ///    ascending-`k` accumulator per element, matching the matmul
    ///    microkernel bit for bit.
    fn embed_cached_rows(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        row0: usize,
        seq: usize,
        cache: &mut EmbedRowCache,
    ) {
        let m = self.cfg.input_dim;
        if !cache.warm || cache.x.shape() != (seq, m) {
            cache.x.reset(seq, m);
            for r in 0..seq {
                cache.x.row_mut(r).copy_from_slice(xs.row(row0 + r));
            }
            self.embed.forward_into(ps, &cache.x, &mut cache.e);
            cache.warm = true;
            return;
        }
        let w = ps.get(self.embed.w);
        let bias = ps.get(self.embed.b).row(0);
        // Whole-window shift fast path: the decision loop's canonical
        // pattern is "every row moved up one, a new row arrived". Detect
        // it with a single pass (each new row vs the cached row one
        // below), then do one memmove over the embed block and recompute
        // only the newest row — skipping the per-row same-index compares
        // that would each scan a long common prefix before failing.
        if seq > 1 && (0..seq - 1).all(|r| rows_bit_eq(xs.row(row0 + r), cache.x.row(r + 1))) {
            let d = cache.e.cols();
            cache.e.data_mut().copy_within(d..seq * d, 0);
            cache.x.data_mut().copy_within(m..seq * m, 0);
            let last = seq - 1;
            let xr = xs.row(row0 + last);
            if !rows_bit_eq(xr, cache.x.row(last)) {
                let row = cache.e.row_mut(last);
                row.fill(0.0);
                for (k, &xv) in xr.iter().enumerate() {
                    for (e, &wv) in row.iter_mut().zip(w.row(k)) {
                        *e += xv * wv;
                    }
                }
                for (e, &bv) in row.iter_mut().zip(bias) {
                    *e += bv;
                }
                cache.x.row_mut(last).copy_from_slice(xr);
            }
            return;
        }
        for r in 0..seq {
            let xr = xs.row(row0 + r);
            if rows_bit_eq(xr, cache.x.row(r)) {
                // Unchanged input row: cached embed and cached input both
                // stay valid — no writeback needed.
                continue;
            }
            if r + 1 < seq && rows_bit_eq(xr, cache.x.row(r + 1)) {
                let d = cache.e.cols();
                cache
                    .e
                    .data_mut()
                    .copy_within((r + 1) * d..(r + 2) * d, r * d);
            } else {
                // Axpy-form single-row recompute: walk `w` row-major (one
                // contiguous, vectorizable pass per input element) instead
                // of gathering a strided column per output. Every output
                // element still accumulates its `k` terms in ascending
                // order with the bias added last, so the row is bit-equal
                // to the full embed matmul's.
                let row = cache.e.row_mut(r);
                row.fill(0.0);
                for (k, &xv) in xr.iter().enumerate() {
                    for (e, &wv) in row.iter_mut().zip(w.row(k)) {
                        *e += xv * wv;
                    }
                }
                for (e, &bv) in row.iter_mut().zip(bias) {
                    *e += bv;
                }
            }
            cache.x.row_mut(r).copy_from_slice(xr);
        }
    }

    /// Backward from the pooled feature gradient (`1 × d_model`).
    pub fn backward(
        &self,
        ps: &ParamSet,
        cache: &TransformerCache,
        d_pooled: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        let dh = self.backward_to_embed(ps, cache, d_pooled, grads);
        // Positional encodings are constants: gradient passes through.
        self.embed.backward(ps, &cache.c_embed, &dh, grads)
    }

    /// [`TransformerEncoder::backward`] minus the input gradient: the
    /// embedding's `dx = dh Wᵀ` — the largest transposed product in the
    /// net — feeds nothing when the encoder is a network's first layer,
    /// so callers that discard it skip it here. Parameter gradients are
    /// bit-identical to the full backward.
    pub fn backward_params_only(
        &self,
        ps: &ParamSet,
        cache: &TransformerCache,
        d_pooled: &Matrix,
        grads: &mut Grads,
    ) {
        let dh = self.backward_to_embed(ps, cache, d_pooled, grads);
        self.embed.backward_params(&cache.c_embed, &dh, grads);
    }

    /// Shared spine of the two backward entry points: pooled-gradient
    /// spread plus the encoder-layer chain, stopping just before the
    /// embedding.
    fn backward_to_embed(
        &self,
        ps: &ParamSet,
        cache: &TransformerCache,
        d_pooled: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        // Mean pooling spreads the gradient evenly over sequence rows.
        let seq = cache.seq;
        let scale = 1.0 / seq as f32;
        let mut dh = Matrix::from_fn(seq, self.cfg.d_model, |_, c| d_pooled.get(0, c) * scale);
        for (layer, c) in self.layers.iter().zip(&cache.c_layers).rev() {
            dh = layer.backward(ps, c, &dh, grads);
        }
        dh
    }

    /// Training encode over a row-stacked batch: `xs` stacks `batch`
    /// independent `seq × input_dim` state matrices, row `b` of the
    /// `batch × d_model` output receives block `b`'s pooled feature, and
    /// `cache` is filled for [`TransformerEncoder::backward_batch`]. The
    /// embedding runs as one matmul over the whole stack; per block the
    /// arithmetic is bit-identical to [`TransformerEncoder::forward`].
    pub fn forward_batch_train(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        batch: usize,
        out: &mut Matrix,
        cache: &mut TransformerBatchCache,
        scratch: &mut Scratch,
    ) {
        let seq = self.batch_seq(xs, batch);
        cache.seq = seq;
        cache.batch = batch;
        cache
            .c_layers
            .resize_with(self.layers.len(), EncoderLayerBatchCache::default);
        let mut h = scratch.take(xs.rows(), self.cfg.d_model);
        self.embed.forward_into(ps, xs, &mut h);
        // e + positional encoding, pos row index restarting per block —
        // the same element order as `forward` / `encode_embedded`.
        for blk in 0..batch {
            for r in 0..seq {
                for (hv, &pv) in h.row_mut(blk * seq + r).iter_mut().zip(self.pos.row(r)) {
                    *hv += pv;
                }
            }
        }
        let mut next = scratch.take(h.rows(), self.cfg.d_model);
        for (layer, c) in self.layers.iter().zip(cache.c_layers.iter_mut()) {
            layer.forward_batch_cache(ps, &h, batch, &mut next, c, scratch);
            std::mem::swap(&mut h, &mut next);
        }
        // Per-block mean pooling with the exact `mean_rows` arithmetic.
        out.reset(batch, self.cfg.d_model);
        for blk in 0..batch {
            let orow = out.row_mut(blk);
            for r in 0..seq {
                for (o, &v) in orow.iter_mut().zip(h.row(blk * seq + r)) {
                    *o += v;
                }
            }
            let inv = 1.0 / seq.max(1) as f32;
            for o in orow.iter_mut() {
                *o *= inv;
            }
        }
        scratch.give(next);
        scratch.give(h);
    }

    /// Batched backward for [`TransformerEncoder::forward_batch_train`]:
    /// `d_pooled` is `batch × d_model` (one pooled-feature gradient row
    /// per block), `xs` is the same stacked input the forward saw, and
    /// block `b`'s parameter gradients go to `sink.grads_for(b)` in
    /// ascending block order per parameter. `dx` receives the stacked
    /// input gradient.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch(
        &self,
        ps: &ParamSet,
        cache: &TransformerBatchCache,
        xs: &Matrix,
        d_pooled: &Matrix,
        sink: &mut GradSink<'_>,
        dx: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        self.backward_batch_inner(ps, cache, xs, d_pooled, sink, Some(dx), scratch);
    }

    /// [`TransformerEncoder::backward_batch`] minus the stacked input
    /// gradient (see [`TransformerEncoder::backward_params_only`]).
    /// Per-block parameter gradients are bit-identical to the full
    /// batched backward.
    pub fn backward_batch_params(
        &self,
        ps: &ParamSet,
        cache: &TransformerBatchCache,
        xs: &Matrix,
        d_pooled: &Matrix,
        sink: &mut GradSink<'_>,
        scratch: &mut Scratch,
    ) {
        self.backward_batch_inner(ps, cache, xs, d_pooled, sink, None, scratch);
    }

    #[allow(clippy::too_many_arguments)]
    fn backward_batch_inner(
        &self,
        ps: &ParamSet,
        cache: &TransformerBatchCache,
        xs: &Matrix,
        d_pooled: &Matrix,
        sink: &mut GradSink<'_>,
        dx: Option<&mut Matrix>,
        scratch: &mut Scratch,
    ) {
        let (seq, batch) = (cache.seq, cache.batch);
        assert_eq!(d_pooled.rows(), batch, "one pooled gradient row per block");
        assert_eq!(xs.rows(), seq * batch, "stacked input mismatch");
        let rows = seq * batch;
        // Mean pooling spreads each block's gradient evenly over its
        // rows — the exact `d_pooled · (1/seq)` product of `backward`.
        let scale = 1.0 / seq as f32;
        let mut dh = scratch.take(rows, self.cfg.d_model);
        for blk in 0..batch {
            let drow = d_pooled.row(blk);
            for r in 0..seq {
                for (o, &g) in dh.row_mut(blk * seq + r).iter_mut().zip(drow) {
                    *o = g * scale;
                }
            }
        }
        let mut next = scratch.take(rows, self.cfg.d_model);
        for (layer, c) in self.layers.iter().zip(cache.c_layers.iter()).rev() {
            layer.backward_batch(ps, c, &dh, batch, sink, &mut next, scratch);
            std::mem::swap(&mut dh, &mut next);
        }
        match dx {
            Some(dx) => self
                .embed
                .backward_batch(ps, xs, &dh, batch, sink, dx, scratch),
            None => self
                .embed
                .backward_batch_params(xs, &dh, batch, sink, scratch),
        }
        scratch.give(next);
        scratch.give(dh);
    }
}

/// Standard sinusoidal positional encodings.
pub fn positional_encoding(seq_len: usize, d_model: usize) -> Matrix {
    Matrix::from_fn(seq_len, d_model, |pos, i| {
        let exponent = (2 * (i / 2)) as f32 / d_model as f32;
        let rate = 1.0 / 10_000f32.powf(exponent);
        let angle = pos as f32 * rate;
        if i % 2 == 0 {
            angle.sin()
        } else {
            angle.cos()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TransformerConfig {
        TransformerConfig {
            input_dim: 5,
            seq_len: 4,
            d_model: 8,
            heads: 2,
            layers: 2,
            ff_mult: 2,
        }
    }

    #[test]
    fn forward_produces_pooled_feature() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(&mut ps, "t", tiny(), &mut rng);
        let x = Matrix::xavier(4, 5, &mut rng);
        let (y, _) = enc.forward(&ps, &x);
        assert_eq!(y.shape(), (1, 8));
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn positional_encoding_distinguishes_positions() {
        let pe = positional_encoding(10, 8);
        assert_eq!(pe.shape(), (10, 8));
        // Different positions get different encodings.
        assert_ne!(pe.row(0), pe.row(5));
        // All values bounded by 1.
        assert!(pe.data().iter().all(|v| v.abs() <= 1.0));
        // pos 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        assert_eq!(pe.get(0, 0), 0.0);
        assert_eq!(pe.get(0, 1), 1.0);
    }

    #[test]
    fn attention_mixes_information_across_rows() {
        // Changing one input row must change the pooled output (attention
        // propagates it), unlike a row-local model.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TransformerEncoder::new(&mut ps, "t", tiny(), &mut rng);
        let x = Matrix::xavier(4, 5, &mut rng);
        let (y1, _) = enc.forward(&ps, &x);
        let mut x2 = x.clone();
        x2.set(3, 2, x2.get(3, 2) + 1.0);
        let (y2, _) = enc.forward(&ps, &x2);
        let diff: f32 = y1.sub(&y2).norm();
        assert!(diff > 1e-6, "pooled output insensitive to input change");
    }

    #[test]
    fn full_gradcheck_through_the_stack() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TransformerConfig {
            input_dim: 3,
            seq_len: 3,
            d_model: 4,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        };
        let enc = TransformerEncoder::new(&mut ps, "t", cfg, &mut rng);
        let x = Matrix::xavier(3, 3, &mut rng);
        let wv: Vec<f32> = (0..4).map(|i| (i as f32 + 1.0) * 0.3).collect();
        let weights = Matrix::row_vector(wv);
        let loss = |ps: &ParamSet| enc.forward(ps, &x).0.hadamard(&weights).sum();
        let (_, cache) = enc.forward(&ps, &x);
        let mut grads = Grads::new(&ps);
        enc.backward(&ps, &cache, &weights, &mut grads);
        // Check every parameter in the model.
        let ids: Vec<_> = ps.iter().map(|(id, _)| id).collect();
        check_gradients(&mut ps, &ids, loss, &grads, 1e-2, 4e-2).unwrap();
    }

    #[test]
    fn shorter_sequences_are_accepted() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TransformerEncoder::new(&mut ps, "t", tiny(), &mut rng);
        let x = Matrix::xavier(2, 5, &mut rng); // seq 2 < configured 4
        let (y, cache) = enc.forward(&ps, &x);
        assert_eq!(y.shape(), (1, 8));
        let mut grads = Grads::new(&ps);
        let d = Matrix::full(1, 8, 1.0);
        let dx = enc.backward(&ps, &cache, &d, &mut grads);
        assert_eq!(dx.shape(), (2, 5));
    }

    #[test]
    #[should_panic(expected = "sequence longer")]
    fn oversized_sequence_panics() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TransformerEncoder::new(&mut ps, "t", tiny(), &mut rng);
        let x = Matrix::xavier(9, 5, &mut rng);
        let _ = enc.forward(&ps, &x);
    }
}
