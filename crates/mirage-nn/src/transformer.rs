//! Transformer encoder (pre-LN) — the paper's foundation model (§4.6).
//!
//! The encoder consumes the `k × m` state matrix of §4.2 as a sequence of
//! `k` snapshot rows: each row is embedded to `d_model`, sinusoidal
//! positional encodings are added, the stack of encoder layers mixes
//! history with multi-head self-attention, and mean-pooling produces the
//! `1 × d_model` feature the V-head / P-head decision layers consume.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::activation::{Activation, ActivationCache};
use crate::attention::{AttentionCache, MultiHeadAttention};
use crate::layernorm::{LayerNorm, LayerNormCache};
use crate::linear::{Linear, LinearCache};
use crate::param::{Grads, ParamSet};
use crate::scratch::Scratch;
use crate::tensor::Matrix;

/// Transformer encoder hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Width of one input snapshot row (`m`, 40 in the paper).
    pub input_dim: usize,
    /// History length in snapshots (`k`, 144 in the paper).
    pub seq_len: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads per layer.
    pub heads: usize,
    /// Encoder layer count.
    pub layers: usize,
    /// Feed-forward expansion factor (`d_ff = ff_mult × d_model`).
    pub ff_mult: usize,
}

impl TransformerConfig {
    /// Small defaults used by the experiment harness (DESIGN.md §3,
    /// substitution 3): k = 24 rows of m = 40 variables, d_model = 32.
    pub fn small(input_dim: usize, seq_len: usize) -> Self {
        Self {
            input_dim,
            seq_len,
            d_model: 32,
            heads: 4,
            layers: 2,
            ff_mult: 2,
        }
    }
}

/// One pre-LN encoder layer:
/// `h = x + MHSA(LN1(x))`; `y = h + FFN(LN2(h))`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncoderLayer {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    act: Activation,
}

/// Cache of one encoder layer.
#[derive(Debug, Clone)]
pub struct EncoderLayerCache {
    c_ln1: LayerNormCache,
    c_attn: AttentionCache,
    c_ln2: LayerNormCache,
    c_ff1: LinearCache,
    c_act: ActivationCache,
    c_ff2: LinearCache,
}

impl EncoderLayer {
    fn new(ps: &mut ParamSet, name: &str, cfg: &TransformerConfig, rng: &mut impl Rng) -> Self {
        let d = cfg.d_model;
        let d_ff = cfg.ff_mult * d;
        Self {
            ln1: LayerNorm::new(ps, &format!("{name}.ln1"), d),
            attn: MultiHeadAttention::new(ps, &format!("{name}.attn"), d, cfg.heads, rng),
            ln2: LayerNorm::new(ps, &format!("{name}.ln2"), d),
            ff1: Linear::new(ps, &format!("{name}.ff1"), d, d_ff, rng),
            ff2: Linear::new(ps, &format!("{name}.ff2"), d_ff, d, rng),
            act: Activation::Gelu,
        }
    }

    fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, EncoderLayerCache) {
        let (n1, c_ln1) = self.ln1.forward(ps, x);
        let (a, c_attn) = self.attn.forward(ps, &n1);
        let h = x.add(&a);
        let (n2, c_ln2) = self.ln2.forward(ps, &h);
        let (f1, c_ff1) = self.ff1.forward(ps, &n2);
        let (g, c_act) = self.act.forward(&f1);
        let (f2, c_ff2) = self.ff2.forward(ps, &g);
        let y = h.add(&f2);
        (
            y,
            EncoderLayerCache {
                c_ln1,
                c_attn,
                c_ln2,
                c_ff1,
                c_act,
                c_ff2,
            },
        )
    }

    /// Inference-only layer forward into `out`, temporaries from
    /// `scratch`. Bit-identical to [`EncoderLayer::forward`].
    fn forward_into(&self, ps: &ParamSet, x: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        let (seq, d) = x.shape();
        let mut n1 = scratch.take(seq, d);
        self.ln1.forward_into(ps, x, &mut n1);
        let mut a = scratch.take(seq, d);
        self.attn.forward_into(ps, &n1, &mut a, scratch);
        // h = x + a
        let mut h = scratch.take(seq, d);
        h.copy_from(x);
        h.add_assign(&a);
        let mut n2 = scratch.take(seq, d);
        self.ln2.forward_into(ps, &h, &mut n2);
        let mut f1 = scratch.take(seq, self.ff1.out_dim);
        self.ff1.forward_into(ps, &n2, &mut f1);
        self.act.apply_in_place(&mut f1);
        // y = h + FFN(…): ff2 lands in `out`, then the residual is added
        // via a borrowed buffer so the operand order matches `h.add(&f2)`.
        self.ff2.forward_into(ps, &f1, out);
        let mut y = scratch.take(0, 0);
        y.copy_from(&h);
        y.add_assign(out);
        std::mem::swap(&mut y, out);
        scratch.give(y);
        scratch.give(f1);
        scratch.give(n2);
        scratch.give(h);
        scratch.give(a);
        scratch.give(n1);
    }

    fn backward(
        &self,
        ps: &ParamSet,
        cache: &EncoderLayerCache,
        dy: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        // y = h + FFN(LN2(h)) → dh = dy + LN2ᵀ(FFNᵀ(dy)).
        let d_f2 = self.ff2.backward(ps, &cache.c_ff2, dy, grads);
        let d_g = self.act.backward(&cache.c_act, &d_f2);
        let d_n2 = self.ff1.backward(ps, &cache.c_ff1, &d_g, grads);
        let d_h_ffn = self.ln2.backward(ps, &cache.c_ln2, &d_n2, grads);
        let dh = dy.add(&d_h_ffn);
        // h = x + MHSA(LN1(x)) → dx = dh + LN1ᵀ(MHSAᵀ(dh)).
        let d_a = self.attn.backward(ps, &cache.c_attn, &dh, grads);
        let d_x_attn = self.ln1.backward(ps, &cache.c_ln1, &d_a, grads);
        dh.add(&d_x_attn)
    }
}

/// Full encoder: row embedding + positional encoding + layer stack +
/// mean pooling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerEncoder {
    /// Hyperparameters.
    pub cfg: TransformerConfig,
    embed: Linear,
    layers: Vec<EncoderLayer>,
    /// Precomputed sinusoidal positional encodings (`seq_len × d_model`).
    pos: Matrix,
}

/// Encoder cache.
#[derive(Debug, Clone)]
pub struct TransformerCache {
    c_embed: LinearCache,
    c_layers: Vec<EncoderLayerCache>,
    seq: usize,
}

impl TransformerEncoder {
    /// Allocates all encoder parameters in `ps`.
    pub fn new(ps: &mut ParamSet, name: &str, cfg: TransformerConfig, rng: &mut impl Rng) -> Self {
        let embed = Linear::new(
            ps,
            &format!("{name}.embed"),
            cfg.input_dim,
            cfg.d_model,
            rng,
        );
        let layers = (0..cfg.layers)
            .map(|l| EncoderLayer::new(ps, &format!("{name}.layer{l}"), &cfg, rng))
            .collect();
        let pos = positional_encoding(cfg.seq_len, cfg.d_model);
        Self {
            cfg,
            embed,
            layers,
            pos,
        }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.cfg.d_model
    }

    /// Handle of the row-embedding weight (used by tests and diagnostics to
    /// check which parts of a model received gradients).
    pub fn embed_w(&self) -> crate::param::ParamId {
        self.embed.w
    }

    /// Encodes a `seq × input_dim` state matrix into a pooled `1 × d_model`
    /// feature row.
    pub fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, TransformerCache) {
        assert_eq!(x.cols(), self.cfg.input_dim, "state row width mismatch");
        assert!(
            x.rows() <= self.cfg.seq_len,
            "sequence longer than configured"
        );
        let (e, c_embed) = self.embed.forward(ps, x);
        let mut h = Matrix::from_fn(e.rows(), e.cols(), |r, c| e.get(r, c) + self.pos.get(r, c));
        let mut c_layers = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (next, c) = layer.forward(ps, &h);
            h = next;
            c_layers.push(c);
        }
        let pooled = h.mean_rows();
        (
            pooled,
            TransformerCache {
                c_embed,
                c_layers,
                seq: x.rows(),
            },
        )
    }

    /// Inference-only encode into a caller-provided `1 × d_model` buffer,
    /// with every temporary drawn from `scratch`: no cache, no allocation
    /// once the arena is warm. Bit-identical to
    /// [`TransformerEncoder::forward`].
    pub fn forward_into(&self, ps: &ParamSet, x: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        assert_eq!(x.cols(), self.cfg.input_dim, "state row width mismatch");
        assert!(
            x.rows() <= self.cfg.seq_len,
            "sequence longer than configured"
        );
        let mut h = scratch.take(x.rows(), self.cfg.d_model);
        self.embed.forward_into(ps, x, &mut h);
        // e + positional encoding, in the same element order as `forward`.
        for r in 0..h.rows() {
            for (hv, &pv) in h.row_mut(r).iter_mut().zip(self.pos.row(r)) {
                *hv += pv;
            }
        }
        let mut next = scratch.take(x.rows(), self.cfg.d_model);
        for layer in &self.layers {
            layer.forward_into(ps, &h, &mut next, scratch);
            std::mem::swap(&mut h, &mut next);
        }
        h.mean_rows_into(out);
        scratch.give(next);
        scratch.give(h);
    }

    /// Backward from the pooled feature gradient (`1 × d_model`).
    pub fn backward(
        &self,
        ps: &ParamSet,
        cache: &TransformerCache,
        d_pooled: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        // Mean pooling spreads the gradient evenly over sequence rows.
        let seq = cache.seq;
        let scale = 1.0 / seq as f32;
        let mut dh = Matrix::from_fn(seq, self.cfg.d_model, |_, c| d_pooled.get(0, c) * scale);
        for (layer, c) in self.layers.iter().zip(&cache.c_layers).rev() {
            dh = layer.backward(ps, c, &dh, grads);
        }
        // Positional encodings are constants: gradient passes through.
        self.embed.backward(ps, &cache.c_embed, &dh, grads)
    }
}

/// Standard sinusoidal positional encodings.
pub fn positional_encoding(seq_len: usize, d_model: usize) -> Matrix {
    Matrix::from_fn(seq_len, d_model, |pos, i| {
        let exponent = (2 * (i / 2)) as f32 / d_model as f32;
        let rate = 1.0 / 10_000f32.powf(exponent);
        let angle = pos as f32 * rate;
        if i % 2 == 0 {
            angle.sin()
        } else {
            angle.cos()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TransformerConfig {
        TransformerConfig {
            input_dim: 5,
            seq_len: 4,
            d_model: 8,
            heads: 2,
            layers: 2,
            ff_mult: 2,
        }
    }

    #[test]
    fn forward_produces_pooled_feature() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let enc = TransformerEncoder::new(&mut ps, "t", tiny(), &mut rng);
        let x = Matrix::xavier(4, 5, &mut rng);
        let (y, _) = enc.forward(&ps, &x);
        assert_eq!(y.shape(), (1, 8));
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn positional_encoding_distinguishes_positions() {
        let pe = positional_encoding(10, 8);
        assert_eq!(pe.shape(), (10, 8));
        // Different positions get different encodings.
        assert_ne!(pe.row(0), pe.row(5));
        // All values bounded by 1.
        assert!(pe.data().iter().all(|v| v.abs() <= 1.0));
        // pos 0: sin(0)=0 on even dims, cos(0)=1 on odd dims.
        assert_eq!(pe.get(0, 0), 0.0);
        assert_eq!(pe.get(0, 1), 1.0);
    }

    #[test]
    fn attention_mixes_information_across_rows() {
        // Changing one input row must change the pooled output (attention
        // propagates it), unlike a row-local model.
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let enc = TransformerEncoder::new(&mut ps, "t", tiny(), &mut rng);
        let x = Matrix::xavier(4, 5, &mut rng);
        let (y1, _) = enc.forward(&ps, &x);
        let mut x2 = x.clone();
        x2.set(3, 2, x2.get(3, 2) + 1.0);
        let (y2, _) = enc.forward(&ps, &x2);
        let diff: f32 = y1.sub(&y2).norm();
        assert!(diff > 1e-6, "pooled output insensitive to input change");
    }

    #[test]
    fn full_gradcheck_through_the_stack() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = TransformerConfig {
            input_dim: 3,
            seq_len: 3,
            d_model: 4,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        };
        let enc = TransformerEncoder::new(&mut ps, "t", cfg, &mut rng);
        let x = Matrix::xavier(3, 3, &mut rng);
        let wv: Vec<f32> = (0..4).map(|i| (i as f32 + 1.0) * 0.3).collect();
        let weights = Matrix::row_vector(wv);
        let loss = |ps: &ParamSet| enc.forward(ps, &x).0.hadamard(&weights).sum();
        let (_, cache) = enc.forward(&ps, &x);
        let mut grads = Grads::new(&ps);
        enc.backward(&ps, &cache, &weights, &mut grads);
        // Check every parameter in the model.
        let ids: Vec<_> = ps.iter().map(|(id, _)| id).collect();
        check_gradients(&mut ps, &ids, loss, &grads, 1e-2, 4e-2).unwrap();
    }

    #[test]
    fn shorter_sequences_are_accepted() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let enc = TransformerEncoder::new(&mut ps, "t", tiny(), &mut rng);
        let x = Matrix::xavier(2, 5, &mut rng); // seq 2 < configured 4
        let (y, cache) = enc.forward(&ps, &x);
        assert_eq!(y.shape(), (1, 8));
        let mut grads = Grads::new(&ps);
        let d = Matrix::full(1, 8, 1.0);
        let dx = enc.backward(&ps, &cache, &d, &mut grads);
        assert_eq!(dx.shape(), (2, 5));
    }

    #[test]
    #[should_panic(expected = "sequence longer")]
    fn oversized_sequence_panics() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = TransformerEncoder::new(&mut ps, "t", tiny(), &mut rng);
        let x = Matrix::xavier(9, 5, &mut rng);
        let _ = enc.forward(&ps, &x);
    }
}
