//! Parameter storage and gradient accumulation.
//!
//! Modules are *stateless*: they hold [`ParamId`] handles into a shared
//! [`ParamSet`] and thread explicit caches between `forward` and
//! `backward`. That makes data-parallel training trivial — many threads
//! run forward/backward against `&ParamSet` and produce private [`Grads`]
//! that are then merged — and it keeps optimizer state (Adam moments)
//! aligned with parameters by index.

use serde::{Deserialize, Serialize};

use crate::tensor::Matrix;

/// Handle to one parameter matrix inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// Flat store of named parameter matrices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamSet {
    params: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamSet {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn alloc(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.params.push(value);
        self.names.push(name.into());
        ParamId(self.params.len() - 1)
    }

    /// Parameter by handle.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.params[id.0]
    }

    /// Mutable parameter by handle.
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0]
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count (for model-size reporting).
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Iterates over `(id, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.params.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }

    /// Applies `update(param, grad)` for every parameter with a gradient.
    pub fn apply_grads(&mut self, grads: &Grads, mut update: impl FnMut(&mut Matrix, &Matrix)) {
        for (i, g) in grads.iter() {
            update(&mut self.params[i.0], g);
        }
    }
}

/// Gradient accumulator parallel to a [`ParamSet`].
///
/// Entries are lazily allocated: untouched parameters cost nothing, which
/// matters when only a head is being trained on top of a frozen foundation.
#[derive(Debug, Clone, Default)]
pub struct Grads {
    grads: Vec<Option<Matrix>>,
}

impl Grads {
    /// Empty accumulator sized for `params`.
    pub fn new(params: &ParamSet) -> Self {
        Self {
            grads: vec![None; params.len()],
        }
    }

    /// Accumulates `g` into the gradient of `id`.
    pub fn accumulate(&mut self, id: ParamId, g: Matrix) {
        match &mut self.grads[id.0] {
            Some(existing) => existing.add_assign(&g),
            slot => *slot = Some(g),
        }
    }

    /// Gradient of `id`, if any has been accumulated.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        self.grads[id.0].as_ref()
    }

    /// Merges another accumulator into this one (summing).
    pub fn merge(&mut self, other: Grads) {
        assert_eq!(self.grads.len(), other.grads.len(), "grads size mismatch");
        for (mine, theirs) in self.grads.iter_mut().zip(other.grads) {
            match (mine.as_mut(), theirs) {
                (Some(m), Some(t)) => m.add_assign(&t),
                (None, Some(t)) => *mine = Some(t),
                _ => {}
            }
        }
    }

    /// Scales every gradient by `alpha` (e.g. 1/batch for averaging).
    pub fn scale(&mut self, alpha: f32) {
        for g in self.grads.iter_mut().flatten() {
            *g = g.scale(alpha);
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.grads
            .iter()
            .flatten()
            .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clips the global norm to `max_norm` (no-op if already within).
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }

    /// Iterates over accumulated `(id, grad)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (ParamId(i), g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_lookup() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("w", Matrix::full(2, 2, 1.0));
        let b = ps.alloc("b", Matrix::zeros(1, 2));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.name(a), "w");
        assert_eq!(ps.name(b), "b");
        assert_eq!(ps.scalar_count(), 6);
        ps.get_mut(b).set(0, 0, 5.0);
        assert_eq!(ps.get(b).get(0, 0), 5.0);
    }

    #[test]
    fn grads_accumulate_and_merge() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::zeros(1, 2));
        let b = ps.alloc("b", Matrix::zeros(1, 2));
        let mut g1 = Grads::new(&ps);
        g1.accumulate(a, Matrix::row_vector(vec![1.0, 2.0]));
        g1.accumulate(a, Matrix::row_vector(vec![1.0, 1.0]));
        let mut g2 = Grads::new(&ps);
        g2.accumulate(a, Matrix::row_vector(vec![1.0, 0.0]));
        g2.accumulate(b, Matrix::row_vector(vec![5.0, 5.0]));
        g1.merge(g2);
        assert_eq!(g1.get(a).unwrap().data(), &[3.0, 3.0]);
        assert_eq!(g1.get(b).unwrap().data(), &[5.0, 5.0]);
    }

    #[test]
    fn untouched_params_have_no_grad() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::zeros(1, 2));
        let b = ps.alloc("b", Matrix::zeros(1, 2));
        let mut g = Grads::new(&ps);
        g.accumulate(a, Matrix::row_vector(vec![1.0, 1.0]));
        assert!(g.get(b).is_none());
        assert_eq!(g.iter().count(), 1);
    }

    #[test]
    fn global_norm_and_clipping() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::zeros(1, 2));
        let mut g = Grads::new(&ps);
        g.accumulate(a, Matrix::row_vector(vec![3.0, 4.0]));
        assert!((g.global_norm() - 5.0).abs() < 1e-6);
        g.clip_global_norm(1.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        // Already-small gradients are untouched.
        let before = g.get(a).unwrap().clone();
        g.clip_global_norm(10.0);
        assert_eq!(g.get(a).unwrap(), &before);
    }

    #[test]
    fn apply_grads_visits_only_touched_params() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::full(1, 2, 1.0));
        let _b = ps.alloc("b", Matrix::full(1, 2, 1.0));
        let mut g = Grads::new(&ps);
        g.accumulate(a, Matrix::row_vector(vec![0.5, 0.5]));
        let mut visits = 0;
        ps.apply_grads(&g, |p, gr| {
            visits += 1;
            p.add_scaled(gr, -1.0);
        });
        assert_eq!(visits, 1);
        assert_eq!(ps.get(a).data(), &[0.5, 0.5]);
    }
}
