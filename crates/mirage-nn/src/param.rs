//! Parameter storage and gradient accumulation.
//!
//! Modules are *stateless*: they hold [`ParamId`] handles into a shared
//! [`ParamSet`] and thread explicit caches between `forward` and
//! `backward`. That makes data-parallel training trivial — many threads
//! run forward/backward against `&ParamSet` and produce private [`Grads`]
//! that are then merged — and it keeps optimizer state (Adam moments)
//! aligned with parameters by index.

use serde::{Deserialize, Serialize};

use crate::tensor::Matrix;

/// Handle to one parameter matrix inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamId(pub usize);

/// Flat store of named parameter matrices.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamSet {
    params: Vec<Matrix>,
    names: Vec<String>,
}

impl ParamSet {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter and returns its handle.
    pub fn alloc(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.params.push(value);
        self.names.push(name.into());
        ParamId(self.params.len() - 1)
    }

    /// Parameter by handle.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.params[id.0]
    }

    /// Mutable parameter by handle.
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.params[id.0]
    }

    /// Name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Total scalar parameter count (for model-size reporting).
    pub fn scalar_count(&self) -> usize {
        self.params.iter().map(|m| m.rows() * m.cols()).sum()
    }

    /// Iterates over `(id, matrix)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.params.iter().enumerate().map(|(i, m)| (ParamId(i), m))
    }

    /// Applies `update(param, grad)` for every parameter with a gradient.
    pub fn apply_grads(&mut self, grads: &Grads, mut update: impl FnMut(&mut Matrix, &Matrix)) {
        for (i, g) in grads.iter() {
            update(&mut self.params[i.0], g);
        }
    }
}

/// Gradient accumulator parallel to a [`ParamSet`].
///
/// Entries are lazily allocated: untouched parameters cost nothing, which
/// matters when only a head is being trained on top of a frozen foundation.
///
/// Buffers are *retained* across [`Grads::reset`]: a slot keeps its
/// allocation when cleared and the next accumulation copies into it, so a
/// shape-stationary update loop (one `reset` + accumulate + step per
/// mini-batch) stops allocating after the first pass. The first
/// accumulation into a cleared slot is a copy, not a zero-then-add — that
/// keeps `-0.0` contributions bit-identical to a freshly inserted matrix.
#[derive(Debug, Clone, Default)]
pub struct Grads {
    grads: Vec<Option<Matrix>>,
    /// Slots logically filled since the last [`Grads::reset`]. A `Some`
    /// slot with `filled == false` is a parked buffer, not a gradient.
    filled: Vec<bool>,
}

impl Grads {
    /// Empty accumulator sized for `params`.
    pub fn new(params: &ParamSet) -> Self {
        Self {
            grads: vec![None; params.len()],
            filled: vec![false; params.len()],
        }
    }

    /// Clears all gradients while keeping their allocations parked for
    /// reuse. After a reset the accumulator behaves exactly like
    /// [`Grads::new`] — but steady-state accumulation is allocation-free.
    pub fn reset(&mut self) {
        self.filled.fill(false);
    }

    /// Accumulates `g` into the gradient of `id`.
    pub fn accumulate(&mut self, id: ParamId, g: Matrix) {
        if self.filled[id.0] {
            self.grads[id.0]
                .as_mut()
                .expect("filled slot")
                .add_assign(&g);
        } else {
            match &mut self.grads[id.0] {
                Some(parked) => parked.copy_from(&g),
                slot => *slot = Some(g),
            }
            self.filled[id.0] = true;
        }
    }

    /// Borrowing variant of [`Grads::accumulate`]: same arithmetic, no
    /// buffer handoff, so warm slots never allocate.
    pub fn accumulate_ref(&mut self, id: ParamId, g: &Matrix) {
        if self.filled[id.0] {
            self.grads[id.0]
                .as_mut()
                .expect("filled slot")
                .add_assign(g);
        } else {
            match &mut self.grads[id.0] {
                Some(parked) => parked.copy_from(g),
                slot => *slot = Some(g.clone()),
            }
            self.filled[id.0] = true;
        }
    }

    /// Gradient of `id`, if any has been accumulated.
    pub fn get(&self, id: ParamId) -> Option<&Matrix> {
        if self.filled[id.0] {
            self.grads[id.0].as_ref()
        } else {
            None
        }
    }

    /// Merges another accumulator into this one (summing).
    pub fn merge(&mut self, other: Grads) {
        assert_eq!(self.grads.len(), other.grads.len(), "grads size mismatch");
        for (i, theirs) in other.grads.into_iter().enumerate() {
            if !other.filled[i] {
                continue;
            }
            let t = theirs.expect("filled slot");
            if self.filled[i] {
                self.grads[i].as_mut().expect("filled slot").add_assign(&t);
            } else {
                match &mut self.grads[i] {
                    Some(parked) => parked.copy_from(&t),
                    slot => *slot = Some(t),
                }
                self.filled[i] = true;
            }
        }
    }

    /// Borrowing variant of [`Grads::merge`] (summing; `other` is left
    /// untouched, so a reduction can fold the same shard set repeatedly).
    pub fn merge_ref(&mut self, other: &Grads) {
        assert_eq!(self.grads.len(), other.grads.len(), "grads size mismatch");
        for (i, g) in other.iter().map(|(id, g)| (id.0, g)) {
            if self.filled[i] {
                self.grads[i].as_mut().expect("filled slot").add_assign(g);
            } else {
                match &mut self.grads[i] {
                    Some(parked) => parked.copy_from(g),
                    slot => *slot = Some(g.clone()),
                }
                self.filled[i] = true;
            }
        }
    }

    /// Scales every gradient by `alpha` (e.g. 1/batch for averaging).
    pub fn scale(&mut self, alpha: f32) {
        for (i, g) in self.grads.iter_mut().enumerate() {
            if self.filled[i] {
                g.as_mut().expect("filled slot").scale_in_place(alpha);
            }
        }
    }

    /// Global L2 norm across all gradients.
    pub fn global_norm(&self) -> f32 {
        self.iter()
            .map(|(_, g)| g.data().iter().map(|v| v * v).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clips the global norm to `max_norm` (no-op if already within).
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }

    /// Iterates over accumulated `(id, grad)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Matrix)> {
        self.grads.iter().enumerate().filter_map(|(i, g)| {
            if self.filled[i] {
                g.as_ref().map(|g| (ParamId(i), g))
            } else {
                None
            }
        })
    }
}

/// Destination for the per-block gradient contributions a `backward_batch`
/// pass produces.
///
/// Every batched backward walks its row-stacked blocks in ascending order
/// and hands each block's parameter contributions to the sink:
///
/// * [`GradSink::Fused`] folds all blocks into one accumulator — because
///   blocks arrive ascending, the per-parameter addition chains are
///   *flat* sums in block order, bit-identical to running the sequential
///   per-sample backward and accumulating into the same `Grads`.
/// * [`GradSink::PerBlock`] keeps one accumulator per block (slice length
///   must be ≥ the block count). A coordinator can then fold the blocks
///   in any grouping it needs — e.g. a deterministic all-reduce across
///   training workers that stays bit-identical to the single-worker fold.
#[derive(Debug)]
pub enum GradSink<'a> {
    /// All blocks fold into one shared accumulator (ascending order).
    Fused(&'a mut Grads),
    /// Block `b` accumulates into the `b`-th `Grads`.
    PerBlock(&'a mut [Grads]),
}

impl GradSink<'_> {
    /// The accumulator block `b`'s contributions belong to.
    #[inline]
    pub fn grads_for(&mut self, block: usize) -> &mut Grads {
        match self {
            GradSink::Fused(g) => g,
            GradSink::PerBlock(gs) => &mut gs[block],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_lookup() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("w", Matrix::full(2, 2, 1.0));
        let b = ps.alloc("b", Matrix::zeros(1, 2));
        assert_eq!(ps.len(), 2);
        assert_eq!(ps.name(a), "w");
        assert_eq!(ps.name(b), "b");
        assert_eq!(ps.scalar_count(), 6);
        ps.get_mut(b).set(0, 0, 5.0);
        assert_eq!(ps.get(b).get(0, 0), 5.0);
    }

    #[test]
    fn grads_accumulate_and_merge() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::zeros(1, 2));
        let b = ps.alloc("b", Matrix::zeros(1, 2));
        let mut g1 = Grads::new(&ps);
        g1.accumulate(a, Matrix::row_vector(vec![1.0, 2.0]));
        g1.accumulate(a, Matrix::row_vector(vec![1.0, 1.0]));
        let mut g2 = Grads::new(&ps);
        g2.accumulate(a, Matrix::row_vector(vec![1.0, 0.0]));
        g2.accumulate(b, Matrix::row_vector(vec![5.0, 5.0]));
        g1.merge(g2);
        assert_eq!(g1.get(a).unwrap().data(), &[3.0, 3.0]);
        assert_eq!(g1.get(b).unwrap().data(), &[5.0, 5.0]);
    }

    #[test]
    fn untouched_params_have_no_grad() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::zeros(1, 2));
        let b = ps.alloc("b", Matrix::zeros(1, 2));
        let mut g = Grads::new(&ps);
        g.accumulate(a, Matrix::row_vector(vec![1.0, 1.0]));
        assert!(g.get(b).is_none());
        assert_eq!(g.iter().count(), 1);
    }

    #[test]
    fn global_norm_and_clipping() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::zeros(1, 2));
        let mut g = Grads::new(&ps);
        g.accumulate(a, Matrix::row_vector(vec![3.0, 4.0]));
        assert!((g.global_norm() - 5.0).abs() < 1e-6);
        g.clip_global_norm(1.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        // Already-small gradients are untouched.
        let before = g.get(a).unwrap().clone();
        g.clip_global_norm(10.0);
        assert_eq!(g.get(a).unwrap(), &before);
    }

    #[test]
    fn apply_grads_visits_only_touched_params() {
        let mut ps = ParamSet::new();
        let a = ps.alloc("a", Matrix::full(1, 2, 1.0));
        let _b = ps.alloc("b", Matrix::full(1, 2, 1.0));
        let mut g = Grads::new(&ps);
        g.accumulate(a, Matrix::row_vector(vec![0.5, 0.5]));
        let mut visits = 0;
        ps.apply_grads(&g, |p, gr| {
            visits += 1;
            p.add_scaled(gr, -1.0);
        });
        assert_eq!(visits, 1);
        assert_eq!(ps.get(a).data(), &[0.5, 0.5]);
    }
}
