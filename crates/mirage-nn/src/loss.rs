//! Loss functions with analytic gradients.

use crate::tensor::{softmax_in_place, Matrix};

/// Mean squared error over all elements. Returns `(loss, d_pred)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = (pred.rows() * pred.cols()) as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Huber loss (smooth L1) with threshold `delta`. Returns `(loss, d_pred)`.
/// Quadratic near zero, linear in the tails — the standard robust choice
/// for TD targets with outlier rewards.
pub fn huber(pred: &Matrix, target: &Matrix, delta: f32) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "huber shape mismatch");
    let n = (pred.rows() * pred.cols()) as f32;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    for i in 0..pred.data().len() {
        let d = pred.data()[i] - target.data()[i];
        if d.abs() <= delta {
            loss += 0.5 * d * d;
            grad.data_mut()[i] = d / n;
        } else {
            loss += delta * (d.abs() - 0.5 * delta);
            grad.data_mut()[i] = delta * d.signum() / n;
        }
    }
    (loss / n, grad)
}

/// Softmax cross-entropy of a `1 × n` logit row against a class index.
/// Returns `(loss, d_logits)`.
pub fn softmax_cross_entropy(logits: &Matrix, target: usize) -> (f32, Matrix) {
    assert_eq!(logits.rows(), 1, "expects a single logit row");
    assert!(target < logits.cols(), "target class out of range");
    let mut probs: Vec<f32> = logits.row(0).to_vec();
    softmax_in_place(&mut probs);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = Matrix::row_vector(probs);
    grad.set(0, target, grad.get(0, target) - 1.0);
    (loss, grad)
}

/// REINFORCE surrogate for one decision: `L = −advantage · log π(a)` where
/// `π = softmax(logits)`. Returns `(loss, d_logits)`.
///
/// The gradient is `advantage · (π − one_hot(a))`, so positive advantages
/// push probability toward the taken action.
pub fn policy_gradient_loss(logits: &Matrix, action: usize, advantage: f32) -> (f32, Matrix) {
    assert_eq!(logits.rows(), 1, "expects a single logit row");
    assert!(action < logits.cols(), "action out of range");
    let mut probs: Vec<f32> = logits.row(0).to_vec();
    softmax_in_place(&mut probs);
    let loss = -advantage * (probs[action].max(1e-12)).ln();
    let mut grad = Matrix::row_vector(probs).scale(advantage);
    grad.set(0, action, grad.get(0, action) - advantage);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_values() {
        let p = Matrix::row_vector(vec![1.0, 2.0]);
        let t = Matrix::row_vector(vec![0.0, 4.0]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - (1.0 + 4.0) / 2.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, -2.0]);
    }

    #[test]
    fn huber_is_quadratic_inside_linear_outside() {
        let p = Matrix::row_vector(vec![0.5, 5.0]);
        let t = Matrix::row_vector(vec![0.0, 0.0]);
        let (_, grad) = huber(&p, &t, 1.0);
        // Inside: d/2 per element (n=2). Outside: δ·sign/2.
        assert!((grad.get(0, 0) - 0.25).abs() < 1e-6);
        assert!((grad.get(0, 1) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn huber_equals_mse_for_small_errors() {
        let p = Matrix::row_vector(vec![0.1, -0.2]);
        let t = Matrix::zeros(1, 2);
        let (hl, _) = huber(&p, &t, 10.0);
        let (ml, _) = mse(&p, &t);
        assert!((hl - ml / 2.0).abs() < 1e-6, "huber = ½·mse inside δ");
    }

    #[test]
    fn cross_entropy_gradient_is_probs_minus_onehot() {
        let logits = Matrix::row_vector(vec![2.0, 0.0, -1.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, 0);
        assert!(loss > 0.0);
        // Gradient sums to zero and is negative only at the target.
        assert!(grad.data().iter().sum::<f32>().abs() < 1e-5);
        assert!(grad.get(0, 0) < 0.0);
        assert!(grad.get(0, 1) > 0.0 && grad.get(0, 2) > 0.0);
    }

    #[test]
    fn cross_entropy_loss_decreases_with_confidence() {
        let unsure = Matrix::row_vector(vec![0.0, 0.0]);
        let confident = Matrix::row_vector(vec![5.0, 0.0]);
        let (l1, _) = softmax_cross_entropy(&unsure, 0);
        let (l2, _) = softmax_cross_entropy(&confident, 0);
        assert!(l2 < l1);
    }

    #[test]
    fn policy_gradient_sign_follows_advantage() {
        let logits = Matrix::row_vector(vec![0.0, 0.0]);
        // Positive advantage: gradient decreases the taken action's logit
        // loss term → d_logit[action] negative (push probability up).
        let (_, g_pos) = policy_gradient_loss(&logits, 1, 2.0);
        assert!(g_pos.get(0, 1) < 0.0);
        assert!(g_pos.get(0, 0) > 0.0);
        // Negative advantage flips the direction.
        let (_, g_neg) = policy_gradient_loss(&logits, 1, -2.0);
        assert!(g_neg.get(0, 1) > 0.0);
    }

    #[test]
    fn zero_advantage_means_zero_gradient() {
        let logits = Matrix::row_vector(vec![0.3, -0.4]);
        let (loss, grad) = policy_gradient_loss(&logits, 0, 0.0);
        assert_eq!(loss, 0.0);
        assert!(grad.data().iter().all(|g| g.abs() < 1e-9));
    }
}
