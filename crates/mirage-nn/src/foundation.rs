//! Foundation-model abstraction: transformer vs MoE-transformer.
//!
//! The paper's dual-head architecture (Fig 5/6) shares one *foundation
//! model* between the V-head and the P-head; the foundation is either a
//! plain transformer encoder or an MoE of transformer experts. This module
//! unifies the two behind one enum so agents are generic over the choice.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::moe::{GatingKind, MoEBatchCache, MoECache, MoEFoundation};
use crate::param::{GradSink, Grads, ParamSet};
use crate::scratch::Scratch;
use crate::tensor::Matrix;
use crate::transformer::{
    EmbedRowCache, TransformerBatchCache, TransformerCache, TransformerConfig, TransformerEncoder,
};

/// Which foundation architecture to build (§6 compares both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FoundationKind {
    /// Single transformer encoder.
    Transformer,
    /// Dense (weighted-average) MoE of transformer experts.
    MoE {
        /// Expert count (10 by default in the paper).
        experts: usize,
    },
    /// Top-1 sparse MoE (kept for the ablation; the paper found it
    /// inferior and omits its results).
    MoETopOne {
        /// Expert count.
        experts: usize,
    },
}

/// A foundation network: maps a `seq × m` state matrix to a `1 × d_model`
/// feature row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FoundationNet {
    /// Plain transformer encoder.
    Transformer(TransformerEncoder),
    /// Mixture-of-experts encoder.
    MoE(MoEFoundation),
}

/// Forward cache of a foundation network.
#[derive(Debug, Clone)]
pub enum FoundationCache {
    /// Transformer cache.
    Transformer(TransformerCache),
    /// MoE cache.
    MoE(MoECache),
}

/// Retained batched-training cache of a foundation network. Construct
/// once with [`FoundationBatchCache::default`] and reuse across updates —
/// the variant is (re)established on every
/// [`FoundationNet::forward_batch_train`] call.
#[derive(Debug, Clone)]
pub enum FoundationBatchCache {
    /// Transformer cache.
    Transformer(TransformerBatchCache),
    /// Dense-MoE cache.
    MoE(MoEBatchCache),
}

impl Default for FoundationBatchCache {
    fn default() -> Self {
        FoundationBatchCache::Transformer(TransformerBatchCache::default())
    }
}

impl FoundationNet {
    /// Builds the chosen architecture, allocating parameters in `ps`.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        kind: FoundationKind,
        cfg: TransformerConfig,
        rng: &mut impl Rng,
    ) -> Self {
        match kind {
            FoundationKind::Transformer => {
                FoundationNet::Transformer(TransformerEncoder::new(ps, name, cfg, rng))
            }
            FoundationKind::MoE { experts } => FoundationNet::MoE(MoEFoundation::new(
                ps,
                name,
                cfg,
                experts,
                GatingKind::Dense,
                rng,
            )),
            FoundationKind::MoETopOne { experts } => FoundationNet::MoE(MoEFoundation::new(
                ps,
                name,
                cfg,
                experts,
                GatingKind::TopOne,
                rng,
            )),
        }
    }

    /// Feature width.
    pub fn out_dim(&self) -> usize {
        match self {
            FoundationNet::Transformer(t) => t.out_dim(),
            FoundationNet::MoE(m) => m.out_dim(),
        }
    }

    /// Encodes a state matrix into a pooled feature row.
    pub fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, FoundationCache) {
        match self {
            FoundationNet::Transformer(t) => {
                let (y, c) = t.forward(ps, x);
                (y, FoundationCache::Transformer(c))
            }
            FoundationNet::MoE(m) => {
                let (y, c) = m.forward(ps, x);
                (y, FoundationCache::MoE(c))
            }
        }
    }

    /// Inference-only encode into a caller-provided `1 × d_model` buffer,
    /// temporaries from `scratch`: no cache, no allocation once the arena
    /// is warm. Bit-identical to [`FoundationNet::forward`].
    pub fn forward_into(&self, ps: &ParamSet, x: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        match self {
            FoundationNet::Transformer(t) => t.forward_into(ps, x, out, scratch),
            FoundationNet::MoE(m) => m.forward_into(ps, x, out, scratch),
        }
    }

    /// Batched inference encode: `xs` row-stacks `batch` state matrices
    /// (uniform sequence length), and row `b` of the `batch × d_model`
    /// output receives episode `b`'s feature. Each output row is
    /// bit-identical to a sequential [`FoundationNet::forward_into`] of
    /// that block; the batching only amortizes the row-local matmuls.
    pub fn forward_batch_into(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        batch: usize,
        out: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        match self {
            FoundationNet::Transformer(t) => t.forward_batch_into(ps, xs, batch, out, scratch),
            FoundationNet::MoE(m) => m.forward_batch_into(ps, xs, batch, out, scratch),
        }
    }

    /// [`FoundationNet::forward_batch_into`] with per-episode
    /// [`EmbedRowCache`]s (`caches.len() == batch`). Transformer
    /// foundations reuse unchanged embed rows across decision ticks; MoE
    /// foundations have no single shared embedding to key on and simply
    /// recompute (the caches are left untouched). Results are
    /// bit-identical to the uncached batch path either way.
    pub fn forward_batch_cached_into(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        batch: usize,
        out: &mut Matrix,
        scratch: &mut Scratch,
        caches: &mut [EmbedRowCache],
    ) {
        match self {
            FoundationNet::Transformer(t) => {
                t.forward_batch_cached_into(ps, xs, batch, out, scratch, caches)
            }
            FoundationNet::MoE(m) => m.forward_batch_into(ps, xs, batch, out, scratch),
        }
    }

    /// Backward from the feature gradient; returns `dx`.
    pub fn backward(
        &self,
        ps: &ParamSet,
        cache: &FoundationCache,
        d_feat: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        match (self, cache) {
            (FoundationNet::Transformer(t), FoundationCache::Transformer(c)) => {
                t.backward(ps, c, d_feat, grads)
            }
            (FoundationNet::MoE(m), FoundationCache::MoE(c)) => m.backward(ps, c, d_feat, grads),
            _ => panic!("foundation cache kind mismatch"),
        }
    }

    /// [`FoundationNet::backward`] for callers that discard `dx`: the
    /// transformer skips its embedding input-gradient product entirely;
    /// MoE (no params-only path) computes and drops it. Parameter
    /// gradients are bit-identical to the full backward.
    pub fn backward_params_only(
        &self,
        ps: &ParamSet,
        cache: &FoundationCache,
        d_feat: &Matrix,
        grads: &mut Grads,
    ) {
        match (self, cache) {
            (FoundationNet::Transformer(t), FoundationCache::Transformer(c)) => {
                t.backward_params_only(ps, c, d_feat, grads)
            }
            (FoundationNet::MoE(m), FoundationCache::MoE(c)) => {
                let _ = m.backward(ps, c, d_feat, grads);
            }
            _ => panic!("foundation cache kind mismatch"),
        }
    }

    /// Whether this foundation has a batched training path. Top-1 MoE
    /// picks a different expert per block, so it keeps the per-sample
    /// training loop; callers should fall back to
    /// [`FoundationNet::forward`]/[`FoundationNet::backward`] when this
    /// returns false.
    pub fn supports_batched_train(&self) -> bool {
        match self {
            FoundationNet::Transformer(_) => true,
            FoundationNet::MoE(m) => m.kind == GatingKind::Dense,
        }
    }

    /// Training encode over a row-stacked batch: row `b` of the
    /// `batch × d_model` output receives block `b`'s pooled feature, and
    /// `cache` is filled for [`FoundationNet::backward_batch`] (its
    /// variant is re-established to match `self` if needed). Per block,
    /// bit-identical to [`FoundationNet::forward`]. Panics when
    /// [`FoundationNet::supports_batched_train`] is false.
    pub fn forward_batch_train(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        batch: usize,
        out: &mut Matrix,
        cache: &mut FoundationBatchCache,
        scratch: &mut Scratch,
    ) {
        match self {
            FoundationNet::Transformer(t) => {
                if !matches!(cache, FoundationBatchCache::Transformer(_)) {
                    *cache = FoundationBatchCache::Transformer(TransformerBatchCache::default());
                }
                let FoundationBatchCache::Transformer(c) = cache else {
                    unreachable!()
                };
                t.forward_batch_train(ps, xs, batch, out, c, scratch);
            }
            FoundationNet::MoE(m) => {
                if !matches!(cache, FoundationBatchCache::MoE(_)) {
                    *cache = FoundationBatchCache::MoE(MoEBatchCache::default());
                }
                let FoundationBatchCache::MoE(c) = cache else {
                    unreachable!()
                };
                m.forward_batch_train(ps, xs, batch, out, c, scratch);
            }
        }
    }

    /// Batched backward for [`FoundationNet::forward_batch_train`]: block
    /// `b`'s parameter gradients go to `sink.grads_for(b)` in ascending
    /// block order per parameter; `dx` receives the stacked input
    /// gradient.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch(
        &self,
        ps: &ParamSet,
        cache: &FoundationBatchCache,
        xs: &Matrix,
        d_pooled: &Matrix,
        sink: &mut GradSink<'_>,
        dx: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        match (self, cache) {
            (FoundationNet::Transformer(t), FoundationBatchCache::Transformer(c)) => {
                t.backward_batch(ps, c, xs, d_pooled, sink, dx, scratch)
            }
            (FoundationNet::MoE(m), FoundationBatchCache::MoE(c)) => {
                m.backward_batch(ps, c, xs, d_pooled, sink, dx, scratch)
            }
            _ => panic!("foundation cache kind mismatch"),
        }
    }

    /// [`FoundationNet::backward_batch`] for callers that discard the
    /// stacked `dx` (see [`FoundationNet::backward_params_only`]). MoE
    /// falls back to the full backward into a scratch buffer. Per-block
    /// parameter gradients are bit-identical to the full batched
    /// backward.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch_params(
        &self,
        ps: &ParamSet,
        cache: &FoundationBatchCache,
        xs: &Matrix,
        d_pooled: &Matrix,
        sink: &mut GradSink<'_>,
        scratch: &mut Scratch,
    ) {
        match (self, cache) {
            (FoundationNet::Transformer(t), FoundationBatchCache::Transformer(c)) => {
                t.backward_batch_params(ps, c, xs, d_pooled, sink, scratch)
            }
            (FoundationNet::MoE(m), FoundationBatchCache::MoE(c)) => {
                let mut dx = scratch.take(0, 0);
                m.backward_batch(ps, c, xs, d_pooled, sink, &mut dx, scratch);
                scratch.give(dx);
            }
            _ => panic!("foundation cache kind mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TransformerConfig {
        TransformerConfig {
            input_dim: 4,
            seq_len: 3,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        }
    }

    #[test]
    fn all_kinds_produce_features() {
        for kind in [
            FoundationKind::Transformer,
            FoundationKind::MoE { experts: 2 },
            FoundationKind::MoETopOne { experts: 2 },
        ] {
            let mut ps = ParamSet::new();
            let mut rng = StdRng::seed_from_u64(0);
            let net = FoundationNet::new(&mut ps, "f", kind, tiny(), &mut rng);
            let x = Matrix::xavier(3, 4, &mut rng);
            let (y, cache) = net.forward(&ps, &x);
            assert_eq!(y.shape(), (1, 8));
            assert_eq!(net.out_dim(), 8);
            let mut grads = Grads::new(&ps);
            let dx = net.backward(&ps, &cache, &Matrix::full(1, 8, 1.0), &mut grads);
            assert_eq!(dx.shape(), (3, 4));
            assert!(grads.iter().count() > 0);
        }
    }

    #[test]
    fn moe_has_more_parameters_than_transformer() {
        let mut ps_t = ParamSet::new();
        let mut ps_m = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let _t = FoundationNet::new(
            &mut ps_t,
            "f",
            FoundationKind::Transformer,
            tiny(),
            &mut rng,
        );
        let _m = FoundationNet::new(
            &mut ps_m,
            "f",
            FoundationKind::MoE { experts: 4 },
            tiny(),
            &mut rng,
        );
        assert!(ps_m.scalar_count() > 3 * ps_t.scalar_count());
    }

    #[test]
    #[should_panic(expected = "cache kind mismatch")]
    fn mismatched_cache_panics() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let t = FoundationNet::new(&mut ps, "t", FoundationKind::Transformer, tiny(), &mut rng);
        let m = FoundationNet::new(
            &mut ps,
            "m",
            FoundationKind::MoE { experts: 2 },
            tiny(),
            &mut rng,
        );
        let x = Matrix::xavier(3, 4, &mut rng);
        let (_, c_moe) = m.forward(&ps, &x);
        let mut grads = Grads::new(&ps);
        let _ = t.backward(&ps, &c_moe, &Matrix::zeros(1, 8), &mut grads);
    }
}
