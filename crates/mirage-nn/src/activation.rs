//! Elementwise activations with exact backward passes.

use serde::{Deserialize, Serialize};

use crate::tensor::Matrix;

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// `max(0, x)`.
    Relu,
    /// Gaussian error linear unit (tanh approximation, as in GPT/BERT).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Pass-through.
    Identity,
}

/// Forward cache: the pre-activation input.
#[derive(Debug, Clone)]
pub struct ActivationCache {
    x: Matrix,
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/π)

/// Branch-free rational `tanh` approximation (the classic 7/6 Padé /
/// Lambert continued-fraction form), saturating to ±1 beyond |x| ≈ 4.97.
///
/// Absolute error stays below ~1e-6 on the rational range and below ~1e-4
/// at the saturation seam — far inside every training tolerance — while
/// vectorizing to a handful of FMAs plus one divide. `libm`'s `tanhf` is
/// the single most expensive operation in a GELU transformer forward;
/// this form is ~5× cheaper and is used consistently by both the forward
/// and the derivative, so gradient checks stay self-consistent.
#[inline]
pub fn fast_tanh(x: f32) -> f32 {
    // Branch-free on purpose: the input clamp keeps the polynomials away
    // from f32 overflow, and the output clamp performs the saturation
    // (the rational form crosses ±1 at |x| ≈ 4.97 and keeps growing), so
    // the whole body vectorizes inside activation loops.
    let x = x.clamp(-20.0, 20.0);
    let x2 = x * x;
    let p = x * (135_135.0 + x2 * (17_325.0 + x2 * (378.0 + x2)));
    let q = 135_135.0 + x2 * (62_370.0 + x2 * (3_150.0 + x2 * 28.0));
    (p / q).clamp(-1.0, 1.0)
}

/// Branch-free `e^x` approximation (Cephes-style `expf`): reduce to
/// `2^n · e^r` with `|r| ≤ ln2/2`, evaluate a degree-6 minimax
/// polynomial for `e^r`, and apply `2^n` exactly through the exponent
/// bits. Relative error stays below ~3e-7 — tighter than f32 matmul
/// noise — and `fast_exp(0) = 1` exactly.
///
/// `libm`'s `expf` dominates the attention softmax the same way `tanhf`
/// dominated GELU before [`fast_tanh`]: one serial call per score.
/// Every step here (clamp, add-magic round, FMA chain, integer scale)
/// vectorizes, so [`crate::tensor::softmax_in_place`] — the one softmax
/// kernel shared by the training and inference paths, which keeps them
/// bit-identical — runs ~5× faster.
#[inline]
#[allow(clippy::excessive_precision)] // Cephes reference constants, kept verbatim
pub fn fast_exp(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    // ln2 split hi/lo so `x − n·ln2` keeps full precision.
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    // 1.5 · 2^23: adding then subtracting rounds to the nearest integer
    // (in f32's round-to-nearest mode) without a scalar `round` call.
    const ROUND_MAGIC: f32 = 12_582_912.0;
    // Clamp keeps 2^n inside normal-float range: e^-87 ≈ 1.6e-38 is the
    // smallest normal scale, e^88 the largest before overflow.
    let x = x.clamp(-87.0, 88.0);
    let n = (x * LOG2E + ROUND_MAGIC) - ROUND_MAGIC;
    let r = (x - n * LN2_HI) - n * LN2_LO;
    let mut p = 1.987_569_1e-4;
    p = p * r + 1.398_199_9e-3;
    p = p * r + 8.333_452e-3;
    p = p * r + 4.166_579_6e-2;
    p = p * r + 1.666_666_5e-1;
    p = p * r + 5.000_000_2e-1;
    let z = p * r * r + r + 1.0;
    let scale = f32::from_bits((((n as i32) + 127) << 23) as u32);
    z * scale
}

impl Activation {
    /// Scalar forward.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Gelu => {
                let inner = GELU_C * (x + 0.044715 * x * x * x);
                0.5 * x * (1.0 + fast_tanh(inner))
            }
            Activation::Tanh => fast_tanh(x),
            Activation::Identity => x,
        }
    }

    /// Scalar derivative at `x` (consistent with the [`fast_tanh`]-based
    /// forward, so finite-difference checks agree).
    #[inline]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Gelu => {
                let u = GELU_C * (x + 0.044715 * x * x * x);
                let t = fast_tanh(u);
                let du = GELU_C * (1.0 + 3.0 * 0.044715 * x * x);
                0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
            }
            Activation::Tanh => {
                let t = fast_tanh(x);
                1.0 - t * t
            }
            Activation::Identity => 1.0,
        }
    }

    /// Matrix forward.
    pub fn forward(self, x: &Matrix) -> (Matrix, ActivationCache) {
        (x.map(|v| self.apply(v)), ActivationCache { x: x.clone() })
    }

    /// In-place matrix forward for the inference path: no cache, no
    /// allocation. Applies the same scalar [`Activation::apply`] as
    /// [`Activation::forward`], so results are bit-identical.
    pub fn apply_in_place(self, x: &mut Matrix) {
        for v in x.data_mut() {
            *v = self.apply(*v);
        }
    }

    /// Matrix backward: `dx = dy ⊙ f′(x)`.
    pub fn backward(self, cache: &ActivationCache, dy: &Matrix) -> Matrix {
        let deriv = cache.x.map(|v| self.derivative(v));
        dy.hadamard(&deriv)
    }

    /// Allocation-free backward into `dx`: each element is the same
    /// `dy · f′(x)` product as [`Activation::backward`], so the result is
    /// bit-identical regardless of how rows are blocked into a batch.
    pub fn backward_into(self, x: &Matrix, dy: &Matrix, dx: &mut Matrix) {
        assert_eq!(x.shape(), dy.shape(), "activation backward shape mismatch");
        dx.reset(x.rows(), x.cols());
        for ((o, &xv), &dv) in dx.data_mut().iter_mut().zip(x.data()).zip(dy.data()) {
            *o = dv * self.derivative(xv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Matrix::row_vector(vec![-1.0, 0.0, 2.0]);
        let (y, _) = Activation::Relu.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0, GELU(large) ≈ identity, GELU(-large) ≈ 0.
        assert_eq!(Activation::Gelu.apply(0.0), 0.0);
        assert!((Activation::Gelu.apply(10.0) - 10.0).abs() < 1e-4);
        assert!(Activation::Gelu.apply(-10.0).abs() < 1e-4);
        // Smooth positive bias near zero: GELU(1) ≈ 0.841.
        assert!((Activation::Gelu.apply(1.0) - 0.841).abs() < 5e-3);
    }

    #[test]
    fn fast_tanh_tracks_libm_tanh() {
        let mut x = -9.0f32;
        while x <= 9.0 {
            let err = (fast_tanh(x) - x.tanh()).abs();
            assert!(err < 2e-4, "fast_tanh({x}) off by {err}");
            x += 0.0137;
        }
        // Exact saturation and sign symmetry.
        assert_eq!(fast_tanh(20.0), 1.0);
        assert_eq!(fast_tanh(-20.0), -1.0);
        assert_eq!(fast_tanh(0.0), 0.0);
        // Monotone across the saturation seam.
        assert!(fast_tanh(4.969) <= fast_tanh(4.971));
    }

    #[test]
    fn fast_exp_tracks_libm_exp() {
        // Relative error under 1e-6 across the softmax-relevant range.
        let mut x = -30.0f32;
        while x <= 30.0 {
            let reference = x.exp();
            let rel = (fast_exp(x) - reference).abs() / reference.max(f32::MIN_POSITIVE);
            assert!(rel < 1e-6, "fast_exp({x}) rel err {rel}");
            x += 0.0173;
        }
        // Exact identity at 0 (softmax of equal logits must be uniform).
        assert_eq!(fast_exp(0.0), 1.0);
        // Saturated tails stay finite and ordered.
        assert!(fast_exp(-100.0) > 0.0 && fast_exp(-100.0) < 1e-37);
        assert!(fast_exp(100.0).is_finite());
        assert!(fast_exp(1.0) > fast_exp(0.999));
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-3f32;
        for act in [
            Activation::Relu,
            Activation::Gelu,
            Activation::Tanh,
            Activation::Identity,
        ] {
            for &x in &[-2.0f32, -0.5, 0.3, 1.7] {
                if act == Activation::Relu && x.abs() < eps {
                    continue; // kink
                }
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x);
                assert!(
                    (numeric - analytic).abs() < 5e-3,
                    "{act:?} at {x}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn matrix_backward_is_elementwise() {
        let x = Matrix::row_vector(vec![-1.0, 2.0]);
        let (_, cache) = Activation::Relu.forward(&x);
        let dy = Matrix::row_vector(vec![3.0, 3.0]);
        let dx = Activation::Relu.backward(&cache, &dy);
        assert_eq!(dx.data(), &[0.0, 3.0]);
    }
}
