//! From-scratch neural-network substrate for the Mirage reproduction.
//!
//! The paper builds its provisioner on PyTorch; this crate provides the
//! equivalent pieces natively in Rust (DESIGN.md §3, substitution 2):
//!
//! * [`tensor::Matrix`] — the dense f32 matrix everything runs on,
//! * [`param`] — parameter store + gradient accumulators (stateless,
//!   thread-parallel-friendly modules),
//! * [`linear`], [`activation`], [`layernorm`], [`attention`] — layers
//!   with manual, finite-difference-checked backward passes,
//! * [`transformer`] — the pre-LN encoder foundation model of §4.6,
//! * [`moe`] — dense and top-1 mixture-of-experts foundations of §4.7,
//! * [`foundation`] — the transformer/MoE abstraction agents build on,
//! * [`optim`] — SGD and Adam,
//! * [`loss`] — MSE/Huber/cross-entropy/REINFORCE surrogates,
//! * [`gradcheck`] — the finite-difference checker used across the tests,
//! * [`serialize`] — crash-safe checkpoints: atomic replace-on-rename
//!   writes, a versioned/checksummed envelope validated on load with
//!   typed errors, and human-inspectable JSON weight payloads.

pub mod activation;
pub mod attention;
pub mod foundation;
pub mod gradcheck;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod moe;
pub mod optim;
pub mod param;
pub mod scratch;
pub mod serialize;
pub mod tensor;
pub mod transformer;

pub use activation::Activation;
pub use attention::MultiHeadAttention;
pub use foundation::{FoundationBatchCache, FoundationCache, FoundationKind, FoundationNet};
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use moe::{GatingKind, MoEFoundation};
pub use optim::{Adam, Optimizer, Sgd};
pub use param::{GradSink, Grads, ParamId, ParamSet};
pub use scratch::Scratch;
pub use serialize::{load_params, save_params, write_atomic, CheckpointError};
pub use tensor::Matrix;
pub use transformer::{EmbedRowCache, TransformerConfig, TransformerEncoder};

/// Convenience imports.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::foundation::{FoundationKind, FoundationNet};
    pub use crate::linear::Linear;
    pub use crate::optim::{Adam, Optimizer, Sgd};
    pub use crate::param::{Grads, ParamId, ParamSet};
    pub use crate::scratch::Scratch;
    pub use crate::tensor::Matrix;
    pub use crate::transformer::{TransformerConfig, TransformerEncoder};
}
