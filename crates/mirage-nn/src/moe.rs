//! Mixture-of-Experts foundation model (§2.4, §4.7 of the paper).
//!
//! `E` expert transformer encoders share an architecture; a softmax gating
//! layer computes per-expert weights from the flattened input (Eq. 7):
//! `G(x) = softmax(x · W)`. Two combination schemes are implemented, as in
//! the paper:
//!
//! * **dense** — the weighted average of all expert outputs (the paper's
//!   default; Top-1 was found inferior but is kept for the ablation),
//! * **top-1 sparse** — only the argmax expert runs, scaled by its gate
//!   weight (cheaper, sparsely activated).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::attention::{softmax_rows_backward, softmax_rows_backward_into};
use crate::linear::{Linear, LinearCache};
use crate::param::{GradSink, Grads, ParamSet};
use crate::scratch::Scratch;
use crate::tensor::Matrix;
use crate::transformer::{
    TransformerBatchCache, TransformerCache, TransformerConfig, TransformerEncoder,
};

/// Expert combination scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GatingKind {
    /// Weighted average of all experts (dense MoE).
    Dense,
    /// Only the highest-gate expert is evaluated (sparse MoE).
    TopOne,
}

/// MoE of transformer experts with a learned softmax gate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MoEFoundation {
    /// Expert encoders (identical architecture, independent parameters).
    pub experts: Vec<TransformerEncoder>,
    /// Gating layer over the flattened state (`seq·m → E`).
    pub gate: Linear,
    /// Combination scheme.
    pub kind: GatingKind,
    cfg: TransformerConfig,
}

/// MoE forward cache.
#[derive(Debug, Clone)]
pub struct MoECache {
    c_gate: LinearCache,
    /// Gate probabilities (`1 × E`).
    gate_probs: Matrix,
    /// Expert outputs and caches; `None` for experts skipped under Top-1.
    expert_out: Vec<Option<(Matrix, TransformerCache)>>,
    x_shape: (usize, usize),
}

/// Retained training cache for a row-stacked batch (dense gating only —
/// Top-1 picks a different expert per block, so its training path stays
/// per-sample). All buffers are reused across calls.
#[derive(Debug, Clone, Default)]
pub struct MoEBatchCache {
    /// Per-block zero-padded flattened states (`batch × seq_len·m`).
    flat: Matrix,
    /// Gate probabilities (`batch × E`).
    gate_probs: Matrix,
    /// One encoder training cache per expert.
    c_experts: Vec<TransformerBatchCache>,
    /// Per-expert pooled features (`batch × d_model` each).
    feats: Vec<Matrix>,
    seq: usize,
    batch: usize,
}

impl MoEFoundation {
    /// Builds `n_experts` expert encoders plus the gate.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        cfg: TransformerConfig,
        n_experts: usize,
        kind: GatingKind,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(n_experts >= 1, "need at least one expert");
        let experts = (0..n_experts)
            .map(|e| TransformerEncoder::new(ps, &format!("{name}.expert{e}"), cfg, rng))
            .collect();
        let gate = Linear::new(
            ps,
            &format!("{name}.gate"),
            cfg.input_dim * cfg.seq_len,
            n_experts,
            rng,
        );
        Self {
            experts,
            gate,
            kind,
            cfg,
        }
    }

    /// Expert count.
    pub fn n_experts(&self) -> usize {
        self.experts.len()
    }

    /// Output feature width (same as each expert's).
    pub fn out_dim(&self) -> usize {
        self.cfg.d_model
    }

    /// Forward over a `seq × input_dim` state matrix.
    pub fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, MoECache) {
        // Gate sees the zero-padded flattened state so short sequences work.
        let flat = flatten_padded(x, self.cfg.seq_len, self.cfg.input_dim);
        let (logits, c_gate) = self.gate.forward(ps, &flat);
        let gate_probs = logits.softmax_rows();

        let mut out = Matrix::zeros(1, self.out_dim());
        let mut expert_out: Vec<Option<(Matrix, TransformerCache)>> =
            (0..self.experts.len()).map(|_| None).collect();
        match self.kind {
            GatingKind::Dense => {
                for (e, expert) in self.experts.iter().enumerate() {
                    let (feat, cache) = expert.forward(ps, x);
                    out.add_scaled(&feat, gate_probs.get(0, e));
                    expert_out[e] = Some((feat, cache));
                }
            }
            GatingKind::TopOne => {
                let best = gate_probs.argmax();
                let (feat, cache) = self.experts[best].forward(ps, x);
                out.add_scaled(&feat, gate_probs.get(0, best));
                expert_out[best] = Some((feat, cache));
            }
        }
        (
            out,
            MoECache {
                c_gate,
                gate_probs,
                expert_out,
                x_shape: x.shape(),
            },
        )
    }

    /// Inference-only forward into a caller-provided `1 × d_model`
    /// buffer, temporaries from `scratch`: no cache, no allocation once
    /// the arena is warm. Bit-identical to [`MoEFoundation::forward`].
    pub fn forward_into(&self, ps: &ParamSet, x: &Matrix, out: &mut Matrix, scratch: &mut Scratch) {
        let mut flat = scratch.take(1, self.cfg.seq_len * self.cfg.input_dim);
        flatten_padded_into(x, self.cfg.input_dim, &mut flat);
        let mut gate_probs = scratch.take(1, self.experts.len());
        self.gate.forward_into(ps, &flat, &mut gate_probs);
        gate_probs.softmax_rows_in_place();

        out.reset(1, self.out_dim());
        let mut feat = scratch.take(1, self.out_dim());
        match self.kind {
            GatingKind::Dense => {
                for (e, expert) in self.experts.iter().enumerate() {
                    expert.forward_into(ps, x, &mut feat, scratch);
                    out.add_scaled(&feat, gate_probs.get(0, e));
                }
            }
            GatingKind::TopOne => {
                let best = gate_probs.argmax();
                self.experts[best].forward_into(ps, x, &mut feat, scratch);
                out.add_scaled(&feat, gate_probs.get(0, best));
            }
        }
        scratch.give(feat);
        scratch.give(gate_probs);
        scratch.give(flat);
    }

    /// Batched inference forward: `xs` row-stacks `batch` independent
    /// `seq × input_dim` state matrices; row `b` of the `batch × d_model`
    /// output receives episode `b`'s mixture. The gate runs as one matmul
    /// over the per-block flattened states, and under dense gating every
    /// expert encoder runs one batched pass over the whole stack. Each
    /// output row is bit-identical to a sequential
    /// [`MoEFoundation::forward_into`] of that block: flattening, gate
    /// logits and softmax are row-local, and the dense mixture
    /// accumulates experts in the same ascending order. Top-1 gating
    /// picks a (possibly different) expert per episode, so its expert
    /// passes degenerate to per-block `forward_into` calls — only the
    /// gate amortizes.
    pub fn forward_batch_into(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        batch: usize,
        out: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        assert!(
            batch >= 1 && xs.rows().is_multiple_of(batch),
            "batch {batch} must evenly divide {} stacked rows",
            xs.rows()
        );
        let seq = xs.rows() / batch;
        let width = self.cfg.input_dim;
        let mut flat = scratch.take(batch, self.cfg.seq_len * width);
        for blk in 0..batch {
            for r in 0..seq {
                let frow = &mut flat.row_mut(blk)[r * width..r * width + width];
                frow.copy_from_slice(&xs.row(blk * seq + r)[..width]);
            }
        }
        let mut gate_probs = scratch.take(batch, self.experts.len());
        self.gate.forward_into(ps, &flat, &mut gate_probs);
        gate_probs.softmax_rows_in_place();

        out.reset(batch, self.out_dim());
        match self.kind {
            GatingKind::Dense => {
                let mut feat = scratch.take(batch, self.out_dim());
                for (e, expert) in self.experts.iter().enumerate() {
                    expert.forward_batch_into(ps, xs, batch, &mut feat, scratch);
                    for blk in 0..batch {
                        let g = gate_probs.get(blk, e);
                        for (o, &f) in out.row_mut(blk).iter_mut().zip(feat.row(blk)) {
                            *o += g * f;
                        }
                    }
                }
                scratch.give(feat);
            }
            GatingKind::TopOne => {
                let mut xblk = scratch.take(seq, width);
                let mut feat = scratch.take(1, self.out_dim());
                for blk in 0..batch {
                    // Same argmax semantics as `Matrix::argmax` (last of
                    // equal maxima) over this episode's gate row.
                    let best = gate_probs
                        .row(blk)
                        .iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    for r in 0..seq {
                        xblk.row_mut(r).copy_from_slice(xs.row(blk * seq + r));
                    }
                    self.experts[best].forward_into(ps, &xblk, &mut feat, scratch);
                    let g = gate_probs.get(blk, best);
                    for (o, &f) in out.row_mut(blk).iter_mut().zip(feat.row(0)) {
                        *o += g * f;
                    }
                }
                scratch.give(feat);
                scratch.give(xblk);
            }
        }
        scratch.give(gate_probs);
        scratch.give(flat);
    }

    /// Backward pass; accumulates gate and (active) expert gradients and
    /// returns `dx`.
    pub fn backward(
        &self,
        ps: &ParamSet,
        cache: &MoECache,
        d_out: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        let e_count = self.experts.len();
        // d gate_probs_e = ⟨d_out, feat_e⟩ for active experts.
        let mut d_gate_probs = Matrix::zeros(1, e_count);
        let (rows, cols) = cache.x_shape;
        let mut dx = Matrix::zeros(rows, cols);
        for (e, slot) in cache.expert_out.iter().enumerate() {
            let Some((feat, ecache)) = slot else { continue };
            let g = cache.gate_probs.get(0, e);
            d_gate_probs.set(0, e, d_out.hadamard(feat).sum());
            let d_feat = d_out.scale(g);
            let dxe = self.experts[e].backward(ps, ecache, &d_feat, grads);
            dx.add_assign(&dxe);
        }
        // Through the softmax and the gate linear.
        let d_logits = softmax_rows_backward(&cache.gate_probs, &d_gate_probs);
        let d_flat = self.gate.backward(ps, &cache.c_gate, &d_logits, grads);
        // Fold the flattened-gate gradient back onto the (unpadded) input.
        for r in 0..rows {
            for c in 0..cols {
                let v = dx.get(r, c) + d_flat.get(0, r * self.cfg.input_dim + c);
                dx.set(r, c, v);
            }
        }
        dx
    }

    /// Training forward over a row-stacked batch (dense gating only):
    /// fills `cache` for [`MoEFoundation::backward_batch`] and writes the
    /// per-block mixtures into `out` (`batch × d_model`). Gate and every
    /// expert run batched; per block the arithmetic is bit-identical to
    /// [`MoEFoundation::forward`].
    pub fn forward_batch_train(
        &self,
        ps: &ParamSet,
        xs: &Matrix,
        batch: usize,
        out: &mut Matrix,
        cache: &mut MoEBatchCache,
        scratch: &mut Scratch,
    ) {
        assert_eq!(
            self.kind,
            GatingKind::Dense,
            "batched MoE training requires dense gating"
        );
        assert!(
            batch >= 1 && xs.rows().is_multiple_of(batch),
            "batch {batch} must evenly divide {} stacked rows",
            xs.rows()
        );
        let seq = xs.rows() / batch;
        let width = self.cfg.input_dim;
        cache.seq = seq;
        cache.batch = batch;
        cache.flat.reset(batch, self.cfg.seq_len * width);
        for blk in 0..batch {
            for r in 0..seq {
                let frow = &mut cache.flat.row_mut(blk)[r * width..r * width + width];
                frow.copy_from_slice(&xs.row(blk * seq + r)[..width]);
            }
        }
        self.gate
            .forward_into(ps, &cache.flat, &mut cache.gate_probs);
        cache.gate_probs.softmax_rows_in_place();

        let e_count = self.experts.len();
        cache
            .c_experts
            .resize_with(e_count, TransformerBatchCache::default);
        cache.feats.resize_with(e_count, Matrix::default);
        out.reset(batch, self.out_dim());
        for (e, expert) in self.experts.iter().enumerate() {
            expert.forward_batch_train(
                ps,
                xs,
                batch,
                &mut cache.feats[e],
                &mut cache.c_experts[e],
                scratch,
            );
            let feat = &cache.feats[e];
            for blk in 0..batch {
                let g = cache.gate_probs.get(blk, e);
                for (o, &f) in out.row_mut(blk).iter_mut().zip(feat.row(blk)) {
                    *o += g * f;
                }
            }
        }
    }

    /// Batched backward for [`MoEFoundation::forward_batch_train`]: block
    /// `b`'s gradients (every expert, then the gate) go to
    /// `sink.grads_for(b)` in ascending block order per parameter, and
    /// `dx` receives the stacked input gradient. With a fused sink this
    /// reproduces the sequential per-sample [`MoEFoundation::backward`]
    /// bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch(
        &self,
        ps: &ParamSet,
        cache: &MoEBatchCache,
        xs: &Matrix,
        d_out: &Matrix,
        sink: &mut GradSink<'_>,
        dx: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        let (seq, batch) = (cache.seq, cache.batch);
        let rows = seq * batch;
        let width = xs.cols();
        let e_count = self.experts.len();
        assert_eq!(d_out.rows(), batch, "one output gradient row per block");

        dx.reset(rows, width);
        let mut d_gate_probs = scratch.take(batch, e_count);
        let mut d_feat = scratch.take(batch, self.out_dim());
        let mut dxe = scratch.take(rows, width);
        for (e, expert) in self.experts.iter().enumerate() {
            let feat = &cache.feats[e];
            for blk in 0..batch {
                // Same ascending product-sum as `d_out.hadamard(feat).sum()`.
                let dot: f32 = d_out
                    .row(blk)
                    .iter()
                    .zip(feat.row(blk))
                    .map(|(x, y)| x * y)
                    .sum();
                d_gate_probs.set(blk, e, dot);
                let g = cache.gate_probs.get(blk, e);
                for (o, &v) in d_feat.row_mut(blk).iter_mut().zip(d_out.row(blk)) {
                    *o = v * g;
                }
            }
            expert.backward_batch(
                ps,
                &cache.c_experts[e],
                xs,
                &d_feat,
                sink,
                &mut dxe,
                scratch,
            );
            dx.add_assign(&dxe);
        }
        // Through the softmax and the gate linear (one row per block).
        let mut d_logits = scratch.take(batch, e_count);
        softmax_rows_backward_into(&cache.gate_probs, &d_gate_probs, &mut d_logits);
        let mut d_flat = scratch.take(batch, self.cfg.seq_len * width);
        self.gate.backward_batch(
            ps,
            &cache.flat,
            &d_logits,
            batch,
            sink,
            &mut d_flat,
            scratch,
        );
        // Fold the flattened-gate gradient back onto the stacked input.
        for blk in 0..batch {
            for r in 0..seq {
                for c in 0..width {
                    let v = dx.get(blk * seq + r, c) + d_flat.get(blk, r * width + c);
                    dx.set(blk * seq + r, c, v);
                }
            }
        }
        scratch.give(d_flat);
        scratch.give(d_logits);
        scratch.give(dxe);
        scratch.give(d_feat);
        scratch.give(d_gate_probs);
    }
}

/// Flattens `x` row-major into a `1 × (seq_len·width)` vector, zero-padding
/// missing rows.
fn flatten_padded(x: &Matrix, seq_len: usize, width: usize) -> Matrix {
    let mut flat = Matrix::zeros(1, seq_len * width);
    flatten_padded_into(x, width, &mut flat);
    flat
}

/// Flattening kernel shared with the inference path: writes into a
/// pre-shaped `1 × (seq_len·width)` buffer (already zeroed).
fn flatten_padded_into(x: &Matrix, width: usize, flat: &mut Matrix) {
    for r in 0..x.rows() {
        for c in 0..x.cols() {
            flat.set(0, r * width + c, x.get(r, c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> TransformerConfig {
        TransformerConfig {
            input_dim: 3,
            seq_len: 3,
            d_model: 4,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        }
    }

    #[test]
    fn dense_moe_mixes_all_experts() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let moe = MoEFoundation::new(&mut ps, "m", tiny(), 3, GatingKind::Dense, &mut rng);
        let x = Matrix::xavier(3, 3, &mut rng);
        let (y, cache) = moe.forward(&ps, &x);
        assert_eq!(y.shape(), (1, 4));
        assert_eq!(cache.expert_out.iter().filter(|e| e.is_some()).count(), 3);
        let gsum: f32 = cache.gate_probs.data().iter().sum();
        assert!((gsum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn top_one_runs_exactly_one_expert() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let moe = MoEFoundation::new(&mut ps, "m", tiny(), 4, GatingKind::TopOne, &mut rng);
        let x = Matrix::xavier(3, 3, &mut rng);
        let (_, cache) = moe.forward(&ps, &x);
        assert_eq!(cache.expert_out.iter().filter(|e| e.is_some()).count(), 1);
    }

    #[test]
    fn dense_gradients_match_finite_differences() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let moe = MoEFoundation::new(&mut ps, "m", tiny(), 2, GatingKind::Dense, &mut rng);
        let x = Matrix::xavier(3, 3, &mut rng);
        let weights = Matrix::row_vector(vec![0.3, -0.7, 1.1, 0.5]);
        let loss = |ps: &ParamSet| moe.forward(ps, &x).0.hadamard(&weights).sum();
        let (_, cache) = moe.forward(&ps, &x);
        let mut grads = Grads::new(&ps);
        let dx = moe.backward(&ps, &cache, &weights, &mut grads);
        let ids: Vec<_> = ps.iter().map(|(id, _)| id).collect();
        check_gradients(&mut ps, &ids, loss, &grads, 1e-2, 5e-2).unwrap();
        // dx spot checks (gate path + expert path both contribute).
        let eps = 1e-2;
        let mut x2 = x.clone();
        for (r, c) in [(0, 0), (1, 2), (2, 1)] {
            let orig = x2.get(r, c);
            x2.set(r, c, orig + eps);
            let up = moe.forward(&ps, &x2).0.hadamard(&weights).sum();
            x2.set(r, c, orig - eps);
            let dn = moe.forward(&ps, &x2).0.hadamard(&weights).sum();
            x2.set(r, c, orig);
            let num = (up - dn) / (2.0 * eps);
            assert!((dx.get(r, c) - num).abs() < 5e-2, "dx[{r},{c}]");
        }
    }

    #[test]
    fn top_one_gradients_flow_to_active_expert_only() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let moe = MoEFoundation::new(&mut ps, "m", tiny(), 2, GatingKind::TopOne, &mut rng);
        let x = Matrix::xavier(3, 3, &mut rng);
        let (_, cache) = moe.forward(&ps, &x);
        let active = cache.expert_out.iter().position(|e| e.is_some()).unwrap();
        let inactive = 1 - active;
        let mut grads = Grads::new(&ps);
        let d = Matrix::full(1, 4, 1.0);
        moe.backward(&ps, &cache, &d, &mut grads);
        // Gate always receives gradient.
        assert!(grads.get(moe.gate.w).is_some());
        // The active expert's embed weight has gradient, the other's none.
        assert!(grads.get(moe.experts[active].embed_w()).is_some());
        assert!(grads.get(moe.experts[inactive].embed_w()).is_none());
    }

    #[test]
    fn padding_keeps_short_sequences_working() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(4);
        let moe = MoEFoundation::new(&mut ps, "m", tiny(), 2, GatingKind::Dense, &mut rng);
        let x = Matrix::xavier(2, 3, &mut rng); // shorter than seq_len = 3
        let (y, cache) = moe.forward(&ps, &x);
        assert!(y.data().iter().all(|v| v.is_finite()));
        let mut grads = Grads::new(&ps);
        let dx = moe.backward(&ps, &cache, &Matrix::full(1, 4, 1.0), &mut grads);
        assert_eq!(dx.shape(), (2, 3));
    }
}
