//! Dense row-major f32 matrix — the only tensor type the substrate needs.
//!
//! Kept deliberately small: the Mirage networks are 2-D at every point
//! (sequences are handled as `seq_len × d_model` matrices, mini-batches by
//! data-parallel per-sample passes). Matmul runs a register-tiled
//! single-thread microkernel — at Mirage's layer sizes that beats
//! fan-out, and cross-episode parallelism lives in `mirage-sim`'s
//! `BackendPool` instead. Every producing operation has an `*_into`
//! variant writing into a caller-provided buffer for the
//! allocation-free inference path (see `crate::scratch`).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Row-major matrix of `f32`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// SIMD lane width the matmul microkernel is blocked around: 8 × f32 is
/// one 256-bit vector (AVX2 `ymm` / two NEON `q` registers), the widest
/// unit the targets we build for retire as a single FMA. Accumulators are
/// declared as `[f32; MM_LANES]` blocks so the vectorizer maps each block
/// onto exactly one register instead of guessing a profitable width.
const MM_LANES: usize = 8;
/// Lane vectors per column tile: the accumulator tile spans
/// `MM_LANE_VECS` explicit 8-lane vectors (16 columns).
const MM_LANE_VECS: usize = 2;
/// Register-tile width of the matmul microkernel in columns.
const MM_TILE_J: usize = MM_LANES * MM_LANE_VECS;
/// Rows per register block: three output rows share every streamed `rhs`
/// row, so the kernel performs `MM_TILE_I × MM_LANE_VECS` = 6 FMAs per
/// two vector loads. `3 × 2` lane vectors = 6 accumulator registers —
/// measured fastest on the layer shapes here against 2×2, 4×2 and 2×4
/// tilings (wider tiles start spilling broadcasts out of a 16-register
/// file).
const MM_TILE_I: usize = 3;

/// Computes output rows `r0 .. r0 + R` of `out = lhs × rhs`, where `lhs`
/// is `(≥ r0+R) × kdim` and `rhs` is `kdim × n`, both row-major.
///
/// The accumulator tile — `R` rows × [`MM_LANE_VECS`] explicit
/// [`MM_LANES`]-wide vectors — lives in registers across the whole
/// shared-dimension walk, so each output element is stored exactly once.
/// Per output element the accumulation runs in ascending-`k` order with a
/// single accumulator, so results are bit-identical to the naive triple
/// loop (and therefore independent of `R`: the 4/2/1-row instantiations
/// that tile the output agree bitwise).
///
/// `out` must be pre-zeroed over the final `n % MM_LANES` columns of the
/// computed rows (only the sub-vector column tail accumulates in place).
#[inline(always)]
fn mm_row_block<const R: usize>(
    lhs: &[f32],
    kdim: usize,
    rhs: &[f32],
    n: usize,
    out: &mut [f32],
    r0: usize,
) {
    let arows: [&[f32]; R] = std::array::from_fn(|r| &lhs[(r0 + r) * kdim..(r0 + r + 1) * kdim]);
    let tiles = n / MM_TILE_J;
    for tile in 0..tiles {
        let jj = tile * MM_TILE_J;
        // Flat `MM_TILE_J`-wide accumulators: each is exactly
        // `MM_LANE_VECS` lane vectors, and the flat layout lets the
        // vectorizer keep them in registers without shuffles.
        let mut acc = [[0.0f32; MM_TILE_J]; R];
        for k in 0..kdim {
            let brow = &rhs[k * n + jj..k * n + jj + MM_TILE_J];
            for r in 0..R {
                let av = arows[r][k];
                for t in 0..MM_TILE_J {
                    acc[r][t] += av * brow[t];
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let o = (r0 + r) * n + jj;
            out[o..o + MM_TILE_J].copy_from_slice(accr);
        }
    }
    let mut jj = tiles * MM_TILE_J;
    // Half tile — one MM_LANES-wide accumulator vector per row — so
    // narrow products (attention's per-head `n = d_head` / `n = seq`
    // shapes) still run register-resident instead of falling straight
    // through to the scalar tail. Per element the accumulation is the
    // same single ascending-`k` chain as the full tile.
    if jj + MM_LANES <= n {
        let mut acc = [[0.0f32; MM_LANES]; R];
        for k in 0..kdim {
            let brow = &rhs[k * n + jj..k * n + jj + MM_LANES];
            for r in 0..R {
                let av = arows[r][k];
                for t in 0..MM_LANES {
                    acc[r][t] += av * brow[t];
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            let o = (r0 + r) * n + jj;
            out[o..o + MM_LANES].copy_from_slice(accr);
        }
        jj += MM_LANES;
    }
    // Column tail (n % MM_LANES): stream each rhs row once, accumulating
    // into the (pre-zeroed) output — still ascending k per element.
    if jj < n {
        for k in 0..kdim {
            let brow = &rhs[k * n + jj..(k + 1) * n];
            for r in 0..R {
                let av = arows[r][k];
                let orow = &mut out[(r0 + r) * n + jj..(r0 + r + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

impl Matrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing buffer (`data.len()` must equal `rows × cols`).
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// A `1 × n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self {
            rows: 1,
            cols,
            data,
        }
    }

    /// Xavier/Glorot uniform initialization for a `rows × cols` weight.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-bound..bound))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Flat element view.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat element view.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes in place to `rows × cols`, zero-filled, **reusing the
    /// existing allocation** whenever its capacity suffices. This is the
    /// buffer-recycling primitive behind [`crate::scratch::Scratch`]: in a
    /// shape-stationary loop the second and later calls never touch the
    /// allocator.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Reshapes in place to `rows × cols` like [`Matrix::reset`] but
    /// leaves existing contents **unspecified** instead of zero-filling
    /// (new capacity is still zero-initialized). Only for kernels that
    /// overwrite every element before it can be read — skipping the
    /// redundant clear matters on hot paths where the output is written
    /// immediately after.
    fn reset_unfilled(&mut self, rows: usize, cols: usize) {
        let need = rows * cols;
        if self.data.len() < need {
            self.data.resize(need, 0.0);
        } else {
            self.data.truncate(need);
        }
        self.rows = rows;
        self.cols = cols;
    }

    /// Copies `src`'s shape and contents into this matrix, reusing the
    /// allocation when it is large enough.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self × rhs`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self × rhs` written into `out` (reshaped in place;
    /// no allocation once `out`'s buffer is large enough).
    ///
    /// The kernel is explicitly SIMD-width-blocked (see [`mm_row_block`]):
    /// [`MM_TILE_I`]-row blocks over a column tile of [`MM_LANE_VECS`]
    /// [`MM_LANES`]-wide accumulator vectors, so every streamed `rhs` row
    /// feeds `MM_TILE_I × MM_LANE_VECS` FMAs and each output element is
    /// stored once. Per output element the accumulation runs in
    /// ascending-`k` order, so results are bit-identical to the naive
    /// triple loop (pinned by property test) regardless of the tiling.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.rows,
            "matmul shape mismatch: {:?} × {:?}",
            self.shape(),
            rhs.shape()
        );
        let (m, kdim, n) = (self.rows, self.cols, rhs.cols);
        // Full and half tiles are stored (never read), so only the
        // accumulating sub-vector column tail needs pre-zeroing — not the
        // whole output.
        out.reset_unfilled(m, n);
        let tail = (n / MM_LANES) * MM_LANES;
        if tail < n {
            for r in 0..m {
                out.data[r * n + tail..(r + 1) * n].fill(0.0);
            }
        }
        let mut r = 0;
        while r + MM_TILE_I <= m {
            mm_row_block::<MM_TILE_I>(&self.data, kdim, &rhs.data, n, &mut out.data, r);
            r += MM_TILE_I;
        }
        if r + 2 <= m {
            mm_row_block::<2>(&self.data, kdim, &rhs.data, n, &mut out.data, r);
            r += 2;
        }
        if r < m {
            mm_row_block::<1>(&self.data, kdim, &rhs.data, n, &mut out.data, r);
        }
    }

    /// `selfᵀ × rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// `selfᵀ × rhs` written into `out` (no allocation once warm).
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        self.t_matmul_range_into(rhs, 0, self.rows, out);
    }

    /// `selfᵀ × rhs` restricted to the row band `[r0, r1)` of both
    /// operands, written into `out`. The inner loops are the exact body of
    /// [`Matrix::t_matmul_into`] (which delegates here with the full
    /// range), so a per-block gradient computed over a band of a
    /// row-stacked batch is bit-identical to computing it on a standalone
    /// copy of that block.
    pub fn t_matmul_range_into(&self, rhs: &Matrix, r0: usize, r1: usize, out: &mut Matrix) {
        assert_eq!(
            self.rows,
            rhs.rows,
            "t_matmul shape mismatch: {:?}ᵀ × {:?}",
            self.shape(),
            rhs.shape()
        );
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "t_matmul row band out of range"
        );
        out.reset(self.cols, rhs.cols);
        let n = rhs.cols;
        // Four streamed rows per pass: each output row is loaded and
        // stored once per four rank-1 updates instead of once per update.
        // Within an element the four adds stay separate statements on a
        // register accumulator in ascending-`r` order, so the result is
        // bit-identical to the one-row-at-a-time loop below.
        let mut r = r0;
        while r + 4 <= r1 {
            let (a0, a1, a2, a3) = (
                self.row(r),
                self.row(r + 1),
                self.row(r + 2),
                self.row(r + 3),
            );
            let (b0, b1, b2, b3) = (rhs.row(r), rhs.row(r + 1), rhs.row(r + 2), rhs.row(r + 3));
            for i in 0..self.cols {
                let (x0, x1, x2, x3) = (a0[i], a1[i], a2[i], a3[i]);
                let orow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    let mut o = orow[j];
                    o += x0 * b0[j];
                    o += x1 * b1[j];
                    o += x2 * b2[j];
                    o += x3 * b3[j];
                    orow[j] = o;
                }
            }
            r += 4;
        }
        for rr in r..r1 {
            let arow = self.row(rr);
            let brow = rhs.row(rr);
            for (i, &a) in arow.iter().enumerate() {
                let orow = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
    }

    /// `self × rhsᵀ`.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_t_into(rhs, &mut out);
        out
    }

    /// `self × rhsᵀ` written into `out`. Allocates a transient transpose
    /// each call; hot loops with a reusable buffer should prefer
    /// [`Matrix::matmul_t_buf_into`], which this delegates to (so the two
    /// agree bitwise).
    pub fn matmul_t_into(&self, rhs: &Matrix, out: &mut Matrix) {
        let mut rhs_t = Matrix::zeros(0, 0);
        self.matmul_t_buf_into(rhs, out, &mut rhs_t);
    }

    /// `self × rhsᵀ` written into `out`, materializing `rhsᵀ` in
    /// `rhs_t_buf` (reshaped in place; no allocation once warm) and
    /// running the tiled [`mm_row_block`] kernel over it. `rhs` is the
    /// small operand at every call site — a weight matrix or a per-head
    /// block — so the transpose is cheap next to the product, and the
    /// contiguous streaming it buys replaces one horizontal reduction per
    /// output element with dense row-wise FMAs. Per output element the
    /// accumulation runs in ascending-`k` order: bit-identical to
    /// `self.matmul(&rhs.transpose())`.
    pub fn matmul_t_buf_into(&self, rhs: &Matrix, out: &mut Matrix, rhs_t_buf: &mut Matrix) {
        assert_eq!(
            self.cols,
            rhs.cols,
            "matmul_t shape mismatch: {:?} × {:?}ᵀ",
            self.shape(),
            rhs.shape()
        );
        rhs.transpose_into(rhs_t_buf);
        self.matmul_into(rhs_t_buf, out);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Transpose written into `out` (reshaped in place; no allocation
    /// once `out`'s buffer is large enough).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.reset_unfilled(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// Elementwise sum (shapes must match).
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place elementwise `self += rhs`.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * rhs`.
    pub fn add_scaled(&mut self, rhs: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), rhs.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place scalar multiple (same arithmetic as [`Matrix::scale`]).
    pub fn scale_in_place(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Adds a `1 × cols` row vector to every row.
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// In-place broadcast add of a `1 × cols` row vector to every row
    /// (same arithmetic as [`Matrix::add_row_broadcast`]).
    pub fn add_row_in_place(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (o, &b) in self.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
    }

    /// Sums all rows into a `1 × cols` vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Sums the row band `[r0, r1)` into a `1 × cols` vector written into
    /// `out`. Same ascending-row inner loop as [`Matrix::sum_rows`], so a
    /// per-block bias gradient over a band of a row-stacked batch is
    /// bit-identical to `sum_rows` on a standalone copy of that block.
    pub fn sum_rows_range_into(&self, r0: usize, r1: usize, out: &mut Matrix) {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "sum_rows row band out of range"
        );
        out.reset(1, self.cols);
        for r in r0..r1 {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Mean of all rows as a `1 × cols` vector.
    pub fn mean_rows(&self) -> Matrix {
        self.sum_rows().scale(1.0 / self.rows.max(1) as f32)
    }

    /// Mean of all rows written into `out` (no allocation once warm; same
    /// arithmetic as [`Matrix::mean_rows`]).
    pub fn mean_rows_into(&self, out: &mut Matrix) {
        out.reset(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out.scale_in_place(1.0 / self.rows.max(1) as f32);
    }

    /// Row-wise softmax (numerically stabilized).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        out.softmax_rows_in_place();
        out
    }

    /// In-place row-wise softmax (the kernel behind
    /// [`Matrix::softmax_rows`]).
    ///
    /// Same per-element arithmetic as [`softmax_in_place`] on every row —
    /// shift by the row max, [`crate::activation::fast_exp`], divide by
    /// the ascending-order row sum — but staged so the exponential pass
    /// runs over the whole matrix as one flat loop: attention's `seq ×
    /// seq` score rows are too short to amortize per-row vector ramp-up,
    /// a single `rows·cols` pass is not.
    pub fn softmax_rows_in_place(&mut self) {
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            for x in row.iter_mut() {
                *x -= max;
            }
        }
        for x in self.data.iter_mut() {
            *x = crate::activation::fast_exp(*x);
        }
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let sum: f32 = row.iter().sum();
            if sum > 0.0 {
                for x in row.iter_mut() {
                    *x /= sum;
                }
            }
        }
    }

    /// Applies `f` to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&v| f(v)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Index of the maximum element in a `1 × n` or `n × 1` vector.
    pub fn argmax(&self) -> usize {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Dot product of two equal-length slices.
///
/// Accumulates into eight independent partial sums so the reduction has
/// no serial dependency chain and vectorizes to FMA lanes — an order of
/// magnitude faster than the naive fold on modern cores. (Float addition
/// is reassociated; callers tolerate the usual f32 rounding differences.)
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    const LANES: usize = 8;
    let mut acc = [0.0f32; LANES];
    let chunks = a.len() / LANES;
    for i in 0..chunks {
        let av = &a[i * LANES..(i + 1) * LANES];
        let bv = &b[i * LANES..(i + 1) * LANES];
        for t in 0..LANES {
            acc[t] += av[t] * bv[t];
        }
    }
    let mut sum = acc.iter().sum::<f32>();
    for i in chunks * LANES..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Numerically-stable in-place softmax of one slice.
///
/// Exponentials run through [`crate::activation::fast_exp`] — every
/// softmax in the crate (training *and* inference, sequential *and*
/// batched) flows through this one kernel, so the approximation can
/// never introduce drift between paths.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    // Exponentiation and summation as separate passes: the map pass has
    // no cross-element dependency, so it vectorizes across the row; the
    // sum still adds in ascending index order (same result as a fused
    // loop, without serializing the exponentials behind it).
    for x in xs.iter_mut() {
        *x = crate::activation::fast_exp(*x - max);
    }
    let sum: f32 = xs.iter().sum();
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known_values() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(80, 96, &mut rng);
        let b = Matrix::xavier(96, 72, &mut rng);
        let c = a.matmul(&b);
        // Serial reference.
        let expected = Matrix::from_fn(80, 72, |r, k| {
            (0..96).map(|j| a.get(r, j) * b.get(j, k)).sum()
        });
        for (x, y) in c.data().iter().zip(expected.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transposed_products_agree_with_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(7, 5, &mut rng);
        let b = Matrix::xavier(7, 4, &mut rng);
        let c = Matrix::xavier(6, 5, &mut rng);
        let tm = a.t_matmul(&b);
        let tm_ref = a.transpose().matmul(&b);
        for (x, y) in tm.data().iter().zip(tm_ref.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        let mt = a.matmul_t(&c);
        let mt_ref = a.matmul(&c.transpose());
        for (x, y) in mt.data().iter().zip(mt_ref.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Large inputs do not overflow (stability shift).
        assert!((s.get(1, 0) - 1.0 / 3.0).abs() < 1e-6);
        // Monotone in the logits.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn broadcast_and_reductions() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.add_row_broadcast(&Matrix::row_vector(vec![10.0, 20.0, 30.0]));
        assert_eq!(b.row(0), &[11.0, 22.0, 33.0]);
        assert_eq!(b.row(1), &[14.0, 25.0, 36.0]);
        assert_eq!(a.sum_rows().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(a.mean_rows().data(), &[2.5, 3.5, 4.5]);
        assert_eq!(a.sum(), 21.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, -2.0, 3.0]);
        let b = m(1, 3, &[2.0, 2.0, 2.0]);
        assert_eq!(a.add(&b).data(), &[3.0, 0.0, 5.0]);
        assert_eq!(a.sub(&b).data(), &[-1.0, -4.0, 1.0]);
        assert_eq!(a.hadamard(&b).data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.map(f32::abs).data(), &[1.0, 2.0, 3.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.data(), &[2.0, -1.0, 4.0]);
    }

    #[test]
    fn argmax_and_norm() {
        let a = m(1, 4, &[0.1, 3.0, -2.0, 1.0]);
        assert_eq!(a.argmax(), 1);
        let b = m(1, 2, &[3.0, 4.0]);
        assert!((b.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn into_kernels_match_allocating_ops_bitwise_across_reuse() {
        let mut rng = StdRng::seed_from_u64(9);
        // One set of reused buffers across many shapes: reuse must never
        // leak stale contents or shapes.
        let mut out_mm = Matrix::zeros(0, 0);
        let mut out_tm = Matrix::zeros(0, 0);
        let mut out_mt = Matrix::zeros(0, 0);
        let mut out_mean = Matrix::zeros(0, 0);
        for (m, k, n) in [
            (1, 1, 1),
            (3, 5, 2),
            (17, 40, 9),
            (80, 96, 72),
            (2, 130, 300),
        ] {
            let a = Matrix::xavier(m, k, &mut rng);
            let b = Matrix::xavier(k, n, &mut rng);
            let c = Matrix::xavier(n, k, &mut rng); // for a × cᵀ
            let d = Matrix::xavier(m, n, &mut rng); // for aᵀ invalid; use a rows
            a.matmul_into(&b, &mut out_mm);
            assert_eq!(out_mm, a.matmul(&b));
            a.matmul_t_into(&c, &mut out_mt);
            assert_eq!(out_mt, a.matmul_t(&c));
            a.t_matmul_into(&d, &mut out_tm);
            assert_eq!(out_tm, a.t_matmul(&d));
            a.mean_rows_into(&mut out_mean);
            assert_eq!(out_mean, a.mean_rows());
        }
    }

    #[test]
    fn in_place_variants_match_allocating_ops() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = Matrix::xavier(7, 11, &mut rng);
        let row = Matrix::xavier(1, 11, &mut rng);

        let mut s = a.clone();
        s.scale_in_place(0.37);
        assert_eq!(s, a.scale(0.37));

        let mut b = a.clone();
        b.add_row_in_place(&row);
        assert_eq!(b, a.add_row_broadcast(&row));

        let mut sm = a.clone();
        sm.softmax_rows_in_place();
        assert_eq!(sm, a.softmax_rows());
    }

    #[test]
    fn reset_reuses_capacity_and_zero_fills() {
        let mut m = Matrix::full(8, 8, 3.0);
        let ptr = m.data().as_ptr();
        m.reset(4, 6);
        assert_eq!(m.shape(), (4, 6));
        assert!(m.data().iter().all(|&v| v == 0.0));
        assert_eq!(m.data().as_ptr(), ptr, "shrinking reset must not realloc");
        let mut c = Matrix::zeros(2, 2);
        c.copy_from(&m);
        assert_eq!(c, m);
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::xavier(64, 64, &mut rng);
        let bound = (6.0 / 128.0f32).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= bound));
        let mut rng2 = StdRng::seed_from_u64(3);
        assert_eq!(w, Matrix::xavier(64, 64, &mut rng2));
    }
}
