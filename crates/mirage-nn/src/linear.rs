//! Fully-connected layer with manual backward pass.

use rand::Rng;

use crate::param::{GradSink, Grads, ParamId, ParamSet};
use crate::scratch::Scratch;
use crate::tensor::Matrix;

/// `y = x W + b` over rows of `x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    /// Weight handle, shape `in_dim × out_dim`.
    pub w: ParamId,
    /// Bias handle, shape `1 × out_dim`.
    pub b: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

/// Forward cache: the input is all the backward pass needs.
#[derive(Debug, Clone)]
pub struct LinearCache {
    x: Matrix,
}

impl Linear {
    /// Allocates Xavier-initialized parameters in `ps`.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let w = ps.alloc(format!("{name}.w"), Matrix::xavier(in_dim, out_dim, rng));
        let b = ps.alloc(format!("{name}.b"), Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass over a batch of row vectors.
    pub fn forward(&self, ps: &ParamSet, x: &Matrix) -> (Matrix, LinearCache) {
        let mut y = Matrix::zeros(0, 0);
        self.forward_into(ps, x, &mut y);
        (y, LinearCache { x: x.clone() })
    }

    /// Inference-only forward into a caller-provided buffer: no cache, no
    /// allocation once `out` is warm. Bit-identical to
    /// [`Linear::forward`].
    pub fn forward_into(&self, ps: &ParamSet, x: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(x.cols(), self.in_dim, "linear input width mismatch");
        x.matmul_into(ps.get(self.w), out);
        out.add_row_in_place(ps.get(self.b));
    }

    /// Backward pass: accumulates `dW = xᵀ dy`, `db = Σ_rows dy` and
    /// returns `dx = dy Wᵀ`.
    pub fn backward(
        &self,
        ps: &ParamSet,
        cache: &LinearCache,
        dy: &Matrix,
        grads: &mut Grads,
    ) -> Matrix {
        grads.accumulate(self.w, cache.x.t_matmul(dy));
        grads.accumulate(self.b, dy.sum_rows());
        dy.matmul_t(ps.get(self.w))
    }

    /// Parameter gradients only: [`Linear::backward`] without the
    /// `dx = dy Wᵀ` product. For a network's first layer the input
    /// gradient feeds nothing, and that discarded product is the largest
    /// transposed matmul in the net — skipping it leaves every parameter
    /// gradient bit-identical.
    pub fn backward_params(&self, cache: &LinearCache, dy: &Matrix, grads: &mut Grads) {
        grads.accumulate(self.w, cache.x.t_matmul(dy));
        grads.accumulate(self.b, dy.sum_rows());
    }

    /// Batched backward over a row-stacked input: `x` and `dy` hold
    /// `batch` equal-height blocks and block `b`'s parameter gradients go
    /// to `sink.grads_for(b)` (ascending). The per-block `dW`/`db` use the
    /// same row-band kernels as [`Linear::backward`] on a standalone
    /// block, and `dx = dy Wᵀ` is row-local, so with a fused sink the
    /// result is bit-identical to `batch` sequential backward calls.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_batch(
        &self,
        ps: &ParamSet,
        x: &Matrix,
        dy: &Matrix,
        batch: usize,
        sink: &mut GradSink<'_>,
        dx: &mut Matrix,
        scratch: &mut Scratch,
    ) {
        assert_eq!(x.rows(), dy.rows(), "linear backward_batch row mismatch");
        assert!(
            batch > 0 && x.rows().is_multiple_of(batch),
            "rows must split into blocks"
        );
        let block_rows = x.rows() / batch;
        let mut dw = scratch.take(self.in_dim, self.out_dim);
        let mut db = scratch.take(1, self.out_dim);
        for b in 0..batch {
            let (r0, r1) = (b * block_rows, (b + 1) * block_rows);
            x.t_matmul_range_into(dy, r0, r1, &mut dw);
            dy.sum_rows_range_into(r0, r1, &mut db);
            let g = sink.grads_for(b);
            g.accumulate_ref(self.w, &dw);
            g.accumulate_ref(self.b, &db);
        }
        let mut wt = scratch.take(self.out_dim, self.in_dim);
        dy.matmul_t_buf_into(ps.get(self.w), dx, &mut wt);
        scratch.give(wt);
        scratch.give(db);
        scratch.give(dw);
    }

    /// Batched parameter gradients only: [`Linear::backward_batch`]
    /// without the `dx = dy Wᵀ` product (see
    /// [`Linear::backward_params`]). Per-block gradients are
    /// bit-identical to the full batched backward.
    pub fn backward_batch_params(
        &self,
        x: &Matrix,
        dy: &Matrix,
        batch: usize,
        sink: &mut GradSink<'_>,
        scratch: &mut Scratch,
    ) {
        assert_eq!(x.rows(), dy.rows(), "linear backward_batch row mismatch");
        assert!(
            batch > 0 && x.rows().is_multiple_of(batch),
            "rows must split into blocks"
        );
        let block_rows = x.rows() / batch;
        let mut dw = scratch.take(self.in_dim, self.out_dim);
        let mut db = scratch.take(1, self.out_dim);
        for b in 0..batch {
            let (r0, r1) = (b * block_rows, (b + 1) * block_rows);
            x.t_matmul_range_into(dy, r0, r1, &mut dw);
            dy.sum_rows_range_into(r0, r1, &mut db);
            let g = sink.grads_for(b);
            g.accumulate_ref(self.w, &dw);
            g.accumulate_ref(self.b, &db);
        }
        scratch.give(db);
        scratch.give(dw);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_values() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut ps, "l", 3, 2, &mut rng);
        // Overwrite with known weights.
        *ps.get_mut(lin.w) = Matrix::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        *ps.get_mut(lin.b) = Matrix::row_vector(vec![0.5, -0.5]);
        let x = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let (y, _) = lin.forward(&ps, &x);
        assert_eq!(y.shape(), (1, 2));
        assert_eq!(y.data(), &[1.0 + 3.0 + 0.5, 2.0 + 3.0 - 0.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let x = Matrix::xavier(5, 4, &mut rng);
        // Loss = sum(forward(x)); dL/dy = ones.
        let loss = |ps: &ParamSet| lin.forward(ps, &x).0.sum();
        let mut grads = Grads::new(&ps);
        let (y, cache) = lin.forward(&ps, &x);
        let dy = Matrix::full(y.rows(), y.cols(), 1.0);
        let dx = lin.backward(&ps, &cache, &dy, &mut grads);
        check_gradients(&mut ps, &[lin.w, lin.b], loss, &grads, 1e-2, 2e-2).unwrap();
        // dx against finite differences on the input.
        let mut x2 = x.clone();
        let eps = 1e-2;
        for i in 0..4 {
            let orig = x2.get(0, i);
            x2.set(0, i, orig + eps);
            let up = lin.forward(&ps, &x2).0.sum();
            x2.set(0, i, orig - eps);
            let dn = lin.forward(&ps, &x2).0.sum();
            x2.set(0, i, orig);
            let num = (up - dn) / (2.0 * eps);
            assert!((dx.get(0, i) - num).abs() < 2e-2, "dx[{i}]");
        }
    }

    #[test]
    fn batch_grads_are_sums_over_rows() {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let lin = Linear::new(&mut ps, "l", 2, 2, &mut rng);
        let x1 = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let x2 = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        let xb = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let dy1 = Matrix::full(1, 2, 1.0);
        let dyb = Matrix::full(2, 2, 1.0);

        let mut g_sep = Grads::new(&ps);
        let (_, c1) = lin.forward(&ps, &x1);
        lin.backward(&ps, &c1, &dy1, &mut g_sep);
        let (_, c2) = lin.forward(&ps, &x2);
        lin.backward(&ps, &c2, &dy1, &mut g_sep);

        let mut g_bat = Grads::new(&ps);
        let (_, cb) = lin.forward(&ps, &xb);
        lin.backward(&ps, &cb, &dyb, &mut g_bat);

        for id in [lin.w, lin.b] {
            let a = g_sep.get(id).unwrap();
            let b = g_bat.get(id).unwrap();
            for (x, y) in a.data().iter().zip(b.data()) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }
}
