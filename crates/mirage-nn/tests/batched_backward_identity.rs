//! Bit-identity pins for the batched training backward (PR 9 tentpole):
//! at every layer, running `backward_batch` over a row-stacked mini-batch
//! with a fused [`GradSink`] must reproduce the sequential per-sample
//! backward **bit for bit** — same parameter gradients, same input
//! gradients — and the per-block sink folded in ascending block order
//! must match the fused sink exactly. These are the contracts the
//! batched DQN/PG update paths and the multi-worker all-reduce stand on.

use mirage_nn::attention::MultiHeadAttention;
use mirage_nn::foundation::{FoundationBatchCache, FoundationKind, FoundationNet};
use mirage_nn::layernorm::{LayerNorm, LayerNormBatchCache};
use mirage_nn::moe::{GatingKind, MoEFoundation};
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::{Activation, GradSink, Grads, Linear, ParamSet, Scratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// Bitwise gradient equality: same touched parameters, same bits.
fn grads_bit_eq(a: &Grads, b: &Grads) -> bool {
    let av: Vec<_> = a.iter().collect();
    let bv: Vec<_> = b.iter().collect();
    av.len() == bv.len()
        && av.iter().zip(&bv).all(|((ia, ma), (ib, mb))| {
            ia == ib
                && ma.shape() == mb.shape()
                && ma
                    .data()
                    .iter()
                    .zip(mb.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

fn matrix_bit_eq(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Extracts block `b` (rows `[b·h, (b+1)·h)`) of a stacked matrix.
fn block(m: &Matrix, b: usize, h: usize) -> Matrix {
    Matrix::from_fn(h, m.cols(), |r, c| m.get(b * h + r, c))
}

/// Folds per-block grads in ascending order — the deterministic
/// all-reduce the multi-worker trainer performs.
fn fold_ascending(ps: &ParamSet, per_block: &[Grads]) -> Grads {
    let mut out = Grads::new(ps);
    for g in per_block {
        out.merge_ref(g);
    }
    out
}

proptest! {
    /// Linear: fused batched backward ≡ sequential per-block backward,
    /// and the per-block sink folded ascending ≡ the fused sink.
    #[test]
    fn linear_backward_batch_is_bit_identical(
        x in matrix_strategy(6, 4),
        dy in matrix_strategy(6, 3),
    ) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(11);
        let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
        let batch = 3;
        let h = 2;

        let mut g_ref = Grads::new(&ps);
        let mut dx_ref = Matrix::zeros(0, 0);
        for b in 0..batch {
            let (_, cache) = lin.forward(&ps, &block(&x, b, h));
            let dxb = lin.backward(&ps, &cache, &block(&dy, b, h), &mut g_ref);
            for r in 0..h {
                if dx_ref.rows() == 0 {
                    dx_ref.reset(batch * h, dxb.cols());
                }
                dx_ref.row_mut(b * h + r).copy_from_slice(dxb.row(r));
            }
        }

        let mut scratch = Scratch::new();
        let mut g_fused = Grads::new(&ps);
        let mut dx = Matrix::zeros(0, 0);
        lin.backward_batch(&ps, &x, &dy, batch, &mut GradSink::Fused(&mut g_fused), &mut dx, &mut scratch);
        prop_assert!(grads_bit_eq(&g_ref, &g_fused), "fused grads diverge");
        prop_assert!(matrix_bit_eq(&dx_ref, &dx), "dx diverges");

        let mut per_block = vec![Grads::new(&ps); batch];
        let mut dx2 = Matrix::zeros(0, 0);
        lin.backward_batch(&ps, &x, &dy, batch, &mut GradSink::PerBlock(&mut per_block), &mut dx2, &mut scratch);
        let folded = fold_ascending(&ps, &per_block);
        prop_assert!(grads_bit_eq(&g_fused, &folded), "per-block fold diverges");
        prop_assert!(matrix_bit_eq(&dx, &dx2));
    }

    /// LayerNorm: batched forward + backward ≡ per-block, bitwise.
    #[test]
    fn layernorm_batch_is_bit_identical(
        x in matrix_strategy(6, 5),
        dy in matrix_strategy(6, 5),
    ) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(12);
        let ln = LayerNorm::new(&mut ps, "ln", 5);
        *ps.get_mut(ln.gamma) = Matrix::xavier(1, 5, &mut rng);
        *ps.get_mut(ln.beta) = Matrix::xavier(1, 5, &mut rng);
        let batch = 2;
        let h = 3;

        let mut g_ref = Grads::new(&ps);
        let mut y_ref = Matrix::zeros(batch * h, 5);
        let mut dx_ref = Matrix::zeros(batch * h, 5);
        for b in 0..batch {
            let (yb, cache) = ln.forward(&ps, &block(&x, b, h));
            let dxb = ln.backward(&ps, &cache, &block(&dy, b, h), &mut g_ref);
            for r in 0..h {
                y_ref.row_mut(b * h + r).copy_from_slice(yb.row(r));
                dx_ref.row_mut(b * h + r).copy_from_slice(dxb.row(r));
            }
        }

        let mut scratch = Scratch::new();
        let mut cache = LayerNormBatchCache::default();
        let mut y = Matrix::zeros(0, 0);
        ln.forward_batch_cache(&ps, &x, &mut y, &mut cache);
        prop_assert!(matrix_bit_eq(&y_ref, &y), "forward diverges");
        let mut g_fused = Grads::new(&ps);
        let mut dx = Matrix::zeros(0, 0);
        ln.backward_batch(&ps, &cache, &dy, batch, &mut GradSink::Fused(&mut g_fused), &mut dx, &mut scratch);
        prop_assert!(grads_bit_eq(&g_ref, &g_fused), "grads diverge");
        prop_assert!(matrix_bit_eq(&dx_ref, &dx), "dx diverges");
    }

    /// Activation: elementwise batched backward ≡ per-block hadamard form.
    #[test]
    fn activation_backward_into_is_bit_identical(
        x in matrix_strategy(4, 6),
        dy in matrix_strategy(4, 6),
    ) {
        for act in [Activation::Relu, Activation::Gelu, Activation::Tanh, Activation::Identity] {
            let (_, cache) = act.forward(&x);
            let dx_ref = act.backward(&cache, &dy);
            let mut dx = Matrix::zeros(0, 0);
            act.backward_into(&x, &dy, &mut dx);
            prop_assert!(matrix_bit_eq(&dx_ref, &dx), "{act:?} diverges");
        }
    }
}

/// Attention: batched training forward/backward ≡ sequential per-block,
/// bitwise, across several geometries and a warm (reused) cache.
#[test]
fn attention_batch_is_bit_identical() {
    for (seed, seq, d_model, heads, batch) in [
        (0u64, 4, 8, 2, 3),
        (1, 3, 6, 3, 2),
        (2, 5, 8, 4, 1),
        (3, 2, 4, 2, 4),
    ] {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mha = MultiHeadAttention::new(&mut ps, "a", d_model, heads, &mut rng);
        let mut scratch = Scratch::new();
        let mut cache = mirage_nn::attention::AttentionBatchCache::default();
        // Two rounds through the same retained cache: the second round is
        // the warm path the steady-state update loop runs.
        for round in 0..2u64 {
            let mut xr = StdRng::seed_from_u64(seed ^ (round << 8) ^ 0xA11);
            let x = Matrix::xavier(batch * seq, d_model, &mut xr);
            let dy = Matrix::xavier(batch * seq, d_model, &mut xr);

            let mut g_ref = Grads::new(&ps);
            let mut y_ref = Matrix::zeros(batch * seq, d_model);
            let mut dx_ref = Matrix::zeros(batch * seq, d_model);
            for b in 0..batch {
                let (yb, c) = mha.forward(&ps, &block(&x, b, seq));
                let dxb = mha.backward(&ps, &c, &block(&dy, b, seq), &mut g_ref);
                for r in 0..seq {
                    y_ref.row_mut(b * seq + r).copy_from_slice(yb.row(r));
                    dx_ref.row_mut(b * seq + r).copy_from_slice(dxb.row(r));
                }
            }

            let mut y = Matrix::zeros(0, 0);
            mha.forward_batch_cache(&ps, &x, batch, &mut y, &mut cache, &mut scratch);
            assert!(
                matrix_bit_eq(&y_ref, &y),
                "forward diverges (round {round})"
            );
            let mut g_fused = Grads::new(&ps);
            let mut dx = Matrix::zeros(0, 0);
            mha.backward_batch(
                &ps,
                &cache,
                &dy,
                batch,
                &mut GradSink::Fused(&mut g_fused),
                &mut dx,
                &mut scratch,
            );
            assert!(
                grads_bit_eq(&g_ref, &g_fused),
                "grads diverge (round {round})"
            );
            assert!(matrix_bit_eq(&dx_ref, &dx), "dx diverges (round {round})");
        }
    }
}

/// Full encoder: batched training ≡ sequential per-block, bitwise, with a
/// per-block sink folding to the fused result.
#[test]
fn transformer_batch_train_is_bit_identical() {
    for (seed, seq, batch) in [(0u64, 3, 3), (1, 4, 2), (2, 2, 1), (3, 3, 5)] {
        let cfg = TransformerConfig {
            input_dim: 5,
            seq_len: 4,
            d_model: 8,
            heads: 2,
            layers: 2,
            ff_mult: 2,
        };
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let enc = mirage_nn::transformer::TransformerEncoder::new(&mut ps, "t", cfg, &mut rng);
        let xs = Matrix::xavier(batch * seq, cfg.input_dim, &mut rng);
        let d_pooled = Matrix::xavier(batch, cfg.d_model, &mut rng);

        let mut g_ref = Grads::new(&ps);
        let mut pooled_ref = Matrix::zeros(batch, cfg.d_model);
        let mut dx_ref = Matrix::zeros(batch * seq, cfg.input_dim);
        for b in 0..batch {
            let (yb, c) = enc.forward(&ps, &block(&xs, b, seq));
            pooled_ref.row_mut(b).copy_from_slice(yb.row(0));
            let dp = Matrix::from_fn(1, cfg.d_model, |_, c2| d_pooled.get(b, c2));
            let dxb = enc.backward(&ps, &c, &dp, &mut g_ref);
            for r in 0..seq {
                dx_ref.row_mut(b * seq + r).copy_from_slice(dxb.row(r));
            }
        }

        let mut scratch = Scratch::new();
        let mut cache = mirage_nn::transformer::TransformerBatchCache::default();
        let mut pooled = Matrix::zeros(0, 0);
        enc.forward_batch_train(&ps, &xs, batch, &mut pooled, &mut cache, &mut scratch);
        assert!(
            matrix_bit_eq(&pooled_ref, &pooled),
            "pooled diverges (seed {seed})"
        );

        let mut g_fused = Grads::new(&ps);
        let mut dx = Matrix::zeros(0, 0);
        enc.backward_batch(
            &ps,
            &cache,
            &xs,
            &d_pooled,
            &mut GradSink::Fused(&mut g_fused),
            &mut dx,
            &mut scratch,
        );
        assert!(
            grads_bit_eq(&g_ref, &g_fused),
            "grads diverge (seed {seed})"
        );
        assert!(matrix_bit_eq(&dx_ref, &dx), "dx diverges (seed {seed})");

        let mut per_block = vec![Grads::new(&ps); batch];
        let mut dx2 = Matrix::zeros(0, 0);
        enc.backward_batch(
            &ps,
            &cache,
            &xs,
            &d_pooled,
            &mut GradSink::PerBlock(&mut per_block),
            &mut dx2,
            &mut scratch,
        );
        let folded = fold_ascending(&ps, &per_block);
        assert!(
            grads_bit_eq(&g_fused, &folded),
            "per-block fold diverges (seed {seed})"
        );
        assert!(matrix_bit_eq(&dx, &dx2));
    }
}

/// Dense MoE and the foundation dispatch: batched training ≡ sequential
/// per-block, bitwise.
#[test]
fn moe_and_foundation_batch_train_are_bit_identical() {
    let cfg = TransformerConfig {
        input_dim: 4,
        seq_len: 3,
        d_model: 4,
        heads: 2,
        layers: 1,
        ff_mult: 2,
    };
    for (seed, batch) in [(0u64, 3), (1, 2)] {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let moe = MoEFoundation::new(&mut ps, "m", cfg, 2, GatingKind::Dense, &mut rng);
        let seq = cfg.seq_len;
        let xs = Matrix::xavier(batch * seq, cfg.input_dim, &mut rng);
        let d_out = Matrix::xavier(batch, cfg.d_model, &mut rng);

        let mut g_ref = Grads::new(&ps);
        let mut out_ref = Matrix::zeros(batch, cfg.d_model);
        let mut dx_ref = Matrix::zeros(batch * seq, cfg.input_dim);
        for b in 0..batch {
            let (yb, c) = moe.forward(&ps, &block(&xs, b, seq));
            out_ref.row_mut(b).copy_from_slice(yb.row(0));
            let dp = Matrix::from_fn(1, cfg.d_model, |_, c2| d_out.get(b, c2));
            let dxb = moe.backward(&ps, &c, &dp, &mut g_ref);
            for r in 0..seq {
                dx_ref.row_mut(b * seq + r).copy_from_slice(dxb.row(r));
            }
        }

        let mut scratch = Scratch::new();
        let mut cache = mirage_nn::moe::MoEBatchCache::default();
        let mut out = Matrix::zeros(0, 0);
        moe.forward_batch_train(&ps, &xs, batch, &mut out, &mut cache, &mut scratch);
        assert!(matrix_bit_eq(&out_ref, &out), "moe forward diverges");
        let mut g_fused = Grads::new(&ps);
        let mut dx = Matrix::zeros(0, 0);
        moe.backward_batch(
            &ps,
            &cache,
            &xs,
            &d_out,
            &mut GradSink::Fused(&mut g_fused),
            &mut dx,
            &mut scratch,
        );
        assert!(grads_bit_eq(&g_ref, &g_fused), "moe grads diverge");
        assert!(matrix_bit_eq(&dx_ref, &dx), "moe dx diverges");
    }

    // Foundation dispatch, both batched-capable kinds.
    for kind in [
        FoundationKind::Transformer,
        FoundationKind::MoE { experts: 2 },
    ] {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(9);
        let net = FoundationNet::new(&mut ps, "f", kind, cfg, &mut rng);
        assert!(net.supports_batched_train());
        let (batch, seq) = (2, cfg.seq_len);
        let xs = Matrix::xavier(batch * seq, cfg.input_dim, &mut rng);
        let d_out = Matrix::xavier(batch, cfg.d_model, &mut rng);

        let mut g_ref = Grads::new(&ps);
        for b in 0..batch {
            let (_, c) = net.forward(&ps, &block(&xs, b, seq));
            let dp = Matrix::from_fn(1, cfg.d_model, |_, c2| d_out.get(b, c2));
            net.backward(&ps, &c, &dp, &mut g_ref);
        }

        let mut scratch = Scratch::new();
        let mut cache = FoundationBatchCache::default();
        let mut out = Matrix::zeros(0, 0);
        net.forward_batch_train(&ps, &xs, batch, &mut out, &mut cache, &mut scratch);
        let mut g_fused = Grads::new(&ps);
        let mut dx = Matrix::zeros(0, 0);
        net.backward_batch(
            &ps,
            &cache,
            &xs,
            &d_out,
            &mut GradSink::Fused(&mut g_fused),
            &mut dx,
            &mut scratch,
        );
        assert!(grads_bit_eq(&g_ref, &g_fused), "{kind:?} grads diverge");
    }

    // Top-1 MoE declares no batched path (falls back to per-sample).
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(10);
    let top1 = FoundationNet::new(
        &mut ps,
        "f",
        FoundationKind::MoETopOne { experts: 2 },
        cfg,
        &mut rng,
    );
    assert!(!top1.supports_batched_train());
}

/// Warm `Grads` reuse: reset + re-accumulate must be bit-identical to a
/// fresh accumulator (copy-on-first-touch, not zero-then-add).
#[test]
fn grads_reset_reuse_is_bit_identical() {
    let mut ps = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(21);
    let lin = Linear::new(&mut ps, "l", 4, 3, &mut rng);
    let x = Matrix::xavier(6, 4, &mut rng);
    let dy = Matrix::xavier(6, 3, &mut rng);
    let mut scratch = Scratch::new();

    let mut warm = Grads::new(&ps);
    let mut dx = Matrix::zeros(0, 0);
    // Poison the warm accumulator with a different pass, then reset.
    let other = Matrix::xavier(6, 3, &mut rng);
    lin.backward_batch(
        &ps,
        &x,
        &other,
        3,
        &mut GradSink::Fused(&mut warm),
        &mut dx,
        &mut scratch,
    );
    warm.reset();
    lin.backward_batch(
        &ps,
        &x,
        &dy,
        3,
        &mut GradSink::Fused(&mut warm),
        &mut dx,
        &mut scratch,
    );

    let mut fresh = Grads::new(&ps);
    lin.backward_batch(
        &ps,
        &x,
        &dy,
        3,
        &mut GradSink::Fused(&mut fresh),
        &mut dx,
        &mut scratch,
    );
    assert!(
        grads_bit_eq(&warm, &fresh),
        "warm reuse diverges from fresh"
    );
}
