//! Property-based tests for the tensor and layer algebra, plus the
//! checkpoint envelope's corruption contract: damaged bytes are typed
//! errors, never panics or silently-wrong parameters.

use std::sync::OnceLock;

use mirage_nn::foundation::{FoundationKind, FoundationNet};
use mirage_nn::serialize::{params_from_bytes, params_to_json, seal, KIND_PARAMS};
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::transformer::TransformerEncoder;
use mirage_nn::{Activation, EmbedRowCache, Grads, LayerNorm, Linear, ParamSet, Scratch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

/// One sealed reference checkpoint, built once and shared across
/// corruption cases (the bytes being damaged are always the same —
/// only the damage varies).
fn sealed_reference() -> &'static (ParamSet, Vec<u8>) {
    static SEALED: OnceLock<(ParamSet, Vec<u8>)> = OnceLock::new();
    SEALED.get_or_init(|| {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        ps.alloc("w1", Matrix::xavier(4, 6, &mut rng));
        ps.alloc("b1", Matrix::xavier(1, 6, &mut rng));
        ps.alloc("w2", Matrix::xavier(6, 2, &mut rng));
        let json = params_to_json(&ps).expect("reference params serialize");
        let bytes = seal(KIND_PARAMS, json.as_bytes());
        (ps, bytes)
    })
}

fn params_bitwise_eq(a: &ParamSet, b: &ParamSet) -> bool {
    a.len() == b.len() && a.iter().zip(b.iter()).all(|((_, ma), (_, mb))| ma == mb)
}

proptest! {
    /// (A·B)·C == A·(B·C) within f32 tolerance.
    #[test]
    fn matmul_is_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 5),
        c in matrix_strategy(5, 2),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data().iter().zip(right.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Transpose is an involution and (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_laws(a in matrix_strategy(4, 3), b in matrix_strategy(3, 5)) {
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows are probability distributions, invariant to shifts.
    #[test]
    fn softmax_is_shift_invariant_distribution(a in matrix_strategy(3, 6), shift in -5.0f32..5.0) {
        let s1 = a.softmax_rows();
        let s2 = a.map(|v| v + shift).softmax_rows();
        for r in 0..3 {
            let sum: f32 = s1.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
        }
        for (x, y) in s1.data().iter().zip(s2.data()) {
            prop_assert!((x - y).abs() < 1e-5, "shift changed softmax");
        }
    }

    /// Layer norm always standardizes rows regardless of input scale.
    #[test]
    fn layernorm_standardizes(rows in matrix_strategy(4, 8), scale in 0.1f32..50.0) {
        let mut ps = ParamSet::new();
        let ln = LayerNorm::new(&mut ps, "ln", 8);
        let x = rows.scale(scale);
        let (y, _) = ln.forward(&ps, &x);
        for r in 0..y.rows() {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            prop_assert!(mean.abs() < 1e-3, "row {r} mean {mean}");
        }
    }

    /// Linear layers are affine: f(αx) − f(0) = α(f(x) − f(0)).
    #[test]
    fn linear_is_affine(x in matrix_strategy(1, 6), alpha in -2.0f32..2.0) {
        let mut ps = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new(&mut ps, "l", 6, 4, &mut rng);
        let zero = Matrix::zeros(1, 6);
        let (f0, _) = lin.forward(&ps, &zero);
        let (fx, _) = lin.forward(&ps, &x);
        let (fax, _) = lin.forward(&ps, &x.scale(alpha));
        for i in 0..4 {
            let lhs = fax.get(0, i) - f0.get(0, i);
            let rhs = alpha * (fx.get(0, i) - f0.get(0, i));
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }
    }

    /// Activations are monotone non-decreasing (ReLU, Tanh, Identity).
    #[test]
    fn activations_monotone(a in -5.0f32..5.0, b in -5.0f32..5.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        for act in [Activation::Relu, Activation::Tanh, Activation::Identity] {
            prop_assert!(act.apply(lo) <= act.apply(hi) + 1e-6);
        }
    }

    /// `forward_into` + a reused [`Scratch`] matches the allocating,
    /// cache-returning `forward` **bit for bit** across random shapes and
    /// parameter seeds — the inference fast path must never drift from the
    /// training path.
    #[test]
    fn forward_into_matches_forward_bitwise(
        seed in 0u64..1_000,
        seq in 1usize..6,
        d_sel in 0usize..2,
        layers in 1usize..3,
        experts in 1usize..4,
    ) {
        let d_model = [4usize, 8][d_sel];
        let cfg = TransformerConfig {
            input_dim: 5,
            seq_len: 6,
            d_model,
            heads: 2,
            layers,
            ff_mult: 2,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        // One scratch reused across kinds AND iterations: stale contents
        // from previous takes must never leak into results.
        let mut scratch = Scratch::new();
        let mut out = Matrix::zeros(0, 0);
        for kind in [
            FoundationKind::Transformer,
            FoundationKind::MoE { experts },
            FoundationKind::MoETopOne { experts },
        ] {
            let mut ps = ParamSet::new();
            let net = FoundationNet::new(&mut ps, "f", kind, cfg, &mut rng);
            let x = Matrix::xavier(seq, 5, &mut rng);
            let (reference, _cache) = net.forward(&ps, &x);
            net.forward_into(&ps, &x, &mut out, &mut scratch);
            prop_assert_eq!(&out, &reference, "kind {:?}", kind);
            // Second pass on the warm scratch must be identical too.
            net.forward_into(&ps, &x, &mut out, &mut scratch);
            prop_assert_eq!(&out, &reference, "warm rerun, kind {:?}", kind);
        }
    }

    /// The blocked `matmul_into` equals the definitionally-simple triple
    /// loop bit for bit (the accumulation order contract).
    #[test]
    fn blocked_matmul_matches_naive_accumulation(
        m in 1usize..7, k in 1usize..260, n in 1usize..140, seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::xavier(m, k, &mut rng);
        let b = Matrix::xavier(k, n, &mut rng);
        let mut out = Matrix::zeros(0, 0);
        a.matmul_into(&b, &mut out);
        let naive = Matrix::from_fn(m, n, |r, c| {
            let mut acc = 0.0f32;
            for i in 0..k {
                acc += a.get(r, i) * b.get(i, c);
            }
            acc
        });
        prop_assert_eq!(out, naive);
    }

    /// One batched forward over `n` row-stacked states equals `n`
    /// sequential `forward_into` calls **bit for bit**, for every
    /// foundation kind, with and without per-episode embed caches — the
    /// lockstep episode engine must never drift from per-episode
    /// execution.
    #[test]
    fn forward_batch_into_matches_sequential_bitwise(
        seed in 0u64..500,
        batch in 1usize..5,
        seq in 1usize..5,
        experts in 1usize..3,
    ) {
        let cfg = TransformerConfig {
            input_dim: 5,
            seq_len: 5,
            d_model: 8,
            heads: 2,
            layers: 2,
            ff_mult: 2,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut scratch = Scratch::new();
        let mut seq_out = Matrix::zeros(0, 0);
        let mut batch_out = Matrix::zeros(0, 0);
        let mut cached_out = Matrix::zeros(0, 0);
        for kind in [
            FoundationKind::Transformer,
            FoundationKind::MoE { experts },
            FoundationKind::MoETopOne { experts },
        ] {
            let mut ps = ParamSet::new();
            let net = FoundationNet::new(&mut ps, "f", kind, cfg, &mut rng);
            let states: Vec<Matrix> = (0..batch).map(|_| Matrix::xavier(seq, 5, &mut rng)).collect();
            let mut stacked = Matrix::zeros(batch * seq, 5);
            for (b, s) in states.iter().enumerate() {
                for r in 0..seq {
                    stacked.row_mut(b * seq + r).copy_from_slice(s.row(r));
                }
            }
            net.forward_batch_into(&ps, &stacked, batch, &mut batch_out, &mut scratch);
            prop_assert_eq!(batch_out.shape(), (batch, 8));
            let mut caches: Vec<EmbedRowCache> = (0..batch).map(|_| EmbedRowCache::new()).collect();
            // Cold caches, then a warm rerun on identical inputs (full reuse).
            for _ in 0..2 {
                net.forward_batch_cached_into(
                    &ps, &stacked, batch, &mut cached_out, &mut scratch, &mut caches,
                );
                prop_assert_eq!(&cached_out, &batch_out, "cached batch, kind {:?}", kind);
            }
            for (b, s) in states.iter().enumerate() {
                net.forward_into(&ps, s, &mut seq_out, &mut scratch);
                prop_assert_eq!(seq_out.row(0), batch_out.row(b), "row {} kind {:?}", b, kind);
            }
        }
    }

    /// The embed-row cache across *shifting* history windows (the actual
    /// decision-loop access pattern: drop the oldest row, append a new
    /// one) stays bit-identical to the uncached forward, tick after tick.
    #[test]
    fn embed_row_cache_tracks_shifting_windows_bitwise(
        seed in 0u64..500,
        seq in 2usize..6,
        ticks in 2usize..6,
    ) {
        let cfg = TransformerConfig {
            input_dim: 4,
            seq_len: 6,
            d_model: 8,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ps = ParamSet::new();
        let enc = TransformerEncoder::new(&mut ps, "t", cfg, &mut rng);
        let mut window = Matrix::xavier(seq, 4, &mut rng);
        let mut scratch = Scratch::new();
        let mut cache = EmbedRowCache::new();
        let mut plain = Matrix::zeros(0, 0);
        let mut cached = Matrix::zeros(0, 0);
        for _ in 0..ticks {
            enc.forward_into(&ps, &window, &mut plain, &mut scratch);
            enc.forward_cached_into(&ps, &window, &mut cached, &mut scratch, &mut cache);
            prop_assert_eq!(&cached, &plain);
            // Shift: rows move up one, a fresh row arrives at the bottom.
            let fresh = Matrix::xavier(1, 4, &mut rng);
            for r in 0..seq - 1 {
                let next = window.row(r + 1).to_vec();
                window.row_mut(r).copy_from_slice(&next);
            }
            window.row_mut(seq - 1).copy_from_slice(fresh.row(0));
        }
    }

    /// Truncating a valid sealed checkpoint at *any* byte offset is a
    /// typed error — never a panic, never a partial `ParamSet`.
    #[test]
    fn truncated_checkpoints_are_typed_errors(frac in 0.0f64..1.0) {
        let (_, bytes) = sealed_reference();
        let cut = ((bytes.len() as f64) * frac) as usize; // 0..len, never the full file
        let cut = cut.min(bytes.len() - 1);
        prop_assert!(
            params_from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} must not load",
            bytes.len()
        );
    }

    /// Flipping any single bit of a sealed checkpoint either fails with
    /// a typed error or (if the flip is somehow harmless) loads the
    /// *exact* original parameters — the loader never hands back
    /// silently-wrong weights.
    #[test]
    fn bit_flipped_checkpoints_never_load_wrong_params(
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let (original, bytes) = sealed_reference();
        let pos = (((bytes.len() - 1) as f64) * byte_frac) as usize;
        let mut flipped = bytes.clone();
        flipped[pos] ^= 1 << bit;
        match params_from_bytes(&flipped) {
            Err(_) => {}
            Ok(loaded) => prop_assert!(
                params_bitwise_eq(&loaded, original),
                "flip at byte {pos} bit {bit} loaded different params"
            ),
        }
    }

    /// Arbitrary garbage bytes never panic the loader; anything that is
    /// not a legacy headerless-JSON candidate (leading `{{`) must be a
    /// typed error.
    #[test]
    fn garbage_bytes_never_panic_the_loader(garbage in prop::collection::vec(0u8..255, 0..512)) {
        let result = params_from_bytes(&garbage);
        if garbage.first() != Some(&b'{') {
            prop_assert!(result.is_err(), "garbage without the legacy JSON marker must not load");
        }
        // Leading '{' goes down the legacy JSON path, where random bytes
        // still only ever produce a typed parse error (reaching here at
        // all proves no panic).
    }

    /// Gradient accumulation is commutative: merge(a, b) == merge(b, a).
    #[test]
    fn grads_merge_commutes(v1 in prop::collection::vec(-2.0f32..2.0, 6),
                            v2 in prop::collection::vec(-2.0f32..2.0, 6)) {
        let mut ps = ParamSet::new();
        let id = ps.alloc("w", Matrix::zeros(2, 3));
        let mk = |v: &[f32]| {
            let mut g = Grads::new(&ps);
            g.accumulate(id, Matrix::from_vec(2, 3, v.to_vec()));
            g
        };
        let mut ab = mk(&v1);
        ab.merge(mk(&v2));
        let mut ba = mk(&v2);
        ba.merge(mk(&v1));
        for (x, y) in ab.get(id).unwrap().data().iter().zip(ba.get(id).unwrap().data()) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }
}
