//! Allocation-regression test: the steady-state decision loop — simulator
//! step → `sample_into` → `encode_into` → `write_matrix` → `q_values` —
//! must perform **zero heap allocations** after warm-up, and so must the
//! *batched* lockstep loop (N simulators → one row-stacked batch →
//! `q_values_batch` with per-episode embed-row caches).
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! drives 1 000 decision steps (with live completions and job starts
//! inside the window) and asserts the allocation counter did not move,
//! then repeats the claim for the batched engine. The warm-up phases are
//! what the `Scratch`/`*_into` reuse contract calls out: first passes
//! size every buffer, steady state then recycles them.
//!
//! This file intentionally contains a single test: the counter is global,
//! and a concurrently running test would pollute it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mirage_core::state::{
    EncoderScratch, PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS,
};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::{Matrix, Scratch};
use mirage_rl::{ActionEncoding, BatchInferCache, DualHeadConfig, DualHeadNet};
use mirage_sim::{ClusterSnapshot, SimConfig, Simulator};
use mirage_trace::{JobRecord, HOUR};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_decision_loop_is_allocation_free() {
    const NODES: u32 = 16;
    const K: usize = 12;
    const STEP: i64 = 600;

    // A heavily oversubscribed single-user backlog, fully submitted up
    // front: completions keep freeing nodes and queued jobs keep starting
    // throughout the measured window, so the zero-allocation claim covers
    // live event processing and scheduling passes, not an idle clock.
    let trace: Vec<JobRecord> = (0..2000)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                0,
                (i as i64 * 43) % (24 * HOUR),
                1 + (i % 3) as u32,
                8 * HOUR,
                4 * HOUR + (i as i64 % 7) * 1800,
            )
        })
        .collect();

    let mut sim = Simulator::new(SimConfig::new(NODES));
    sim.load_trace(&trace);

    let net = DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: STATE_VARS,
            seq_len: K,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: 11,
    });

    let encoder = StateEncoder::new(NODES, 48 * HOUR);
    let mut history = StateHistory::new(K);
    let pred = PredecessorState {
        nodes: 1,
        timelimit: 48 * HOUR,
        queue_time: 0,
        elapsed: 12 * HOUR,
    };
    let succ = SuccessorSpec {
        nodes: 1,
        timelimit: 48 * HOUR,
    };
    let mut snap = ClusterSnapshot::default();
    let mut enc_scratch = EncoderScratch::default();
    let mut matrix = Matrix::zeros(0, 0);
    let mut scratch = Scratch::new();

    let decision_step = |sim: &mut Simulator,
                         history: &mut StateHistory,
                         snap: &mut ClusterSnapshot,
                         enc_scratch: &mut EncoderScratch,
                         matrix: &mut Matrix,
                         scratch: &mut Scratch| {
        sim.step(STEP);
        sim.sample_into(snap);
        history.push(encoder.encode_into(snap, &pred, &succ, enc_scratch));
        history.write_matrix(matrix);
        let q = net.q_values(matrix, scratch);
        let m = sim.metrics(); // O(1), also exercised in the loop
        u64::from(q[1] > q[0]) + m.completed_jobs as u64
    };

    // Warm-up: all arrivals enter the queue, buffers reach their peak
    // shapes, the single user records its first completion, and the
    // scratch arena settles into its steady take/give cycle.
    let mut checksum = 0u64;
    for _ in 0..300 {
        checksum += decision_step(
            &mut sim,
            &mut history,
            &mut snap,
            &mut enc_scratch,
            &mut matrix,
            &mut scratch,
        );
    }
    assert!(
        sim.metrics().completed_jobs > 0,
        "warm-up must include completions so the measured window is live"
    );
    assert!(
        !snap.queued.is_empty(),
        "measured window must run against a live backlog"
    );

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        checksum += decision_step(
            &mut sim,
            &mut history,
            &mut snap,
            &mut enc_scratch,
            &mut matrix,
            &mut scratch,
        );
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;

    // Completions and starts really happened inside the measured window.
    assert!(
        sim.metrics().completed_jobs > 50,
        "window was not live: only {} completions",
        sim.metrics().completed_jobs
    );
    assert_eq!(
        delta, 0,
        "steady-state decision loop allocated {delta} times across 1000 steps (checksum {checksum})"
    );

    // Phase 2: the batched lockstep loop. Four independent simulators
    // replay the same backlog on the timeline phase 1 proved
    // allocation-free (a staggered start would shift each lane's
    // internal Vec capacity doublings into the measured window and
    // charge simulator growth to the batched NN path under test), their
    // state matrices are row-stacked into one batch, and a single
    // `q_values_batch` (with per-episode embed-row caches) answers every
    // tick. After its own warm-up the whole thing must also be
    // allocation-free.
    const BATCH: usize = 4;
    let mut lanes: Vec<(Simulator, StateHistory, ClusterSnapshot, EncoderScratch)> = (0..BATCH)
        .map(|_| {
            let mut sim = Simulator::new(SimConfig::new(NODES));
            sim.load_trace(&trace);
            (
                sim,
                StateHistory::new(K),
                ClusterSnapshot::default(),
                EncoderScratch::default(),
            )
        })
        .collect();
    let mut stacked = Matrix::zeros(BATCH * K, STATE_VARS);
    let mut cache = BatchInferCache::new();
    let mut vals: Vec<[f32; 2]> = Vec::new();

    let batched_step =
        |lanes: &mut Vec<(Simulator, StateHistory, ClusterSnapshot, EncoderScratch)>,
         stacked: &mut Matrix,
         cache: &mut BatchInferCache,
         vals: &mut Vec<[f32; 2]>,
         scratch: &mut Scratch| {
            for (l, (sim, history, snap, enc)) in lanes.iter_mut().enumerate() {
                sim.step(STEP);
                sim.sample_into(snap);
                history.push(encoder.encode_into(snap, &pred, &succ, enc));
                history.write_matrix_rows(stacked, l * K);
            }
            net.q_values_batch(stacked, BATCH, vals, scratch, cache);
            vals.iter().map(|&q| u64::from(q[1] > q[0])).sum::<u64>()
        };

    for _ in 0..300 {
        checksum += batched_step(
            &mut lanes,
            &mut stacked,
            &mut cache,
            &mut vals,
            &mut scratch,
        );
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        checksum += batched_step(
            &mut lanes,
            &mut stacked,
            &mut cache,
            &mut vals,
            &mut scratch,
        );
    }
    let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert!(
        lanes
            .iter()
            .any(|(sim, ..)| sim.metrics().completed_jobs > 50),
        "batched window was not live"
    );
    assert_eq!(
        delta, 0,
        "steady-state batched loop allocated {delta} times across 1000 ticks (checksum {checksum})"
    );
}
