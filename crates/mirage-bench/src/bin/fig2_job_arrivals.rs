//! Figure 2: job arrival distribution per month on the three clusters.
//!
//! Paper: mean ± std of monthly job counts are 2 955 ± 1 289 (V100),
//! 8 378 ± 20 177 (RTX; the paper's std is inflated by the short-job
//! bursts), 4 377 ± 659 (A100), with "no clear pattern of job arrival at a
//! month granularity".

use mirage_bench::prepare_cluster;
use mirage_trace::stats::{monthly_count_mean_std, monthly_job_counts};
use mirage_trace::ClusterProfile;

fn main() {
    println!("Figure 2: Job Arrival Distribution (jobs per month, cleaned trace)");
    let paper = [(2955.0, 1289.0), (8378.0, 20177.0), (4377.0, 659.0)];
    for (profile, (p_mean, p_std)) in ClusterProfile::all().iter().zip(paper) {
        let pc = prepare_cluster(profile, None, 42);
        let counts = monthly_job_counts(&pc.jobs);
        let (mean, std) = monthly_count_mean_std(&pc.jobs);
        println!("\n{}:", profile.name);
        print!("  month:");
        for m in counts.keys() {
            print!(" {:>6}", m + 1);
        }
        println!();
        print!("  jobs :");
        for c in counts.values() {
            print!(" {c:>6}");
        }
        println!();
        println!("  measured {mean:.0} ± {std:.0} / month   (paper: {p_mean:.0} ± {p_std:.0})");
    }
}
