//! Figure 9: average interruption of a pair of 48-hour **eight-node** jobs
//! on the three clusters, under heavy and medium load.
//!
//! Paper shapes: XGBoost/RF reduce interruption by 37.5 % / 40.0 % /
//! 82.5 % across clusters; MoE+DQN 32.2 % / 28.2 % / 77.5 % (slightly
//! behind the ensembles); transformer+PG best on average (43.9 % / 34.9 %
//! / 90.1 %); medium load: ensembles nearly eliminate interruption.

use mirage_bench::{
    interruption_experiment, prepare_cluster, print_panel, print_reductions, ExperimentScale,
    FigureMetric,
};
use mirage_core::LoadLevel;
use mirage_trace::ClusterProfile;

fn main() {
    let scale = ExperimentScale::default();
    let mut reports = Vec::new();
    for profile in ClusterProfile::all() {
        eprintln!("[fig9] preparing + training on {} ...", profile.name);
        let pc = prepare_cluster(&profile, None, 42);
        let exp = interruption_experiment(&pc, 8, 43, scale);
        reports.push((profile.name.clone(), exp.report));
    }
    let refs: Vec<(String, &mirage_core::EvalReport)> =
        reports.iter().map(|(n, r)| (n.clone(), r)).collect();
    print_panel(
        "Figure 9(a): avg interruption, 48h 8-node pairs",
        FigureMetric::Interruption,
        LoadLevel::Heavy,
        &refs,
    );
    print_reductions(LoadLevel::Heavy, &refs);
    print_panel(
        "Figure 9(b): avg interruption, 48h 8-node pairs",
        FigureMetric::Interruption,
        LoadLevel::Medium,
        &refs,
    );
    print_reductions(LoadLevel::Medium, &refs);
}
