//! Probes the load-level mix of validation episodes per cluster: runs only
//! the (free) reactive baseline and reports how many sampled episodes land
//! in each §6 load class. Useful when tuning cluster profiles or episode
//! warm-ups.

use mirage_bench::{busiest_user, prepare_cluster};
use mirage_core::{
    evaluate, EpisodeConfig, EvalConfig, LoadLevel, ProvisionPolicy, ReactivePolicy,
};
use mirage_sim::SimConfig;
use mirage_trace::ClusterProfile;

fn main() {
    for profile in ClusterProfile::all() {
        let pc = prepare_cluster(&profile, None, 42);
        for pair_nodes in [1u32, 8] {
            let episode = EpisodeConfig {
                pair_nodes,
                pair_user: busiest_user(&pc.jobs),
                ..EpisodeConfig::default()
            };
            let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(ReactivePolicy)];
            let mut backend = SimConfig::builder().nodes(pc.profile.nodes).build();
            let report = evaluate(
                &mut methods,
                &mut backend,
                &pc.jobs,
                pc.val_range,
                &EvalConfig {
                    episode,
                    n_episodes: 40,
                    seed: 42 ^ 0xEE,
                },
            );
            let h = report.episodes_at(LoadLevel::Heavy);
            let m = report.episodes_at(LoadLevel::Medium);
            let l = report.episodes_at(LoadLevel::Light);
            let s = report.summarize("reactive", LoadLevel::Heavy);
            println!(
                "{:5} {}n: heavy={h:2} medium={m:2} light={l:2}  heavy avg wait {:6.1}h",
                profile.name, pair_nodes, s.avg_interruption_h
            );
        }
    }
}
