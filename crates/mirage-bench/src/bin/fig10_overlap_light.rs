//! Figure 10: average overlap under **light** load, for 1-node and 8-node
//! pairs.
//!
//! Paper shape: proactive methods pay a few hours of overlap where the
//! reactive baseline pays none; the ensembles and transformer+PG introduce
//! roughly 2× the overlap of MoE+DQN — the trade-off that makes MoE+DQN
//! Mirage's default model (§6.3).

use mirage_bench::{
    interruption_experiment, prepare_cluster, print_panel, ExperimentScale, FigureMetric,
};
use mirage_core::LoadLevel;
use mirage_trace::ClusterProfile;

fn main() {
    let scale = ExperimentScale::default();
    for (pair_nodes, panel) in [
        (1u32, "Figure 10(a): one node"),
        (8u32, "Figure 10(b): eight nodes"),
    ] {
        let mut reports = Vec::new();
        for profile in ClusterProfile::all() {
            eprintln!(
                "[fig10] {} with {}-node pairs ...",
                profile.name, pair_nodes
            );
            let pc = prepare_cluster(&profile, None, 42);
            let exp = interruption_experiment(&pc, pair_nodes, 44 + u64::from(pair_nodes), scale);
            reports.push((profile.name.clone(), exp.report));
        }
        let refs: Vec<(String, &mirage_core::EvalReport)> =
            reports.iter().map(|(n, r)| (n.clone(), r)).collect();
        print_panel(panel, FigureMetric::Overlap, LoadLevel::Light, &refs);
    }
}
