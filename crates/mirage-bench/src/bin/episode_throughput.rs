//! Decision-loop throughput benchmark with a machine-readable output.
//!
//! Measures the steady-state provisioning decision loop — simulator step →
//! snapshot → state matrix → NN inference → action — three ways on the
//! same workload:
//!
//! * **before**: the allocating, cache-returning path the training code
//!   uses (`sample()` + `encode()` + `matrix()` + `q_forward()`),
//! * **after**: the zero-allocation serving path (`sample_into` +
//!   `encode_into` + `write_matrix` + `q_values` over a warm `Scratch`),
//! * **batched**: `--batch N` independent episode lanes stepped in
//!   lockstep, their state matrices row-stacked into **one**
//!   `q_values_batch` forward per tick (with per-lane embed-row caches) —
//!   the batched episode engine's serving shape.
//!
//! All paths run identical arithmetic (enforced by bit-identity tests,
//! and re-asserted per lane inside this binary), so the in-binary ratios
//! isolate allocation/copy overhead and batching amortization; the
//! kernel-level speedups (matmul microkernel, fast tanh, scheduler
//! pass-skip) benefit *every* path and only show against an older
//! checkout. Results land in `BENCH_episode_throughput.json` (schema:
//! `crates/mirage-bench/README.md`) so the perf trajectory of this loop
//! is recorded across PRs; the committed copy additionally carries a
//! `seed_baseline` block measured by running this same driver against
//! the pre-PR tree in a git worktree. `MIRAGE_QUICK=1` shrinks the
//! iteration counts for CI smoke runs; `--workers W` replicates the
//! batched loop across W std threads (each with its own lanes and
//! network clone) and reports the aggregate.
//!
//! The **training throughput** lane measures the full online-DQN
//! training stack — ε-greedy collection, class-balanced replay pushes,
//! mini-batch updates — end to end over an identical episode diet, two
//! ways: the *pre-refactor sequential loop shape* (one episode at a
//! time, every decision a full uncached `q_values` forward) vs the
//! lockstep batched collection that replaced it (`collect_lanes =
//! --batch`, one `q_values_batch` forward + embed-row caches per tick).
//! Reported as trained decisions per second for each.
//!
//! The **multi-service** lane runs the shared-cluster provisioning
//! harness (`evaluate_multiservice`) on the canonical diurnal and bursty
//! scenarios: N services with heterogeneous SLOs drive traffic-sized
//! predecessor/successor pairs through one cluster, and an
//! experiment-scale DQN is scored against the uniform-share,
//! greedy-per-service and shortest-queue baselines on identical seeded
//! clusters. The per-method mean rewards land in the
//! `multiservice_*` JSON fields.
//!
//! The **chaos** lane sweeps the fault-injection severities
//! (none / moderate / severe) through `evaluate_chaos`: the RL method and
//! the reactive heuristic run the same episodes on identically seeded
//! crash tapes, and the per-severity mean rewards, interruption hours and
//! fault totals (evictions, retries, retry successes) land in the
//! `chaos_*` JSON fields. The severe lane must actually inject — ≥ 1
//! eviction and ≥ 1 successful backoff retry are asserted, so a silently
//! disarmed fault model fails the bench instead of logging zeros.
//!
//! The **hetero** lane sweeps the pool scenarios (balanced | scarce)
//! through `evaluate_hetero`: the RL method and the four classic
//! baselines (FCFS, SJF, shortest-queue, pool-greedy) run the same
//! episodes on identically seeded placement tapes, and the per-scenario
//! mean rewards plus placement totals (spanning placements, contention
//! slowdowns) land in the `hetero_*` JSON fields. Each scenario must
//! actually contend — ≥ 1 spanning placement and ≥ 1 slowdown are
//! asserted, so a silently disarmed pool model fails the bench instead
//! of logging zeros.
//!
//! The **resilience** lane drills the crash-safe runtime end to end: a
//! checkpointed online-DQN run halts at a chunk boundary, the checkpoint
//! is round-tripped (size + save/load cost recorded), and the run is
//! resumed to completion; a NaN-poisoned net behind `GuardedPolicy` must
//! degrade every decision to the fallback (counted); and a seeded
//! `PanicPlan` crashes pool tasks that supervision must retry to a
//! result-identical finish. The counters land in the `resilience_*` JSON
//! fields, and a lane that fails to inject (zero fallbacks or zero
//! recovered panics) fails the bench.

use std::time::Instant;

use mirage_bench::quick_mode;
use mirage_core::chaos::{evaluate_chaos, ChaosConfig, ChaosReport, ChaosSeverity};
use mirage_core::checkpoint::{CheckpointConfig, DqnTrainCheckpoint};
use mirage_core::episode::{run_episode, Action, EpisodeConfig};
use mirage_core::hetero::{classic_baselines, evaluate_hetero, HeteroConfig, HeteroReport};
use mirage_core::multiservice::{
    bursty_scenario, diurnal_scenario, evaluate_multiservice, GreedyPerServicePolicy,
    MultiMethodSummary, MultiServiceConfig, MultiServicePolicy, MultiServiceReport,
    RlServicePolicy, ShortestQueuePolicy, UniformSharePolicy,
};
use mirage_core::policy::{DqnPolicy, ProvisionPolicy, ReactivePolicy};
use mirage_core::state::{
    EncoderScratch, PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS,
};
use mirage_core::train::{
    dqn_episode_seed, episode_window, sample_episode_starts, train_dqn_online_checkpointed,
    train_dqn_online_traced, OfflineData, TrainConfig,
};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::{Matrix, Scratch};
use mirage_rl::{
    ActionEncoding, BalancedReplay, BatchInferCache, DqnAgent, DqnConfig, DualHeadConfig,
    DualHeadNet, Experience, ExploreLane, GuardedPolicy,
};
use mirage_sim::{
    AnyBackend, BackendKind, BackendPool, ClusterBackend, ClusterSnapshot, FaultStats, PanicPlan,
    SimConfig, Simulator,
};
use mirage_trace::{
    clean_trace, ClusterProfile, JobRecord, SynthConfig, TraceGenerator, DAY, HOUR,
};

/// History length of the decision state matrix (experiment scale).
const HISTORY_K: usize = 12;
/// Seconds of simulated time between decisions (10-minute cadence).
const DECISION_INTERVAL: i64 = 600;
/// Default lockstep lane count for the batched loop: 8 lanes measured
/// fastest end to end (wider batches grow the working set past L1/L2 and
/// give the amortization back to cache misses).
const DEFAULT_BATCH: usize = 8;
/// Net seed of the training-throughput lane: chosen (and asserted below)
/// so the untrained greedy action on this workload is *wait*, putting
/// the lane in the fine-tuning regime where episodes run their decision
/// horizon instead of submitting on the first tick. Re-checked whenever
/// STATE_VARS widens (fault and hetero features appended; the wider
/// input reshuffles the seeded init); 2 holds the regime at the
/// 46-variable width.
const TRAIN_NET_SEED: u64 = 2;
/// Default lockstep lane count for the training lane (`--train-batch`):
/// the training working set carries live simulators, the replay pool and
/// the agent on top of the lanes, so its cache sweet spot sits narrower
/// than the pure decision loop's 8.
const DEFAULT_TRAIN_BATCH: usize = 2;

fn month_trace(profile: &ClusterProfile, seed: u64) -> Vec<JobRecord> {
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = Some(1);
    let raw = TraceGenerator::new(cfg).generate();
    clean_trace(&raw, profile.nodes).0
}

fn experiment_net() -> DualHeadNet {
    // The offline-collection / online-training model shape
    // (`TrainConfig::default()`): d_model 16, 2 heads, 1 layer, k = 12.
    DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: STATE_VARS,
            seq_len: HISTORY_K,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: 7,
    })
}

struct LoopStats {
    decisions_per_sec: f64,
    ns_per_decision: f64,
    /// Defeats dead-code elimination and sanity-checks path agreement.
    submit_count: u64,
}

/// Runs `n` decision steps against a warm simulator. `fast` selects the
/// zero-allocation path; both paths compute identical decisions.
fn decision_loop(
    jobs: &[JobRecord],
    nodes: u32,
    net: &DualHeadNet,
    n: u64,
    fast: bool,
) -> LoopStats {
    let mut sim = Simulator::new(SimConfig::new(nodes));
    sim.load_trace(jobs);
    sim.run_until(3 * DAY); // warm queue/running state

    let encoder = StateEncoder::new(nodes, 48 * HOUR);
    let mut history = StateHistory::new(HISTORY_K);
    let pred = PredecessorState {
        nodes: 1,
        timelimit: 48 * HOUR,
        queue_time: 0,
        elapsed: 12 * HOUR,
    };
    let succ = SuccessorSpec {
        nodes: 1,
        timelimit: 48 * HOUR,
    };

    let mut snap = ClusterSnapshot::default();
    let mut enc_scratch = EncoderScratch::default();
    let mut matrix = Matrix::zeros(0, 0);
    let mut scratch = Scratch::new();
    // Warm-up pass (buffers, caches, branch predictors) outside the timer.
    for _ in 0..(n / 10).max(8) {
        sim.step(DECISION_INTERVAL);
        sim.sample_into(&mut snap);
        history.push(encoder.encode_into(&snap, &pred, &succ, &mut enc_scratch));
        history.write_matrix(&mut matrix);
        let _ = net.q_values(&matrix, &mut scratch);
    }

    let mut submit_count = 0u64;
    let t = Instant::now();
    for _ in 0..n {
        sim.step(DECISION_INTERVAL);
        let q = if fast {
            sim.sample_into(&mut snap);
            history.push(encoder.encode_into(&snap, &pred, &succ, &mut enc_scratch));
            history.write_matrix(&mut matrix);
            net.q_values(&matrix, &mut scratch)
        } else {
            let fresh = sim.sample();
            history.push(encoder.encode(&fresh, &pred, &succ));
            let m = history.matrix();
            net.q_forward(&m).0
        };
        submit_count += u64::from(q[1] > q[0]);
    }
    let elapsed = t.elapsed();
    LoopStats {
        decisions_per_sec: n as f64 / elapsed.as_secs_f64(),
        ns_per_decision: elapsed.as_nanos() as f64 / n as f64,
        submit_count,
    }
}

/// One lockstep episode lane: its own simulator, history window and
/// encoder scratch.
struct Lane {
    sim: Simulator,
    history: StateHistory,
    snap: ClusterSnapshot,
    enc: EncoderScratch,
}

/// Builds `batch` warmed lanes. Every lane independently replays the
/// *same* `base_seed` month trace — the exact single-episode workload
/// the committed baselines measure — so per-lane decision cost is
/// directly comparable to `decisions_per_sec_after` and the batched
/// number isolates batching, not a workload change. (Each lane still
/// steps its own full simulator; nothing is shared or deduplicated.)
fn make_lanes(profile: &ClusterProfile, batch: usize, base_seed: u64) -> Vec<Lane> {
    let jobs = month_trace(profile, base_seed);
    (0..batch)
        .map(|_| {
            let mut sim = Simulator::new(SimConfig::new(profile.nodes));
            sim.load_trace(&jobs);
            sim.run_until(3 * DAY);
            Lane {
                sim,
                history: StateHistory::new(HISTORY_K),
                snap: ClusterSnapshot::default(),
                enc: EncoderScratch::default(),
            }
        })
        .collect()
}

/// Runs `n_ticks` lockstep decision ticks over `batch` lanes. `batched`
/// selects one `q_values_batch` forward per tick (with per-lane
/// embed-row caches) vs one `q_values` forward per lane; both produce
/// identical decisions (asserted by the caller via the per-lane submit
/// counts). Lanes are rebuilt deterministically from `base_seed`, so two
/// calls see identical workloads.
fn lanes_loop(
    profile: &ClusterProfile,
    net: &DualHeadNet,
    n_ticks: u64,
    batch: usize,
    base_seed: u64,
    batched: bool,
) -> (LoopStats, Vec<u64>) {
    let mut lanes = make_lanes(profile, batch, base_seed);
    let encoder = StateEncoder::new(profile.nodes, 48 * HOUR);
    let pred = PredecessorState {
        nodes: 1,
        timelimit: 48 * HOUR,
        queue_time: 0,
        elapsed: 12 * HOUR,
    };
    let succ = SuccessorSpec {
        nodes: 1,
        timelimit: 48 * HOUR,
    };
    let mut lane_m = Matrix::zeros(0, 0);
    let mut stacked = Matrix::zeros(0, 0);
    let mut scratch = Scratch::new();
    let mut cache = BatchInferCache::new();
    let mut vals: Vec<[f32; 2]> = Vec::new();
    let mut per_lane = vec![0u64; batch];

    let mut elapsed = std::time::Duration::ZERO;
    for measure in [false, true] {
        let ticks = if measure {
            n_ticks
        } else {
            (n_ticks / 10).max(8)
        };
        let t = Instant::now();
        for _ in 0..ticks {
            for lane in lanes.iter_mut() {
                lane.sim.step(DECISION_INTERVAL);
                lane.sim.sample_into(&mut lane.snap);
                lane.history
                    .push(encoder.encode_into(&lane.snap, &pred, &succ, &mut lane.enc));
            }
            if batched {
                // Rows are fully overwritten below, so reshape only when
                // the (fixed) batch geometry first materializes.
                if stacked.shape() != (batch * HISTORY_K, STATE_VARS) {
                    stacked.reset(batch * HISTORY_K, STATE_VARS);
                }
                for (l, lane) in lanes.iter().enumerate() {
                    lane.history.write_matrix_rows(&mut stacked, l * HISTORY_K);
                }
                net.q_values_batch(&stacked, batch, &mut vals, &mut scratch, &mut cache);
                if measure {
                    for (l, &q) in vals.iter().enumerate() {
                        per_lane[l] += u64::from(q[1] > q[0]);
                    }
                }
            } else {
                for (l, lane) in lanes.iter().enumerate() {
                    lane.history.write_matrix(&mut lane_m);
                    let q = net.q_values(&lane_m, &mut scratch);
                    if measure {
                        per_lane[l] += u64::from(q[1] > q[0]);
                    }
                }
            }
        }
        if measure {
            elapsed = t.elapsed();
        }
    }
    let decisions = n_ticks * batch as u64;
    (
        LoopStats {
            decisions_per_sec: decisions as f64 / elapsed.as_secs_f64(),
            ns_per_decision: elapsed.as_nanos() as f64 / decisions as f64,
            submit_count: per_lane.iter().sum(),
        },
        per_lane,
    )
}

/// Replicates the batched lane loop across `workers` std threads (each
/// with its own lanes, seeds and network clone) and returns the
/// aggregate decisions/s over the scope's wall time.
fn lanes_loop_workers(
    profile: &ClusterProfile,
    net: &DualHeadNet,
    n_ticks: u64,
    batch: usize,
    workers: usize,
) -> LoopStats {
    let stats: Vec<LoopStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let net = net.clone();
                let profile = profile.clone();
                scope.spawn(move || {
                    lanes_loop(&profile, &net, n_ticks, batch, 42 + (w as u64) * 1000, true).0
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    // Workers run their measured windows concurrently; the aggregate rate
    // is total decisions over the slowest worker's measured time (lane
    // construction and warm-up stay outside, as in the 1-worker path).
    let per_worker = n_ticks * batch as u64;
    let slowest = stats
        .iter()
        .map(|s| per_worker as f64 * s.ns_per_decision / 1e9)
        .fold(0.0f64, f64::max);
    let decisions = per_worker * workers as u64;
    LoopStats {
        decisions_per_sec: decisions as f64 / slowest,
        ns_per_decision: slowest * 1e9 / decisions as f64,
        submit_count: stats.iter().map(|s| s.submit_count).sum(),
    }
}

/// Trained decisions/s through the whole online-DQN stack at a given
/// lockstep lane count: lockstep ε-greedy collection over pool-built
/// backends, class-balanced replay pushes, and per-episode mini-batch
/// updates. The workload — starts, trace, net seed, update cadence — is
/// identical at every lane count; only the collection batching differs,
/// so the ratio isolates the training-path refactor. A deliberately
/// light background trace keeps the NN (not the simulator backlog scan)
/// the dominant per-decision cost, matching the regime batching targets.
fn training_workload(
    episodes: usize,
    lanes: usize,
    net_seed: u64,
) -> (Vec<JobRecord>, TrainConfig, Vec<i64>, DualHeadNet) {
    // Thin hourly background load over 3 weeks.
    let trace: Vec<JobRecord> = (0..21 * 24)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 5) as u32,
                i * HOUR,
                1 + (i % 2) as u32,
                6 * HOUR,
                3 * HOUR,
            )
        })
        .collect();
    let mut cfg = TrainConfig {
        online_episodes: episodes,
        collect_lanes: Some(lanes),
        // Replay ratio of 8 gradient steps per ~290-decision episode —
        // still light by DQN standards, but enough that the update path
        // (the part PR 9's row-stacked backward accelerates) carries a
        // realistic share of the trained-decisions/s total instead of
        // being noise behind collection.
        updates_per_episode: 8,
        ..TrainConfig::default()
    };
    // Fine-tuning regime, not cold-start: a pretrained provisioner holds
    // its submit for most of the pair (the paper's policies submit once,
    // late), so episodes run their decision horizon. The default fresh
    // ε = 1 schedule would instead submit within a tick or two and turn
    // this lane into a pure episode-construction benchmark.
    cfg.dqn.epsilon = mirage_rl::EpsilonSchedule::constant(0.02);
    // The experiment model shape (d_model 16, k = 12) on 48 h pairs at a
    // 10-minute cadence: ~290 decisions per episode.
    cfg.episode = EpisodeConfig {
        pair_nodes: 1,
        pair_timelimit: 48 * HOUR,
        pair_runtime: 48 * HOUR,
        decision_interval: DECISION_INTERVAL,
        history_k: HISTORY_K,
        warmup: 2 * DAY,
        pair_user: 999,
        fault_features: false,
        hetero_features: false,
    };
    let starts = sample_episode_starts(0, 21 * DAY, &cfg.episode, 8, 7);
    let net = DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: STATE_VARS,
            seq_len: HISTORY_K,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: net_seed,
    });
    (trace, cfg, starts, net)
}

fn training_loop(
    nodes: u32,
    episodes: usize,
    lanes: usize,
    workers: usize,
    net_seed: u64,
) -> (f64, u64) {
    let (trace, mut cfg, starts, net) = training_workload(episodes, lanes, net_seed);
    // W synchronized workers: each collects its own `lanes` lockstep
    // lanes per window and every update all-reduces across the same W.
    cfg.train_workers = workers;
    let pool = SimConfig::builder()
        .nodes(nodes)
        .backend(BackendKind::Pooled { workers: lanes })
        .build_pool();
    let warm = OfflineData::default();

    let t = Instant::now();
    let (agent, _replay, results) =
        train_dqn_online_traced(net, &pool, &trace, &cfg, &starts, &warm);
    let elapsed = t.elapsed().as_secs_f64();
    assert_eq!(results.len(), episodes);
    // One act per recorded decision: `steps` is the trained-decision
    // count (and defeats dead-code elimination).
    (agent.steps as f64 / elapsed, agent.steps)
}

/// The *PR-8* training stack, reproduced shape for shape: the same
/// lockstep batched collection, but every mini-batch update through the
/// pinned per-sample scalar reference (`train_batch_scalar`) — one
/// forward + backward per experience, exactly the update path the
/// batched-backward tentpole replaced. Bit-compatible with the current
/// loop at one worker (`batched_training_identity.rs` pins the update
/// paths equal), so the ratio isolates the row-stacked backward.
fn scalar_update_training_loop(
    nodes: u32,
    episodes: usize,
    lanes: usize,
    net_seed: u64,
) -> (f64, u64) {
    use mirage_core::trainloop::{BatchedCollector, DqnActWindow};

    let (trace, cfg, starts, net) = training_workload(episodes, lanes, net_seed);
    let pool = SimConfig::builder()
        .nodes(nodes)
        .backend(BackendKind::Pooled { workers: lanes })
        .build_pool();
    let mut agent = DqnAgent::new(net, cfg.dqn);
    let mut replay = BalancedReplay::new(8192, 4096);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed ^ 0xD9);
    let t0s: Vec<i64> = starts
        .iter()
        .cycle()
        .take(cfg.online_episodes)
        .copied()
        .collect();
    let collector = BatchedCollector::new(&pool, &trace, &cfg.episode, lanes);
    let width = collector.lanes();

    let t = Instant::now();
    let mut done = 0usize;
    let mut lane_states: Vec<ExploreLane> = Vec::with_capacity(width);
    for chunk in t0s.chunks(width) {
        lane_states.clear();
        lane_states.extend(
            (done..done + chunk.len())
                .map(|i| ExploreLane::seeded(dqn_episode_seed(cfg.seed, i), agent.steps)),
        );
        let mut driver = collector.window(chunk);
        driver.run_lanes(&mut DqnActWindow {
            agent: &mut agent,
            lanes: &mut lane_states,
        });
        let (results, _) = driver.finish();
        for mut result in results {
            let reward = cfg.shaper.reward(&result.outcome);
            agent.steps += result.decisions.len() as u64;
            for (state, action) in result.take_decisions() {
                replay.push(Experience::terminal(state, action, reward));
            }
            if replay.len() >= cfg.batch_size {
                let mut batch = Vec::with_capacity(cfg.batch_size);
                for _ in 0..cfg.updates_per_episode.max(1) {
                    replay.sample_into(&mut rng, cfg.batch_size, &mut batch);
                    agent.train_batch_scalar(&batch);
                }
            }
            done += 1;
        }
    }
    let elapsed = t.elapsed().as_secs_f64();
    assert_eq!(done, episodes);
    (agent.steps as f64 / elapsed, agent.steps)
}

/// The *pre-refactor* sequential baseline, reproduced shape for shape:
/// one episode at a time through `run_episode`, every decision paying a
/// full uncached `q_values` forward (`act_lane`), then the identical
/// replay pushes and update cadence. Bit-compatible with
/// `train_dqn_online_traced` at `collect_lanes = 1` (the lockstep tests
/// pin that), but paying the per-decision costs this PR's lockstep
/// refactor removed — the embed-row caches and the batched forward.
fn legacy_training_loop(nodes: u32, episodes: usize, net_seed: u64) -> (f64, u64) {
    let (trace, cfg, starts, net) = training_workload(episodes, 1, net_seed);
    let mut backend = SimConfig::builder().nodes(nodes).build();
    let mut agent = DqnAgent::new(net, cfg.dqn);
    let mut replay = BalancedReplay::new(8192, 4096);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed ^ 0xD9);

    let t = Instant::now();
    for (i, &t0) in starts.iter().cycle().take(cfg.online_episodes).enumerate() {
        let mut lane = ExploreLane::seeded(dqn_episode_seed(cfg.seed, i), agent.steps);
        let window = episode_window(&trace, t0, &cfg.episode);
        let agent_ref = &mut agent;
        let result = run_episode(&mut backend, window, &cfg.episode, t0, |ctx| {
            Action::from_index(agent_ref.act_lane(ctx.state_matrix, &mut lane))
        });
        let reward = cfg.shaper.reward(&result.outcome);
        agent.steps += result.decisions.len() as u64;
        // Verbatim pre-refactor costs: the deleted loop cloned every
        // decision state into the replay and allocated a fresh
        // mini-batch Vec per update.
        for (state, action) in &result.decisions {
            replay.push(Experience::terminal(state.clone(), *action, reward));
        }
        if replay.len() >= cfg.batch_size {
            for _ in 0..cfg.updates_per_episode.max(1) {
                let mut batch = Vec::new();
                replay.sample_into(&mut rng, cfg.batch_size, &mut batch);
                agent.train_batch(&batch);
            }
        }
    }
    let elapsed = t.elapsed().as_secs_f64();
    (agent.steps as f64 / elapsed, agent.steps)
}

/// Forward-pass microbenchmark: ns per inference, allocating vs scratch.
fn forward_ns(net: &DualHeadNet, reps: u64) -> (f64, f64) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let state = Matrix::xavier(HISTORY_K, STATE_VARS, &mut rng);
    let mut scratch = Scratch::new();
    let _ = net.q_values(&state, &mut scratch); // warm the arena

    let t = Instant::now();
    let mut acc = 0.0f32;
    for _ in 0..reps {
        acc += net.q_forward(&state).0[0];
    }
    let before = t.elapsed().as_nanos() as f64 / reps as f64;
    let t = Instant::now();
    for _ in 0..reps {
        acc += net.q_values(&state, &mut scratch)[0];
    }
    let after = t.elapsed().as_nanos() as f64 / reps as f64;
    assert!(acc.is_finite());
    (before, after)
}

/// Full-trace replay: simulator events (arrivals + completions) per second.
fn sim_events_per_sec(jobs: &[JobRecord], nodes: u32) -> f64 {
    let mut sim = Simulator::new(SimConfig::new(nodes));
    sim.load_trace(jobs);
    let t = Instant::now();
    sim.run_to_completion();
    let elapsed = t.elapsed().as_secs_f64();
    let events = jobs.len() + sim.metrics().completed_jobs;
    events as f64 / elapsed
}

/// Cluster size of the multi-service lane (shared by all services).
const MS_NODES: u32 = 16;

/// Multi-service provisioning lane: RL serving vs the three heuristic
/// baselines on the canonical diurnal and bursty scenarios, through the
/// shared `evaluate_multiservice` harness (every method drives lockstep
/// `MultiServiceBatch` episodes over fresh identically-seeded clusters,
/// so methods see identical demand and background load). The RL method
/// serves a fixed-seed experiment-scale DQN greedily — the lane
/// benchmarks the multi-service serving harness and records the
/// RL-vs-heuristic reward gap, not a training run. Returns the diurnal
/// report, the bursty report, episode count and the aggregate
/// decisions/s across both scenarios.
fn multiservice_lane(
    quick: bool,
    services: usize,
) -> (MultiServiceReport, MultiServiceReport, usize, f64) {
    let episodes = if quick { 2 } else { 4 };
    let t0s: Vec<i64> = (0..episodes as i64)
        .map(|i| 2 * DAY + i * 6 * HOUR)
        .collect();
    // Thin hourly background load spanning warm-up through every
    // episode's finish window (pred 24h + succ start, last t0 at +18h).
    let trace: Vec<JobRecord> = (0..8 * 24)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 5) as u32,
                i * HOUR,
                1 + (i % 3) as u32,
                6 * HOUR,
                3 * HOUR,
            )
        })
        .collect();

    let run = |cfg: &MultiServiceConfig, name: &str| -> MultiServiceReport {
        let agent = DqnAgent::new(
            DualHeadNet::new(DualHeadConfig::small(
                FoundationKind::Transformer,
                STATE_VARS,
                cfg.history_k,
                5,
            )),
            DqnConfig::default(),
        );
        let mut methods: Vec<Box<dyn MultiServicePolicy>> = vec![
            Box::new(RlServicePolicy::new(agent, "dqn")),
            Box::new(UniformSharePolicy),
            Box::new(GreedyPerServicePolicy::default()),
            Box::new(ShortestQueuePolicy::default()),
        ];
        evaluate_multiservice(
            &mut methods,
            |n| {
                (0..n)
                    .map(|_| Simulator::new(SimConfig::new(MS_NODES)))
                    .collect::<Vec<_>>()
            },
            &trace,
            &t0s,
            cfg,
            name,
        )
    };

    let t = Instant::now();
    let diurnal = run(&diurnal_scenario(services, MS_NODES, 11), "diurnal");
    let bursty = run(&bursty_scenario(services, MS_NODES, 11), "bursty");
    let elapsed = t.elapsed().as_secs_f64();
    let dps = (diurnal.decisions + bursty.decisions) as f64 / elapsed;
    (diurnal, bursty, episodes, dps)
}

/// Chaos lane: the RL method vs the reactive heuristic under the
/// none / moderate / severe fault sweep, on identically seeded crash
/// tapes (`evaluate_chaos` builds one fault-configured simulator per
/// severity; the per-episode reset replays the same tape for both
/// methods). Fault features are on, so the RL state observes cluster
/// health. Returns the report and the lane's decisions/s proxy (episodes
/// per second are meaningless across severities; the total wall time is
/// what the bench trajectory tracks).
fn chaos_lane(quick: bool) -> (ChaosReport, f64) {
    let episodes = if quick { 2 } else { 4 };
    // Busy half-hourly background load on a small cluster: enough queue
    // pressure that node crashes evict real work.
    let trace: Vec<JobRecord> = (0..10 * 24 * 2)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 5) as u32,
                i * HOUR / 2,
                2,
                8 * HOUR,
                4 * HOUR,
            )
        })
        .collect();
    let agent = DqnAgent::new(
        DualHeadNet::new(DualHeadConfig::small(
            FoundationKind::Transformer,
            STATE_VARS,
            4,
            5,
        )),
        DqnConfig::default(),
    );
    let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![
        Box::new(ReactivePolicy),
        Box::new(DqnPolicy {
            agent,
            label: "dqn".into(),
        }),
    ];
    let cfg = ChaosConfig {
        episode: EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 6 * HOUR,
            pair_runtime: 6 * HOUR,
            decision_interval: 30 * 60,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: true,
            hetero_features: false,
        },
        n_episodes: episodes,
        seed: 17,
        fault_seed: 4242,
        ..ChaosConfig::default()
    };
    let builder = SimConfig::builder().nodes(4);
    let t = Instant::now();
    let report = evaluate_chaos(&mut methods, &builder, &trace, (0, 10 * DAY), &cfg);
    (report, t.elapsed().as_secs_f64())
}

/// Hetero lane: the RL method vs the four classic baselines across the
/// balanced / scarce pool scenarios, on identically seeded placement
/// tapes (`evaluate_hetero` builds one pool-configured simulator per
/// scenario; the per-episode reset replays the same slowdown draws for
/// every method). Hetero features are on, so the RL state observes pool
/// headroom and contention. Returns the report and the lane's wall time.
fn hetero_lane(quick: bool) -> (HeteroReport, f64) {
    let episodes = if quick { 2 } else { 4 };
    // Hourly background jobs alternating 3-wide 1 h / 2-wide 2 h:
    // wide enough that placements stripe across the fast pool (the
    // contention model fires), light enough (~70% nominal utilization
    // with the pair on board) that even the scarce scenario's t4-tail
    // slowdowns leave slack — so submit timing has consequences: early
    // submits overlap on free nodes, late ones pay interruption. A
    // saturated trace would score every method a trivial 0 (the
    // successor always starts on the predecessor's own freed nodes).
    let trace: Vec<JobRecord> = (0..10 * 24)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 5) as u32,
                i * HOUR,
                3 - (i % 2) as u32,
                6 * HOUR,
                (1 + (i % 2)) * HOUR,
            )
        })
        .collect();
    let agent = DqnAgent::new(
        DualHeadNet::new(DualHeadConfig::small(
            FoundationKind::Transformer,
            STATE_VARS,
            4,
            7,
        )),
        DqnConfig::default(),
    );
    let mut methods: Vec<Box<dyn ProvisionPolicy>> = vec![Box::new(DqnPolicy {
        agent,
        label: "dqn".into(),
    })];
    methods.extend(classic_baselines());
    let cfg = HeteroConfig {
        episode: EpisodeConfig {
            pair_nodes: 2,
            pair_timelimit: 6 * HOUR,
            pair_runtime: 6 * HOUR,
            decision_interval: 30 * 60,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: true,
        },
        n_episodes: episodes,
        nodes: 8,
        ..HeteroConfig::default()
    };
    let builder = SimConfig::builder();
    let t = Instant::now();
    let report = evaluate_hetero(&mut methods, &builder, &trace, (0, 10 * DAY), &cfg);
    (report, t.elapsed().as_secs_f64())
}

/// Counters and costs of the resilience drill (`resilience_*` fields).
struct ResilienceStats {
    checkpoint_bytes: u64,
    checkpoint_save_ms: f64,
    checkpoint_load_ms: f64,
    guard_fallbacks: u64,
    pool_recovered_panics: u64,
    pool_retries: u64,
}

/// Resilience lane: (1) a checkpointed online-DQN run halts at a chunk
/// boundary, the checkpoint file is round-tripped with save/load timed,
/// and the run resumes to completion; (2) a NaN-poisoned net behind
/// `GuardedPolicy` must degrade every decision to the fallback action;
/// (3) a seeded `PanicPlan` crashes supervised pool tasks that must be
/// retried to a result-identical finish.
fn resilience_lane(quick: bool) -> ResilienceStats {
    let episodes = if quick { 4 } else { 8 };
    // Thin hourly background load over 10 days (shared by the training
    // run and the pool drill).
    let trace: Vec<JobRecord> = (0..10 * 24)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 5) as u32,
                i * HOUR,
                1 + (i % 3) as u32,
                6 * HOUR,
                3 * HOUR,
            )
        })
        .collect();
    let cfg = TrainConfig {
        online_episodes: episodes,
        collect_lanes: Some(2),
        updates_per_episode: 1,
        episode: EpisodeConfig {
            pair_nodes: 1,
            pair_timelimit: 6 * HOUR,
            pair_runtime: 6 * HOUR,
            decision_interval: 30 * 60,
            history_k: 4,
            warmup: DAY,
            pair_user: 999,
            fault_features: false,
            hetero_features: false,
        },
        ..TrainConfig::default()
    };
    let starts = sample_episode_starts(0, 10 * DAY, &cfg.episode, 4, 7);
    let net = || {
        DualHeadNet::new(DualHeadConfig::small(
            FoundationKind::Transformer,
            STATE_VARS,
            4,
            5,
        ))
    };
    let pool = SimConfig::builder()
        .nodes(4)
        .backend(BackendKind::Pooled { workers: 2 })
        .build_pool();
    let warm = OfflineData::default();
    let path = std::env::temp_dir().join(format!(
        "mirage_bench_resilience_{}.ckpt",
        std::process::id()
    ));
    let mut ck = CheckpointConfig::every(&path, 2);
    ck.halt_after = Some(2);
    let halted =
        train_dqn_online_checkpointed(net(), &pool, &trace, &cfg, &starts, &warm, &ck, None)
            .expect("checkpointed bench run");
    assert!(halted.halted, "halt_after must stop at the boundary");
    let checkpoint_bytes = std::fs::metadata(&path).expect("checkpoint written").len();
    let t = Instant::now();
    let loaded = DqnTrainCheckpoint::load(&path).expect("load checkpoint");
    let checkpoint_load_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    loaded.save(&path).expect("re-save checkpoint");
    let checkpoint_save_ms = t.elapsed().as_secs_f64() * 1e3;
    let resumed = train_dqn_online_checkpointed(
        net(),
        &pool,
        &trace,
        &cfg,
        &starts,
        &warm,
        &CheckpointConfig::every(&path, 2),
        Some(&path),
    )
    .expect("resumed bench run");
    assert_eq!(resumed.episodes.len(), episodes, "resume completes the run");
    let _ = std::fs::remove_file(&path);

    // Guarded inference: a NaN-poisoned net (a corrupted checkpoint or
    // diverged update, as inference sees it) must never leak a garbage
    // action — every decision degrades to wait and is counted.
    let mut poisoned = net();
    let ids: Vec<_> = poisoned.ps.iter().map(|(id, _)| id).collect();
    for id in ids {
        for v in poisoned.ps.get_mut(id).data_mut() {
            *v = f32::NAN;
        }
    }
    let mut guard = GuardedPolicy::new(DqnAgent::new(poisoned, DqnConfig::default()));
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(9);
    let state = Matrix::xavier(4, STATE_VARS, &mut rng);
    for _ in 0..16 {
        assert_eq!(guard.act_greedy(&state), 0, "poisoned net must fall back");
    }
    let guard_fallbacks = guard.stats().fallbacks;

    // Supervised pool: seeded panics mid-map must be recovered (backend
    // rebuilt, task retried) without perturbing the results.
    let builder = SimConfig::builder().nodes(4).seed(9);
    let tasks: Vec<i64> = (0..12).map(|i| (i + 1) * HOUR).collect();
    let run = |backend: &mut AnyBackend, &t: &i64| {
        backend.reset_with(&trace);
        backend.run_until(t);
        backend.completed().len()
    };
    let clean = BackendPool::with_seed(builder.clone(), 4, 9).map(&tasks, run);
    let mut supervised_pool = BackendPool::with_seed(builder, 4, 9);
    supervised_pool.inject_panics(PanicPlan::seeded(77, tasks.len(), 3));
    let supervised = supervised_pool.map(&tasks, run);
    assert_eq!(clean, supervised, "supervision must not perturb results");
    let health = supervised_pool.health();
    ResilienceStats {
        checkpoint_bytes,
        checkpoint_save_ms,
        checkpoint_load_ms,
        guard_fallbacks,
        pool_recovered_panics: health.panics,
        pool_retries: health.retries,
    }
}

/// Renders one severity lane into `chaos_*` JSON fields (trailing-comma
/// style: each field ends `,\n` so the block splices before a fixed key).
fn chaos_json_fields(report: &ChaosReport) -> String {
    let mut out = String::new();
    for lane in &report.lanes {
        let sev = lane.severity.label();
        let rl = lane
            .methods
            .iter()
            .find(|m| m.method == "dqn")
            .expect("dqn evaluated in every chaos lane");
        let reactive = lane
            .methods
            .iter()
            .find(|m| m.method == "reactive")
            .expect("reactive evaluated in every chaos lane");
        out.push_str(&format!(
            "  \"chaos_{sev}_rl_reward\": {:.3},\n  \"chaos_{sev}_reactive_reward\": {:.3},\n  \"chaos_{sev}_rl_interruption_h\": {:.3},\n  \"chaos_{sev}_rl_fault_interruption_h\": {:.3},\n  \"chaos_{sev}_evictions\": {},\n  \"chaos_{sev}_retries\": {},\n  \"chaos_{sev}_retry_successes\": {},\n",
            rl.mean_reward,
            reactive.mean_reward,
            rl.avg_interruption_h,
            rl.avg_fault_interruption_h,
            lane.faults.evictions,
            lane.faults.retries,
            lane.faults.retry_successes,
        ));
    }
    out
}

/// Renders one pool-scenario lane into `hetero_*` JSON fields (same
/// trailing-comma splice style as [`chaos_json_fields`]).
fn hetero_json_fields(report: &HeteroReport) -> String {
    let mut out = String::new();
    for lane in &report.lanes {
        let sc = lane.scenario.label();
        let get = |name: &str| {
            lane.methods
                .iter()
                .find(|m| m.method == name)
                .unwrap_or_else(|| panic!("{name} evaluated in every hetero lane"))
        };
        let rl = get("dqn");
        out.push_str(&format!(
            "  \"hetero_{sc}_rl_reward\": {:.3},\n  \"hetero_{sc}_fcfs_reward\": {:.3},\n  \"hetero_{sc}_sjf_reward\": {:.3},\n  \"hetero_{sc}_shortest_queue_reward\": {:.3},\n  \"hetero_{sc}_pool_greedy_reward\": {:.3},\n  \"hetero_{sc}_rl_interruption_h\": {:.3},\n  \"hetero_{sc}_slowdowns\": {},\n  \"hetero_{sc}_span_placements\": {},\n",
            rl.mean_reward,
            get("fcfs").mean_reward,
            get("sjf").mean_reward,
            get("shortest_queue").mean_reward,
            get("pool_greedy").mean_reward,
            rl.avg_interruption_h,
            lane.hetero.slowdowns,
            lane.hetero.span_placements,
        ));
    }
    out
}

/// Looks up `method` in a multi-service report (panics on a missing
/// method so CI catches harness drift loudly).
fn ms_method<'a>(report: &'a MultiServiceReport, method: &str) -> &'a MultiMethodSummary {
    report
        .method(method)
        .unwrap_or_else(|| panic!("method {method} missing from {} report", report.scenario))
}

/// Extracts the curated `"seed_baseline"` object (verbatim JSON text) and
/// its `decisions_per_sec` from a previous output file, so reruns never
/// destroy the externally measured baseline this binary cannot reproduce.
fn preserved_baseline(old: &str) -> Option<(String, f64)> {
    let key = old.find("\"seed_baseline\"")?;
    let open = key + old[key..].find('{')?;
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in old[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let block = &old[open..=close?];
    let dps_key = block.find("\"decisions_per_sec\"")?;
    let after_colon = &block[dps_key..][block[dps_key..].find(':')? + 1..];
    let dps = after_colon
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?
        .parse::<f64>()
        .ok()?;
    Some((block.to_string(), dps))
}

/// Parses `--name value` from the CLI (panics on malformed input so CI
/// catches typos instead of silently benchmarking the wrong shape).
fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    let value = args
        .iter()
        .position(|a| a == name)
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .unwrap_or(default);
    assert!(value >= 1, "{name} must be at least 1, got {value}");
    value
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = quick_mode();
    let batch = parse_flag(&args, "--batch", DEFAULT_BATCH);
    let train_batch = parse_flag(&args, "--train-batch", DEFAULT_TRAIN_BATCH);
    let workers = parse_flag(&args, "--workers", 1);
    // Lockstep ticks match the single-lane decision count, so the batched
    // loop replays the identical simulated window per lane.
    let decisions: u64 = if quick { 500 } else { 3000 };
    let ticks: u64 = decisions;
    let forward_reps: u64 = if quick { 1000 } else { 10_000 };

    let profile = ClusterProfile::v100();
    let jobs = month_trace(&profile, 42);
    let net = experiment_net();

    let before = decision_loop(&jobs, profile.nodes, &net, decisions, false);
    let after = decision_loop(&jobs, profile.nodes, &net, decisions, true);
    assert_eq!(
        before.submit_count, after.submit_count,
        "both paths must take identical decisions"
    );

    // Lockstep lanes: per-lane forwards vs one batched forward per tick,
    // on bitwise-identical workloads (same seeds ⇒ same lanes).
    let (unbatched, per_lane_u) = lanes_loop(&profile, &net, ticks, batch, 42, false);
    let (batched_1w, per_lane_b) = lanes_loop(&profile, &net, ticks, batch, 42, true);
    assert_eq!(
        per_lane_u, per_lane_b,
        "batched and per-lane forwards must take identical decisions"
    );
    let batched = if workers > 1 {
        lanes_loop_workers(&profile, &net, ticks, batch, workers)
    } else {
        batched_1w
    };

    // Training lane: the full online-DQN stack on an identical episode
    // diet — the pre-refactor sequential loop shape (uncached per-episode
    // forwards) vs the lockstep batched collection that replaced it.
    let train_episodes: usize = if quick { 4 } else { 32 };
    if std::env::var("MIRAGE_TRAIN_SEED_PROBE").is_ok() {
        // Dev utility: when the training workload changes, re-pick
        // TRAIN_NET_SEED from whichever seeds stay in the wait-greedy
        // (long-episode) regime.
        for s in 0..16u64 {
            let (_, steps) = training_loop(8, 2, 1, 1, s);
            eprintln!("seed {s}: {steps} decisions over 2 episodes");
        }
        return;
    }
    // Two interleaved repetitions per path, fastest kept: the lockstep
    // amortization is a single-digit-percent effect at this model scale,
    // and container-speed drift between two back-to-back measurements is
    // the same order — interleaving + min-time cancels the drift without
    // touching what is measured.
    let train_reps = if quick { 1 } else { 3 };
    let (mut train_seq, mut train_steps_seq) = (0.0f64, 0u64);
    let (mut train_scalar, mut train_steps_scalar) = (0.0f64, 0u64);
    let (mut train_batched, mut train_steps_batched) = (0.0f64, 0u64);
    for _ in 0..train_reps {
        let (dps, steps) = legacy_training_loop(8, train_episodes, TRAIN_NET_SEED);
        if dps > train_seq {
            (train_seq, train_steps_seq) = (dps, steps);
        }
        let (dps, steps) =
            scalar_update_training_loop(8, train_episodes, train_batch, TRAIN_NET_SEED);
        if dps > train_scalar {
            (train_scalar, train_steps_scalar) = (dps, steps);
        }
        let (dps, steps) = training_loop(8, train_episodes, train_batch, 1, TRAIN_NET_SEED);
        if dps > train_batched {
            (train_batched, train_steps_batched) = (dps, steps);
        }
    }
    // Regime guard: if episodes collapse to submit-on-first-tick (net
    // drift after a workload change), the lane degenerates into an
    // episode-construction benchmark — fail loudly instead.
    assert!(
        train_steps_seq as usize >= train_episodes * 100
            && train_steps_scalar as usize >= train_episodes * 100
            && train_steps_batched as usize >= train_episodes * 100,
        "training lane left the long-episode regime: {train_steps_seq}/{train_steps_scalar}/{train_steps_batched} \
         decisions over {train_episodes} episodes — re-pick TRAIN_NET_SEED \
         (MIRAGE_TRAIN_SEED_PROBE=1)"
    );
    let speedup_training = train_batched / train_seq;
    // Batched backward in isolation: the same lockstep collection with
    // per-sample scalar updates (the PR-8 stack) vs row-stacked batched
    // updates, interleaved above so machine drift cancels.
    let training_batched_bwd_speedup = train_batched / train_scalar;

    // Synchronized multi-worker sweep: W workers × `train_batch` lanes
    // each, collection sharded across W threads and every update
    // all-reduced over W gradient shards. Best W is reported; the
    // parallel speedup is against the PR-8 stack (scalar updates, one
    // worker), the number this PR is accountable for.
    let mut training_workers = 1usize;
    let mut train_parallel = train_batched;
    for w in [2usize, 4] {
        let (dps, steps) = training_loop(8, train_episodes, train_batch, w, TRAIN_NET_SEED);
        assert!(
            steps as usize >= train_episodes * 100,
            "W={w} training lane left the long-episode regime: {steps} decisions"
        );
        if dps > train_parallel {
            train_parallel = dps;
            training_workers = w;
        }
    }
    let training_parallel_speedup = train_parallel / train_scalar;

    // Multi-service lane: RL vs heuristic baselines on the canonical
    // diurnal and bursty shared-cluster scenarios.
    let ms_services = if quick { 2 } else { 3 };
    let (ms_diurnal, ms_bursty, ms_episodes, ms_dps) = multiservice_lane(quick, ms_services);

    // Chaos lane: fault-severity sweep on identically seeded crash tapes.
    let (chaos_report, chaos_secs) = chaos_lane(quick);
    let chaos_episodes = chaos_report.lanes[0].methods[0].episodes;
    let chaos_severe = chaos_report.lane(ChaosSeverity::Severe);
    assert!(
        chaos_severe.faults.evictions >= 1 && chaos_severe.faults.retry_successes >= 1,
        "severe chaos lane failed to inject (evictions/retry successes): {:?}",
        chaos_severe.faults
    );
    assert_eq!(
        chaos_report.lane(ChaosSeverity::None).faults,
        FaultStats::default(),
        "control lane must stay fault-free"
    );
    let chaos_fields = chaos_json_fields(&chaos_report);

    // Hetero lane: pool-scenario sweep on identically seeded placement
    // tapes, RL vs the four classic baselines.
    let (hetero_report, hetero_secs) = hetero_lane(quick);
    let hetero_episodes = hetero_report.lanes[0].methods[0].episodes;
    for lane in &hetero_report.lanes {
        assert!(
            lane.hetero.span_placements >= 1 && lane.hetero.slowdowns >= 1,
            "{} hetero lane failed to contend (spans/slowdowns): {:?}",
            lane.scenario.label(),
            lane.hetero
        );
    }
    let hetero_fields = hetero_json_fields(&hetero_report);

    // Resilience lane: checkpoint round-trip + guarded fallback + pool
    // supervision, each asserted to have actually fired.
    let res = resilience_lane(quick);
    assert!(
        res.checkpoint_bytes > 0 && res.guard_fallbacks >= 1,
        "resilience lane failed to exercise checkpoint/guard paths"
    );
    assert!(
        res.pool_recovered_panics >= 1 && res.pool_recovered_panics == res.pool_retries,
        "every injected first-attempt panic must be recovered via a retry: {}/{}",
        res.pool_recovered_panics,
        res.pool_retries
    );

    let (fwd_before, fwd_after) = forward_ns(&net, forward_reps);
    let events_per_sec = sim_events_per_sec(&jobs, profile.nodes);
    let speedup = after.decisions_per_sec / before.decisions_per_sec;
    // The honest control for the batched forward is the *same* lane loop
    // with per-lane forwards — not the single-episode loop, whose
    // difference also includes lockstep-lane locality effects.
    let speedup_batched = batched.decisions_per_sec / unbatched.decisions_per_sec;

    const OUT_PATH: &str = "BENCH_episode_throughput.json";
    let baseline = std::fs::read_to_string(OUT_PATH)
        .ok()
        .as_deref()
        .and_then(preserved_baseline);
    let baseline_tail = match &baseline {
        Some((block, seed_dps)) => format!(
            ",\n  \"speedup_vs_seed\": {:.2},\n  \"speedup_batched_vs_seed\": {:.2},\n  \"seed_baseline\": {}",
            after.decisions_per_sec / seed_dps,
            batched.decisions_per_sec / seed_dps,
            block
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"episode_throughput\",\n  \"quick\": {},\n  \"workload\": \"{} 1-month synthetic traces, {} decisions at {}s cadence, k={}; batched: {} lanes x {} lockstep ticks; training: {} online DQN episodes (48h pairs, light synthetic load), pre-refactor sequential loop vs {} lockstep lanes, scalar vs batched-backward updates, synchronized worker sweep 1/2/4; multiservice: {} services x {} episodes on a shared {}-node cluster, diurnal+bursty, DQN vs 3 heuristics; chaos: RL vs reactive, {} episodes/severity (none|moderate|severe) on identically seeded fault tapes; hetero: RL vs fcfs/sjf/shortest-queue/pool-greedy, {} episodes/scenario (balanced|scarce pools) on identically seeded placement tapes\",\n  \"decisions_per_sec_before\": {:.1},\n  \"decisions_per_sec_after\": {:.1},\n  \"decisions_per_sec_lanes_unbatched\": {:.1},\n  \"decisions_per_sec_batched\": {:.1},\n  \"batch_width\": {},\n  \"workers\": {},\n  \"speedup\": {:.2},\n  \"speedup_batched\": {:.2},\n  \"training_decisions_per_sec_sequential\": {:.1},\n  \"training_decisions_per_sec_batched\": {:.1},\n  \"training_batch_width\": {},\n  \"speedup_training\": {:.2},\n  \"training_decisions_per_sec_scalar\": {:.1},\n  \"training_decisions_per_sec_parallel\": {:.1},\n  \"training_workers\": {},\n  \"training_batched_bwd_speedup\": {:.2},\n  \"training_parallel_speedup\": {:.2},\n  \"multiservice_services\": {},\n  \"multiservice_episodes\": {},\n  \"multiservice_decisions_per_sec\": {:.1},\n  \"multiservice_diurnal_rl_reward\": {:.3},\n  \"multiservice_diurnal_rl_interruption_h\": {:.3},\n  \"multiservice_diurnal_uniform_share_reward\": {:.3},\n  \"multiservice_diurnal_greedy_per_service_reward\": {:.3},\n  \"multiservice_diurnal_shortest_queue_reward\": {:.3},\n  \"multiservice_bursty_rl_reward\": {:.3},\n  \"multiservice_bursty_rl_interruption_h\": {:.3},\n  \"multiservice_bursty_uniform_share_reward\": {:.3},\n  \"multiservice_bursty_greedy_per_service_reward\": {:.3},\n  \"multiservice_bursty_shortest_queue_reward\": {:.3},\n  \"chaos_episodes\": {},\n  \"chaos_eval_secs\": {:.2},\n{}  \"hetero_episodes\": {},\n  \"hetero_eval_secs\": {:.2},\n{}  \"resilience_checkpoint_bytes\": {},\n  \"resilience_checkpoint_save_ms\": {:.2},\n  \"resilience_checkpoint_load_ms\": {:.2},\n  \"resilience_guard_fallbacks\": {},\n  \"resilience_pool_recovered_panics\": {},\n  \"resilience_pool_retries\": {},\n  \"ns_per_decision_before\": {:.0},\n  \"ns_per_decision_after\": {:.0},\n  \"ns_per_decision_batched\": {:.0},\n  \"ns_per_forward_before\": {:.0},\n  \"ns_per_forward_after\": {:.0},\n  \"sim_events_per_sec\": {:.0}{}\n}}\n",
        quick,
        profile.name,
        decisions,
        DECISION_INTERVAL,
        HISTORY_K,
        batch,
        ticks,
        train_episodes,
        train_batch,
        ms_services,
        ms_episodes,
        MS_NODES,
        chaos_episodes,
        hetero_episodes,
        before.decisions_per_sec,
        after.decisions_per_sec,
        unbatched.decisions_per_sec,
        batched.decisions_per_sec,
        batch,
        workers,
        speedup,
        speedup_batched,
        train_seq,
        train_batched,
        train_batch,
        speedup_training,
        train_scalar,
        train_parallel,
        training_workers,
        training_batched_bwd_speedup,
        training_parallel_speedup,
        ms_services,
        ms_episodes,
        ms_dps,
        ms_method(&ms_diurnal, "dqn").mean_reward,
        ms_method(&ms_diurnal, "dqn").mean_interruption_h,
        ms_method(&ms_diurnal, "uniform-share").mean_reward,
        ms_method(&ms_diurnal, "greedy-per-service").mean_reward,
        ms_method(&ms_diurnal, "shortest-queue").mean_reward,
        ms_method(&ms_bursty, "dqn").mean_reward,
        ms_method(&ms_bursty, "dqn").mean_interruption_h,
        ms_method(&ms_bursty, "uniform-share").mean_reward,
        ms_method(&ms_bursty, "greedy-per-service").mean_reward,
        ms_method(&ms_bursty, "shortest-queue").mean_reward,
        chaos_episodes,
        chaos_secs,
        chaos_fields,
        hetero_episodes,
        hetero_secs,
        hetero_fields,
        res.checkpoint_bytes,
        res.checkpoint_save_ms,
        res.checkpoint_load_ms,
        res.guard_fallbacks,
        res.pool_recovered_panics,
        res.pool_retries,
        before.ns_per_decision,
        after.ns_per_decision,
        batched.ns_per_decision,
        fwd_before,
        fwd_after,
        events_per_sec,
        baseline_tail,
    );
    std::fs::write(OUT_PATH, &json).expect("write bench output");
    print!("{json}");
    eprintln!(
        "decision loop: {:.0}/s -> {:.0}/s ({speedup:.2}x); batched x{batch}: {:.0}/s ({speedup_batched:.2}x over single); training: {:.0}/s -> {:.0}/s ({speedup_training:.2}x, x{train_batch} lanes); training updates: scalar {:.0}/s, batched-bwd {training_batched_bwd_speedup:.2}x, W={training_workers} parallel {:.0}/s ({training_parallel_speedup:.2}x); multiservice x{ms_services}: {:.0} dec/s, diurnal dqn {:.2} vs greedy {:.2}; chaos severe: {} evictions, {} retried-to-completion; resilience: ckpt {}B save {:.1}ms load {:.1}ms, {} guard fallbacks, {} recovered pool panics; forward {:.0}ns -> {:.0}ns; sim {:.0} events/s",
        before.decisions_per_sec,
        after.decisions_per_sec,
        batched.decisions_per_sec,
        train_seq,
        train_batched,
        train_scalar,
        train_parallel,
        ms_dps,
        ms_method(&ms_diurnal, "dqn").mean_reward,
        ms_method(&ms_diurnal, "greedy-per-service").mean_reward,
        chaos_severe.faults.evictions,
        chaos_severe.faults.retry_successes,
        res.checkpoint_bytes,
        res.checkpoint_save_ms,
        res.checkpoint_load_ms,
        res.guard_fallbacks,
        res.pool_recovered_panics,
        fwd_before,
        fwd_after,
        events_per_sec
    );
}
