//! Decision-loop throughput benchmark with a machine-readable output.
//!
//! Measures the steady-state provisioning decision loop — simulator step →
//! snapshot → state matrix → NN inference → action — two ways on the same
//! workload:
//!
//! * **before**: the allocating, cache-returning path the training code
//!   uses (`sample()` + `encode()` + `matrix()` + `q_forward()`),
//! * **after**: the zero-allocation serving path (`sample_into` +
//!   `encode_into` + `write_matrix` + `q_values` over a warm `Scratch`).
//!
//! Both paths run identical arithmetic (enforced by bit-identity tests),
//! so the in-binary ratio isolates the cost of per-decision allocation
//! and copying; the kernel-level speedups (matmul microkernel, fast
//! tanh, scheduler pass-skip) benefit *both* paths and only show against
//! an older checkout. Results land in `BENCH_episode_throughput.json` so
//! the perf trajectory of this loop is recorded across PRs; the committed
//! copy additionally carries a `seed_baseline` block measured by running
//! this same driver against the pre-PR tree in a git worktree.
//! `MIRAGE_QUICK=1` shrinks the iteration counts for CI smoke runs.

use std::time::Instant;

use mirage_bench::quick_mode;
use mirage_core::state::{
    EncoderScratch, PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS,
};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::{Matrix, Scratch};
use mirage_rl::{ActionEncoding, DualHeadConfig, DualHeadNet};
use mirage_sim::{ClusterSnapshot, SimConfig, Simulator};
use mirage_trace::{
    clean_trace, ClusterProfile, JobRecord, SynthConfig, TraceGenerator, DAY, HOUR,
};

/// History length of the decision state matrix (experiment scale).
const HISTORY_K: usize = 12;
/// Seconds of simulated time between decisions (10-minute cadence).
const DECISION_INTERVAL: i64 = 600;

fn month_trace(profile: &ClusterProfile, seed: u64) -> Vec<JobRecord> {
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = Some(1);
    let raw = TraceGenerator::new(cfg).generate();
    clean_trace(&raw, profile.nodes).0
}

fn experiment_net() -> DualHeadNet {
    // The offline-collection / online-training model shape
    // (`TrainConfig::default()`): d_model 16, 2 heads, 1 layer, k = 12.
    DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: STATE_VARS,
            seq_len: HISTORY_K,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: 7,
    })
}

struct LoopStats {
    decisions_per_sec: f64,
    ns_per_decision: f64,
    /// Defeats dead-code elimination and sanity-checks path agreement.
    submit_count: u64,
}

/// Runs `n` decision steps against a warm simulator. `fast` selects the
/// zero-allocation path; both paths compute identical decisions.
fn decision_loop(
    jobs: &[JobRecord],
    nodes: u32,
    net: &DualHeadNet,
    n: u64,
    fast: bool,
) -> LoopStats {
    let mut sim = Simulator::new(SimConfig::new(nodes));
    sim.load_trace(jobs);
    sim.run_until(3 * DAY); // warm queue/running state

    let encoder = StateEncoder::new(nodes, 48 * HOUR);
    let mut history = StateHistory::new(HISTORY_K);
    let pred = PredecessorState {
        nodes: 1,
        timelimit: 48 * HOUR,
        queue_time: 0,
        elapsed: 12 * HOUR,
    };
    let succ = SuccessorSpec {
        nodes: 1,
        timelimit: 48 * HOUR,
    };

    let mut snap = ClusterSnapshot::default();
    let mut enc_scratch = EncoderScratch::default();
    let mut matrix = Matrix::zeros(0, 0);
    let mut scratch = Scratch::new();
    // Warm-up pass (buffers, caches, branch predictors) outside the timer.
    for _ in 0..(n / 10).max(8) {
        sim.step(DECISION_INTERVAL);
        sim.sample_into(&mut snap);
        history.push(encoder.encode_into(&snap, &pred, &succ, &mut enc_scratch));
        history.write_matrix(&mut matrix);
        let _ = net.q_values(&matrix, &mut scratch);
    }

    let mut submit_count = 0u64;
    let t = Instant::now();
    for _ in 0..n {
        sim.step(DECISION_INTERVAL);
        let q = if fast {
            sim.sample_into(&mut snap);
            history.push(encoder.encode_into(&snap, &pred, &succ, &mut enc_scratch));
            history.write_matrix(&mut matrix);
            net.q_values(&matrix, &mut scratch)
        } else {
            let fresh = sim.sample();
            history.push(encoder.encode(&fresh, &pred, &succ));
            let m = history.matrix();
            net.q_forward(&m).0
        };
        submit_count += u64::from(q[1] > q[0]);
    }
    let elapsed = t.elapsed();
    LoopStats {
        decisions_per_sec: n as f64 / elapsed.as_secs_f64(),
        ns_per_decision: elapsed.as_nanos() as f64 / n as f64,
        submit_count,
    }
}

/// Forward-pass microbenchmark: ns per inference, allocating vs scratch.
fn forward_ns(net: &DualHeadNet, reps: u64) -> (f64, f64) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let state = Matrix::xavier(HISTORY_K, STATE_VARS, &mut rng);
    let mut scratch = Scratch::new();
    let _ = net.q_values(&state, &mut scratch); // warm the arena

    let t = Instant::now();
    let mut acc = 0.0f32;
    for _ in 0..reps {
        acc += net.q_forward(&state).0[0];
    }
    let before = t.elapsed().as_nanos() as f64 / reps as f64;
    let t = Instant::now();
    for _ in 0..reps {
        acc += net.q_values(&state, &mut scratch)[0];
    }
    let after = t.elapsed().as_nanos() as f64 / reps as f64;
    assert!(acc.is_finite());
    (before, after)
}

/// Full-trace replay: simulator events (arrivals + completions) per second.
fn sim_events_per_sec(jobs: &[JobRecord], nodes: u32) -> f64 {
    let mut sim = Simulator::new(SimConfig::new(nodes));
    sim.load_trace(jobs);
    let t = Instant::now();
    sim.run_to_completion();
    let elapsed = t.elapsed().as_secs_f64();
    let events = jobs.len() + sim.metrics().completed_jobs;
    events as f64 / elapsed
}

/// Extracts the curated `"seed_baseline"` object (verbatim JSON text) and
/// its `decisions_per_sec` from a previous output file, so reruns never
/// destroy the externally measured baseline this binary cannot reproduce.
fn preserved_baseline(old: &str) -> Option<(String, f64)> {
    let key = old.find("\"seed_baseline\"")?;
    let open = key + old[key..].find('{')?;
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in old[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let block = &old[open..=close?];
    let dps_key = block.find("\"decisions_per_sec\"")?;
    let after_colon = &block[dps_key..][block[dps_key..].find(':')? + 1..];
    let dps = after_colon
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?
        .parse::<f64>()
        .ok()?;
    Some((block.to_string(), dps))
}

fn main() {
    let quick = quick_mode();
    let decisions: u64 = if quick { 500 } else { 3000 };
    let forward_reps: u64 = if quick { 1000 } else { 10_000 };

    let profile = ClusterProfile::v100();
    let jobs = month_trace(&profile, 42);
    let net = experiment_net();

    let before = decision_loop(&jobs, profile.nodes, &net, decisions, false);
    let after = decision_loop(&jobs, profile.nodes, &net, decisions, true);
    assert_eq!(
        before.submit_count, after.submit_count,
        "both paths must take identical decisions"
    );
    let (fwd_before, fwd_after) = forward_ns(&net, forward_reps);
    let events_per_sec = sim_events_per_sec(&jobs, profile.nodes);
    let speedup = after.decisions_per_sec / before.decisions_per_sec;

    const OUT_PATH: &str = "BENCH_episode_throughput.json";
    let baseline = std::fs::read_to_string(OUT_PATH)
        .ok()
        .as_deref()
        .and_then(preserved_baseline);
    let baseline_tail = match &baseline {
        Some((block, seed_dps)) => format!(
            ",\n  \"speedup_vs_seed\": {:.2},\n  \"seed_baseline\": {}",
            after.decisions_per_sec / seed_dps,
            block
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"episode_throughput\",\n  \"quick\": {},\n  \"workload\": \"{} 1-month synthetic trace, {} decisions at {}s cadence, k={}\",\n  \"decisions_per_sec_before\": {:.1},\n  \"decisions_per_sec_after\": {:.1},\n  \"speedup\": {:.2},\n  \"ns_per_decision_before\": {:.0},\n  \"ns_per_decision_after\": {:.0},\n  \"ns_per_forward_before\": {:.0},\n  \"ns_per_forward_after\": {:.0},\n  \"sim_events_per_sec\": {:.0}{}\n}}\n",
        quick,
        profile.name,
        decisions,
        DECISION_INTERVAL,
        HISTORY_K,
        before.decisions_per_sec,
        after.decisions_per_sec,
        speedup,
        before.ns_per_decision,
        after.ns_per_decision,
        fwd_before,
        fwd_after,
        events_per_sec,
        baseline_tail,
    );
    std::fs::write(OUT_PATH, &json).expect("write bench output");
    print!("{json}");
    eprintln!(
        "decision loop: {:.0}/s -> {:.0}/s ({speedup:.2}x); forward {:.0}ns -> {:.0}ns; sim {:.0} events/s",
        before.decisions_per_sec, after.decisions_per_sec, fwd_before, fwd_after, events_per_sec
    );
}
