//! Decision-loop throughput benchmark with a machine-readable output.
//!
//! Measures the steady-state provisioning decision loop — simulator step →
//! snapshot → state matrix → NN inference → action — three ways on the
//! same workload:
//!
//! * **before**: the allocating, cache-returning path the training code
//!   uses (`sample()` + `encode()` + `matrix()` + `q_forward()`),
//! * **after**: the zero-allocation serving path (`sample_into` +
//!   `encode_into` + `write_matrix` + `q_values` over a warm `Scratch`),
//! * **batched**: `--batch N` independent episode lanes stepped in
//!   lockstep, their state matrices row-stacked into **one**
//!   `q_values_batch` forward per tick (with per-lane embed-row caches) —
//!   the batched episode engine's serving shape.
//!
//! All paths run identical arithmetic (enforced by bit-identity tests,
//! and re-asserted per lane inside this binary), so the in-binary ratios
//! isolate allocation/copy overhead and batching amortization; the
//! kernel-level speedups (matmul microkernel, fast tanh, scheduler
//! pass-skip) benefit *every* path and only show against an older
//! checkout. Results land in `BENCH_episode_throughput.json` (schema:
//! `crates/mirage-bench/README.md`) so the perf trajectory of this loop
//! is recorded across PRs; the committed copy additionally carries a
//! `seed_baseline` block measured by running this same driver against
//! the pre-PR tree in a git worktree. `MIRAGE_QUICK=1` shrinks the
//! iteration counts for CI smoke runs; `--workers W` replicates the
//! batched loop across W std threads (each with its own lanes and
//! network clone) and reports the aggregate.

use std::time::Instant;

use mirage_bench::quick_mode;
use mirage_core::state::{
    EncoderScratch, PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS,
};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::{Matrix, Scratch};
use mirage_rl::{ActionEncoding, BatchInferCache, DualHeadConfig, DualHeadNet};
use mirage_sim::{ClusterSnapshot, SimConfig, Simulator};
use mirage_trace::{
    clean_trace, ClusterProfile, JobRecord, SynthConfig, TraceGenerator, DAY, HOUR,
};

/// History length of the decision state matrix (experiment scale).
const HISTORY_K: usize = 12;
/// Seconds of simulated time between decisions (10-minute cadence).
const DECISION_INTERVAL: i64 = 600;
/// Default lockstep lane count for the batched loop: 8 lanes measured
/// fastest end to end (wider batches grow the working set past L1/L2 and
/// give the amortization back to cache misses).
const DEFAULT_BATCH: usize = 8;

fn month_trace(profile: &ClusterProfile, seed: u64) -> Vec<JobRecord> {
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = Some(1);
    let raw = TraceGenerator::new(cfg).generate();
    clean_trace(&raw, profile.nodes).0
}

fn experiment_net() -> DualHeadNet {
    // The offline-collection / online-training model shape
    // (`TrainConfig::default()`): d_model 16, 2 heads, 1 layer, k = 12.
    DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: STATE_VARS,
            seq_len: HISTORY_K,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: 7,
    })
}

struct LoopStats {
    decisions_per_sec: f64,
    ns_per_decision: f64,
    /// Defeats dead-code elimination and sanity-checks path agreement.
    submit_count: u64,
}

/// Runs `n` decision steps against a warm simulator. `fast` selects the
/// zero-allocation path; both paths compute identical decisions.
fn decision_loop(
    jobs: &[JobRecord],
    nodes: u32,
    net: &DualHeadNet,
    n: u64,
    fast: bool,
) -> LoopStats {
    let mut sim = Simulator::new(SimConfig::new(nodes));
    sim.load_trace(jobs);
    sim.run_until(3 * DAY); // warm queue/running state

    let encoder = StateEncoder::new(nodes, 48 * HOUR);
    let mut history = StateHistory::new(HISTORY_K);
    let pred = PredecessorState {
        nodes: 1,
        timelimit: 48 * HOUR,
        queue_time: 0,
        elapsed: 12 * HOUR,
    };
    let succ = SuccessorSpec {
        nodes: 1,
        timelimit: 48 * HOUR,
    };

    let mut snap = ClusterSnapshot::default();
    let mut enc_scratch = EncoderScratch::default();
    let mut matrix = Matrix::zeros(0, 0);
    let mut scratch = Scratch::new();
    // Warm-up pass (buffers, caches, branch predictors) outside the timer.
    for _ in 0..(n / 10).max(8) {
        sim.step(DECISION_INTERVAL);
        sim.sample_into(&mut snap);
        history.push(encoder.encode_into(&snap, &pred, &succ, &mut enc_scratch));
        history.write_matrix(&mut matrix);
        let _ = net.q_values(&matrix, &mut scratch);
    }

    let mut submit_count = 0u64;
    let t = Instant::now();
    for _ in 0..n {
        sim.step(DECISION_INTERVAL);
        let q = if fast {
            sim.sample_into(&mut snap);
            history.push(encoder.encode_into(&snap, &pred, &succ, &mut enc_scratch));
            history.write_matrix(&mut matrix);
            net.q_values(&matrix, &mut scratch)
        } else {
            let fresh = sim.sample();
            history.push(encoder.encode(&fresh, &pred, &succ));
            let m = history.matrix();
            net.q_forward(&m).0
        };
        submit_count += u64::from(q[1] > q[0]);
    }
    let elapsed = t.elapsed();
    LoopStats {
        decisions_per_sec: n as f64 / elapsed.as_secs_f64(),
        ns_per_decision: elapsed.as_nanos() as f64 / n as f64,
        submit_count,
    }
}

/// One lockstep episode lane: its own simulator, history window and
/// encoder scratch.
struct Lane {
    sim: Simulator,
    history: StateHistory,
    snap: ClusterSnapshot,
    enc: EncoderScratch,
}

/// Builds `batch` warmed lanes. Every lane independently replays the
/// *same* `base_seed` month trace — the exact single-episode workload
/// the committed baselines measure — so per-lane decision cost is
/// directly comparable to `decisions_per_sec_after` and the batched
/// number isolates batching, not a workload change. (Each lane still
/// steps its own full simulator; nothing is shared or deduplicated.)
fn make_lanes(profile: &ClusterProfile, batch: usize, base_seed: u64) -> Vec<Lane> {
    let jobs = month_trace(profile, base_seed);
    (0..batch)
        .map(|_| {
            let mut sim = Simulator::new(SimConfig::new(profile.nodes));
            sim.load_trace(&jobs);
            sim.run_until(3 * DAY);
            Lane {
                sim,
                history: StateHistory::new(HISTORY_K),
                snap: ClusterSnapshot::default(),
                enc: EncoderScratch::default(),
            }
        })
        .collect()
}

/// Runs `n_ticks` lockstep decision ticks over `batch` lanes. `batched`
/// selects one `q_values_batch` forward per tick (with per-lane
/// embed-row caches) vs one `q_values` forward per lane; both produce
/// identical decisions (asserted by the caller via the per-lane submit
/// counts). Lanes are rebuilt deterministically from `base_seed`, so two
/// calls see identical workloads.
fn lanes_loop(
    profile: &ClusterProfile,
    net: &DualHeadNet,
    n_ticks: u64,
    batch: usize,
    base_seed: u64,
    batched: bool,
) -> (LoopStats, Vec<u64>) {
    let mut lanes = make_lanes(profile, batch, base_seed);
    let encoder = StateEncoder::new(profile.nodes, 48 * HOUR);
    let pred = PredecessorState {
        nodes: 1,
        timelimit: 48 * HOUR,
        queue_time: 0,
        elapsed: 12 * HOUR,
    };
    let succ = SuccessorSpec {
        nodes: 1,
        timelimit: 48 * HOUR,
    };
    let mut lane_m = Matrix::zeros(0, 0);
    let mut stacked = Matrix::zeros(0, 0);
    let mut scratch = Scratch::new();
    let mut cache = BatchInferCache::new();
    let mut vals: Vec<[f32; 2]> = Vec::new();
    let mut per_lane = vec![0u64; batch];

    let mut elapsed = std::time::Duration::ZERO;
    for measure in [false, true] {
        let ticks = if measure {
            n_ticks
        } else {
            (n_ticks / 10).max(8)
        };
        let t = Instant::now();
        for _ in 0..ticks {
            for lane in lanes.iter_mut() {
                lane.sim.step(DECISION_INTERVAL);
                lane.sim.sample_into(&mut lane.snap);
                lane.history
                    .push(encoder.encode_into(&lane.snap, &pred, &succ, &mut lane.enc));
            }
            if batched {
                // Rows are fully overwritten below, so reshape only when
                // the (fixed) batch geometry first materializes.
                if stacked.shape() != (batch * HISTORY_K, STATE_VARS) {
                    stacked.reset(batch * HISTORY_K, STATE_VARS);
                }
                for (l, lane) in lanes.iter().enumerate() {
                    lane.history.write_matrix_rows(&mut stacked, l * HISTORY_K);
                }
                net.q_values_batch(&stacked, batch, &mut vals, &mut scratch, &mut cache);
                if measure {
                    for (l, &q) in vals.iter().enumerate() {
                        per_lane[l] += u64::from(q[1] > q[0]);
                    }
                }
            } else {
                for (l, lane) in lanes.iter().enumerate() {
                    lane.history.write_matrix(&mut lane_m);
                    let q = net.q_values(&lane_m, &mut scratch);
                    if measure {
                        per_lane[l] += u64::from(q[1] > q[0]);
                    }
                }
            }
        }
        if measure {
            elapsed = t.elapsed();
        }
    }
    let decisions = n_ticks * batch as u64;
    (
        LoopStats {
            decisions_per_sec: decisions as f64 / elapsed.as_secs_f64(),
            ns_per_decision: elapsed.as_nanos() as f64 / decisions as f64,
            submit_count: per_lane.iter().sum(),
        },
        per_lane,
    )
}

/// Replicates the batched lane loop across `workers` std threads (each
/// with its own lanes, seeds and network clone) and returns the
/// aggregate decisions/s over the scope's wall time.
fn lanes_loop_workers(
    profile: &ClusterProfile,
    net: &DualHeadNet,
    n_ticks: u64,
    batch: usize,
    workers: usize,
) -> LoopStats {
    let stats: Vec<LoopStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let net = net.clone();
                let profile = profile.clone();
                scope.spawn(move || {
                    lanes_loop(&profile, &net, n_ticks, batch, 42 + (w as u64) * 1000, true).0
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    // Workers run their measured windows concurrently; the aggregate rate
    // is total decisions over the slowest worker's measured time (lane
    // construction and warm-up stay outside, as in the 1-worker path).
    let per_worker = n_ticks * batch as u64;
    let slowest = stats
        .iter()
        .map(|s| per_worker as f64 * s.ns_per_decision / 1e9)
        .fold(0.0f64, f64::max);
    let decisions = per_worker * workers as u64;
    LoopStats {
        decisions_per_sec: decisions as f64 / slowest,
        ns_per_decision: slowest * 1e9 / decisions as f64,
        submit_count: stats.iter().map(|s| s.submit_count).sum(),
    }
}

/// Forward-pass microbenchmark: ns per inference, allocating vs scratch.
fn forward_ns(net: &DualHeadNet, reps: u64) -> (f64, f64) {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(3);
    let state = Matrix::xavier(HISTORY_K, STATE_VARS, &mut rng);
    let mut scratch = Scratch::new();
    let _ = net.q_values(&state, &mut scratch); // warm the arena

    let t = Instant::now();
    let mut acc = 0.0f32;
    for _ in 0..reps {
        acc += net.q_forward(&state).0[0];
    }
    let before = t.elapsed().as_nanos() as f64 / reps as f64;
    let t = Instant::now();
    for _ in 0..reps {
        acc += net.q_values(&state, &mut scratch)[0];
    }
    let after = t.elapsed().as_nanos() as f64 / reps as f64;
    assert!(acc.is_finite());
    (before, after)
}

/// Full-trace replay: simulator events (arrivals + completions) per second.
fn sim_events_per_sec(jobs: &[JobRecord], nodes: u32) -> f64 {
    let mut sim = Simulator::new(SimConfig::new(nodes));
    sim.load_trace(jobs);
    let t = Instant::now();
    sim.run_to_completion();
    let elapsed = t.elapsed().as_secs_f64();
    let events = jobs.len() + sim.metrics().completed_jobs;
    events as f64 / elapsed
}

/// Extracts the curated `"seed_baseline"` object (verbatim JSON text) and
/// its `decisions_per_sec` from a previous output file, so reruns never
/// destroy the externally measured baseline this binary cannot reproduce.
fn preserved_baseline(old: &str) -> Option<(String, f64)> {
    let key = old.find("\"seed_baseline\"")?;
    let open = key + old[key..].find('{')?;
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in old[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let block = &old[open..=close?];
    let dps_key = block.find("\"decisions_per_sec\"")?;
    let after_colon = &block[dps_key..][block[dps_key..].find(':')? + 1..];
    let dps = after_colon
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()?
        .parse::<f64>()
        .ok()?;
    Some((block.to_string(), dps))
}

/// Parses `--name value` from the CLI (panics on malformed input so CI
/// catches typos instead of silently benchmarking the wrong shape).
fn parse_flag(args: &[String], name: &str, default: usize) -> usize {
    let value = args
        .iter()
        .position(|a| a == name)
        .map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|e| panic!("{name}: {e}"))
        })
        .unwrap_or(default);
    assert!(value >= 1, "{name} must be at least 1, got {value}");
    value
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = quick_mode();
    let batch = parse_flag(&args, "--batch", DEFAULT_BATCH);
    let workers = parse_flag(&args, "--workers", 1);
    // Lockstep ticks match the single-lane decision count, so the batched
    // loop replays the identical simulated window per lane.
    let decisions: u64 = if quick { 500 } else { 3000 };
    let ticks: u64 = decisions;
    let forward_reps: u64 = if quick { 1000 } else { 10_000 };

    let profile = ClusterProfile::v100();
    let jobs = month_trace(&profile, 42);
    let net = experiment_net();

    let before = decision_loop(&jobs, profile.nodes, &net, decisions, false);
    let after = decision_loop(&jobs, profile.nodes, &net, decisions, true);
    assert_eq!(
        before.submit_count, after.submit_count,
        "both paths must take identical decisions"
    );

    // Lockstep lanes: per-lane forwards vs one batched forward per tick,
    // on bitwise-identical workloads (same seeds ⇒ same lanes).
    let (unbatched, per_lane_u) = lanes_loop(&profile, &net, ticks, batch, 42, false);
    let (batched_1w, per_lane_b) = lanes_loop(&profile, &net, ticks, batch, 42, true);
    assert_eq!(
        per_lane_u, per_lane_b,
        "batched and per-lane forwards must take identical decisions"
    );
    let batched = if workers > 1 {
        lanes_loop_workers(&profile, &net, ticks, batch, workers)
    } else {
        batched_1w
    };

    let (fwd_before, fwd_after) = forward_ns(&net, forward_reps);
    let events_per_sec = sim_events_per_sec(&jobs, profile.nodes);
    let speedup = after.decisions_per_sec / before.decisions_per_sec;
    // The honest control for the batched forward is the *same* lane loop
    // with per-lane forwards — not the single-episode loop, whose
    // difference also includes lockstep-lane locality effects.
    let speedup_batched = batched.decisions_per_sec / unbatched.decisions_per_sec;

    const OUT_PATH: &str = "BENCH_episode_throughput.json";
    let baseline = std::fs::read_to_string(OUT_PATH)
        .ok()
        .as_deref()
        .and_then(preserved_baseline);
    let baseline_tail = match &baseline {
        Some((block, seed_dps)) => format!(
            ",\n  \"speedup_vs_seed\": {:.2},\n  \"speedup_batched_vs_seed\": {:.2},\n  \"seed_baseline\": {}",
            after.decisions_per_sec / seed_dps,
            batched.decisions_per_sec / seed_dps,
            block
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"episode_throughput\",\n  \"quick\": {},\n  \"workload\": \"{} 1-month synthetic traces, {} decisions at {}s cadence, k={}; batched: {} lanes x {} lockstep ticks\",\n  \"decisions_per_sec_before\": {:.1},\n  \"decisions_per_sec_after\": {:.1},\n  \"decisions_per_sec_lanes_unbatched\": {:.1},\n  \"decisions_per_sec_batched\": {:.1},\n  \"batch_width\": {},\n  \"workers\": {},\n  \"speedup\": {:.2},\n  \"speedup_batched\": {:.2},\n  \"ns_per_decision_before\": {:.0},\n  \"ns_per_decision_after\": {:.0},\n  \"ns_per_decision_batched\": {:.0},\n  \"ns_per_forward_before\": {:.0},\n  \"ns_per_forward_after\": {:.0},\n  \"sim_events_per_sec\": {:.0}{}\n}}\n",
        quick,
        profile.name,
        decisions,
        DECISION_INTERVAL,
        HISTORY_K,
        batch,
        ticks,
        before.decisions_per_sec,
        after.decisions_per_sec,
        unbatched.decisions_per_sec,
        batched.decisions_per_sec,
        batch,
        workers,
        speedup,
        speedup_batched,
        before.ns_per_decision,
        after.ns_per_decision,
        batched.ns_per_decision,
        fwd_before,
        fwd_after,
        events_per_sec,
        baseline_tail,
    );
    std::fs::write(OUT_PATH, &json).expect("write bench output");
    print!("{json}");
    eprintln!(
        "decision loop: {:.0}/s -> {:.0}/s ({speedup:.2}x); batched x{batch}: {:.0}/s ({speedup_batched:.2}x over single); forward {:.0}ns -> {:.0}ns; sim {:.0} events/s",
        before.decisions_per_sec,
        after.decisions_per_sec,
        batched.decisions_per_sec,
        fwd_before,
        fwd_after,
        events_per_sec
    );
}
