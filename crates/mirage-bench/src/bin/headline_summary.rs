//! §6 headline statistics: zero-interruption job fractions and
//! interruption reductions vs the reactive baseline.
//!
//! Paper claims: Mirage safeguards 23–72 % / 35–72 % / 40–60 % of jobs
//! with zero interruption (V100/RTX/A100, medium-to-heavy load) and
//! reduces average interruption by 25–53 % / 21–44 % / 77–100 % when
//! machines are heavily loaded.

use mirage_bench::{interruption_experiment, prepare_cluster, ExperimentScale};
use mirage_core::LoadLevel;
use mirage_trace::ClusterProfile;

fn main() {
    let scale = ExperimentScale::default();
    println!("Headline summary (48h 1-node pairs, Mirage default = MoE+DQN, aggressive = transformer+PG)\n");
    for profile in ClusterProfile::all() {
        eprintln!("[headline] {} ...", profile.name);
        let pc = prepare_cluster(&profile, None, 42);
        let exp = interruption_experiment(&pc, 1, 42, scale);
        let report = &exp.report;
        println!("{}:", profile.name);
        for load in [LoadLevel::Heavy, LoadLevel::Medium] {
            let n = report.episodes_at(load);
            if n == 0 {
                println!("  {:6}: no episodes sampled at this level", load.label());
                continue;
            }
            for method in ["MoE+DQN", "transformer+PG"] {
                let s = report.summarize(method, load);
                let red = report
                    .reduction_vs_reactive(method, load)
                    .map(|r| format!("{r:.0}%"))
                    .unwrap_or_else(|| "n/a".into());
                println!(
                    "  {:6} {:16} zero-interruption {:4.0}% of {:2} episodes, reduction vs reactive {red}",
                    load.label(),
                    method,
                    s.zero_interruption_frac * 100.0,
                    n
                );
            }
        }
        println!();
    }
}
