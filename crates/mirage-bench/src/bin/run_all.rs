//! Regenerates every table and figure in one run (DESIGN.md §2).
//!
//! Trains each (cluster × pair-size) experiment once and prints Figures
//! 8, 9 and 10 from the shared reports, so the full suite costs three
//! training passes per pair size instead of nine.

use mirage_bench::{
    interruption_experiment, prepare_cluster, print_panel, print_reductions, ExperimentScale,
    FigureMetric, PreparedCluster,
};
use mirage_core::{EvalReport, LoadLevel};
use mirage_trace::ClusterProfile;
use std::process::Command;
use std::time::Instant;

fn run_binary(name: &str) {
    println!("\n################ {name} ################");
    let t = Instant::now();
    // Re-exec the sibling binary so each section stays independently
    // reproducible; fall back to a notice if missing.
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let status = Command::new(dir.join(name)).status();
    match status {
        Ok(s) if s.success() => {}
        other => println!("[run_all] {name} failed to run: {other:?}"),
    }
    println!("[run_all] {name} took {:?}", t.elapsed());
}

fn main() {
    let t_all = Instant::now();
    for bin in [
        "table1_trace_stats",
        "fig1_queue_wait",
        "fig2_job_arrivals",
        "fig3_node_hours",
        "fig4_wait_distribution",
        "sim_fidelity",
    ] {
        run_binary(bin);
    }

    // Figures 8/9/10 share trained experiments.
    let scale = ExperimentScale::default();
    let prepared: Vec<PreparedCluster> = ClusterProfile::all()
        .iter()
        .map(|p| prepare_cluster(p, None, 42))
        .collect();

    let mut single: Vec<(String, EvalReport)> = Vec::new();
    let mut multi: Vec<(String, EvalReport)> = Vec::new();
    for pc in &prepared {
        eprintln!(
            "[run_all] training 8 methods on {} (1-node pairs)",
            pc.profile.name
        );
        let t = Instant::now();
        let exp1 = interruption_experiment(pc, 1, 42, scale);
        eprintln!("[run_all]   1-node done in {:?}", t.elapsed());
        single.push((pc.profile.name.clone(), exp1.report));
        eprintln!(
            "[run_all] training 8 methods on {} (8-node pairs)",
            pc.profile.name
        );
        let t = Instant::now();
        let exp8 = interruption_experiment(pc, 8, 43, scale);
        eprintln!("[run_all]   8-node done in {:?}", t.elapsed());
        multi.push((pc.profile.name.clone(), exp8.report));
    }

    let single_refs: Vec<(String, &EvalReport)> =
        single.iter().map(|(n, r)| (n.clone(), r)).collect();
    let multi_refs: Vec<(String, &EvalReport)> =
        multi.iter().map(|(n, r)| (n.clone(), r)).collect();

    println!("\n################ fig8_interruption_single ################");
    print_panel(
        "Figure 8(a): avg interruption, 48h 1-node pairs",
        FigureMetric::Interruption,
        LoadLevel::Heavy,
        &single_refs,
    );
    print_reductions(LoadLevel::Heavy, &single_refs);
    print_panel(
        "Figure 8(b): avg interruption, 48h 1-node pairs",
        FigureMetric::Interruption,
        LoadLevel::Medium,
        &single_refs,
    );
    print_reductions(LoadLevel::Medium, &single_refs);

    println!("\n################ fig9_interruption_multi ################");
    print_panel(
        "Figure 9(a): avg interruption, 48h 8-node pairs",
        FigureMetric::Interruption,
        LoadLevel::Heavy,
        &multi_refs,
    );
    print_reductions(LoadLevel::Heavy, &multi_refs);
    print_panel(
        "Figure 9(b): avg interruption, 48h 8-node pairs",
        FigureMetric::Interruption,
        LoadLevel::Medium,
        &multi_refs,
    );
    print_reductions(LoadLevel::Medium, &multi_refs);

    println!("\n################ fig10_overlap_light ################");
    print_panel(
        "Figure 10(a): avg overlap, 1-node pairs",
        FigureMetric::Overlap,
        LoadLevel::Light,
        &single_refs,
    );
    print_panel(
        "Figure 10(b): avg overlap, 8-node pairs",
        FigureMetric::Overlap,
        LoadLevel::Light,
        &multi_refs,
    );

    println!("\n################ headline (zero-interruption / reductions) ################");
    for (name, report) in &single {
        println!("{name}:");
        for load in [LoadLevel::Heavy, LoadLevel::Medium] {
            let n = report.episodes_at(load);
            if n == 0 {
                continue;
            }
            for method in ["MoE+DQN", "transformer+PG"] {
                let s = report.summarize(method, load);
                let red = report
                    .reduction_vs_reactive(method, load)
                    .map(|r| format!("{r:.0}%"))
                    .unwrap_or_else(|| "n/a".into());
                println!(
                    "  {:6} {:16} zero={:3.0}% (n={:2}) reduction={red}",
                    load.label(),
                    method,
                    s.zero_interruption_frac * 100.0,
                    n
                );
            }
        }
    }
    println!("\n[run_all] total {:?}", t_all.elapsed());
}
