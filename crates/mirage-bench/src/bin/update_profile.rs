//! Micro-benchmark for the DQN update path: times scalar (per-sample
//! backward) vs batched (row-stacked backward) mini-batch updates on the
//! training-lane network shape, plus the isolated forward/backward
//! halves of the batched step. This is the drill-down companion to the
//! `episode_throughput` training lane: when `training_batched_bwd_speedup`
//! moves, run this to see which half of the update moved.
//!
//! Usage: `update_profile [scalar|batched|both] [reps]` — single-mode
//! runs exist so a sampling profiler (e.g. `gprofng collect app`)
//! attributes every cycle to one update path.

use std::time::Instant;

use mirage_nn::foundation::FoundationKind;
use mirage_nn::scratch::Scratch;
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::{GradSink, Grads};
use mirage_rl::{
    ActionEncoding, DqnAgent, DqnConfig, DualHeadConfig, DualHeadNet, Experience, HeadBatchCache,
    MiniBatch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Training-lane geometry: the `episode_throughput` training workload's
/// network (k = 12 history rows of 46 state vars, d_model 16) and the
/// online loop's default mini-batch of 32.
const SEQ: usize = 12;
const INPUT: usize = 46;
const BATCH: usize = 32;

fn agent() -> DqnAgent {
    let net = DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: INPUT,
            seq_len: SEQ,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: 9,
    });
    DqnAgent::new(
        net,
        DqnConfig {
            gamma: 0.9,
            // Keep target-net clones out of the timed loops.
            target_sync: 1_000_000,
            ..DqnConfig::default()
        },
    )
}

fn sample_batch(rng: &mut StdRng) -> Vec<Experience> {
    (0..BATCH)
        .map(|i| {
            let state = Matrix::xavier(SEQ, INPUT, rng);
            let reward = rng.gen::<f32>() - 0.5;
            if i % 3 == 0 {
                Experience::terminal(state, i % 2, reward)
            } else {
                Experience::step(state, i % 2, reward, Matrix::xavier(SEQ, INPUT, rng))
            }
        })
        .collect()
}

fn time_per_update(label: &str, reps: usize, mut step: impl FnMut() -> f32) {
    // One warm-up rep grows every retained buffer before the clock starts.
    let warm = step();
    let t0 = Instant::now();
    let mut sink = 0.0f32;
    for _ in 0..reps {
        sink += step();
    }
    let us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
    println!("{label}: {us:.1} us/update (warm loss {warm:.4}, sink {sink:.2})");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mode = args.get(1).map(String::as_str).unwrap_or("both");
    let reps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2000);

    let mut rng = StdRng::seed_from_u64(3);
    let batch = sample_batch(&mut rng);
    let refs: Vec<&Experience> = batch.iter().collect();
    let mut mb = MiniBatch::new();
    mb.assemble_refs(&refs);

    if mode == "scalar" || mode == "both" {
        let mut a = agent();
        time_per_update("scalar  (per-sample bwd)", reps, || {
            a.train_batch_scalar(&refs)
        });
    }
    if mode == "batched" || mode == "both" {
        let mut a = agent();
        time_per_update("batched (row-stacked bwd)", reps, || a.train_minibatch(&mb));
    }
    if mode == "parts" || mode == "both" {
        // The batched step's halves in isolation, on the same row-stacked
        // batch: forward fills the train cache, backward consumes it with
        // a fused sink (the update-path configuration).
        let net = agent().net;
        let mut scratch = Scratch::new();
        let mut cache = HeadBatchCache::default();
        let mut q = Matrix::zeros(BATCH, 2);
        let mut dq = Matrix::zeros(BATCH, 2);
        for i in 0..BATCH {
            dq.set(i, i % 2, 0.1);
        }
        let mut grads = Grads::new(&net.ps);
        time_per_update("  fwd_batch_train", reps, || {
            net.q_forward_batch_train(&mb.states, BATCH, &mut q, &mut cache, &mut scratch);
            q.get(0, 0)
        });
        net.q_forward_batch_train(&mb.states, BATCH, &mut q, &mut cache, &mut scratch);
        time_per_update("  bwd_batch (fused)", reps, || {
            grads.reset();
            let mut sink = GradSink::Fused(&mut grads);
            net.q_backward_batch(&mut cache, &mb.states, &dq, BATCH, &mut sink, &mut scratch);
            0.0
        });
    }
}
