//! Figure 8: average interruption of a pair of 48-hour **single-node**
//! jobs on the three clusters, under heavy and medium load.
//!
//! Paper shapes to reproduce: under heavy load the learned methods cut the
//! reactive interruption substantially (average reductions of 44.1 % /
//! 33.7 % / 84.7 % on V100/RTX/A100 across methods); transformer+PG has
//! the lowest interruption; MoE+PG is the weakest learned method.

use mirage_bench::{
    interruption_experiment, prepare_cluster, print_panel, print_reductions, ExperimentScale,
    FigureMetric,
};
use mirage_core::LoadLevel;
use mirage_trace::ClusterProfile;

fn main() {
    let scale = ExperimentScale::default();
    let mut reports = Vec::new();
    for profile in ClusterProfile::all() {
        eprintln!("[fig8] preparing + training on {} ...", profile.name);
        let pc = prepare_cluster(&profile, None, 42);
        let exp = interruption_experiment(&pc, 1, 42, scale);
        reports.push((profile.name.clone(), exp.report));
    }
    let refs: Vec<(String, &mirage_core::EvalReport)> =
        reports.iter().map(|(n, r)| (n.clone(), r)).collect();
    print_panel(
        "Figure 8(a): avg interruption, 48h 1-node pairs",
        FigureMetric::Interruption,
        LoadLevel::Heavy,
        &refs,
    );
    print_reductions(LoadLevel::Heavy, &refs);
    print_panel(
        "Figure 8(b): avg interruption, 48h 1-node pairs",
        FigureMetric::Interruption,
        LoadLevel::Medium,
        &refs,
    );
    print_reductions(LoadLevel::Medium, &refs);
}
