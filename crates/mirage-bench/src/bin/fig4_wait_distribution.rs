//! Figure 4: distribution of queue wait time on the three clusters.
//!
//! Paper: in peak months 30–41 % of V100 jobs wait > 24 h; 12–24 % on RTX;
//! on A100 92–98 % wait < 12 h in all months but 2023-02.

use mirage_bench::prepare_cluster;
use mirage_sim::{SimConfig, Simulator};
use mirage_trace::stats::{
    monthly_wait_distribution, wait_distribution, WAIT_BUCKET_EDGES, WAIT_BUCKET_LABELS,
};
use mirage_trace::ClusterProfile;

fn main() {
    println!("Figure 4: Queue-wait distributions (replayed synthetic traces)");
    for profile in ClusterProfile::all() {
        let pc = prepare_cluster(&profile, None, 42);
        let mut sim = Simulator::new(SimConfig::new(profile.nodes));
        sim.load_trace(&pc.jobs);
        sim.run_to_completion();
        let done = sim.completed();

        println!("\n{} — overall:", profile.name);
        let overall = wait_distribution(&done, &WAIT_BUCKET_EDGES);
        for (label, frac) in WAIT_BUCKET_LABELS.iter().zip(&overall) {
            println!("  {:8} {:>6.1}%", label, frac * 100.0);
        }
        let over24 = overall[3] + overall[4];
        println!("  > 24h overall: {:.1}%", over24 * 100.0);

        // Per-month extremes, the quantity the paper narrates.
        let monthly = monthly_wait_distribution(&done, &WAIT_BUCKET_EDGES);
        let mut worst = (0i64, 0.0f64);
        let mut under12_min = (0i64, 1.0f64);
        for (m, dist) in &monthly {
            let o24 = dist[3] + dist[4];
            if o24 > worst.1 {
                worst = (*m, o24);
            }
            let u12 = dist[0] + dist[1];
            if u12 < under12_min.1 {
                under12_min = (*m, u12);
            }
        }
        println!(
            "  peak month {}: {:.1}% of jobs wait > 24h (paper: V100 30-41%, RTX 12-24%)",
            worst.0 + 1,
            worst.1 * 100.0
        );
        println!(
            "  worst month for <12h share: month {} at {:.1}% (paper A100: 92-98% typical)",
            under12_min.0 + 1,
            under12_min.1 * 100.0
        );
    }
}
