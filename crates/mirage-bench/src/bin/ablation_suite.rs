//! Quality ablations for the design choices DESIGN.md §4 calls out.
//!
//! * backfill vs plain priority scheduling (queue-wait impact),
//! * history length k for the foundation model (reward-prediction MSE),
//! * dense vs top-1 MoE (reward-prediction MSE),
//! * reward penalty ratio e_I : e_O (behavioral effect on submit timing),
//! * experience replay vs none is covered by the class-balanced replay in
//!   the training pipeline (§4.8); here we measure foundation pretraining
//!   with and without sample shuffling as its offline analogue.

use mirage_bench::{busiest_user, prepare_cluster};
use mirage_core::episode::EpisodeConfig;
use mirage_core::train::{collect_offline, sample_training_starts, TrainConfig};
use mirage_core::RewardShaper;
use mirage_nn::foundation::FoundationKind;
use mirage_rl::{pretrain_foundation, reward_mse, PretrainConfig, RewardSample};
use mirage_sim::{BackfillPolicy, SimConfig, Simulator};
use mirage_trace::{ClusterProfile, HOUR};

fn main() {
    let profile = ClusterProfile::v100();
    let pc = prepare_cluster(&profile, Some(6), 42);

    backfill_ablation(&pc.jobs, profile.nodes);
    let (train_data, val_data) = offline_pools(&pc);
    history_ablation(&train_data, &val_data);
    moe_ablation(&train_data, &val_data);
    reward_ratio_ablation(&pc);
}

fn backfill_ablation(jobs: &[mirage_trace::JobRecord], nodes: u32) {
    println!("=== ablation: EASY backfill vs plain priority scheduling ===");
    for (name, policy) in [
        ("EASY backfill", BackfillPolicy::Easy { reserve_depth: 1 }),
        ("no backfill", BackfillPolicy::None),
    ] {
        let mut cfg = SimConfig::new(nodes);
        cfg.backfill = policy;
        let mut sim = Simulator::new(cfg);
        sim.load_trace(jobs);
        sim.run_to_completion();
        let m = sim.metrics();
        println!(
            "  {:14} avg wait {:7.2}h  utilization {:5.1}%  makespan {:6.1}d",
            name,
            m.avg_wait / HOUR as f64,
            m.utilization * 100.0,
            m.makespan as f64 / 86400.0
        );
    }
    println!("  (backfill should cut waits at equal or better utilization)\n");
}

/// Collects train/validation reward pools at two history lengths by
/// re-encoding the same episodes.
fn offline_pools(pc: &mirage_bench::PreparedCluster) -> (Vec<RewardSample>, Vec<RewardSample>) {
    let mut tcfg = TrainConfig::default();
    tcfg.episode.pair_user = busiest_user(&pc.jobs);
    tcfg.offline_episodes = 12;
    let starts = sample_training_starts(
        &pc.jobs,
        pc.profile.nodes,
        pc.train_range.0,
        pc.train_range.1,
        &tcfg.episode,
        tcfg.offline_episodes,
        3,
    );
    let pool = SimConfig::builder().nodes(pc.profile.nodes).build_pool();
    let data = collect_offline(&pool, &pc.jobs, &tcfg, &starts);
    let n = data.reward_samples.len();
    let split = n * 4 / 5;
    let train = data.reward_samples[..split].to_vec();
    let valid = data.reward_samples[split..].to_vec();
    (train, valid)
}

fn pretrain_and_score(
    kind: FoundationKind,
    k: usize,
    train: &[RewardSample],
    valid: &[RewardSample],
) -> f32 {
    // Truncate state matrices to the last k rows to emulate shorter
    // histories without re-running episodes.
    let shrink = |s: &RewardSample| RewardSample {
        state: mirage_nn::Matrix::from_fn(k, s.state.cols(), |r, c| {
            s.state.get(s.state.rows() - k + r, c)
        }),
        action: s.action,
        reward: s.reward,
    };
    let train_k: Vec<RewardSample> = train.iter().map(shrink).collect();
    let valid_k: Vec<RewardSample> = valid.iter().map(shrink).collect();
    let mut net = mirage_rl::DualHeadNet::new(mirage_rl::DualHeadConfig {
        foundation: kind,
        transformer: mirage_nn::TransformerConfig {
            input_dim: 40,
            seq_len: k,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: mirage_rl::ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: 7,
    });
    pretrain_foundation(
        &mut net,
        &train_k,
        &PretrainConfig {
            epochs: 5,
            batch_size: 32,
            lr: 1e-3,
            seed: 0,
            grad_clip: 5.0,
        },
    );
    reward_mse(&net, &valid_k)
}

fn history_ablation(train: &[RewardSample], valid: &[RewardSample]) {
    println!("=== ablation: history length k (reward-prediction val MSE) ===");
    for k in [3usize, 6, 12] {
        let mse = pretrain_and_score(FoundationKind::Transformer, k, train, valid);
        println!("  k = {k:>3}: val MSE {mse:9.3}");
    }
    println!("  (longer history should not hurt; gains taper off)\n");
}

fn moe_ablation(train: &[RewardSample], valid: &[RewardSample]) {
    println!("=== ablation: dense MoE vs top-1 sparse MoE vs single transformer ===");
    for (name, kind) in [
        ("transformer", FoundationKind::Transformer),
        ("dense MoE x3", FoundationKind::MoE { experts: 3 }),
        ("top-1 MoE x3", FoundationKind::MoETopOne { experts: 3 }),
    ] {
        let mse = pretrain_and_score(kind, 12, train, valid);
        println!("  {name:14} val MSE {mse:9.3}");
    }
    println!("  (the paper found top-1 inferior to the dense average)\n");
}

fn reward_ratio_ablation(pc: &mirage_bench::PreparedCluster) {
    println!("=== ablation: reward ratio e_I : e_O (best offline submit fraction) ===");
    // For each ratio, report which §4.9.1 split point won (earlier =
    // more aggressive) averaged over episodes.
    let tcfg = TrainConfig {
        episode: EpisodeConfig {
            pair_user: busiest_user(&pc.jobs),
            ..EpisodeConfig::default()
        },
        offline_episodes: 10,
        ..TrainConfig::default()
    };
    let starts = sample_training_starts(
        &pc.jobs,
        pc.profile.nodes,
        pc.train_range.0,
        pc.train_range.1,
        &tcfg.episode,
        tcfg.offline_episodes,
        11,
    );
    for (label, shaper) in [
        (
            "e_I=10, e_O=1 (perf-sensitive)",
            RewardShaper {
                e_interrupt: 10.0,
                e_overlap: 1.0,
            },
        ),
        ("e_I=2,  e_O=1 (default)", RewardShaper::default()),
        (
            "e_I=1,  e_O=10 (waste-averse)",
            RewardShaper {
                e_interrupt: 1.0,
                e_overlap: 10.0,
            },
        ),
    ] {
        let mut cfg = tcfg.clone();
        cfg.shaper = shaper;
        let pool = SimConfig::builder().nodes(pc.profile.nodes).build_pool();
        let data = collect_offline(&pool, &pc.jobs, &cfg, &starts);
        // The best-run pool holds the highest-reward run per start; its
        // submit fraction reveals the preferred aggressiveness.
        let submits: Vec<f64> = {
            let mut fractions = Vec::new();
            let mut step = 0usize;
            let mut total = 0usize;
            for (_, action) in &data.best_run_decisions {
                total += 1;
                if *action == 1 {
                    fractions.push(step as f64 / total.max(1) as f64);
                    step = 0;
                } else {
                    step += 1;
                }
            }
            fractions
        };
        let proactive_frac = data
            .best_run_decisions
            .iter()
            .filter(|(_, a)| *a == 1)
            .count() as f64
            / starts.len() as f64;
        println!(
            "  {label:32} best runs submitted proactively in {:.0}% of episodes",
            proactive_frac * 100.0
        );
        let _ = submits;
    }
    println!("  (higher interruption penalty should favor proactive submission)");
}
