//! Figure 1: average queue wait time per month on the V100 and RTX
//! clusters.
//!
//! The paper's peaks: up to ~40 h on V100 (February 2021), lower but
//! spiky on RTX. The synthetic traces are replayed through the Slurm
//! simulator to obtain start times, then bucketed by month.

use mirage_bench::{hours, prepare_cluster};
use mirage_sim::{SimConfig, Simulator};
use mirage_trace::stats::monthly_avg_wait;
use mirage_trace::ClusterProfile;

fn main() {
    println!("Figure 1: Average Queue Wait Time per month (hours)");
    for profile in [ClusterProfile::v100(), ClusterProfile::rtx()] {
        let pc = prepare_cluster(&profile, None, 42);
        let mut sim = Simulator::new(SimConfig::new(profile.nodes));
        sim.load_trace(&pc.jobs);
        sim.run_to_completion();
        let done = sim.completed();
        let by_month = monthly_avg_wait(&done);
        println!("\n{} ({} months):", profile.name, profile.trace_months);
        print!("  month:");
        for m in by_month.keys() {
            print!(" {:>6}", m + 1);
        }
        println!();
        print!("  wait :");
        for w in by_month.values() {
            print!(" {:>6.1}", hours(*w));
        }
        println!();
        let peak = by_month.values().cloned().fold(0.0f64, f64::max);
        println!(
            "  peak month avg wait: {:.1} h (paper: V100 peaks ≈ 40 h)",
            hours(peak)
        );
    }
}
