//! Figure 3: distribution of node-hour consumption by job node count.
//!
//! Paper observation (§3.1): multi-node jobs are a small fraction of the
//! job count but dominate node-hour consumption — e.g. on V100 in 2021-02,
//! 23.4 % of jobs are multi-node but take 76.9 % of node-hours.

use mirage_bench::prepare_cluster;
use mirage_trace::stats::{
    job_count_shares, multi_node_shares, node_hour_shares, SIZE_CLASS_LABELS,
};
use mirage_trace::ClusterProfile;

fn main() {
    println!("Figure 3: Node-hour consumption by node count (cleaned traces)");
    for profile in ClusterProfile::all() {
        let pc = prepare_cluster(&profile, None, 42);
        let hours = node_hour_shares(&pc.jobs);
        let jobs = job_count_shares(&pc.jobs);
        let (mn_jobs, mn_hours) = multi_node_shares(&pc.jobs);
        println!("\n{}:", profile.name);
        println!(
            "  {:12} {:>12} {:>12}",
            "size class", "% of jobs", "% node-hrs"
        );
        for ((label, j), h) in SIZE_CLASS_LABELS.iter().zip(jobs).zip(hours) {
            println!("  {:12} {:>11.1}% {:>11.1}%", label, j * 100.0, h * 100.0);
        }
        println!(
            "  multi-node jobs: {:.1}% of jobs, {:.1}% of node-hours (paper V100 peak: 23.4% / 76.9%)",
            mn_jobs * 100.0,
            mn_hours * 100.0
        );
    }
}
