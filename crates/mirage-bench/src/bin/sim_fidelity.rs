//! §5.2 simulator-fidelity study: the fast event-driven simulator vs the
//! tick-driven reference simulator on five randomly sampled weeks per
//! cluster.
//!
//! Paper numbers: makespan difference < 2.5 % across the five runs, JCT
//! geometric-mean difference ≤ 15 %, and 3–26× lower overhead.

use mirage_bench::prepare_cluster;
use mirage_sim::fidelity::run_both;
use mirage_trace::{ClusterProfile, WEEK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("Simulator fidelity: fast event-driven vs tick-driven reference");
    println!("(paper: makespan diff < 2.5%, JCT geomean diff <= 15%, 3-26x speedup)\n");
    let mut rng = StdRng::seed_from_u64(7);
    for profile in ClusterProfile::all() {
        let pc = prepare_cluster(&profile, None, 42);
        let span_end = pc.jobs.last().map(|j| j.submit).unwrap_or(0);
        println!("{}:", profile.name);
        println!(
            "  {:>6} {:>8} {:>14} {:>14} {:>12} {:>12} {:>9}",
            "week", "jobs", "makespan diff", "JCT geo diff", "fast (ms)", "ref (ms)", "speedup"
        );
        for w in 0..5 {
            let start = rng.gen_range(0..(span_end - WEEK).max(1));
            let lo = pc.jobs.partition_point(|j| j.submit < start);
            let hi = pc.jobs.partition_point(|j| j.submit < start + WEEK);
            let week: Vec<_> = pc.jobs[lo..hi].to_vec();
            if week.is_empty() {
                continue;
            }
            let (report, t_fast, t_ref) = run_both(&week, profile.nodes);
            println!(
                "  {:>6} {:>8} {:>13.2}% {:>13.2}% {:>12.1} {:>12.1} {:>8.1}x",
                w + 1,
                report.jobs_compared,
                report.makespan_rel_diff * 100.0,
                report.jct_geomean_diff * 100.0,
                t_fast.as_secs_f64() * 1e3,
                t_ref.as_secs_f64() * 1e3,
                t_ref.as_secs_f64() / t_fast.as_secs_f64().max(1e-9),
            );
        }
        println!();
    }
}
