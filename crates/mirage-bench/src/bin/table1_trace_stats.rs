//! Table 1: stats of the job traces of V100, RTX and A100.
//!
//! Paper values: node counts 88/84/76; original job counts
//! 189,899 / 375,095 / 49,997; filtered counts 65,017 / 175,090 / 24,779.

use mirage_bench::prepare_cluster;
use mirage_trace::ClusterProfile;

fn main() {
    println!("Table 1: Stats of the Job Traces (synthetic reproduction)");
    println!(
        "{:8} {:>6} {:>8} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "cluster", "nodes", "months", "orig jobs", "filtered", "ratio", "paper orig", "paper filt"
    );
    let paper = [
        (189_899usize, 65_017usize),
        (375_095, 175_090),
        (49_997, 24_779),
    ];
    for (profile, (p_orig, p_filt)) in ClusterProfile::all().iter().zip(paper) {
        let pc = prepare_cluster(profile, None, 42);
        println!(
            "{:8} {:>6} {:>8} {:>12} {:>12} {:>10.2} {:>12} {:>12}",
            profile.name,
            profile.nodes,
            profile.trace_months,
            pc.raw_jobs,
            pc.clean_report.filtered,
            pc.raw_jobs as f64 / pc.clean_report.filtered.max(1) as f64,
            p_orig,
            p_filt,
        );
        println!(
            "         cleaning: oversized removed = {}, chains merged = {}, sub-jobs absorbed = {}",
            pc.clean_report.oversized_removed,
            pc.clean_report.groups_merged,
            pc.clean_report.subjobs_absorbed
        );
    }
}
