//! Shared experiment plumbing.

use mirage_core::prelude::*;
use mirage_core::train::{collect_offline, sample_training_starts, OfflineData};
use mirage_sim::SimConfig;
use mirage_trace::{
    clean_trace, split_by_time, CleanReport, ClusterProfile, JobRecord, SynthConfig,
    TraceGenerator, HOUR,
};

/// Whether `MIRAGE_QUICK=1` smoke mode is active.
pub fn quick_mode() -> bool {
    std::env::var("MIRAGE_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// A generated, cleaned and split cluster trace ready for experiments.
pub struct PreparedCluster {
    /// Cluster profile the trace models.
    pub profile: ClusterProfile,
    /// Cleaned jobs, sorted by submit time.
    pub jobs: Vec<JobRecord>,
    /// Raw (pre-cleaning) job count.
    pub raw_jobs: usize,
    /// Cleaning report (Table 1 numbers).
    pub clean_report: CleanReport,
    /// Training range `[start, end)` (first 80 % of the span).
    pub train_range: (i64, i64),
    /// Validation range `[start, end)` (last 20 %).
    pub val_range: (i64, i64),
}

/// Generates, cleans and splits one cluster's trace (80:20 as in §6).
pub fn prepare_cluster(
    profile: &ClusterProfile,
    months: Option<u32>,
    seed: u64,
) -> PreparedCluster {
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = months;
    if quick_mode() {
        cfg.months = Some(months.unwrap_or(profile.trace_months).min(3));
    }
    let raw = TraceGenerator::new(cfg).generate();
    let (jobs, clean_report) = clean_trace(&raw, profile.nodes);
    let split = split_by_time(&jobs, 0.8);
    let first = jobs.first().map(|j| j.submit).unwrap_or(0);
    let last = jobs.last().map(|j| j.submit).unwrap_or(0);
    PreparedCluster {
        profile: profile.clone(),
        raw_jobs: raw.len(),
        clean_report,
        train_range: (first, split.split_time),
        val_range: (split.split_time, last),
        jobs,
    }
}

/// One full §6 experiment: train all eight methods on the training range,
/// evaluate them on identical validation episodes.
pub struct InterruptionExperiment {
    /// Evaluation report over the validation episodes.
    pub report: EvalReport,
    /// The episode configuration used.
    pub episode: EpisodeConfig,
}

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentScale {
    /// Offline collection episode starts.
    pub offline_episodes: usize,
    /// Online RL fine-tuning episodes.
    pub online_episodes: usize,
    /// Validation episodes.
    pub eval_episodes: usize,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        if quick_mode() {
            Self {
                offline_episodes: 8,
                online_episodes: 12,
                eval_episodes: 10,
            }
        } else {
            Self {
                offline_episodes: 32,
                online_episodes: 80,
                eval_episodes: 60,
            }
        }
    }
}

/// Most node-second-hungry user of a trace. The provisioned pair runs as
/// this user so its sub-jobs queue with a realistic (poor) fair-share
/// standing — a fresh user id would jump every congested queue.
pub fn busiest_user(jobs: &[JobRecord]) -> u32 {
    use std::collections::HashMap;
    let mut usage: HashMap<u32, f64> = HashMap::new();
    for j in jobs {
        *usage.entry(j.user).or_insert(0.0) += j.nodes as f64 * j.runtime as f64;
    }
    usage
        .into_iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
        .map(|(u, _)| u)
        .unwrap_or(0)
}

/// Runs the Fig 8/9 pipeline for one cluster and pair size.
pub fn interruption_experiment(
    pc: &PreparedCluster,
    pair_nodes: u32,
    seed: u64,
    scale: ExperimentScale,
) -> InterruptionExperiment {
    let mut tcfg = TrainConfig::default();
    tcfg.episode.pair_nodes = pair_nodes;
    tcfg.episode.pair_user = busiest_user(&pc.jobs);
    tcfg.offline_episodes = scale.offline_episodes;
    tcfg.online_episodes = scale.online_episodes;
    tcfg.seed = seed;

    let starts = sample_training_starts(
        &pc.jobs,
        pc.profile.nodes,
        pc.train_range.0,
        pc.train_range.1,
        &tcfg.episode,
        tcfg.offline_episodes,
        seed,
    );
    // Offline collection and online fine-tuning both run in lockstep
    // windows over the pool's seeded backends; evaluation reuses one
    // backend value.
    let pool = SimConfig::builder()
        .nodes(pc.profile.nodes)
        .seed(seed)
        .build_pool();
    let data: OfflineData = collect_offline(&pool, &pc.jobs, &tcfg, &starts);

    let mut backend = SimConfig::builder()
        .nodes(pc.profile.nodes)
        .seed(seed)
        .build();
    let mut methods: Vec<Box<dyn ProvisionPolicy>> = Vec::new();
    for kind in MethodKind::all() {
        methods.push(mirage_core::train::train_method(
            kind,
            &pool,
            &pc.jobs,
            &tcfg,
            &data,
            pc.train_range,
        ));
    }

    let ecfg = EvalConfig {
        episode: tcfg.episode,
        n_episodes: scale.eval_episodes,
        seed: seed ^ 0xEE,
    };
    let report = evaluate(&mut methods, &mut backend, &pc.jobs, pc.val_range, &ecfg);
    InterruptionExperiment {
        report,
        episode: tcfg.episode,
    }
}

/// Which outcome column a figure shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureMetric {
    /// Average interruption (Figs 8, 9).
    Interruption,
    /// Average overlap (Fig 10).
    Overlap,
}

/// Prints one paper-style figure panel: methods × clusters at one load
/// level.
pub fn print_panel(
    title: &str,
    metric: FigureMetric,
    load: LoadLevel,
    cluster_reports: &[(String, &EvalReport)],
) {
    println!("\n=== {title} [{} load] ===", load.label());
    print!("{:18}", "method");
    for (name, report) in cluster_reports {
        print!(
            " | {:>21}",
            format!("{} (n={})", name, report.episodes_at(load))
        );
    }
    println!();
    let methods: Vec<String> = cluster_reports
        .first()
        .map(|(_, r)| r.method_names.clone())
        .unwrap_or_default();
    for m in &methods {
        print!("{m:18}");
        for (_, report) in cluster_reports {
            let s = report.summarize(m, load);
            let value = match metric {
                FigureMetric::Interruption => s.avg_interruption_h,
                FigureMetric::Overlap => s.avg_overlap_h,
            };
            print!(
                " | {:>8.2}h  zero={:3.0}%",
                value,
                s.zero_interruption_frac * 100.0
            );
        }
        println!();
    }
}

/// Prints interruption reductions vs the reactive baseline (the §6
/// headline statistic).
pub fn print_reductions(load: LoadLevel, cluster_reports: &[(String, &EvalReport)]) {
    println!(
        "\n--- interruption reduction vs reactive [{} load] ---",
        load.label()
    );
    let methods: Vec<String> = cluster_reports
        .first()
        .map(|(_, r)| r.method_names.clone())
        .unwrap_or_default();
    for m in methods.iter().filter(|m| m.as_str() != "reactive") {
        print!("{m:18}");
        for (_, report) in cluster_reports {
            match report.reduction_vs_reactive(m, load) {
                Some(red) => print!(" | {red:>7.1}%"),
                None => print!(" | {:>8}", "n/a"),
            }
        }
        println!();
    }
}

/// Formats seconds as hours with one decimal.
pub fn hours(secs: f64) -> f64 {
    secs / HOUR as f64
}
