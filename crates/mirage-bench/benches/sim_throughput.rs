//! Simulator-throughput benchmarks (§5.2 performance claims).
//!
//! The paper claims the fast simulator replays "a one month workload
//! within one minute" and is 3–26× cheaper than the standard Slurm
//! simulator. These benches put numbers on both claims.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mirage_sim::reference::{ReferenceConfig, ReferenceSimulator};
use mirage_sim::{SimConfig, Simulator};
use mirage_trace::{clean_trace, ClusterProfile, JobRecord, SynthConfig, TraceGenerator, WEEK};

fn one_month(profile: &ClusterProfile, seed: u64) -> Vec<JobRecord> {
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = Some(1);
    let raw = TraceGenerator::new(cfg).generate();
    clean_trace(&raw, profile.nodes).0
}

fn bench_fast_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_one_month_replay");
    group.sample_size(10);
    for profile in [
        ClusterProfile::v100(),
        ClusterProfile::rtx(),
        ClusterProfile::a100(),
    ] {
        let jobs = one_month(&profile, 42);
        group.bench_function(profile.name.clone(), |b| {
            b.iter_batched(
                || {
                    let mut sim = Simulator::new(SimConfig::new(profile.nodes));
                    sim.load_trace(&jobs);
                    sim
                },
                |mut sim| {
                    sim.run_to_completion();
                    sim.completed().len()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_reference_week(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_reference_one_week");
    group.sample_size(10);
    let profile = ClusterProfile::v100();
    let jobs: Vec<JobRecord> = one_month(&profile, 43)
        .into_iter()
        .filter(|j| j.submit < WEEK)
        .collect();
    group.bench_function("reference_V100", |b| {
        b.iter_batched(
            || {
                let mut sim = ReferenceSimulator::new(ReferenceConfig::new(profile.nodes));
                sim.load_trace(&jobs);
                sim
            },
            |mut sim| {
                sim.run_to_completion();
                sim.completed().len()
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("fast_V100_same_week", |b| {
        b.iter_batched(
            || {
                let mut sim = Simulator::new(SimConfig::new(profile.nodes));
                sim.load_trace(&jobs);
                sim
            },
            |mut sim| {
                sim.run_to_completion();
                sim.completed().len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.sample_size(10);
    let profile = ClusterProfile::v100();
    group.bench_function("v100_3_months", |b| {
        b.iter(|| {
            let mut cfg = SynthConfig::new(profile.clone(), 7);
            cfg.months = Some(3);
            TraceGenerator::new(cfg).generate().len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fast_replay,
    bench_reference_week,
    bench_trace_generation
);
criterion_main!(benches);
