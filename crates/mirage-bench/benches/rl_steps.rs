//! RL training-step benchmarks: DQN mini-batch updates and PG episode
//! updates at the experiment scale.

use criterion::{criterion_group, criterion_main, Criterion};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::TransformerConfig;
use mirage_rl::{
    ActionEncoding, DqnAgent, DqnConfig, DualHeadConfig, DualHeadNet, EpisodeSample, Experience,
    PgAgent, PgConfig, ReplayBuffer,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn experiment_net(seed: u64) -> DualHeadNet {
    DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: 40,
            seq_len: 12,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed,
    })
}

fn random_state(rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(12, 40, |_, _| rng.gen_range(-1.0..1.0))
}

fn bench_dqn(c: &mut Criterion) {
    let mut group = c.benchmark_group("dqn");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(3);
    let mut replay = ReplayBuffer::new(1024);
    for _ in 0..512 {
        let s = random_state(&mut rng);
        replay.push(Experience::terminal(
            s,
            rng.gen_range(0..2),
            -rng.gen_range(0.0..40.0f32),
        ));
    }
    let mut agent = DqnAgent::new(experiment_net(1), DqnConfig::default());
    group.bench_function("train_batch_32", |b| {
        b.iter(|| {
            let batch = replay.sample(&mut rng, 32);
            agent.train_batch(&batch)
        })
    });
    let state = random_state(&mut rng);
    group.bench_function("greedy_decision", |b| b.iter(|| agent.act_greedy(&state)));
    group.finish();
}

fn bench_pg(c: &mut Criterion) {
    let mut group = c.benchmark_group("pg");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(4);
    let mut agent = PgAgent::new(experiment_net(2), PgConfig::default());
    let episodes: Vec<EpisodeSample> = (0..4)
        .map(|_| EpisodeSample {
            steps: (0..48)
                .map(|_| (random_state(&mut rng), rng.gen_range(0..2)))
                .collect(),
            episode_return: -rng.gen_range(0.0..40.0f32),
        })
        .collect();
    group.bench_function("train_4_episodes_48_steps", |b| {
        b.iter(|| agent.train_episodes(&episodes))
    });
    group.finish();
}

criterion_group!(benches, bench_dqn, bench_pg);
criterion_main!(benches);
