//! Ensemble-baseline training/prediction benchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use mirage_ensemble::{Dataset, ForestConfig, GbdtConfig, GradientBoosting, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic_wait_data(n: usize, dim: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let ys: Vec<f32> = rows
        .iter()
        .map(|r| r[0] * 3.0 + r[1] * r[2] + rng.gen_range(-0.2..0.2))
        .collect();
    Dataset::from_rows(&rows, &ys)
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble_fit");
    group.sample_size(10);
    let data = synthetic_wait_data(500, 40, 1);
    group.bench_function("random_forest_60_trees", |b| {
        b.iter(|| {
            RandomForest::fit(
                &data,
                &ForestConfig {
                    n_trees: 60,
                    ..Default::default()
                },
            )
        })
    });
    group.bench_function("gbdt_60_rounds", |b| {
        b.iter(|| {
            GradientBoosting::fit(
                &data,
                &GbdtConfig {
                    n_rounds: 60,
                    ..Default::default()
                },
            )
        })
    });
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble_predict");
    let data = synthetic_wait_data(500, 40, 2);
    let forest = RandomForest::fit(&data, &ForestConfig::default());
    let gbdt = GradientBoosting::fit(&data, &GbdtConfig::default());
    let row: Vec<f32> = (0..40).map(|i| (i as f32 * 0.1).sin()).collect();
    group.bench_function("forest_single_row", |b| b.iter(|| forest.predict(&row)));
    group.bench_function("gbdt_single_row", |b| b.iter(|| gbdt.predict(&row)));
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict);
criterion_main!(benches);
