//! Decision-loop benchmark: the steady-state serving path (simulator step
//! → snapshot → state matrix → NN inference → action), comparing the
//! zero-allocation scratch path against the allocating training path.
//!
//! The `episode_throughput` *binary* is the machine-readable harness that
//! writes `BENCH_episode_throughput.json`; this criterion target gives the
//! same loop a `cargo bench` home next to the other kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use mirage_core::state::{
    EncoderScratch, PredecessorState, StateEncoder, StateHistory, SuccessorSpec, STATE_VARS,
};
use mirage_nn::foundation::FoundationKind;
use mirage_nn::transformer::TransformerConfig;
use mirage_nn::{Matrix, Scratch};
use mirage_rl::{ActionEncoding, DualHeadConfig, DualHeadNet};
use mirage_sim::{ClusterSnapshot, SimConfig, Simulator};
use mirage_trace::{JobRecord, DAY, HOUR};

const K: usize = 12;

fn background(n: usize) -> Vec<JobRecord> {
    (0..n)
        .map(|i| {
            JobRecord::new(
                i as u64 + 1,
                format!("bg{i}"),
                (i % 7) as u32,
                i as i64 * 900,
                1 + (i % 4) as u32,
                8 * HOUR,
                4 * HOUR,
            )
        })
        .collect()
}

fn net() -> DualHeadNet {
    DualHeadNet::new(DualHeadConfig {
        foundation: FoundationKind::Transformer,
        transformer: TransformerConfig {
            input_dim: STATE_VARS,
            seq_len: K,
            d_model: 16,
            heads: 2,
            layers: 1,
            ff_mult: 2,
        },
        action_encoding: ActionEncoding::TwoHead,
        freeze_foundation: false,
        seed: 7,
    })
}

fn bench_decision_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_loop");
    group.sample_size(20);
    let jobs = background(600);
    let net = net();

    let mut sim = Simulator::new(SimConfig::new(16));
    sim.load_trace(&jobs);
    sim.run_until(DAY);
    let encoder = StateEncoder::new(16, 48 * HOUR);
    let mut history = StateHistory::new(K);
    let pred = PredecessorState {
        nodes: 1,
        timelimit: 48 * HOUR,
        queue_time: 0,
        elapsed: 12 * HOUR,
    };
    let succ = SuccessorSpec {
        nodes: 1,
        timelimit: 48 * HOUR,
    };
    let mut snap = ClusterSnapshot::default();
    let mut enc_scratch = EncoderScratch::default();
    let mut matrix = Matrix::zeros(0, 0);
    let mut scratch = Scratch::new();
    history.push(encoder.encode_into(&snap, &pred, &succ, &mut enc_scratch));

    group.bench_function("scratch_path", |b| {
        b.iter(|| {
            sim.step(600);
            sim.sample_into(&mut snap);
            history.push(encoder.encode_into(&snap, &pred, &succ, &mut enc_scratch));
            history.write_matrix(&mut matrix);
            net.q_values(&matrix, &mut scratch)
        })
    });
    group.bench_function("alloc_path", |b| {
        b.iter(|| {
            sim.step(600);
            let fresh = sim.sample();
            history.push(encoder.encode(&fresh, &pred, &succ));
            let m = history.matrix();
            net.q_forward(&m).0
        })
    });
    group.finish();
}

criterion_group!(benches, bench_decision_loop);
criterion_main!(benches);
