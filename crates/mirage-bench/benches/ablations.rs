//! Ablation benchmarks for the design choices DESIGN.md §4 calls out:
//! backfill flavors, state-history length and dense vs top-1 MoE
//! (performance side; the quality side lives in the `ablation_suite`
//! binary).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mirage_core::state::PredecessorState;
use mirage_core::{StateEncoder, StateHistory, SuccessorSpec, STATE_VARS};
use mirage_sim::{BackfillPolicy, SimConfig, Simulator};
use mirage_trace::{clean_trace, ClusterProfile, JobRecord, SynthConfig, TraceGenerator, HOUR};

fn one_month(profile: &ClusterProfile, seed: u64) -> Vec<JobRecord> {
    let mut cfg = SynthConfig::new(profile.clone(), seed);
    cfg.months = Some(1);
    let raw = TraceGenerator::new(cfg).generate();
    clean_trace(&raw, profile.nodes).0
}

fn bench_backfill_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backfill");
    group.sample_size(10);
    let profile = ClusterProfile::v100();
    let jobs = one_month(&profile, 42);
    for (name, policy) in [
        ("easy_backfill", BackfillPolicy::Easy { reserve_depth: 1 }),
        (
            "deep_reservations",
            BackfillPolicy::Easy { reserve_depth: 8 },
        ),
        ("no_backfill", BackfillPolicy::None),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut cfg = SimConfig::new(profile.nodes);
                    cfg.backfill = policy;
                    let mut sim = Simulator::new(cfg);
                    sim.load_trace(&jobs);
                    sim
                },
                |mut sim| {
                    sim.run_to_completion();
                    sim.metrics().avg_wait
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_history_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_history_encode");
    let profile = ClusterProfile::v100();
    let jobs = one_month(&profile, 43);
    let mut sim = Simulator::new(SimConfig::new(profile.nodes));
    sim.load_trace(&jobs);
    sim.run_until(10 * 24 * HOUR);
    let snap = sim.sample();
    let encoder = StateEncoder::new(profile.nodes, 48 * HOUR);
    let pred = PredecessorState {
        nodes: 1,
        timelimit: 48 * HOUR,
        queue_time: HOUR,
        elapsed: 10 * HOUR,
    };
    let succ = SuccessorSpec {
        nodes: 1,
        timelimit: 48 * HOUR,
    };
    for k in [6usize, 24, 144] {
        group.bench_function(format!("encode_and_stack_k{k}"), |b| {
            b.iter(|| {
                let mut h = StateHistory::new(k);
                for _ in 0..k {
                    h.push(encoder.encode(&snap, &pred, &succ));
                }
                let m = h.matrix();
                (m.rows(), m.cols())
            })
        });
    }
    assert_eq!(STATE_VARS, 46);
    group.finish();
}

criterion_group!(benches, bench_backfill_ablation, bench_history_length);
criterion_main!(benches);
