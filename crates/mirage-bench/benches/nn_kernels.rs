//! Neural-network kernel benchmarks: the building blocks behind every
//! Mirage decision (one transformer forward per 10-minute invocation) and
//! every training step.

use criterion::{criterion_group, criterion_main, Criterion};
use mirage_nn::foundation::{FoundationKind, FoundationNet};
use mirage_nn::param::{Grads, ParamSet};
use mirage_nn::tensor::Matrix;
use mirage_nn::transformer::{TransformerConfig, TransformerEncoder};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = StdRng::seed_from_u64(0);
    for n in [32usize, 128] {
        let a = Matrix::xavier(n, n, &mut rng);
        let b = Matrix::xavier(n, n, &mut rng);
        group.bench_function(format!("{n}x{n}"), |bch| bch.iter(|| a.matmul(&b)));
    }
    group.finish();
}

fn paper_scale_config() -> TransformerConfig {
    // The paper's full state matrix: k = 144 rows of m = 40 variables.
    TransformerConfig {
        input_dim: 40,
        seq_len: 144,
        d_model: 32,
        heads: 4,
        layers: 2,
        ff_mult: 2,
    }
}

fn bench_transformer(c: &mut Criterion) {
    let mut group = c.benchmark_group("transformer");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);

    // Experiment-scale model (DESIGN.md substitution 3).
    let small_cfg = TransformerConfig::small(40, 24);
    let mut ps_small = ParamSet::new();
    let small = TransformerEncoder::new(&mut ps_small, "t", small_cfg, &mut rng);
    let x_small = Matrix::xavier(24, 40, &mut rng);
    group.bench_function("forward_small_k24", |b| {
        b.iter(|| small.forward(&ps_small, &x_small))
    });
    group.bench_function("forward_backward_small_k24", |b| {
        b.iter(|| {
            let (y, cache) = small.forward(&ps_small, &x_small);
            let mut grads = Grads::new(&ps_small);
            small.backward(&ps_small, &cache, &y, &mut grads);
            grads.global_norm()
        })
    });

    // Paper-scale model: one forward = one provisioning decision.
    let mut ps_paper = ParamSet::new();
    let paper = TransformerEncoder::new(&mut ps_paper, "t", paper_scale_config(), &mut rng);
    let x_paper = Matrix::xavier(144, 40, &mut rng);
    group.bench_function("forward_paper_k144", |b| {
        b.iter(|| paper.forward(&ps_paper, &x_paper))
    });
    group.finish();
}

fn bench_moe(c: &mut Criterion) {
    let mut group = c.benchmark_group("moe");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    let cfg = TransformerConfig::small(40, 24);
    let x = Matrix::xavier(24, 40, &mut rng);
    for (name, kind) in [
        ("dense_4_experts", FoundationKind::MoE { experts: 4 }),
        ("top1_4_experts", FoundationKind::MoETopOne { experts: 4 }),
    ] {
        let mut ps = ParamSet::new();
        let net = FoundationNet::new(&mut ps, "m", kind, cfg, &mut rng);
        group.bench_function(name, |b| b.iter(|| net.forward(&ps, &x)));
    }
    group.finish();
}

criterion_group!(benches, bench_matmul, bench_transformer, bench_moe);
criterion_main!(benches);
