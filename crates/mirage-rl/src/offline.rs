//! Offline foundation pretraining (§4.9.1 of the paper).
//!
//! The foundation model is pretrained with supervised learning before any
//! online RL: each sample pairs a state (and the action taken) with the
//! observed episode reward; the model regresses the reward through the
//! dedicated reward head. This shapes the shared representation the
//! V-head and P-head later build on.

use mirage_nn::loss::mse;
use mirage_nn::optim::{Adam, Optimizer};
use mirage_nn::param::Grads;
use mirage_nn::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dualhead::DualHeadNet;

/// One supervised pretraining sample (state, action, observed reward).
#[derive(Debug, Clone)]
pub struct RewardSample {
    /// State matrix at decision time.
    pub state: Matrix,
    /// Action that was taken (drives the ordinal input when enabled).
    pub action: usize,
    /// Observed delayed reward of the episode.
    pub reward: f32,
}

/// Pretraining hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PretrainConfig {
    /// Full passes over the sample set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            lr: 1e-3,
            seed: 0,
            grad_clip: 5.0,
        }
    }
}

/// Pretrains the foundation by reward regression; returns the mean MSE per
/// epoch (a decreasing curve if learning works).
pub fn pretrain_foundation(
    net: &mut DualHeadNet,
    samples: &[RewardSample],
    cfg: &PretrainConfig,
) -> Vec<f32> {
    assert!(!samples.is_empty(), "no pretraining samples");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let mut order: Vec<usize> = (0..samples.len()).collect();
    let mut curve = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size) {
            let netref = &*net;
            // Parallel per-sample passes, deterministic in-order merge.
            let per_sample: Vec<(f32, Grads)> = chunk
                .par_iter()
                .map(|&i| {
                    let s = &samples[i];
                    let (pred, cache) = netref.reward_forward(&s.state, Some(s.action));
                    let (loss, dl) = mse(
                        &Matrix::row_vector(vec![pred]),
                        &Matrix::row_vector(vec![s.reward]),
                    );
                    let mut grads = Grads::new(&netref.ps);
                    netref.reward_backward(&cache, dl.get(0, 0), &mut grads);
                    (loss, grads)
                })
                .collect();
            let (loss_sum, merged) = per_sample.into_iter().fold(
                (0.0f32, Grads::new(&netref.ps)),
                |(l1, mut g1), (l2, g2)| {
                    g1.merge(g2);
                    (l1 + l2, g1)
                },
            );
            let mut grads = merged;
            grads.scale(1.0 / chunk.len() as f32);
            if cfg.grad_clip > 0.0 {
                grads.clip_global_norm(cfg.grad_clip);
            }
            opt.step(&mut net.ps, &grads);
            epoch_loss += loss_sum / chunk.len() as f32;
            batches += 1;
        }
        curve.push(epoch_loss / batches.max(1) as f32);
    }
    curve
}

/// Mean reward-prediction MSE of a network over samples (for validation).
pub fn reward_mse(net: &DualHeadNet, samples: &[RewardSample]) -> f32 {
    if samples.is_empty() {
        return 0.0;
    }
    samples
        .par_iter()
        .map(|s| {
            let (pred, _) = net.reward_forward(&s.state, Some(s.action));
            (pred - s.reward) * (pred - s.reward)
        })
        .sum::<f32>()
        / samples.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualhead::{ActionEncoding, DualHeadConfig};
    use mirage_nn::foundation::FoundationKind;
    use mirage_nn::transformer::TransformerConfig;
    use rand::Rng;

    fn tiny_net(seed: u64, enc: ActionEncoding) -> DualHeadNet {
        DualHeadNet::new(DualHeadConfig {
            foundation: FoundationKind::Transformer,
            transformer: TransformerConfig {
                input_dim: 3,
                seq_len: 2,
                d_model: 8,
                heads: 2,
                layers: 1,
                ff_mult: 2,
            },
            action_encoding: enc,
            freeze_foundation: false,
            seed,
        })
    }

    /// Reward = mean of the state entries — learnable regression target.
    fn make_samples(n: usize, seed: u64) -> Vec<RewardSample> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let state = Matrix::from_fn(2, 3, |_, _| rng.gen_range(-1.0..1.0));
                let reward = state.sum() / 6.0;
                RewardSample {
                    state,
                    action: rng.gen_range(0..2),
                    reward,
                }
            })
            .collect()
    }

    #[test]
    fn pretraining_reduces_mse() {
        let mut net = tiny_net(61, ActionEncoding::TwoHead);
        let train = make_samples(256, 62);
        let valid = make_samples(64, 63);
        let before = reward_mse(&net, &valid);
        let curve = pretrain_foundation(
            &mut net,
            &train,
            &PretrainConfig {
                epochs: 15,
                lr: 3e-3,
                ..PretrainConfig::default()
            },
        );
        let after = reward_mse(&net, &valid);
        assert!(
            curve.last().unwrap() < curve.first().unwrap(),
            "train curve must drop"
        );
        assert!(after < before * 0.5, "val mse {before:.4} → {after:.4}");
    }

    #[test]
    fn ordinal_input_pretraining_works() {
        let mut net = tiny_net(71, ActionEncoding::OrdinalInput);
        let train = make_samples(128, 72);
        let curve = pretrain_foundation(
            &mut net,
            &train,
            &PretrainConfig {
                epochs: 8,
                lr: 3e-3,
                ..PretrainConfig::default()
            },
        );
        assert!(curve.last().unwrap() < curve.first().unwrap());
    }

    #[test]
    fn curve_has_one_entry_per_epoch() {
        let mut net = tiny_net(81, ActionEncoding::TwoHead);
        let train = make_samples(32, 82);
        let curve = pretrain_foundation(
            &mut net,
            &train,
            &PretrainConfig {
                epochs: 3,
                ..PretrainConfig::default()
            },
        );
        assert_eq!(curve.len(), 3);
    }

    #[test]
    fn empty_validation_is_zero() {
        let net = tiny_net(91, ActionEncoding::TwoHead);
        assert_eq!(reward_mse(&net, &[]), 0.0);
    }
}
