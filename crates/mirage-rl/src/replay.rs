//! Experience replay (§4.8 of the paper).
//!
//! A bounded ring buffer of `(state, action, reward, next_state, done)`
//! transitions. Random mini-batch sampling breaks the correlation between
//! consecutive training samples that otherwise "explodes the variance of
//! gradient updates and distorts a policy's value estimates".

use mirage_nn::Matrix;
use rand::Rng;

/// One stored transition. For the paper's episodic provisioning samples the
/// reward is terminal, so `next_state` is `None` and `done` is `true`.
#[derive(Debug, Clone)]
pub struct Experience {
    /// State the action was taken in.
    pub state: Matrix,
    /// Action index.
    pub action: usize,
    /// Observed reward.
    pub reward: f32,
    /// Successor state (absent for terminal transitions).
    pub next_state: Option<Matrix>,
    /// Whether the episode ended with this transition.
    pub done: bool,
}

impl Experience {
    /// Terminal transition (the §4.9.1 offline sample shape:
    /// state–action–reward).
    pub fn terminal(state: Matrix, action: usize, reward: f32) -> Self {
        Self {
            state,
            action,
            reward,
            next_state: None,
            done: true,
        }
    }

    /// Intermediate transition with a successor state.
    pub fn step(state: Matrix, action: usize, reward: f32, next_state: Matrix) -> Self {
        Self {
            state,
            action,
            reward,
            next_state: Some(next_state),
            done: false,
        }
    }
}

/// Bounded ring buffer with uniform random sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    buf: Vec<Experience>,
    capacity: usize,
    write: usize,
}

impl ReplayBuffer {
    /// Buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            write: 0,
        }
    }

    /// Appends a transition, evicting the oldest once full.
    pub fn push(&mut self, e: Experience) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.write] = e;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Stored transition count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Uniformly samples `n` transitions with replacement.
    pub fn sample<'a>(&'a self, rng: &mut impl Rng, n: usize) -> Vec<&'a Experience> {
        let mut out = Vec::with_capacity(n);
        self.sample_into(rng, n, &mut out);
        out
    }

    /// [`sample`](Self::sample) appending into a caller-owned buffer, so
    /// per-update mini-batch sampling reuses one allocation across a
    /// whole training run instead of building a fresh `Vec` every call.
    /// Draw order (and therefore the RNG stream) matches `sample`.
    pub fn sample_into<'a>(&'a self, rng: &mut impl Rng, n: usize, out: &mut Vec<&'a Experience>) {
        assert!(!self.buf.is_empty(), "cannot sample an empty buffer");
        out.extend((0..n).map(|_| &self.buf[rng.gen_range(0..self.buf.len())]));
    }

    /// Iterates over everything stored (oldest first while filling; ring
    /// order afterwards).
    pub fn iter(&self) -> impl Iterator<Item = &Experience> {
        self.buf.iter()
    }

    /// Records `n` uniform draws as `(tag, slot)` pairs without touching
    /// the stored experiences. One `gen_range` per draw, in draw order —
    /// the exact RNG stream of [`ReplayBuffer::sample_into`].
    fn record_draws(&self, rng: &mut impl Rng, n: usize, tag: bool, out: &mut Vec<(bool, usize)>) {
        assert!(!self.buf.is_empty(), "cannot sample an empty buffer");
        out.extend((0..n).map(|_| (tag, rng.gen_range(0..self.buf.len()))));
    }

    /// Samples `n` transitions straight into a row-stacked [`MiniBatch`]
    /// (no intermediate `Vec<&Experience>`): the same RNG stream and draw
    /// order as [`ReplayBuffer::sample_into`], assembled for the batched
    /// training path. Allocation-free once `mb` is warm.
    pub fn sample_minibatch(&self, rng: &mut impl Rng, n: usize, mb: &mut MiniBatch) {
        mb.draws.clear();
        self.record_draws(rng, n, false, &mut mb.draws);
        mb.assemble_draws(|_, slot| &self.buf[slot]);
    }

    /// The raw ring state — `(capacity, write cursor, stored slots in
    /// ring order)` — for crash-safe checkpointing. Round-trips through
    /// [`ReplayBuffer::from_raw_parts`] bit for bit, eviction order
    /// included.
    pub fn raw_parts(&self) -> (usize, usize, &[Experience]) {
        (self.capacity, self.write, &self.buf)
    }

    /// Rebuilds a buffer from a [`ReplayBuffer::raw_parts`] snapshot:
    /// the restored ring pushes, evicts and samples exactly as the
    /// snapshotted one would have.
    pub fn from_raw_parts(capacity: usize, write: usize, buf: Vec<Experience>) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(buf.len() <= capacity, "ring holds more than its capacity");
        assert!(write < capacity, "write cursor out of range");
        Self {
            buf,
            capacity,
            write,
        }
    }
}

/// Class-balanced wait/submit replay (§4.9.2a).
///
/// Submit decisions are roughly 1-in-50 of the provisioning pool — at
/// most one per episode — so uniform sampling would starve the Q(submit)
/// column. Transitions are routed by action into two ring buffers, and
/// every mini-batch draws half its rows from the submit buffer (when it
/// has any), the same class balancing the online DQN loop has always
/// used, now shared instead of hand-rolled at each call site.
#[derive(Debug, Clone)]
pub struct BalancedReplay {
    wait: ReplayBuffer,
    submit: ReplayBuffer,
}

impl BalancedReplay {
    /// Two-buffer pool with the given per-class capacities.
    pub fn new(wait_capacity: usize, submit_capacity: usize) -> Self {
        Self {
            wait: ReplayBuffer::new(wait_capacity),
            submit: ReplayBuffer::new(submit_capacity),
        }
    }

    /// Routes a transition to its class buffer (action 1 = submit).
    pub fn push(&mut self, e: Experience) {
        if e.action == 1 {
            self.submit.push(e);
        } else {
            self.wait.push(e);
        }
    }

    /// Total stored transitions across both classes.
    pub fn len(&self) -> usize {
        self.wait.len() + self.submit.len()
    }

    /// Whether both class buffers are empty.
    pub fn is_empty(&self) -> bool {
        self.wait.is_empty() && self.submit.is_empty()
    }

    /// The wait-class (action 0) buffer.
    pub fn wait(&self) -> &ReplayBuffer {
        &self.wait
    }

    /// The submit-class (action 1) buffer.
    pub fn submit(&self) -> &ReplayBuffer {
        &self.submit
    }

    /// Reassembles a pool from two restored class rings (the
    /// checkpoint-resume path; pair with [`ReplayBuffer::raw_parts`] /
    /// [`ReplayBuffer::from_raw_parts`] on each class).
    pub fn from_buffers(wait: ReplayBuffer, submit: ReplayBuffer) -> Self {
        Self { wait, submit }
    }

    /// Samples an `n`-transition class-balanced mini-batch into `out`
    /// (cleared first): `n - n/2` wait rows, then `n/2` submit rows when
    /// the submit buffer has any. A one-class pool (either class empty)
    /// fills the whole batch from the other class; sampling an entirely
    /// empty pool panics. Allocation-free once `out` is warm.
    pub fn sample_into<'a>(&'a self, rng: &mut impl Rng, n: usize, out: &mut Vec<&'a Experience>) {
        out.clear();
        if self.wait.is_empty() {
            // Early all-submit training diets (e.g. an eager untrained
            // policy with no warm start) must not abort the run.
            self.submit.sample_into(rng, n, out);
            return;
        }
        let half = n / 2;
        self.wait.sample_into(rng, n - half, out);
        if !self.submit.is_empty() {
            self.submit.sample_into(rng, half, out);
        }
    }

    /// [`BalancedReplay::sample_into`] assembling straight into a
    /// row-stacked [`MiniBatch`]: identical RNG stream, draw order and
    /// class balancing, but the sampled states land directly in the
    /// stacked matrices the batched update consumes — no intermediate
    /// reference `Vec`. Allocation-free once `mb` is warm.
    pub fn sample_minibatch(&self, rng: &mut impl Rng, n: usize, mb: &mut MiniBatch) {
        mb.draws.clear();
        if self.wait.is_empty() {
            self.submit.record_draws(rng, n, true, &mut mb.draws);
        } else {
            let half = n / 2;
            self.wait.record_draws(rng, n - half, false, &mut mb.draws);
            if !self.submit.is_empty() {
                self.submit.record_draws(rng, half, true, &mut mb.draws);
            }
        }
        mb.assemble_draws(|submit, slot| {
            if submit {
                &self.submit.buf[slot]
            } else {
                &self.wait.buf[slot]
            }
        });
    }
}

/// A sampled mini-batch assembled as row-stacked matrices, ready for one
/// batched forward/backward per update instead of per-experience passes.
///
/// `states` stacks the `len` sampled state matrices (each `seq` rows) in
/// draw order; `next_states` stacks only the bootstrap-eligible successor
/// states (non-terminal, successor present), with `next_idx[j]` naming
/// the sample index block `j` belongs to. All buffers are retained across
/// refills, so steady-state sampling and assembly allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct MiniBatch {
    /// Row-stacked sampled states, `(len · seq) × m`.
    pub states: Matrix,
    /// Action index per sample, in draw order.
    pub actions: Vec<usize>,
    /// Observed reward per sample, in draw order.
    pub rewards: Vec<f32>,
    /// Row-stacked successor states of bootstrap-eligible samples.
    pub next_states: Matrix,
    /// Sample index of each `next_states` block, ascending.
    pub next_idx: Vec<usize>,
    /// Sample count.
    pub len: usize,
    /// Rows per state matrix.
    pub seq: usize,
    /// Recorded `(submit-class, slot)` draws (scratch for two-pass
    /// assembly; retained so sampling never allocates once warm).
    draws: Vec<(bool, usize)>,
}

impl MiniBatch {
    /// Empty mini-batch; buffers grow on first fill and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mini-batch holds no samples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Assembles from an already-sampled reference batch (the sequential
    /// API's shape), stacking states in slice order. Used by the
    /// compatibility wrappers; the sampling fast path assembles directly
    /// from recorded draws.
    pub fn assemble_refs(&mut self, batch: &[&Experience]) {
        self.assemble_with(batch.len(), |i| batch[i]);
    }

    /// Two-pass assembly from the recorded `draws`.
    fn assemble_draws<'a>(&mut self, lookup: impl Fn(bool, usize) -> &'a Experience) {
        // Detach the draw list so the lookup closure can read it while
        // the matrices fill (returned below — the buffer stays warm).
        let draws = std::mem::take(&mut self.draws);
        self.assemble_with(draws.len(), |i| {
            let (submit, slot) = draws[i];
            lookup(submit, slot)
        });
        self.draws = draws;
    }

    /// Shared assembly core: `lookup(i)` yields sample `i` of `n`.
    fn assemble_with<'a>(&mut self, n: usize, lookup: impl Fn(usize) -> &'a Experience) {
        self.len = n;
        self.actions.clear();
        self.rewards.clear();
        self.next_idx.clear();
        if n == 0 {
            self.seq = 0;
            self.states.reset(0, 0);
            self.next_states.reset(0, 0);
            return;
        }
        let (seq, m) = lookup(0).state.shape();
        self.seq = seq;
        self.states.reset(n * seq, m);
        let bootstrap = (0..n)
            .filter(|&i| {
                let e = lookup(i);
                e.next_state.is_some() && !e.done
            })
            .count();
        self.next_states.reset(bootstrap * seq, m);
        let mut j = 0;
        for i in 0..n {
            let e = lookup(i);
            assert_eq!(
                e.state.shape(),
                (seq, m),
                "mini-batch states must share one shape"
            );
            for r in 0..seq {
                self.states
                    .row_mut(i * seq + r)
                    .copy_from_slice(e.state.row(r));
            }
            self.actions.push(e.action);
            self.rewards.push(e.reward);
            if e.done {
                continue;
            }
            if let Some(next) = &e.next_state {
                assert_eq!(
                    next.shape(),
                    (seq, m),
                    "mini-batch successor states must share the state shape"
                );
                for r in 0..seq {
                    self.next_states
                        .row_mut(j * seq + r)
                        .copy_from_slice(next.row(r));
                }
                self.next_idx.push(i);
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exp(reward: f32) -> Experience {
        Experience::terminal(Matrix::zeros(1, 2), 0, reward)
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut rb = ReplayBuffer::new(3);
        for i in 0..5 {
            rb.push(exp(i as f32));
        }
        assert_eq!(rb.len(), 3);
        let rewards: Vec<f32> = rb.iter().map(|e| e.reward).collect();
        // Slots: [3, 4, 2] after wrapping twice.
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sampling_draws_from_stored_items() {
        let mut rb = ReplayBuffer::new(10);
        for i in 0..10 {
            rb.push(exp(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let batch = rb.sample(&mut rng, 100);
        assert_eq!(batch.len(), 100);
        assert!(batch.iter().all(|e| e.reward >= 0.0 && e.reward < 10.0));
        // With 100 draws from 10 items we should see some variety.
        let distinct: std::collections::HashSet<_> =
            batch.iter().map(|e| e.reward as i64).collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let rb = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rb.sample(&mut rng, 1);
    }

    #[test]
    fn sample_into_matches_sample() {
        let mut rb = ReplayBuffer::new(16);
        for i in 0..16 {
            rb.push(exp(i as f32));
        }
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let by_vec: Vec<f32> = rb.sample(&mut a, 32).iter().map(|e| e.reward).collect();
        let mut buf = Vec::new();
        rb.sample_into(&mut b, 32, &mut buf);
        let by_buf: Vec<f32> = buf.iter().map(|e| e.reward).collect();
        assert_eq!(by_vec, by_buf, "identical RNG stream, identical draws");
    }

    #[test]
    fn balanced_replay_routes_and_balances() {
        let mut rb = BalancedReplay::new(64, 64);
        for i in 0..50 {
            rb.push(Experience::terminal(Matrix::zeros(1, 2), 0, i as f32));
        }
        rb.push(Experience::terminal(Matrix::zeros(1, 2), 1, -1.0));
        assert_eq!(rb.len(), 51);
        assert_eq!(rb.wait().len(), 50);
        assert_eq!(rb.submit().len(), 1);
        let mut rng = StdRng::seed_from_u64(0);
        let mut batch = Vec::new();
        rb.sample_into(&mut rng, 8, &mut batch);
        assert_eq!(batch.len(), 8);
        // Half of every batch comes from the (tiny) submit class.
        assert_eq!(batch.iter().filter(|e| e.action == 1).count(), 4);
        // Wait rows lead, submit rows trail (the sequential loop's order).
        assert!(batch[..4].iter().all(|e| e.action == 0));
    }

    #[test]
    fn balanced_replay_without_waits_fills_from_submit() {
        let mut rb = BalancedReplay::new(16, 16);
        for i in 0..6 {
            rb.push(Experience::terminal(Matrix::zeros(1, 2), 1, i as f32));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let mut batch = Vec::new();
        rb.sample_into(&mut rng, 8, &mut batch);
        assert_eq!(batch.len(), 8);
        assert!(batch.iter().all(|e| e.action == 1));
    }

    #[test]
    fn balanced_replay_without_submits_fills_from_wait() {
        let mut rb = BalancedReplay::new(16, 16);
        for i in 0..10 {
            rb.push(Experience::terminal(Matrix::zeros(1, 2), 0, i as f32));
        }
        let mut rng = StdRng::seed_from_u64(1);
        let mut batch = Vec::new();
        rb.sample_into(&mut rng, 9, &mut batch);
        // n - n/2 wait rows; the submit half is skipped while empty.
        assert_eq!(batch.len(), 5);
        assert!(batch.iter().all(|e| e.action == 0));
    }

    #[test]
    fn experience_constructors() {
        let t = Experience::terminal(Matrix::zeros(1, 1), 1, -2.0);
        assert!(t.done && t.next_state.is_none());
        let s = Experience::step(Matrix::zeros(1, 1), 0, 0.0, Matrix::zeros(1, 1));
        assert!(!s.done && s.next_state.is_some());
    }
}
