//! Experience replay (§4.8 of the paper).
//!
//! A bounded ring buffer of `(state, action, reward, next_state, done)`
//! transitions. Random mini-batch sampling breaks the correlation between
//! consecutive training samples that otherwise "explodes the variance of
//! gradient updates and distorts a policy's value estimates".

use mirage_nn::Matrix;
use rand::Rng;

/// One stored transition. For the paper's episodic provisioning samples the
/// reward is terminal, so `next_state` is `None` and `done` is `true`.
#[derive(Debug, Clone)]
pub struct Experience {
    /// State the action was taken in.
    pub state: Matrix,
    /// Action index.
    pub action: usize,
    /// Observed reward.
    pub reward: f32,
    /// Successor state (absent for terminal transitions).
    pub next_state: Option<Matrix>,
    /// Whether the episode ended with this transition.
    pub done: bool,
}

impl Experience {
    /// Terminal transition (the §4.9.1 offline sample shape:
    /// state–action–reward).
    pub fn terminal(state: Matrix, action: usize, reward: f32) -> Self {
        Self {
            state,
            action,
            reward,
            next_state: None,
            done: true,
        }
    }

    /// Intermediate transition with a successor state.
    pub fn step(state: Matrix, action: usize, reward: f32, next_state: Matrix) -> Self {
        Self {
            state,
            action,
            reward,
            next_state: Some(next_state),
            done: false,
        }
    }
}

/// Bounded ring buffer with uniform random sampling.
#[derive(Debug, Clone)]
pub struct ReplayBuffer {
    buf: Vec<Experience>,
    capacity: usize,
    write: usize,
}

impl ReplayBuffer {
    /// Buffer holding at most `capacity` transitions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            write: 0,
        }
    }

    /// Appends a transition, evicting the oldest once full.
    pub fn push(&mut self, e: Experience) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.write] = e;
        }
        self.write = (self.write + 1) % self.capacity;
    }

    /// Stored transition count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Uniformly samples `n` transitions with replacement.
    pub fn sample<'a>(&'a self, rng: &mut impl Rng, n: usize) -> Vec<&'a Experience> {
        assert!(!self.buf.is_empty(), "cannot sample an empty buffer");
        (0..n)
            .map(|_| &self.buf[rng.gen_range(0..self.buf.len())])
            .collect()
    }

    /// Iterates over everything stored (oldest first while filling; ring
    /// order afterwards).
    pub fn iter(&self) -> impl Iterator<Item = &Experience> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exp(reward: f32) -> Experience {
        Experience::terminal(Matrix::zeros(1, 2), 0, reward)
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut rb = ReplayBuffer::new(3);
        for i in 0..5 {
            rb.push(exp(i as f32));
        }
        assert_eq!(rb.len(), 3);
        let rewards: Vec<f32> = rb.iter().map(|e| e.reward).collect();
        // Slots: [3, 4, 2] after wrapping twice.
        assert!(rewards.contains(&2.0));
        assert!(rewards.contains(&3.0));
        assert!(rewards.contains(&4.0));
        assert!(!rewards.contains(&0.0));
    }

    #[test]
    fn sampling_draws_from_stored_items() {
        let mut rb = ReplayBuffer::new(10);
        for i in 0..10 {
            rb.push(exp(i as f32));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let batch = rb.sample(&mut rng, 100);
        assert_eq!(batch.len(), 100);
        assert!(batch.iter().all(|e| e.reward >= 0.0 && e.reward < 10.0));
        // With 100 draws from 10 items we should see some variety.
        let distinct: std::collections::HashSet<_> =
            batch.iter().map(|e| e.reward as i64).collect();
        assert!(distinct.len() > 3);
    }

    #[test]
    #[should_panic(expected = "empty buffer")]
    fn sampling_empty_panics() {
        let rb = ReplayBuffer::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rb.sample(&mut rng, 1);
    }

    #[test]
    fn experience_constructors() {
        let t = Experience::terminal(Matrix::zeros(1, 1), 1, -2.0);
        assert!(t.done && t.next_state.is_none());
        let s = Experience::step(Matrix::zeros(1, 1), 0, 0.0, Matrix::zeros(1, 1));
        assert!(!s.done && s.next_state.is_some());
    }
}
