//! Guarded inference: numeric validation of agent outputs with graceful
//! degradation to the conservative heuristic action.
//!
//! A silently corrupted network (NaN weights after a diverged update, ∞
//! from an overflowed activation) still *returns* a Q/probability pair —
//! and `NaN > x` is `false`, so a poisoned greedy argmax quietly
//! collapses to one action and the run keeps going with garbage
//! decisions. [`GuardedPolicy`] checks every inference output before
//! acting on it: a non-finite or degenerate pair falls back to the
//! reactive heuristic (never submit proactively — the paper's common
//! practice baseline) and increments a fallback counter, so corruption
//! becomes a visible, countable event in episode outcomes instead of a
//! silent quality cliff.

use mirage_nn::tensor::Matrix;
use rand::Rng;

use crate::dqn::DqnAgent;
use crate::greedy_pair;
use crate::pg::PgAgent;

/// The action a guarded policy degrades to: index 0 = wait/no-submit,
/// i.e. the reactive baseline's only move.
pub const FALLBACK_ACTION: usize = 0;

/// Whether a Q-value pair is safe to argmax: both entries finite.
#[inline]
pub fn q_pair_is_valid(q: [f32; 2]) -> bool {
    q[0].is_finite() && q[1].is_finite()
}

/// Whether a probability pair is safe to sample from: finite,
/// non-negative, and summing to ≈ 1 (a softmax output that lost those
/// properties came from a corrupted forward pass).
#[inline]
pub fn prob_pair_is_valid(p: [f32; 2]) -> bool {
    p[0].is_finite()
        && p[1].is_finite()
        && p[0] >= 0.0
        && p[1] >= 0.0
        && (p[0] + p[1] - 1.0).abs() <= 1e-3
}

/// Cumulative guard counters of one wrapped agent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Inference outputs validated.
    pub checks: u64,
    /// Outputs rejected (fell back to the heuristic action).
    pub fallbacks: u64,
}

/// An agent wrapped with output validation: every decision first runs
/// the numeric guard, and invalid outputs degrade to
/// [`FALLBACK_ACTION`] instead of propagating garbage into the cluster.
#[derive(Debug, Clone)]
pub struct GuardedPolicy<A> {
    /// The wrapped agent.
    pub agent: A,
    stats: GuardStats,
}

impl<A> GuardedPolicy<A> {
    /// Wraps an agent with a zeroed fallback counter.
    pub fn new(agent: A) -> Self {
        Self {
            agent,
            stats: GuardStats::default(),
        }
    }

    /// Cumulative guard counters since construction.
    pub fn stats(&self) -> GuardStats {
        self.stats
    }
}

impl GuardedPolicy<DqnAgent> {
    /// Greedy action with output validation: argmax of the Q pair when
    /// it is finite, [`FALLBACK_ACTION`] (counted) otherwise.
    pub fn act_greedy(&mut self, state: &Matrix) -> usize {
        let q = self.agent.q_pair(state);
        self.stats.checks += 1;
        if q_pair_is_valid(q) {
            greedy_pair(q)
        } else {
            self.stats.fallbacks += 1;
            FALLBACK_ACTION
        }
    }
}

impl GuardedPolicy<PgAgent> {
    /// Stochastic action with output validation. The RNG is only drawn
    /// from when the pair is valid, so a healthy net under a guard
    /// samples the identical stream as an unguarded one.
    pub fn act(&mut self, state: &Matrix, rng: &mut impl Rng) -> usize {
        let p = self.agent.p_pair(state);
        self.stats.checks += 1;
        if prob_pair_is_valid(p) {
            usize::from(rng.gen::<f32>() >= p[0])
        } else {
            self.stats.fallbacks += 1;
            FALLBACK_ACTION
        }
    }

    /// Greedy (most-probable) action with output validation.
    pub fn act_greedy(&mut self, state: &Matrix) -> usize {
        let p = self.agent.p_pair(state);
        self.stats.checks += 1;
        if prob_pair_is_valid(p) {
            greedy_pair(p)
        } else {
            self.stats.fallbacks += 1;
            FALLBACK_ACTION
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dqn::DqnConfig;
    use crate::dualhead::{ActionEncoding, DualHeadConfig, DualHeadNet};
    use crate::pg::PgConfig;
    use mirage_nn::foundation::FoundationKind;
    use mirage_nn::transformer::TransformerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64) -> DualHeadNet {
        DualHeadNet::new(DualHeadConfig {
            foundation: FoundationKind::Transformer,
            transformer: TransformerConfig {
                input_dim: 3,
                seq_len: 2,
                d_model: 8,
                heads: 2,
                layers: 1,
                ff_mult: 2,
            },
            action_encoding: ActionEncoding::TwoHead,
            freeze_foundation: false,
            seed,
        })
    }

    /// Poisons every parameter of a net with NaN.
    fn poison(net: &mut DualHeadNet) {
        let ids: Vec<_> = net.ps.iter().map(|(id, _)| id).collect();
        for id in ids {
            let m = net.ps.get_mut(id);
            for v in m.data_mut() {
                *v = f32::NAN;
            }
        }
    }

    #[test]
    fn pair_validators() {
        assert!(q_pair_is_valid([1.0, -2.0]));
        assert!(!q_pair_is_valid([f32::NAN, 0.0]));
        assert!(!q_pair_is_valid([0.0, f32::INFINITY]));
        assert!(prob_pair_is_valid([0.25, 0.75]));
        assert!(!prob_pair_is_valid([f32::NAN, 0.5]));
        assert!(!prob_pair_is_valid([-0.1, 1.1]));
        assert!(!prob_pair_is_valid([0.9, 0.9]), "must sum to 1");
    }

    #[test]
    fn healthy_agent_is_bit_identical_under_the_guard() {
        let mut plain = DqnAgent::new(tiny_net(7), DqnConfig::default());
        let mut guarded = GuardedPolicy::new(plain.clone());
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..16 {
            let s = Matrix::xavier(2, 3, &mut rng);
            assert_eq!(guarded.act_greedy(&s), plain.act_greedy(&s));
        }
        assert_eq!(guarded.stats().fallbacks, 0);
        assert_eq!(guarded.stats().checks, 16);

        let mut pg_plain = PgAgent::new(tiny_net(9), PgConfig::default());
        let mut pg_guarded = GuardedPolicy::new(pg_plain.clone());
        let mut draw_a = StdRng::seed_from_u64(10);
        let mut draw_b = StdRng::seed_from_u64(10);
        for _ in 0..16 {
            let s = Matrix::xavier(2, 3, &mut rng);
            assert_eq!(
                pg_guarded.act(&s, &mut draw_a),
                pg_plain.act(&s, &mut draw_b),
                "guard must not perturb the sampling stream"
            );
        }
        assert_eq!(pg_guarded.stats().fallbacks, 0);
    }

    #[test]
    fn poisoned_net_falls_back_and_counts() {
        let mut net = tiny_net(11);
        poison(&mut net);
        let mut guarded = GuardedPolicy::new(DqnAgent::new(net, DqnConfig::default()));
        let s = Matrix::zeros(2, 3);
        for _ in 0..5 {
            assert_eq!(guarded.act_greedy(&s), FALLBACK_ACTION);
        }
        assert_eq!(guarded.stats().fallbacks, 5);
        assert_eq!(guarded.stats().checks, 5);

        let mut pg_net = tiny_net(12);
        poison(&mut pg_net);
        let mut pg = GuardedPolicy::new(PgAgent::new(pg_net, PgConfig::default()));
        let mut rng = StdRng::seed_from_u64(13);
        assert_eq!(pg.act(&s, &mut rng), FALLBACK_ACTION);
        assert_eq!(pg.act_greedy(&s), FALLBACK_ACTION);
        assert_eq!(pg.stats().fallbacks, 2);
    }
}
