//! Deep Q-Network agent (§2.2, §4.9 of the paper).
//!
//! ε-greedy action selection over the dual-head network's Q-values, with
//! experience-replay mini-batches, Huber TD loss, an optional target
//! network, gradient clipping and Adam. The update path runs **one
//! batched forward/backward per mini-batch** over a row-stacked
//! [`MiniBatch`] (bit-identical to the per-experience loop, which is kept
//! as [`DqnAgent::train_batch_scalar`], the pinned reference), and
//! [`DqnAgent::train_minibatch_sharded`] splits the batch across OS
//! threads with a deterministic per-sample gradient all-reduce.

use mirage_nn::loss::huber;
use mirage_nn::optim::{Adam, Optimizer};
use mirage_nn::param::{GradSink, Grads};
use mirage_nn::scratch::Scratch;
use mirage_nn::tensor::Matrix;
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dualhead::{ActionEncoding, BatchInferCache, DualHeadNet, HeadBatchCache};
use crate::greedy_pair;
use crate::replay::{Experience, MiniBatch};
use crate::schedule::{EpsilonSchedule, ExploreLane};

/// DQN hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DqnConfig {
    /// Discount factor γ.
    pub gamma: f32,
    /// Exploration schedule.
    pub epsilon: EpsilonSchedule,
    /// Adam learning rate.
    pub lr: f32,
    /// Huber threshold for the TD loss.
    pub huber_delta: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Steps between target-network syncs (0 = no target network).
    pub target_sync: u64,
}

impl Default for DqnConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            epsilon: EpsilonSchedule::default(),
            lr: 1e-3,
            huber_delta: 1.0,
            grad_clip: 5.0,
            target_sync: 200,
        }
    }
}

/// One ε-greedy draw: a uniform sample against `eps`, then either a
/// random action (second draw) or the lazily computed greedy action —
/// exploration never evaluates Q. The single copy of the draw order that
/// the batched/sequential bit-identity contract depends on, shared by
/// [`DqnAgent::act`], [`DqnAgent::act_lane`] and [`DqnAgent::act_batch`].
#[inline]
fn epsilon_draw(rng: &mut impl Rng, eps: f32, greedy: impl FnOnce() -> usize) -> usize {
    if rng.gen::<f32>() < eps {
        rng.gen_range(0..2)
    } else {
        greedy()
    }
}

/// Scalar Huber loss/derivative for one `1 × 1` prediction: exactly the
/// [`huber`] arithmetic at `n = 1` (where the `/ n` normalizations are
/// exact identities), inlined so the batched TD pass computes per-sample
/// losses without building row-vector matrices.
#[inline]
fn huber_scalar(pred: f32, target: f32, delta: f32) -> (f32, f32) {
    let d = pred - target;
    if d.abs() <= delta {
        (0.5 * d * d, d)
    } else {
        (delta * (d.abs() - 0.5 * delta), delta * d.signum())
    }
}

/// Bootstrap targets for a row-stacked mini-batch: `targets[i]` starts at
/// sample `i`'s reward and bootstrap-eligible samples add
/// `γ · max(Q'(s'))` from the `bootstrap` network. The successor features
/// run through the batched inference encode (bit-identical per block to
/// the sequential `forward_into` loop the reference path uses) and the
/// Q-head as one matmul over the stacked feature rows.
fn minibatch_targets(
    bootstrap: &DualHeadNet,
    gamma: f32,
    mb: &MiniBatch,
    scratch: &mut Scratch,
    targets: &mut Vec<f32>,
) {
    targets.clear();
    targets.extend_from_slice(&mb.rewards);
    if mb.next_idx.is_empty() {
        return;
    }
    let d = bootstrap.foundation.out_dim();
    let count = mb.next_idx.len();
    let rows_per = match bootstrap.cfg.action_encoding {
        ActionEncoding::TwoHead => 1,
        ActionEncoding::OrdinalInput => 2,
    };
    let mut feats = scratch.take(count * rows_per, d);
    match bootstrap.cfg.action_encoding {
        ActionEncoding::TwoHead => {
            bootstrap.foundation.forward_batch_into(
                &bootstrap.ps,
                &mb.next_states,
                count,
                &mut feats,
                scratch,
            );
        }
        ActionEncoding::OrdinalInput => {
            // One augmented batch pass per ordinal, interleaved into the
            // same `j·2 + a` feature layout as the per-sample reference.
            let mut aug = scratch.take(0, 0);
            let mut pass = scratch.take(count, d);
            for (a, ordinal) in [-1.0f32, 1.0].iter().enumerate() {
                bootstrap.augment_into(&mb.next_states, *ordinal, &mut aug);
                bootstrap.foundation.forward_batch_into(
                    &bootstrap.ps,
                    &aug,
                    count,
                    &mut pass,
                    scratch,
                );
                for j in 0..count {
                    feats.row_mut(j * 2 + a).copy_from_slice(pass.row(j));
                }
            }
            scratch.give(pass);
            scratch.give(aug);
        }
    }
    let mut qs = scratch.take(feats.rows(), bootstrap.q_head.out_dim);
    bootstrap
        .q_head
        .forward_into(&bootstrap.ps, &feats, &mut qs);
    for (j, &i) in mb.next_idx.iter().enumerate() {
        let (q0, q1) = match bootstrap.cfg.action_encoding {
            ActionEncoding::TwoHead => (qs.get(j, 0), qs.get(j, 1)),
            ActionEncoding::OrdinalInput => (qs.get(j * 2, 0), qs.get(j * 2 + 1, 0)),
        };
        targets[i] += gamma * q0.max(q1);
    }
    scratch.give(qs);
    scratch.give(feats);
}

/// One shard of [`DqnAgent::train_minibatch_sharded`]: computes the
/// per-sample gradients and losses for samples `[start, start + k)` of
/// `mb` into `grads`/`losses` (both length `k`). Batched when the network
/// supports it, per-sample scalar otherwise; either way `grads[j]` holds
/// exactly sample `start + j`'s contribution, so the coordinator's
/// ascending flat fold is bit-identical to the single-threaded update.
fn dqn_shard(
    net: &DualHeadNet,
    mb: &MiniBatch,
    targets: &[f32],
    delta: f32,
    start: usize,
    grads: &mut [Grads],
    losses: &mut [f32],
) {
    let k = grads.len();
    let mut scratch = Scratch::new();
    if net.supports_batched_q_train() {
        let mut cache = HeadBatchCache::default();
        let mut states = scratch.take(k * mb.seq, mb.states.cols());
        for r in 0..states.rows() {
            states
                .row_mut(r)
                .copy_from_slice(mb.states.row(start * mb.seq + r));
        }
        let mut q = scratch.take(k, 2);
        net.q_forward_batch_train(&states, k, &mut q, &mut cache, &mut scratch);
        let mut dq = scratch.take(k, 2);
        for j in 0..k {
            let a = mb.actions[start + j];
            let (loss, dl) = huber_scalar(q.get(j, a), targets[start + j], delta);
            dq.set(j, a, dl);
            losses[j] = loss;
        }
        let mut sink = GradSink::PerBlock(grads);
        net.q_backward_batch(&mut cache, &states, &dq, k, &mut sink, &mut scratch);
        scratch.give(dq);
        scratch.give(q);
        scratch.give(states);
    } else {
        let mut state = scratch.take(mb.seq, mb.states.cols());
        for (j, (g, l)) in grads.iter_mut().zip(losses.iter_mut()).enumerate() {
            let i = start + j;
            for r in 0..mb.seq {
                state
                    .row_mut(r)
                    .copy_from_slice(mb.states.row(i * mb.seq + r));
            }
            let (qv, cache) = net.q_forward(&state);
            let a = mb.actions[i];
            let pred = Matrix::row_vector(vec![qv[a]]);
            let tgt = Matrix::row_vector(vec![targets[i]]);
            let (loss, dl) = huber(&pred, &tgt, delta);
            let mut dqv = [0.0f32; 2];
            dqv[a] = dl.get(0, 0);
            net.q_backward(&cache, dqv, g);
            *l = loss;
        }
        scratch.give(state);
    }
}

/// Everything a [`DqnAgent`] needs to resume bit-identically after a
/// crash: online/target weights, Adam moments and both step clocks.
/// Derived state (scratch arenas, embed-row caches) is rebuilt empty on
/// import — it never affects results, only allocation reuse.
#[derive(Debug, Clone)]
pub struct DqnAgentState {
    /// Online-network parameters, in [`ParamSet`](mirage_nn::ParamSet)
    /// allocation order.
    pub net_params: Vec<Matrix>,
    /// Target-network parameters (`None` when no target network is
    /// configured).
    pub target_params: Option<Vec<Matrix>>,
    /// Adam update steps taken.
    pub opt_t: u64,
    /// Adam first moments, by parameter position.
    pub opt_m: Vec<Option<Matrix>>,
    /// Adam second moments, by parameter position.
    pub opt_v: Vec<Option<Matrix>>,
    /// Environment steps (the global ε clock).
    pub steps: u64,
    /// Mini-batch updates taken (drives target syncs).
    pub train_steps: u64,
}

/// DQN agent over a [`DualHeadNet`].
#[derive(Debug, Clone)]
pub struct DqnAgent {
    /// Online network.
    pub net: DualHeadNet,
    /// Frozen copy used for bootstrap targets (None = bootstrap from the
    /// online network).
    target: Option<DualHeadNet>,
    opt: Adam,
    cfg: DqnConfig,
    /// Environment steps taken (drives ε decay).
    pub steps: u64,
    train_steps: u64,
    /// Reusable inference buffers: serving-time decisions allocate
    /// nothing once this arena is warm.
    scratch: Scratch,
    /// Per-episode embed-row caches for the batched greedy path
    /// (invalidated after every training step).
    batch_cache: BatchInferCache,
    /// Reusable Q-pair buffer for the batched greedy path.
    batch_vals: Vec<[f32; 2]>,
    /// Retained buffers for the batched update path.
    train_cache: HeadBatchCache,
    /// Mini-batch gradient accumulator (reset per update).
    grads: Grads,
    /// Per-sample accumulator for the scalar fallback update path.
    sample_grads: Grads,
    /// Bootstrap-target buffer (refilled per update).
    targets_buf: Vec<f32>,
    /// Retained mini-batch for the reference-batch compatibility wrapper.
    minibatch: MiniBatch,
}

impl DqnAgent {
    /// Wraps a network with DQN training machinery.
    pub fn new(net: DualHeadNet, cfg: DqnConfig) -> Self {
        let target = (cfg.target_sync > 0).then(|| net.clone());
        let opt = Adam::new(cfg.lr);
        let grads = Grads::new(&net.ps);
        let sample_grads = Grads::new(&net.ps);
        Self {
            net,
            target,
            opt,
            cfg,
            steps: 0,
            train_steps: 0,
            scratch: Scratch::new(),
            batch_cache: BatchInferCache::new(),
            batch_vals: Vec::new(),
            train_cache: HeadBatchCache::default(),
            grads,
            sample_grads,
            targets_buf: Vec::new(),
            minibatch: MiniBatch::new(),
        }
    }

    /// Current exploration rate.
    pub fn epsilon(&self) -> f32 {
        self.cfg.epsilon.value(self.steps)
    }

    /// The raw Q-pair `[Q(wait), Q(submit)]` for one state — the guarded
    /// inference path reads this to validate outputs before acting on
    /// them. Identical to what [`act_greedy`](Self::act_greedy) argmaxes.
    pub fn q_pair(&mut self, state: &Matrix) -> [f32; 2] {
        self.net.q_values(state, &mut self.scratch)
    }

    /// Snapshots the full training state for crash-safe checkpointing.
    /// Round-trips through [`import_state`](Self::import_state).
    pub fn export_state(&self) -> DqnAgentState {
        DqnAgentState {
            net_params: self.net.ps.iter().map(|(_, m)| m.clone()).collect(),
            target_params: self
                .target
                .as_ref()
                .map(|t| t.ps.iter().map(|(_, m)| m.clone()).collect()),
            opt_t: self.opt.steps(),
            opt_m: self.opt.state().1.to_vec(),
            opt_v: self.opt.state().2.to_vec(),
            steps: self.steps,
            train_steps: self.train_steps,
        }
    }

    /// Restores an [`export_state`](Self::export_state) snapshot into an
    /// agent freshly built over the same network architecture. After
    /// this, every act/train call is bit-identical to what the
    /// snapshotted agent would have produced. Panics if the parameter
    /// count does not match the agent's network (wrong architecture).
    pub fn import_state(&mut self, state: DqnAgentState) {
        assert_eq!(
            state.net_params.len(),
            self.net.ps.len(),
            "checkpoint parameter count does not match the network"
        );
        let ids: Vec<_> = self.net.ps.iter().map(|(id, _)| id).collect();
        for (id, m) in ids.iter().zip(state.net_params) {
            *self.net.ps.get_mut(*id) = m;
        }
        match state.target_params {
            Some(params) => {
                let mut target = self.net.clone();
                let tids: Vec<_> = target.ps.iter().map(|(id, _)| id).collect();
                assert_eq!(params.len(), tids.len(), "target parameter count mismatch");
                for (id, m) in tids.iter().zip(params) {
                    *target.ps.get_mut(*id) = m;
                }
                self.target = Some(target);
            }
            None => self.target = None,
        }
        self.opt
            .restore_state(state.opt_t, state.opt_m, state.opt_v);
        self.steps = state.steps;
        self.train_steps = state.train_steps;
        // Cached embed rows belong to the pre-restore weights.
        self.batch_cache.clear();
    }

    /// ε-greedy action; advances the agent's global exploration clock.
    pub fn act(&mut self, state: &Matrix, rng: &mut impl Rng) -> usize {
        self.steps += 1;
        let eps = self.epsilon();
        epsilon_draw(rng, eps, || self.act_greedy(state))
    }

    /// ε-greedy action against a lane's private RNG stream and ε clock
    /// (advanced here), leaving the agent's global clock untouched. This
    /// is the sequential specification of one [`act_batch`] row: batched
    /// lane `i` is bit-identical to `act_lane` on lane `i`'s state and a
    /// matching [`ExploreLane`].
    ///
    /// [`act_batch`]: Self::act_batch
    pub fn act_lane(&mut self, state: &Matrix, lane: &mut ExploreLane) -> usize {
        lane.steps += 1;
        let eps = self.cfg.epsilon.value(lane.steps);
        epsilon_draw(&mut lane.rng, eps, || self.act_greedy(state))
    }

    /// ε-greedy actions for a lockstep batch in **one** batched forward:
    /// `states` row-stacks `rows.len()` state matrices, and batch row `r`
    /// draws from `lanes[rows[r]]`'s RNG stream and lane-local ε clock
    /// (the indirection lets a narrowing lockstep batch keep each
    /// episode pinned to its lane as other episodes finish). The Q batch
    /// is computed for every row — that is the amortization — and rows
    /// that explore simply ignore their pair, exactly as the sequential
    /// path never evaluates Q when exploring; per row the action is
    /// bit-identical to [`act_lane`](Self::act_lane).
    pub fn act_batch(
        &mut self,
        states: &Matrix,
        lanes: &mut [ExploreLane],
        rows: &[usize],
        actions: &mut Vec<usize>,
    ) {
        self.net.q_values_batch(
            states,
            rows.len(),
            &mut self.batch_vals,
            &mut self.scratch,
            &mut self.batch_cache,
        );
        actions.clear();
        for (r, &l) in rows.iter().enumerate() {
            let lane = &mut lanes[l];
            lane.steps += 1;
            let eps = self.cfg.epsilon.value(lane.steps);
            actions.push(epsilon_draw(&mut lane.rng, eps, || {
                greedy_pair(self.batch_vals[r])
            }));
        }
    }

    /// Greedy action (serving-time policy, §4.4: submit only when
    /// Q(submit) exceeds Q(no-submit)). Runs the allocation-free
    /// `q_values` fast path against the agent's own scratch arena.
    pub fn act_greedy(&mut self, state: &Matrix) -> usize {
        let q = self.net.q_values(state, &mut self.scratch);
        greedy_pair(q)
    }

    /// Greedy actions for `batch` row-stacked states in **one** batched
    /// forward (`q_values_batch` + the agent's embed-row caches):
    /// `actions[b]` is bit-identical to `act_greedy` on episode `b`'s
    /// state alone. Does not advance the exploration clock — this is the
    /// serving/evaluation path.
    pub fn act_greedy_batch(&mut self, states: &Matrix, batch: usize, actions: &mut Vec<usize>) {
        self.net.q_values_batch(
            states,
            batch,
            &mut self.batch_vals,
            &mut self.scratch,
            &mut self.batch_cache,
        );
        actions.clear();
        actions.extend(self.batch_vals.iter().map(|&q| greedy_pair(q)));
    }

    /// Bootstrap targets for a mini-batch: foundation features of every
    /// non-terminal next-state are stacked into one matrix so the Q-head
    /// runs as a **single matmul** over the whole batch instead of
    /// row-at-a-time calls. Numerically identical to per-sample
    /// `q_forward` (each stacked row accumulates in the same order).
    fn batch_targets(&mut self, batch: &[&Experience]) -> Vec<f32> {
        let bootstrap = self.target.as_ref().unwrap_or(&self.net);
        let scratch = &mut self.scratch;
        let gamma = self.cfg.gamma;
        let d = bootstrap.foundation.out_dim();
        let rows_per = match bootstrap.cfg.action_encoding {
            ActionEncoding::TwoHead => 1,
            ActionEncoding::OrdinalInput => 2,
        };

        let mut targets: Vec<f32> = batch.iter().map(|e| e.reward).collect();
        let with_next: Vec<usize> = (0..batch.len())
            .filter(|&i| batch[i].next_state.is_some() && !batch[i].done)
            .collect();
        if with_next.is_empty() {
            return targets;
        }

        let mut feats = scratch.take(with_next.len() * rows_per, d);
        let mut feat = scratch.take(1, d);
        let mut aug = scratch.take(0, 0);
        for (j, &i) in with_next.iter().enumerate() {
            let next = batch[i].next_state.as_ref().expect("filtered above");
            match bootstrap.cfg.action_encoding {
                ActionEncoding::TwoHead => {
                    bootstrap
                        .foundation
                        .forward_into(&bootstrap.ps, next, &mut feat, scratch);
                    feats.row_mut(j).copy_from_slice(feat.row(0));
                }
                ActionEncoding::OrdinalInput => {
                    for (a, ordinal) in [-1.0f32, 1.0].iter().enumerate() {
                        bootstrap.augment_into(next, *ordinal, &mut aug);
                        bootstrap
                            .foundation
                            .forward_into(&bootstrap.ps, &aug, &mut feat, scratch);
                        feats.row_mut(j * 2 + a).copy_from_slice(feat.row(0));
                    }
                }
            }
        }
        let mut qs = scratch.take(feats.rows(), bootstrap.q_head.out_dim);
        bootstrap
            .q_head
            .forward_into(&bootstrap.ps, &feats, &mut qs);
        for (j, &i) in with_next.iter().enumerate() {
            let (q0, q1) = match bootstrap.cfg.action_encoding {
                ActionEncoding::TwoHead => (qs.get(j, 0), qs.get(j, 1)),
                ActionEncoding::OrdinalInput => (qs.get(j * 2, 0), qs.get(j * 2 + 1, 0)),
            };
            targets[i] += gamma * q0.max(q1);
        }
        scratch.give(qs);
        scratch.give(aug);
        scratch.give(feat);
        scratch.give(feats);
        targets
    }

    /// One mini-batch update from a reference batch; returns the mean TD
    /// loss. Compatibility wrapper: assembles a retained row-stacked
    /// [`MiniBatch`] and runs [`DqnAgent::train_minibatch`], bit-identical
    /// to the per-experience reference
    /// [`DqnAgent::train_batch_scalar`].
    pub fn train_batch(&mut self, batch: &[&Experience]) -> f32 {
        assert!(!batch.is_empty(), "empty training batch");
        let mut mb = std::mem::take(&mut self.minibatch);
        mb.assemble_refs(batch);
        let loss = self.train_minibatch(&mb);
        self.minibatch = mb;
        loss
    }

    /// The pinned per-experience reference update: one `q_forward` /
    /// `q_backward` per sample, gradients folded sequentially in batch
    /// order. [`DqnAgent::train_minibatch`] must match this bit for bit —
    /// the property tests compare the two directly.
    pub fn train_batch_scalar(&mut self, batch: &[&Experience]) -> f32 {
        assert!(!batch.is_empty(), "empty training batch");
        // Bootstrap targets first (batched, inference-only), then the
        // per-sample gradient passes against the online network.
        let targets = self.batch_targets(batch);
        let delta = self.cfg.huber_delta;
        let net = &self.net;

        // Per-sample forward/backward in parallel; gradients are collected
        // in batch order and folded sequentially so the floating-point
        // merge order — and therefore training — is deterministic.
        let per_sample: Vec<(f32, Grads)> = batch
            .par_iter()
            .enumerate()
            .map(|(i, e)| {
                let (q, cache) = net.q_forward(&e.state);
                let pred = Matrix::row_vector(vec![q[e.action]]);
                let tgt = Matrix::row_vector(vec![targets[i]]);
                let (loss, dl) = huber(&pred, &tgt, delta);
                let mut dq = [0.0f32; 2];
                dq[e.action] = dl.get(0, 0);
                let mut grads = Grads::new(&net.ps);
                net.q_backward(&cache, dq, &mut grads);
                (loss, grads)
            })
            .collect();
        let (total_loss, merged) =
            per_sample
                .into_iter()
                .fold((0.0f32, Grads::new(&net.ps)), |(l1, mut g1), (l2, g2)| {
                    g1.merge(g2);
                    (l1 + l2, g1)
                });

        self.grads.reset();
        self.grads.merge(merged);
        self.apply_update(total_loss, batch.len())
    }

    /// One batched mini-batch update: a single forward/backward over the
    /// row-stacked states (one matmul per layer instead of one per
    /// sample) when the network supports it, with the per-sample loop as
    /// fallback. Bit-identical to [`DqnAgent::train_batch_scalar`] on the
    /// same samples; allocation-free once the retained buffers are warm.
    pub fn train_minibatch(&mut self, mb: &MiniBatch) -> f32 {
        assert!(!mb.is_empty(), "empty training batch");
        minibatch_targets(
            self.target.as_ref().unwrap_or(&self.net),
            self.cfg.gamma,
            mb,
            &mut self.scratch,
            &mut self.targets_buf,
        );
        let delta = self.cfg.huber_delta;
        let n = mb.len;
        self.grads.reset();
        let mut total_loss = 0.0f32;
        if self.net.supports_batched_q_train() {
            let net = &self.net;
            let scratch = &mut self.scratch;
            let mut q = scratch.take(n, 2);
            net.q_forward_batch_train(&mb.states, n, &mut q, &mut self.train_cache, scratch);
            let mut dq = scratch.take(n, 2);
            for i in 0..n {
                let a = mb.actions[i];
                let (loss, dl) = huber_scalar(q.get(i, a), self.targets_buf[i], delta);
                dq.set(i, a, dl);
                total_loss += loss;
            }
            let mut sink = GradSink::Fused(&mut self.grads);
            net.q_backward_batch(
                &mut self.train_cache,
                &mb.states,
                &dq,
                n,
                &mut sink,
                scratch,
            );
            scratch.give(dq);
            scratch.give(q);
        } else {
            // Ordinal encoding / top-1 MoE: the per-sample reference
            // loop, accumulated through the same deterministic fold.
            let net = &self.net;
            let mut state = self.scratch.take(mb.seq, mb.states.cols());
            for i in 0..n {
                for r in 0..mb.seq {
                    state
                        .row_mut(r)
                        .copy_from_slice(mb.states.row(i * mb.seq + r));
                }
                let (qv, cache) = net.q_forward(&state);
                let a = mb.actions[i];
                let pred = Matrix::row_vector(vec![qv[a]]);
                let tgt = Matrix::row_vector(vec![self.targets_buf[i]]);
                let (loss, dl) = huber(&pred, &tgt, delta);
                let mut dqv = [0.0f32; 2];
                dqv[a] = dl.get(0, 0);
                self.sample_grads.reset();
                net.q_backward(&cache, dqv, &mut self.sample_grads);
                self.grads.merge_ref(&self.sample_grads);
                total_loss += loss;
            }
            self.scratch.give(state);
        }
        self.apply_update(total_loss, n)
    }

    /// Synchronized multi-worker mini-batch update: the batch is split
    /// into `workers` contiguous shards, each shard computes **per-sample**
    /// gradients on its own OS thread, and the coordinator all-reduces by
    /// flat-folding every per-sample gradient in ascending sample order
    /// before one shared Adam step. That global flat fold is the same
    /// addition chain as the single-threaded update, so the result is
    /// bit-identical to [`DqnAgent::train_minibatch`] for **any** worker
    /// count.
    pub fn train_minibatch_sharded(&mut self, mb: &MiniBatch, workers: usize) -> f32 {
        let workers = workers.max(1).min(mb.len.max(1));
        if workers <= 1 {
            return self.train_minibatch(mb);
        }
        assert!(!mb.is_empty(), "empty training batch");
        minibatch_targets(
            self.target.as_ref().unwrap_or(&self.net),
            self.cfg.gamma,
            mb,
            &mut self.scratch,
            &mut self.targets_buf,
        );
        let n = mb.len;
        let net = &self.net;
        let targets = &self.targets_buf;
        let delta = self.cfg.huber_delta;
        let mut per_sample: Vec<Grads> = (0..n).map(|_| Grads::new(&net.ps)).collect();
        let mut losses = vec![0.0f32; n];
        std::thread::scope(|scope| {
            let mut grads_rest = per_sample.as_mut_slice();
            let mut losses_rest = losses.as_mut_slice();
            let mut start = 0usize;
            for w in 0..workers {
                // Spread the remainder over the leading shards.
                let k = n / workers + usize::from(w < n % workers);
                let (g, gr) = grads_rest.split_at_mut(k);
                let (l, lr) = losses_rest.split_at_mut(k);
                grads_rest = gr;
                losses_rest = lr;
                let shard_start = start;
                start += k;
                scope.spawn(move || dqn_shard(net, mb, targets, delta, shard_start, g, l));
            }
        });
        // Deterministic all-reduce: ascending flat fold over every
        // per-sample gradient, losses summed in the same order.
        self.grads.reset();
        let mut total_loss = 0.0f32;
        for (l, g) in losses.iter().zip(&per_sample) {
            total_loss += *l;
            self.grads.merge_ref(g);
        }
        self.apply_update(total_loss, n)
    }

    /// Shared update tail: mean-scales the accumulated gradients, clips,
    /// steps Adam, invalidates the inference caches and advances the
    /// target-sync clock. Returns the mean loss.
    fn apply_update(&mut self, total_loss: f32, n: usize) -> f32 {
        self.grads.scale(1.0 / n as f32);
        if self.cfg.grad_clip > 0.0 {
            self.grads.clip_global_norm(self.cfg.grad_clip);
        }
        self.opt.step(&mut self.net.ps, &self.grads);
        // The parameters moved: cached embed rows are stale.
        self.batch_cache.clear();
        self.train_steps += 1;
        if self.cfg.target_sync > 0 && self.train_steps.is_multiple_of(self.cfg.target_sync) {
            self.target = Some(self.net.clone());
        }
        total_loss / n as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dualhead::{ActionEncoding, DualHeadConfig, DualHeadNet};
    use crate::env::test_envs::{Chain, SignBandit};
    use crate::env::Environment;
    use crate::replay::ReplayBuffer;
    use mirage_nn::foundation::FoundationKind;
    use mirage_nn::transformer::TransformerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(enc: ActionEncoding, seed: u64) -> DualHeadNet {
        DualHeadNet::new(DualHeadConfig {
            foundation: FoundationKind::Transformer,
            transformer: TransformerConfig {
                input_dim: 3,
                seq_len: 2,
                d_model: 8,
                heads: 2,
                layers: 1,
                ff_mult: 2,
            },
            action_encoding: enc,
            freeze_foundation: false,
            seed,
        })
    }

    /// Fills a replay buffer with random-action bandit transitions.
    fn bandit_buffer(seed: u64, n: usize) -> ReplayBuffer {
        let mut env = SignBandit::new(seed, 2, 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let mut rb = ReplayBuffer::new(n);
        let mut state = env.reset();
        for _ in 0..n {
            let action = rng.gen_range(0..2);
            let r = env.step(action);
            rb.push(Experience::terminal(state, action, r.reward));
            state = r.state;
        }
        rb
    }

    fn bandit_accuracy(agent: &mut DqnAgent, seed: u64, trials: usize) -> f64 {
        let mut env = SignBandit::new(seed, 2, 3);
        let mut correct = 0;
        let mut state = env.reset();
        for _ in 0..trials {
            if agent.act_greedy(&state) == env.correct_action() {
                correct += 1;
            }
            state = env.reset();
        }
        correct as f64 / trials as f64
    }

    #[test]
    fn learns_the_sign_bandit() {
        let mut agent = DqnAgent::new(
            tiny_net(ActionEncoding::TwoHead, 3),
            DqnConfig {
                lr: 3e-3,
                ..DqnConfig::default()
            },
        );
        let rb = bandit_buffer(1, 512);
        let mut rng = StdRng::seed_from_u64(2);
        let before = bandit_accuracy(&mut agent, 99, 100);
        for _ in 0..150 {
            let batch = rb.sample(&mut rng, 16);
            agent.train_batch(&batch);
        }
        let after = bandit_accuracy(&mut agent, 99, 100);
        assert!(
            after > 0.85,
            "DQN should solve the bandit: before {before:.2}, after {after:.2}"
        );
    }

    #[test]
    fn ordinal_encoding_also_learns() {
        let mut agent = DqnAgent::new(
            tiny_net(ActionEncoding::OrdinalInput, 5),
            DqnConfig {
                lr: 3e-3,
                ..DqnConfig::default()
            },
        );
        let rb = bandit_buffer(7, 512);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..150 {
            let batch = rb.sample(&mut rng, 16);
            agent.train_batch(&batch);
        }
        let acc = bandit_accuracy(&mut agent, 11, 100);
        assert!(acc > 0.8, "ordinal-input DQN accuracy {acc:.2}");
    }

    #[test]
    fn bootstraps_through_the_chain() {
        // Chain of 4: reward only at the end; Q must propagate backwards.
        let net = DualHeadNet::new(DualHeadConfig {
            foundation: FoundationKind::Transformer,
            transformer: TransformerConfig {
                input_dim: 4,
                seq_len: 1,
                d_model: 8,
                heads: 2,
                layers: 1,
                ff_mult: 2,
            },
            action_encoding: ActionEncoding::TwoHead,
            freeze_foundation: false,
            seed: 9,
        });
        let mut agent = DqnAgent::new(
            net,
            DqnConfig {
                gamma: 0.9,
                lr: 3e-3,
                target_sync: 50,
                ..DqnConfig::default()
            },
        );
        // Random-policy experience.
        let mut env = Chain::new(4);
        let mut rng = StdRng::seed_from_u64(10);
        let mut rb = ReplayBuffer::new(2048);
        let mut state = env.reset();
        for _ in 0..2000 {
            let action = rng.gen_range(0..2);
            let r = env.step(action);
            if r.done {
                rb.push(Experience::terminal(state, action, r.reward));
            } else {
                rb.push(Experience::step(state, action, r.reward, r.state.clone()));
            }
            state = if r.done { env.reset() } else { r.state };
        }
        // 600 updates gives convergence headroom across RNG streams (the
        // vendored StdRng draws a different sequence than upstream rand).
        for _ in 0..600 {
            let batch = rb.sample(&mut rng, 32);
            agent.train_batch(&batch);
        }
        // Greedy policy must walk the chain to the reward.
        let mut env = Chain::new(4);
        let mut s = env.reset();
        let mut total = 0.0;
        for _ in 0..10 {
            let r = env.step(agent.act_greedy(&s));
            total += r.reward;
            s = r.state;
            if r.done {
                break;
            }
        }
        assert!(total > 0.9, "greedy policy should reach the chain end");
    }

    #[test]
    fn act_batch_rows_match_act_lane_bitwise() {
        // The batched ε-greedy path must equal per-lane sequential acting
        // bit for bit: same greedy pairs (one batched forward), same RNG
        // draws, same lane-local ε clocks — including across a train step
        // (stale-cache invalidation) and a narrowed batch with permuted
        // lane mapping.
        for enc in [ActionEncoding::TwoHead, ActionEncoding::OrdinalInput] {
            let mut batch_agent = DqnAgent::new(
                tiny_net(enc, 17),
                DqnConfig {
                    epsilon: EpsilonSchedule::linear(0.8, 0.0, 12),
                    ..DqnConfig::default()
                },
            );
            let mut seq_agent = batch_agent.clone();
            let mut batch_lanes: Vec<ExploreLane> =
                (0..3).map(|l| ExploreLane::seeded(100 + l, l)).collect();
            let mut seq_lanes = batch_lanes.clone();
            let mut rng = StdRng::seed_from_u64(55);
            let states: Vec<Matrix> = (0..3).map(|_| Matrix::xavier(2, 3, &mut rng)).collect();
            let rb = bandit_buffer(18, 64);

            let mut actions = Vec::new();
            for tick in 0..6 {
                // Narrow the batch over time and permute the lane map.
                let rows: Vec<usize> = match tick {
                    0 | 1 => vec![0, 1, 2],
                    2 => vec![2, 0],
                    _ => vec![1],
                };
                let mut stacked = Matrix::zeros(rows.len() * 2, 3);
                for (r, &l) in rows.iter().enumerate() {
                    for i in 0..2 {
                        stacked.row_mut(r * 2 + i).copy_from_slice(states[l].row(i));
                    }
                }
                batch_agent.act_batch(&stacked, &mut batch_lanes, &rows, &mut actions);
                assert_eq!(actions.len(), rows.len());
                for (r, &l) in rows.iter().enumerate() {
                    let expect = seq_agent.act_lane(&states[l], &mut seq_lanes[l]);
                    assert_eq!(
                        actions[r], expect,
                        "{enc:?} tick {tick} row {r} lane {l} diverged"
                    );
                    assert_eq!(batch_lanes[l].steps, seq_lanes[l].steps);
                }
                if tick == 3 {
                    // Move the weights mid-stream: both sides update
                    // identically and the batch caches invalidate.
                    let mut r1 = StdRng::seed_from_u64(9);
                    let mut r2 = StdRng::seed_from_u64(9);
                    batch_agent.train_batch(&rb.sample(&mut r1, 8));
                    seq_agent.train_batch(&rb.sample(&mut r2, 8));
                }
            }
        }
    }

    #[test]
    fn lane_clocks_decay_epsilon_locally() {
        // Satellite property: with lane-local clocks, a lane's ε after n
        // of *its own* decisions equals a sequential agent's ε after n
        // global decisions — batch width never accelerates decay. The
        // global-clock alternative would hit ε = end after
        // decay_steps / width ticks per lane.
        let schedule = EpsilonSchedule::linear(1.0, 0.0, 8);
        let mut agent = DqnAgent::new(
            tiny_net(ActionEncoding::TwoHead, 19),
            DqnConfig {
                epsilon: schedule,
                ..DqnConfig::default()
            },
        );
        let width = 4usize;
        let mut lanes: Vec<ExploreLane> = (0..width)
            .map(|l| ExploreLane::seeded(l as u64, 0))
            .collect();
        let mut stacked = Matrix::zeros(width * 2, 3);
        let mut rng = StdRng::seed_from_u64(3);
        for r in 0..stacked.rows() {
            for c in 0..stacked.cols() {
                stacked.set(r, c, rng.gen::<f32>());
            }
        }
        let rows: Vec<usize> = (0..width).collect();
        let mut actions = Vec::new();
        for tick in 1..=8u64 {
            agent.act_batch(&stacked, &mut lanes, &rows, &mut actions);
            for lane in &lanes {
                assert_eq!(lane.steps, tick, "one clock advance per own decision");
                assert_eq!(schedule.value(lane.steps), schedule.value(tick));
            }
        }
        // 8 ticks × 4 lanes = 32 global decisions, but every lane sits at
        // exactly the end of its own 8-step decay, not 4× past it.
        assert_eq!(schedule.value(lanes[0].steps), 0.0);
        assert!(schedule.value(lanes[0].steps / width as u64) > 0.0);
    }

    #[test]
    fn epsilon_decays_with_steps() {
        let mut agent = DqnAgent::new(
            tiny_net(ActionEncoding::TwoHead, 1),
            DqnConfig {
                epsilon: EpsilonSchedule::linear(1.0, 0.0, 10),
                ..DqnConfig::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(0);
        let s = Matrix::zeros(2, 3);
        assert_eq!(agent.epsilon(), 1.0);
        for _ in 0..10 {
            let _ = agent.act(&s, &mut rng);
        }
        assert_eq!(agent.epsilon(), 0.0);
    }

    #[test]
    fn training_reduces_td_loss() {
        let mut agent = DqnAgent::new(
            tiny_net(ActionEncoding::TwoHead, 13),
            DqnConfig {
                lr: 3e-3,
                ..DqnConfig::default()
            },
        );
        let rb = bandit_buffer(14, 256);
        let mut rng = StdRng::seed_from_u64(15);
        let first: f32 = (0..5)
            .map(|_| agent.train_batch(&rb.sample(&mut rng, 16)))
            .sum::<f32>()
            / 5.0;
        for _ in 0..100 {
            agent.train_batch(&rb.sample(&mut rng, 16));
        }
        let last: f32 = (0..5)
            .map(|_| agent.train_batch(&rb.sample(&mut rng, 16)))
            .sum::<f32>()
            / 5.0;
        assert!(last < first, "TD loss should drop: {first:.4} → {last:.4}");
    }
}
