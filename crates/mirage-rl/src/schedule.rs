//! Exploration and learning-rate schedules.

use serde::{Deserialize, Serialize};

/// Linearly decaying ε for ε-greedy exploration (§4.9.2: a small ε > 0
/// also guards against the DQN policy never submitting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    /// Initial ε.
    pub start: f32,
    /// Final ε (kept forever after decay).
    pub end: f32,
    /// Steps over which ε decays linearly.
    pub decay_steps: u64,
}

impl EpsilonSchedule {
    /// Constant ε.
    pub fn constant(eps: f32) -> Self {
        Self {
            start: eps,
            end: eps,
            decay_steps: 1,
        }
    }

    /// Standard linear decay.
    pub fn linear(start: f32, end: f32, decay_steps: u64) -> Self {
        Self {
            start,
            end,
            decay_steps: decay_steps.max(1),
        }
    }

    /// ε at a given step.
    pub fn value(&self, step: u64) -> f32 {
        if step >= self.decay_steps {
            return self.end;
        }
        let frac = step as f32 / self.decay_steps as f32;
        self.start + (self.end - self.start) * frac
    }
}

impl Default for EpsilonSchedule {
    fn default() -> Self {
        Self::linear(1.0, 0.05, 2_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_decay_endpoints() {
        let s = EpsilonSchedule::linear(1.0, 0.1, 100);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.55).abs() < 1e-6);
        assert_eq!(s.value(100), 0.1);
        assert_eq!(s.value(10_000), 0.1);
    }

    #[test]
    fn constant_stays_constant() {
        let s = EpsilonSchedule::constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1_000_000), 0.3);
    }
}
