//! Exploration and learning-rate schedules, plus the per-lane
//! exploration state that keeps lockstep batched collection bit-identical
//! to sequential acting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Linearly decaying ε for ε-greedy exploration (§4.9.2: a small ε > 0
/// also guards against the DQN policy never submitting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    /// Initial ε.
    pub start: f32,
    /// Final ε (kept forever after decay).
    pub end: f32,
    /// Steps over which ε decays linearly.
    pub decay_steps: u64,
}

impl EpsilonSchedule {
    /// Constant ε.
    pub fn constant(eps: f32) -> Self {
        Self {
            start: eps,
            end: eps,
            decay_steps: 1,
        }
    }

    /// Standard linear decay.
    pub fn linear(start: f32, end: f32, decay_steps: u64) -> Self {
        Self {
            start,
            end,
            decay_steps: decay_steps.max(1),
        }
    }

    /// ε at a given step.
    pub fn value(&self, step: u64) -> f32 {
        if step >= self.decay_steps {
            return self.end;
        }
        let frac = step as f32 / self.decay_steps as f32;
        self.start + (self.end - self.start) * frac
    }
}

impl Default for EpsilonSchedule {
    fn default() -> Self {
        Self::linear(1.0, 0.05, 2_000)
    }
}

/// Per-lane exploration state for lockstep batched acting: an independent
/// RNG stream plus a lane-local ε-decay clock.
///
/// Sequential ε-greedy training advances one global step counter per
/// decision; stepped in lockstep, that counter would interleave across
/// lanes and make a lane's ε depend on how many *other* episodes share
/// its window. Giving every lane its own `(rng, steps)` pair removes that
/// coupling: lane `i` of a batched collection run draws and decays
/// bit-identically to a sequential run handed the same seed and step
/// base, whatever the batch width (`DqnAgent::act_batch` row `r` ==
/// `DqnAgent::act_lane` on row `r`'s state and lane).
#[derive(Debug, Clone)]
pub struct ExploreLane {
    /// The lane's private RNG stream (exploration and sampling draws).
    pub rng: StdRng,
    /// Lane-local ε-decay clock, advanced once per decision on this lane.
    pub steps: u64,
}

impl ExploreLane {
    /// Lane with an RNG stream seeded by `seed` and the ε clock starting
    /// at `steps` (the agent's accumulated step count at window start, so
    /// a one-lane window reproduces the global sequential decay exactly).
    pub fn seeded(seed: u64, steps: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_decay_endpoints() {
        let s = EpsilonSchedule::linear(1.0, 0.1, 100);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.55).abs() < 1e-6);
        assert_eq!(s.value(100), 0.1);
        assert_eq!(s.value(10_000), 0.1);
    }

    #[test]
    fn constant_stays_constant() {
        let s = EpsilonSchedule::constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1_000_000), 0.3);
    }

    #[test]
    fn lanes_decay_independently() {
        // Two lanes stepped in lockstep each see ε at *their own* step
        // count — a lane's decay never depends on the batch width.
        let s = EpsilonSchedule::linear(1.0, 0.0, 10);
        let mut a = ExploreLane::seeded(1, 0);
        let mut b = ExploreLane::seeded(2, 4);
        for _ in 0..3 {
            a.steps += 1;
            b.steps += 1;
        }
        assert_eq!(s.value(a.steps), s.value(3));
        assert_eq!(s.value(b.steps), s.value(7));
    }

    #[test]
    fn seeded_lanes_reproduce_their_stream() {
        use rand::Rng;
        let mut a = ExploreLane::seeded(42, 0);
        let mut b = ExploreLane::seeded(42, 0);
        for _ in 0..16 {
            assert_eq!(a.rng.gen::<f32>(), b.rng.gen::<f32>());
        }
    }
}
