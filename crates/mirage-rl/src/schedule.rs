//! Exploration and learning-rate schedules, plus the per-lane
//! exploration state that keeps lockstep batched collection bit-identical
//! to sequential acting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Linearly decaying ε for ε-greedy exploration (§4.9.2: a small ε > 0
/// also guards against the DQN policy never submitting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonSchedule {
    /// Initial ε.
    pub start: f32,
    /// Final ε (kept forever after decay).
    pub end: f32,
    /// Steps over which ε decays linearly.
    pub decay_steps: u64,
}

impl EpsilonSchedule {
    /// Constant ε.
    pub fn constant(eps: f32) -> Self {
        Self {
            start: eps,
            end: eps,
            decay_steps: 1,
        }
    }

    /// Standard linear decay.
    pub fn linear(start: f32, end: f32, decay_steps: u64) -> Self {
        Self {
            start,
            end,
            decay_steps: decay_steps.max(1),
        }
    }

    /// ε at a given step.
    pub fn value(&self, step: u64) -> f32 {
        if step >= self.decay_steps {
            return self.end;
        }
        let frac = step as f32 / self.decay_steps as f32;
        self.start + (self.end - self.start) * frac
    }
}

impl Default for EpsilonSchedule {
    fn default() -> Self {
        Self::linear(1.0, 0.05, 2_000)
    }
}

/// Per-lane exploration state for lockstep batched acting: an independent
/// RNG stream plus a lane-local ε-decay clock.
///
/// Sequential ε-greedy training advances one global step counter per
/// decision; stepped in lockstep, that counter would interleave across
/// lanes and make a lane's ε depend on how many *other* episodes share
/// its window. Giving every lane its own `(rng, steps)` pair removes that
/// coupling: lane `i` of a batched collection run draws and decays
/// bit-identically to a sequential run handed the same seed and step
/// base, whatever the batch width (`DqnAgent::act_batch` row `r` ==
/// `DqnAgent::act_lane` on row `r`'s state and lane).
#[derive(Debug, Clone)]
pub struct ExploreLane {
    /// The lane's private RNG stream (exploration and sampling draws).
    pub rng: StdRng,
    /// Lane-local ε-decay clock, advanced once per decision on this lane.
    pub steps: u64,
}

impl ExploreLane {
    /// Lane with an RNG stream seeded by `seed` and the ε clock starting
    /// at `steps` (the agent's accumulated step count at window start, so
    /// a one-lane window reproduces the global sequential decay exactly).
    pub fn seeded(seed: u64, steps: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            steps,
        }
    }
}

/// A grid of [`ExploreLane`]s for multi-service lockstep collection:
/// one independent `(rng, ε-clock)` stream per `(instance, service)`
/// pair, flattened row-major so the grid plugs straight into the agents'
/// `act_batch(states, lanes, rows, …)` — batch row `(i, s)` maps to flat
/// lane `i · services + s`.
///
/// Exactly as [`ExploreLane`] decouples a lane's draws from the batch
/// width, the grid decouples a *service's* draws from how many services
/// (and episodes) share the lockstep batch: service `s` of instance `i`
/// explores bit-identically whether it is stepped alone or inside an
/// N-service window. Seeds are derived per pair with a SplitMix64
/// avalanche, so neighboring instances/services never share correlated
/// streams.
#[derive(Debug, Clone)]
pub struct ServiceLanes {
    lanes: Vec<ExploreLane>,
    services: usize,
}

impl ServiceLanes {
    /// Grid of `instances × services` lanes derived from `base_seed`,
    /// every lane's ε clock starting at `steps`.
    pub fn new(base_seed: u64, instances: usize, services: usize, steps: u64) -> Self {
        let services = services.max(1);
        let lanes = (0..instances * services)
            .map(|flat| ExploreLane::seeded(mix_lane_seed(base_seed, flat as u64), steps))
            .collect();
        Self { lanes, services }
    }

    /// Services per instance (the grid's row width).
    pub fn services(&self) -> usize {
        self.services
    }

    /// Total lane count (`instances × services`).
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Flat lane index of `(instance, service)`.
    pub fn flat(&self, instance: usize, service: usize) -> usize {
        debug_assert!(service < self.services);
        instance * self.services + service
    }

    /// The lane of `(instance, service)`.
    pub fn lane_mut(&mut self, instance: usize, service: usize) -> &mut ExploreLane {
        let i = self.flat(instance, service);
        &mut self.lanes[i]
    }

    /// The whole grid as the flat slice `act_batch` consumes.
    pub fn as_mut_slice(&mut self) -> &mut [ExploreLane] {
        &mut self.lanes
    }
}

/// SplitMix64-style avalanche of `(base, lane)` into a lane seed: the
/// same finalizer `mirage-trace` uses for trace streams, duplicated here
/// because `mirage-rl` sits below it in the crate graph.
fn mix_lane_seed(base: u64, lane: u64) -> u64 {
    let mut x = base ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_decay_endpoints() {
        let s = EpsilonSchedule::linear(1.0, 0.1, 100);
        assert_eq!(s.value(0), 1.0);
        assert!((s.value(50) - 0.55).abs() < 1e-6);
        assert_eq!(s.value(100), 0.1);
        assert_eq!(s.value(10_000), 0.1);
    }

    #[test]
    fn constant_stays_constant() {
        let s = EpsilonSchedule::constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1_000_000), 0.3);
    }

    #[test]
    fn lanes_decay_independently() {
        // Two lanes stepped in lockstep each see ε at *their own* step
        // count — a lane's decay never depends on the batch width.
        let s = EpsilonSchedule::linear(1.0, 0.0, 10);
        let mut a = ExploreLane::seeded(1, 0);
        let mut b = ExploreLane::seeded(2, 4);
        for _ in 0..3 {
            a.steps += 1;
            b.steps += 1;
        }
        assert_eq!(s.value(a.steps), s.value(3));
        assert_eq!(s.value(b.steps), s.value(7));
    }

    #[test]
    fn service_lanes_are_independent_of_grid_shape() {
        use rand::Rng;
        // Lane (1, 2) in a 4×3 grid draws exactly as the standalone lane
        // seeded with the same (base, flat) pair — grid shape only maps
        // indices, it never changes a lane's stream.
        let mut grid = ServiceLanes::new(99, 4, 3, 5);
        assert_eq!(grid.len(), 12);
        assert_eq!(grid.services(), 3);
        assert_eq!(grid.flat(1, 2), 5);
        let mut solo = ExploreLane::seeded(super::mix_lane_seed(99, 5), 5);
        let lane = grid.lane_mut(1, 2);
        assert_eq!(lane.steps, solo.steps);
        for _ in 0..8 {
            assert_eq!(lane.rng.gen::<f32>(), solo.rng.gen::<f32>());
        }
        // Distinct pairs get distinct streams.
        let a = grid.lane_mut(0, 0).rng.gen::<u64>();
        let b = grid.lane_mut(0, 1).rng.gen::<u64>();
        assert_ne!(a, b);
    }

    #[test]
    fn seeded_lanes_reproduce_their_stream() {
        use rand::Rng;
        let mut a = ExploreLane::seeded(42, 0);
        let mut b = ExploreLane::seeded(42, 0);
        for _ in 0..16 {
            assert_eq!(a.rng.gen::<f32>(), b.rng.gen::<f32>());
        }
    }
}
